"""Walk through the serving simulator: traffic, batching, fleets, routing.

Three acts, all deterministic under the fixed seed:

1. one fleet under the same Poisson traffic with each batching policy —
   no-batching vs size-triggered vs timeout batching is a latency/throughput
   trade, and strict size triggers show their unbounded-tail failure mode;
2. the acceptance scenario: a Taylor-attention accelerator fleet vs a
   vanilla-attention fleet under identical saturating traffic;
3. a heterogeneous fleet under bursty traffic, least-loaded vs energy-aware
   routing, with the engine result-cache traffic that makes long runs cheap.

Run with:  python examples/serving_simulation.py
"""

from __future__ import annotations

from repro.serve import (
    BurstyTraffic,
    Fleet,
    PoissonTraffic,
    WorkloadMix,
    compare,
    serve,
)

MIX = WorkloadMix.of(["deit-tiny", "levit-128"], weights=[3.0, 1.0])


def show(label: str, report) -> None:
    print(f"  {label:28s} {report.throughput_rps:7.1f} rps   "
          f"p50 {report.latency.p50 * 1e3:8.2f} ms   "
          f"p99 {report.latency.p99 * 1e3:8.2f} ms   "
          f"batch {report.mean_batch_size:4.2f}   "
          f"SLO viol {report.slo_violation_rate:5.1%}   "
          f"{report.energy_per_request_joules * 1e3:6.2f} mJ/req")


def main() -> None:
    print("1. Batching policies — 2x ViTALiTy, Poisson 200 req/s, mixed workloads")
    traffic = PoissonTraffic(rate=200.0, mix=MIX)
    for policy in ("fifo", "size", "timeout"):
        report = serve(traffic, "2xvitality", policy=policy, duration=4.0, seed=0)
        show(policy, report)
    print("   (strict size-8 batching waits forever for stragglers below "
          "saturation — the tail the timeout window bounds)\n")

    print("2. Taylor vs vanilla attention fleets — identical Poisson 600 req/s")
    saturating = PoissonTraffic(rate=600.0, mix=WorkloadMix.of(["deit-tiny"]))
    reports = compare(saturating,
                      {"taylor (2xvitality)": "2xvitality",
                       "vanilla (2xsanger)": "2xsanger"},
                      policy="timeout", duration=4.0, seed=0,
                      models=["deit-tiny"])
    for label, report in reports.items():
        show(label, report)
    print("   (the vanilla fleet saturates below the offered load; the "
          "Taylor fleet sustains it)\n")

    print("3. Routing a heterogeneous fleet — 2x ViTALiTy + 1x GPU, bursty traffic")
    bursty = BurstyTraffic(rate=400.0, mix=WorkloadMix.of(["deit-tiny"]))
    fleet = Fleet.parse("2xvitality,1xgpu")
    for router in ("least-loaded", "energy-aware"):
        report = serve(bursty, fleet, policy="timeout", router=router,
                       duration=4.0, seed=0)
        show(router, report)
        gpu = [r for r in report.per_replica if r.target == "gpu"][0]
        print(f"      GPU served {gpu.requests}/{report.completed} requests "
              f"({gpu.energy_joules:.2f} J of {report.total_energy_joules:.2f} J total)")
    cache = report.cache
    print(f"\nEngine cache for the last run: {cache.hits} hits / "
          f"{cache.misses} misses ({cache.hit_rate:.1%} hit rate, "
          f"{cache.evictions} evictions under bound {cache.max_entries}) — "
          f"every repeated (model, batch) shape simulated once.")


if __name__ == "__main__":
    main()
