"""Quickstart: swap a ViT's softmax attention for ViTALiTy's linear Taylor attention.

This example builds a small DeiT-Tiny, runs the same input through the
BASELINE (softmax) attention and the LOWRANK (linear Taylor) attention, shows
that the two agree in the weak-connection regime, and prints the operation
count reduction of Table I for the full-size model.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro.attention import (
    count_taylor_attention_ops,
    count_vanilla_attention_ops,
    softmax_attention,
    taylor_attention,
)
from repro.models import create_model
from repro.tensor import Tensor
from repro.workloads import DEIT_TINY


def main() -> None:
    rng = np.random.default_rng(0)

    # 1. Functional level: Taylor attention approximates softmax attention for
    #    mean-centred "weak" connections, at linear instead of quadratic cost.
    q = rng.normal(size=(1, 3, 16, 8)) * 0.3
    k = rng.normal(size=(1, 3, 16, 8)) * 0.3
    v = rng.normal(size=(1, 3, 16, 8))
    gap = np.max(np.abs(taylor_attention(q, k, v) - softmax_attention(q, k, v)))
    print(f"max |taylor - softmax| in the weak regime: {gap:.4f}")

    # 2. Model level: the same DeiT skeleton accepts any attention mechanism.
    images = Tensor(rng.normal(size=(2, 3, 32, 32)))
    baseline = create_model("deit-tiny", attention_mode="softmax")
    lowrank = create_model("deit-tiny", attention_mode="taylor")
    lowrank.load_state_dict(baseline.state_dict())   # drop-in replacement
    baseline.eval()
    lowrank.eval()
    baseline_logits = baseline(images).data
    lowrank_logits = lowrank(images).data
    print(f"logit gap after drop-in replacement: {np.abs(baseline_logits - lowrank_logits).max():.4f}")

    # 3. Complexity level: Table I — operation counts on the full-size DeiT-Tiny.
    vitality = count_taylor_attention_ops(DEIT_TINY).in_millions()
    vanilla = count_vanilla_attention_ops(DEIT_TINY).in_millions()
    print("\nDeiT-Tiny attention operation counts (millions):")
    print(f"  ViTALiTy : Mul {vitality['Mul']:.1f}  Add {vitality['Add']:.1f}  Div {vitality['Div']:.2f}  Exp 0")
    print(f"  Baseline : Mul {vanilla['Mul']:.1f}  Add {vanilla['Add']:.1f}  Div {vanilla['Div']:.2f}  "
          f"Exp {vanilla['Exp']:.2f}")
    print(f"  Reduction: {vanilla['Mul'] / vitality['Mul']:.1f}x multiplications")


if __name__ == "__main__":
    main()
