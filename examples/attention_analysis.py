"""Analyse ViT attention distributions and the effect of mean-centering (Fig. 3).

Generates calibrated per-layer query/key tensors (mimicking pre-trained
DeiT-Tiny statistics), measures how many similarity values fall in the
"weak-connection" interval [-1, 1) before and after row-wise mean-centering,
and prints the per-layer histogram summary plus the runtime breakdown that
motivates the work (Fig. 1).

Run with:  python examples/attention_analysis.py
"""

from __future__ import annotations

from repro.attention.distribution import (
    attention_distribution_stats,
    generate_calibrated_qk,
    summarize_weak_fraction,
)
from repro.profiling import mha_runtime_breakdown_table


def main() -> None:
    queries, keys = generate_calibrated_qk(num_layers=12, seed=0)
    stats = attention_distribution_stats(queries, keys)

    print("Fig. 3 — fraction of similarities inside [-1, 1) per layer:")
    print(f"{'layer':>5s} {'vanilla':>9s} {'centred':>9s} {'gain':>7s}")
    for layer_stats in stats:
        print(f"{layer_stats.layer:5d} {layer_stats.fraction_weak_vanilla:9.3f} "
              f"{layer_stats.fraction_weak_centred:9.3f} {layer_stats.weak_fraction_gain:7.3f}")
    summary = summarize_weak_fraction(stats)
    print(f"\nmean vanilla {summary['mean_fraction_weak_vanilla']:.3f}  "
          f"mean centred {summary['mean_fraction_weak_centred']:.3f}  "
          f"gain {summary['mean_gain']:.3f}   (paper: 0.46 -> 0.67)")

    print("\nFig. 1 — MHA runtime breakdown per platform:")
    for platform, breakdown in mha_runtime_breakdown_table("deit-tiny").items():
        print(f"  {platform:9s} QKV {breakdown['step1_qkv']:.0%}  "
              f"softmax-map {breakdown['step2_softmax_map']:.0%}  "
              f"score {breakdown['step3_attention_score']:.0%}")


if __name__ == "__main__":
    main()
