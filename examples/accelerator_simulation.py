"""Simulate the ViTALiTy accelerator and compare it against its hardware baselines.

Everything routes through the ``repro.engine`` API: a declarative sweep runs
the cycle-level ViTALiTy accelerator and the Sanger baseline on every ViT
workload of the paper, platform comparisons scale the accelerator to each
platform's peak (Figs. 11-12), and the dataflow ablation of Table V reads the
engine's energy breakdown.  Because results are memoised on their RunSpec,
re-running any comparison is free — the final cache report shows it.

Run with:  python examples/accelerator_simulation.py
"""

from __future__ import annotations

from repro.engine import RunSpec, Sweep, cache_stats, get_target, simulate
from repro.workloads import list_workloads


def main() -> None:
    # One declarative sweep covers the accelerator-vs-accelerator comparison.
    outcome = Sweep().all_models().targets("vitality", "sanger").run()
    by_pair = {(r.model, r.target): r for r in outcome.results}

    print(f"{'model':15s} {'attn (ms)':>10s} {'e2e (ms)':>10s} {'vs Sanger':>10s} "
          f"{'vs GPU':>8s} {'vs EdgeGPU':>11s} {'vs CPU':>8s}")
    for name in list_workloads():
        own = by_pair[(name, "vitality")]
        other = by_pair[(name, "sanger")]
        row = [f"{name:15s}", f"{own.attention_latency * 1e3:10.3f}",
               f"{own.end_to_end_latency * 1e3:10.3f}",
               f"{other.end_to_end_latency / own.end_to_end_latency:9.1f}x"]
        for platform_name in ("gpu", "edge_gpu", "cpu"):
            platform = simulate(RunSpec(name, target=platform_name))
            scaled = simulate(RunSpec(
                name, target="vitality",
                scale_to_peak=get_target(platform_name).peak_macs_per_second))
            speedup = platform.end_to_end_latency / scaled.end_to_end_latency
            width = 7 if platform_name != "edge_gpu" else 10
            row.append(f"{speedup:{width}.1f}x")
        print(" ".join(row))

    print("\nTable V — Taylor-attention energy (uJ), G-stationary vs down-forward accumulation:")
    for name in ("deit-base", "mobilevit-xxs", "mobilevit-xs", "levit-128s", "levit-128"):
        gs = simulate(RunSpec(name, target="vitality-gstationary")).breakdown()
        df = simulate(RunSpec(name, target="vitality")).breakdown()
        gs_overall, df_overall = sum(gs.values()), sum(df.values())
        print(f"  {name:15s} GS overall {gs_overall * 1e6:8.1f}   ours overall {df_overall * 1e6:8.1f}"
              f"   (GS data {gs['data_access'] * 1e6:5.2f} < ours {df['data_access'] * 1e6:5.2f})")

    # The same sweep again — every run is served from the result cache.
    Sweep().all_models().targets("vitality", "sanger").run()
    stats = cache_stats()
    print(f"\nResult cache: {stats.hits} hits / {stats.misses} misses "
          f"({stats.hit_rate:.0%} hit rate, {stats.size} unique runs)")


if __name__ == "__main__":
    main()
