"""Simulate the ViTALiTy accelerator and compare it against its hardware baselines.

Runs the cycle-level ViTALiTy accelerator on every ViT workload of the paper,
compares latency and energy against the Sanger accelerator and the analytic
CPU / edge-GPU / GPU platform models (Figs. 11-12), and prints the dataflow
ablation of Table V.

Run with:  python examples/accelerator_simulation.py
"""

from __future__ import annotations

from repro.hardware import (
    Dataflow,
    SangerAccelerator,
    ViTALiTyAccelerator,
    get_platform,
)
from repro.workloads import get_workload, list_workloads


def main() -> None:
    accelerator = ViTALiTyAccelerator()
    sanger = SangerAccelerator()

    print(f"{'model':15s} {'attn (ms)':>10s} {'e2e (ms)':>10s} {'vs Sanger':>10s} "
          f"{'vs GPU':>8s} {'vs EdgeGPU':>11s} {'vs CPU':>8s}")
    for name in list_workloads():
        workload = get_workload(name)
        own = accelerator.run_model(workload)
        other = sanger.run_model(workload)
        row = [f"{name:15s}", f"{own.attention_latency * 1e3:10.3f}",
               f"{own.end_to_end_latency * 1e3:10.3f}",
               f"{other.end_to_end_latency / own.end_to_end_latency:9.1f}x"]
        for platform_name in ("gpu", "edge_gpu", "cpu"):
            platform = get_platform(platform_name)
            scaled = accelerator
            if platform.peak_macs_per_second > accelerator.peak_macs_per_second:
                scaled = accelerator.scaled_to_peak(platform.peak_macs_per_second)
            result = scaled.run_model(workload)
            speedup = platform.end_to_end_latency(workload) / result.end_to_end_latency
            width = 7 if platform_name != "edge_gpu" else 10
            row.append(f"{speedup:{width}.1f}x")
        print(" ".join(row))

    print("\nTable V — Taylor-attention energy (uJ), G-stationary vs down-forward accumulation:")
    for name in ("deit-base", "mobilevit-xxs", "mobilevit-xs", "levit-128s", "levit-128"):
        workload = get_workload(name)
        gs = ViTALiTyAccelerator(dataflow=Dataflow.G_STATIONARY).attention_energy_breakdown(workload)
        df = ViTALiTyAccelerator(dataflow=Dataflow.DOWN_FORWARD).attention_energy_breakdown(workload)
        print(f"  {name:15s} GS overall {gs.overall * 1e6:8.1f}   ours overall {df.overall * 1e6:8.1f}"
              f"   (GS data {gs.data_access * 1e6:5.2f} < ours {df.data_access * 1e6:5.2f})")


if __name__ == "__main__":
    main()
