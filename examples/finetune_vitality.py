"""Fine-tune a DeiT-Tiny with ViTALiTy's unified low-rank + sparse attention.

Reproduces the training story of the paper on the synthetic dataset:

1. pre-train a softmax-attention baseline (stand-in for the ImageNet checkpoint),
2. drop in the linear Taylor attention (LOWRANK) and observe the accuracy,
3. fine-tune with the unified low-rank + sparse attention and knowledge
   distillation (the ViTALiTy scheme), tracking the sparse-component occupancy,
4. evaluate with the sparse component dropped (ViTALiTy inference mode).

Run with:  python examples/finetune_vitality.py  [--quick]
"""

from __future__ import annotations

import argparse

from repro.training import FinetuneConfig, ViTALiTyFinetuner


def main(quick: bool = True) -> None:
    if quick:
        config = FinetuneConfig(model_name="deit-tiny", train_samples=192, test_samples=96,
                                pretrain_epochs=6, finetune_epochs=5)
    else:
        config = FinetuneConfig(model_name="deit-tiny", train_samples=512, test_samples=256,
                                pretrain_epochs=14, finetune_epochs=10)
    finetuner = ViTALiTyFinetuner(config)

    _, baseline_accuracy = finetuner.pretrained_baseline()
    print(f"BASELINE  (softmax attention)        : {baseline_accuracy:5.1f}%")

    lowrank = finetuner.run_scheme("lowrank")
    print(f"LOWRANK   (Taylor drop-in, no tuning): {lowrank.accuracy:5.1f}%")

    vitality = finetuner.run_scheme("vitality+kd")
    print(f"VITALITY  (low-rank + sparse + KD)   : {vitality.accuracy:5.1f}%")
    occupancy = ", ".join(f"{o:.3f}" for o in vitality.sparse_occupancy_per_epoch)
    print(f"sparse-component occupancy per epoch : [{occupancy}]")
    print("(the sparse component is dropped at inference; only the linear Taylor path runs)")


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--full", action="store_true", help="run the longer configuration")
    arguments = parser.parse_args()
    main(quick=not arguments.full)
