"""Tests for the profiling utilities and the experiment registry/drivers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments import get_experiment, list_experiments, run_experiment
from repro.experiments.complexity import PAPER_TABLE1
from repro.experiments.hardware_exps import (
    PAPER_ATTENTION_SPEEDUP,
    PAPER_FIG11_AVERAGE,
    fig11_latency_speedup,
    fig12_energy_efficiency,
    pipeline_ablation,
    salo_comparison,
    table5_dataflow_energy,
)
from repro.experiments.profiling_exps import PAPER_FIG1, PAPER_TABLE2_TOTALS
from repro.profiling import attention_flops, attention_flops_table, attention_step_profile
from repro.profiling.breakdown import mha_runtime_breakdown_table, table2_rows


class TestFlops:
    def test_vitality_fewer_flops_than_baseline(self):
        assert attention_flops("vitality") < attention_flops("baseline")

    def test_table4_ordering(self):
        """ViTALiTy's FLOPs are competitive with every comparator (Table IV)."""

        table = attention_flops_table("deit-tiny")
        vitality = table["vitality"]["flops_g"]
        assert vitality < table["baseline"]["flops_g"]
        assert vitality < table["linformer"]["flops_g"]
        assert vitality < table["performer"]["flops_g"]
        assert vitality < table["sanger"]["flops_g"]

    def test_flops_magnitude_close_to_paper(self):
        """DeiT-Tiny attention FLOPs: paper reports 0.50 G (baseline) and 0.33 G (ViTALiTy)."""

        assert attention_flops("baseline") == pytest.approx(0.50, rel=0.25)
        assert attention_flops("vitality") == pytest.approx(0.33, rel=0.25)

    def test_unknown_method(self):
        with pytest.raises(KeyError):
            attention_flops("flash")


class TestBreakdowns:
    def test_fig1_fractions_sum_to_one(self):
        table = mha_runtime_breakdown_table()
        for platform, breakdown in table.items():
            assert sum(breakdown.values()) == pytest.approx(1.0)

    def test_fig1_close_to_paper(self):
        table = mha_runtime_breakdown_table()
        for platform, paper in PAPER_FIG1.items():
            measured = table[platform]
            assert measured["step2_softmax_map"] == pytest.approx(paper["step2_softmax_map"],
                                                                  abs=0.12)

    def test_step_profile_ratios(self):
        profile = attention_step_profile("deit-tiny", "edge_gpu", "taylor")
        ratios = profile.ratios()
        assert sum(ratios.values()) == pytest.approx(1.0)
        assert len(ratios) == 6

    def test_step_profile_validation(self):
        with pytest.raises(ValueError):
            attention_step_profile(formulation="quadratic")

    def test_table2_totals_close_to_paper(self):
        """DeiT-Tiny (the calibration target) matches Table II closely; for the other
        models the qualitative conclusion must hold: the GPU does not benefit from
        Taylor attention (its Taylor latency is not lower than the vanilla latency)."""

        rows = {row["model"]: row for row in table2_rows()}
        deit = rows["deit-tiny"]
        assert deit["vanilla_total_ms"] == pytest.approx(PAPER_TABLE2_TOTALS["deit-tiny"]["vanilla"],
                                                         rel=0.3)
        assert deit["taylor_total_ms"] == pytest.approx(PAPER_TABLE2_TOTALS["deit-tiny"]["taylor"],
                                                        rel=0.3)
        for model in PAPER_TABLE2_TOTALS:
            assert rows[model]["taylor_total_ms"] > 0.9 * rows[model]["vanilla_total_ms"]

    def test_table2_pre_post_processing_is_substantial_on_gpu(self):
        """The paper's point: pre/post steps are ~50% of Taylor latency on a GPU."""

        profile = attention_step_profile("deit-tiny", "edge_gpu", "taylor")
        ratios = profile.ratios()
        light_steps = ratios["1:k_hat"] + ratios["3:sums"] + ratios["4:tD"] + ratios["6:Z"]
        assert light_steps > 0.3


class TestHardwareExperiments:
    def test_fig11_vitality_wins_everywhere(self):
        rows = fig11_latency_speedup(models=("deit-tiny", "levit-128"))
        for model, row in rows.items():
            for baseline in ("cpu", "edge_gpu", "gpu", "sanger"):
                assert row[baseline] > 1.0, (model, baseline)

    def test_fig11_ordering_matches_paper(self):
        """CPU and edge GPU are beaten by much more than the GPU and Sanger."""

        row = fig11_latency_speedup(models=("deit-tiny",))["deit-tiny"]
        assert row["cpu"] > row["gpu"]
        assert row["edge_gpu"] > row["gpu"]
        assert row["attention_cpu"] > row["cpu"]

    def test_fig11_rough_magnitude(self):
        row = fig11_latency_speedup(models=("deit-tiny",))["deit-tiny"]
        assert row["attention_cpu"] == pytest.approx(PAPER_ATTENTION_SPEEDUP["cpu"], rel=0.6)
        assert row["gpu"] == pytest.approx(PAPER_FIG11_AVERAGE["gpu"], rel=1.5)
        assert row["sanger"] == pytest.approx(PAPER_FIG11_AVERAGE["sanger"], rel=1.2)

    def test_fig12_energy_improvements(self):
        rows = fig12_energy_efficiency(models=("deit-tiny",))
        row = rows["deit-tiny"]
        for baseline in ("cpu", "edge_gpu", "gpu", "sanger"):
            assert row[baseline] > 1.0

    def test_table5_down_forward_wins_all_models(self):
        table = table5_dataflow_energy()
        for model, per_dataflow in table.items():
            assert (per_dataflow["down_forward"]["overall_uj"]
                    < per_dataflow["g_stationary"]["overall_uj"])
            assert (per_dataflow["g_stationary"]["data_access_uj"]
                    < per_dataflow["down_forward"]["data_access_uj"])

    def test_table5_deit_base_magnitude(self):
        """Paper Table V: DeiT-Base Taylor attention energy ~198-222 uJ."""

        table = table5_dataflow_energy(models=("deit-base",))
        overall = table["deit-base"]["down_forward"]["overall_uj"]
        assert 100 < overall < 450

    def test_salo_comparison_speedups(self):
        speedups = salo_comparison()
        assert speedups["deit-tiny"] > 2.0
        assert speedups["deit-small"] > 2.0

    def test_pipeline_ablation_gain(self):
        result = pipeline_ablation()
        assert result["throughput_gain"] > 1.0


class TestExperimentRegistry:
    def test_every_paper_artifact_registered(self):
        identifiers = list_experiments()
        for required in ("fig1", "fig3", "fig10", "fig11", "fig12", "fig13", "fig14", "fig15",
                         "tab1", "tab2", "tab3", "tab4_flops", "tab4_accuracy", "tab5", "tab6",
                         "salo"):
            assert required in identifiers

    def test_get_experiment_metadata(self):
        spec = get_experiment("tab1")
        assert spec.paper_reference == "Table I"
        assert callable(spec.runner)

    def test_unknown_experiment(self):
        with pytest.raises(KeyError):
            run_experiment("fig99")

    def test_tab1_runner_matches_paper_reference_values(self):
        rows = run_experiment("tab1")
        for model, paper in PAPER_TABLE1.items():
            assert rows[model]["vitality_mul_m"] == pytest.approx(paper["vitality_mul"], rel=1.2)
            assert rows[model]["baseline_mul_m"] == pytest.approx(paper["baseline_mul"], rel=0.15)

    def test_eq1_3_runner(self):
        ratios = run_experiment("eq1_3")
        assert ratios["multiplications"] == pytest.approx(ratios["n_over_d"], rel=0.05)

    def test_tab6_runner(self):
        table = run_experiment("tab6")
        assert table["vitality"]["processors"] == ["Acc.", "Div.", "Add."]

    def test_fig3_runner_calibrated(self):
        summary = run_experiment("fig3", quick=True, source="calibrated")
        assert summary["mean_fraction_weak_centred"] > summary["mean_fraction_weak_vanilla"]
