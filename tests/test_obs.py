"""Observability layer: tracing, streaming metrics, exporters, CLI.

The load-bearing contracts pinned here:

* recording is *passive* — a run with an :class:`Observability` attached
  produces a byte-identical ``ServeReport.to_json()`` to a run without;
* each request's phase spans partition ``[arrival, completion]``, so their
  durations sum (exactly, in float) to the report's latency per request;
* traces are deterministic — same seed, byte-identical Chrome trace JSON;
* exporters emit schema-valid output (Perfetto event keys, Prometheus
  exposition lines).
"""

from __future__ import annotations

import io
import json
import logging
import math

import pytest

from repro.cli import main
from repro.obs import (
    LOG_LEVELS,
    MetricsCollector,
    Observability,
    P2Quantile,
    PID_FLEET,
    PID_REQUESTS,
    Progress,
    StreamingLatency,
    TraceRecorder,
    chrome_trace,
    chrome_trace_json,
    configure_logging,
    load_trace,
    prometheus_text,
    summarize_trace,
)
from repro.plan import Autoscaler
from repro.serve import (
    KVCacheConfig,
    make_policy,
    make_router,
    make_traffic,
    percentile,
    serve,
    serve_llm,
    serve_pipeline,
)


def classic_run(obs=None, autoscaler=None, rate=150.0, duration=2.0):
    traffic = make_traffic("poisson", rate, ("deit-tiny",))
    return serve(traffic, "2xvitality", make_policy("size", batch_size=4),
                 make_router("least-loaded"), duration=duration, seed=7,
                 autoscaler=autoscaler, obs=obs)


def llm_run(obs=None, **kwargs):
    traffic = make_traffic("poisson", 30.0, ("decoder",))
    defaults = dict(fleet="2xvitality", duration=2.0, seed=11,
                    prompt_tokens=256, output_tokens=32,
                    kv=KVCacheConfig(capacity_tokens=8192))
    defaults.update(kwargs)
    return serve_llm(traffic, obs=obs, **defaults)


def request_span_sums(recorder):
    """Per-request sum of phase-span durations, keyed by request index."""

    sums: dict[int, float] = {}
    for event in recorder.events():
        if event.get("ph") == "X" and event["pid"] == PID_REQUESTS:
            index = event["args"]["request"]
            sums[index] = sums.get(index, 0.0) + event["dur"]
    return sums


# --------------------------------------------------------------- P2 sketch


def test_p2_exact_below_five_samples():
    sketch = P2Quantile(0.5)
    for value in (5.0, 1.0, 3.0):
        sketch.add(value)
    assert sketch.value == 3.0           # nearest-rank median of {1, 3, 5}


def test_p2_tracks_known_quantiles():
    # A deterministic pseudo-random stream; P2 should land within a few
    # percent of the exact nearest-rank value on a smooth distribution.
    values, state = [], 1234567
    for _ in range(5000):
        state = (1103515245 * state + 12345) % (1 << 31)
        values.append(state / float(1 << 31))
    for fraction in (0.5, 0.9, 0.99):
        sketch = P2Quantile(fraction)
        for value in values:
            sketch.add(value)
        exact = percentile(values, fraction)
        assert sketch.value == pytest.approx(exact, abs=0.02)


def test_streaming_latency_summary_matches_percentile():
    stream = StreamingLatency()
    values = [(index * 37 % 101) / 100.0 for index in range(1, 400)]
    for value in values:
        stream.add(value)
    summary = stream.summary()
    assert summary.count == len(values)
    assert summary.mean == pytest.approx(sum(values) / len(values))
    assert summary.p50 == pytest.approx(percentile(values, 0.5), abs=0.02)
    assert summary.p99 == pytest.approx(percentile(values, 0.99), abs=0.05)


# ---------------------------------------------------------- trace recorder


def test_trace_recorder_orders_metadata_first():
    recorder = TraceRecorder()
    recorder.span("work", start=1.0, end=2.0, pid=1, tid=3, cat="test")
    recorder.process(1, "fleet")
    recorder.thread(1, 3, "replica")
    recorder.thread(1, 3, "replica")          # idempotent
    events = recorder.events()
    assert [event["ph"] for event in events] == ["M", "M", "X"]
    span = events[-1]
    assert span["ts"] == pytest.approx(1e6)
    assert span["dur"] == pytest.approx(1e6)


# ----------------------------------------------------- passive instrumentation


def test_classic_report_identical_with_tracing():
    base = classic_run()
    obs = Observability(trace=TraceRecorder(), metrics=MetricsCollector())
    traced = classic_run(obs=obs)
    assert traced.to_json() == base.to_json()
    assert len(obs.trace) > 0


def assert_spans_match_latency(recorder, report):
    """Phase spans partition [arrival, completion]: per-request sums must
    reproduce the report's latency distribution (count, mean, max)."""

    sums = request_span_sums(recorder)
    spans = [value * 1e-6 for value in sums.values()]
    assert len(spans) == report.completed
    assert math.isclose(sum(spans) / len(spans), report.latency.mean,
                        rel_tol=1e-9)
    assert math.isclose(max(spans), report.latency.max, rel_tol=1e-9)


def test_classic_spans_sum_to_latency():
    obs = Observability(trace=TraceRecorder())
    report = classic_run(obs=obs)
    assert_spans_match_latency(obs.trace, report)


@pytest.mark.parametrize("scheduler", ["continuous", "monolithic"])
def test_llm_report_identical_and_spans_sum(scheduler):
    base = llm_run(scheduler=scheduler)
    obs = Observability(trace=TraceRecorder(), metrics=MetricsCollector())
    traced = llm_run(obs=obs, scheduler=scheduler)
    assert traced.to_json() == base.to_json()
    assert_spans_match_latency(obs.trace, traced)


def test_disaggregated_trace_has_handoff_phase():
    obs = Observability(trace=TraceRecorder())
    base = llm_run(fleet=None, prefill_fleet="1xvitality",
                   decode_fleet="1xvitality")
    traced = llm_run(obs=obs, fleet=None, prefill_fleet="1xvitality",
                     decode_fleet="1xvitality")
    assert traced.to_json() == base.to_json()
    phases = {event["args"]["phase"] for event in obs.trace.events()
              if event.get("ph") == "X" and event["pid"] == PID_REQUESTS}
    assert "handoff" in phases and "prefill" in phases and "decode" in phases


def test_autoscaler_events_match_trace_instants():
    def run(obs=None):
        autoscaler = Autoscaler("utilization", "vitality",
                                max_replicas=6, interval=0.25)
        traffic = make_traffic("poisson", 2000.0, ("deit-tiny",))
        return serve(traffic, "1xvitality", make_policy("size", batch_size=8),
                     make_router("least-loaded"), duration=1.5, seed=3,
                     autoscaler=autoscaler, obs=obs)

    base = run()
    obs = Observability(trace=TraceRecorder())
    traced = run(obs=obs)
    assert traced.to_json() == base.to_json()
    instants = [event for event in obs.trace.events()
                if event.get("ph") == "i" and event.get("cat") == "autoscaler"]
    assert len(instants) == len(traced.scale_events) > 0
    assert ({event["name"] for event in instants}
            == {event.action for event in traced.scale_events})


# --------------------------------------------------------- pipeline serving


def pipeline_run(obs=None):
    traffic = make_traffic("poisson", 120.0, ("deit-tiny",))
    return serve_pipeline(
        traffic, "rag = encoder[tokens=256] -> rerank:encoder[tokens=64] -> deit-tiny",
        {"encoder": "2xvitality", "rerank": "1xvitality",
         "deit-tiny": "1xvitality"},
        duration=1.0, seed=5, obs=obs)


def test_pipeline_report_identical_with_tracing():
    base = pipeline_run()
    obs = Observability(trace=TraceRecorder(), metrics=MetricsCollector())
    traced = pipeline_run(obs=obs)
    assert traced.to_json() == base.to_json()
    assert len(obs.trace) > 0


def test_pipeline_spans_sum_to_latency():
    """Queue/service spans per stage plus the handoff spans between stages
    partition [arrival, completion] — the PR-7 invariant, per pipeline."""

    obs = Observability(trace=TraceRecorder())
    report = pipeline_run(obs=obs)
    assert_spans_match_latency(obs.trace, report)
    events = [event for event in obs.trace.events()
              if event.get("ph") == "X" and event["pid"] == PID_REQUESTS]
    phases = {event["args"]["phase"] for event in events}
    assert phases == {"queue", "service", "handoff"}
    # Queue and service spans carry the stage they ran on; every stage of
    # the linear chain shows up.
    stages = {event["args"]["stage"] for event in events}
    assert stages == {"encoder", "rerank", "deit-tiny"}


def test_pipeline_trace_summarize_per_stage():
    obs = Observability(trace=TraceRecorder())
    report = pipeline_run(obs=obs)
    payload = summarize_trace(chrome_trace(obs.trace))
    assert payload["requests"] == report.completed
    per_stage = payload["per_stage"]
    assert set(per_stage) == {"encoder", "rerank", "deit-tiny"}
    for entry in per_stage.values():
        assert entry["total_seconds"] > 0.0
    # Classic (non-pipeline) traces don't grow the new key.
    classic = Observability(trace=TraceRecorder())
    classic_run(obs=classic)
    assert "per_stage" not in summarize_trace(chrome_trace(classic.trace))


# ---------------------------------------------------------------- exporters


def test_trace_json_deterministic_across_runs():
    payloads = []
    for _ in range(2):
        obs = Observability(trace=TraceRecorder())
        llm_run(obs=obs)
        payloads.append(chrome_trace_json(obs.trace))
    assert payloads[0] == payloads[1]


def test_chrome_trace_schema():
    obs = Observability(trace=TraceRecorder())
    llm_run(obs=obs)
    trace = chrome_trace(obs.trace)
    assert trace["displayTimeUnit"] == "ms"
    events = trace["traceEvents"]
    assert events
    for event in events:
        assert event["ph"] in {"X", "i", "C", "M"}
        assert isinstance(event["pid"], int) and isinstance(event["tid"], int)
        if event["ph"] == "M":
            assert event["name"] in {"process_name", "thread_name"}
        else:
            assert isinstance(event["ts"], float) and event["ts"] >= 0.0
        if event["ph"] == "X":
            assert event["dur"] > 0.0
        if event["ph"] == "i":
            assert event["s"] == "t"
    # Round-trips through JSON (Perfetto loads the serialized form).
    assert json.loads(chrome_trace_json(obs.trace)) == trace


def test_prometheus_text_parses():
    obs = Observability(metrics=MetricsCollector())
    llm_run(obs=obs)
    text = prometheus_text(obs.metrics)
    families = set()
    for line in text.splitlines():
        if not line:
            continue
        if line.startswith("# HELP ") or line.startswith("# TYPE "):
            families.add(line.split()[2])
            continue
        metric, _, rest = line.partition("{")
        if rest:
            labels, _, rest = rest.partition("}")
            for pair in labels.split(","):
                name, _, value = pair.partition("=")
                assert name.isidentifier() and value.startswith('"'), line
        else:
            metric, _, rest = line.partition(" ")
        parts = rest.strip().split()
        assert 1 <= len(parts) <= 2, line
        float(parts[0])                      # value parses
        if len(parts) == 2:
            int(parts[1])                    # timestamp is integer millis
    assert "repro_requests_completed_total" in families
    assert "repro_request_latency_seconds" in families
    assert "repro_request_ttft_seconds" in families
    assert "repro_replica_utilization" in families


def test_metrics_windows_bounded():
    obs = Observability(metrics=MetricsCollector(window_seconds=0.5))
    report = classic_run(obs=obs)
    metrics = obs.metrics
    assert sum(metrics.completions) == report.completed
    assert sum(metrics.arrivals) == report.offered
    for name in metrics.replicas:
        for value in metrics.utilization(name):
            assert 0.0 <= value <= 1.0 + 1e-9


# ---------------------------------------------------------------- summarize


def test_summarize_trace_shares():
    obs = Observability(trace=TraceRecorder())
    report = llm_run(obs=obs)
    payload = summarize_trace(chrome_trace(obs.trace))
    assert payload["requests"] == report.completed
    shares = [phase["share"] for phase in payload["phases"]]
    assert sum(shares) == pytest.approx(1.0)
    assert {phase["phase"] for phase in payload["phases"]} >= \
        {"queue", "prefill", "decode"}
    assert "decoder" in payload["per_model"]
    assert payload["fleet_busy_seconds"]


# ----------------------------------------------------------------- CLI


def test_cli_trace_round_trip(tmp_path, capsys):
    trace_out = tmp_path / "trace.json"
    metrics_out = tmp_path / "metrics.prom"
    code = main(["serve", "--llm", "--models", "decoder", "--rate", "30",
                 "--duration", "2", "--seed", "5", "--quiet", "--json",
                 "--trace-out", str(trace_out),
                 "--metrics-out", str(metrics_out)])
    assert code == 0
    report = json.loads(capsys.readouterr().out)
    trace = load_trace(trace_out)
    spans: dict[int, float] = {}
    for event in trace["traceEvents"]:
        if event.get("ph") == "X" and event["pid"] == PID_REQUESTS:
            index = event["args"]["request"]
            spans[index] = spans.get(index, 0.0) + event["dur"]
    assert len(spans) == report["completed"]
    mean_span = sum(spans.values()) * 1e-6 / len(spans)
    assert mean_span == pytest.approx(report["latency"]["mean"], rel=1e-6)
    assert "repro_request_latency_seconds" in metrics_out.read_text()

    code = main(["trace", "summarize", str(trace_out), "--json"])
    assert code == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["requests"] == report["completed"]


def test_cli_serve_output_identical_with_tracing(tmp_path, capsys):
    argv = ["serve", "--models", "deit-tiny", "--rate", "100",
            "--duration", "1", "--seed", "9", "--quiet", "--json"]
    assert main(argv) == 0
    plain = capsys.readouterr().out
    assert main(argv + ["--trace-out", str(tmp_path / "t.json")]) == 0
    assert capsys.readouterr().out == plain


def test_cli_trace_summarize_rejects_bad_file(tmp_path, capsys):
    bogus = tmp_path / "not_a_trace.json"
    bogus.write_text("{}")
    assert main(["trace", "summarize", str(bogus)]) == 2
    assert "cannot summarize" in capsys.readouterr().err
    assert main(["trace", "summarize", str(tmp_path / "missing.json")]) == 2


# ----------------------------------------------------- progress and logging


def test_progress_deterministic_mode():
    stream = io.StringIO()
    progress = Progress(label="serve", stream=stream, min_interval=0)
    progress.begin("serve")
    for index in range(200):
        progress.tick(index * 0.01)
    progress.step("milestone")
    progress.finish()
    lines = stream.getvalue().splitlines()
    ticks = [line for line in lines if "events" in line]
    assert len(ticks) == 200 // 64
    assert ticks[0] == "serve: 64 events, t=0.63s"
    assert lines[-1] == "serve: milestone"


def test_cli_quiet_suppresses_progress(capsys):
    argv = ["serve", "--models", "deit-tiny", "--rate", "50",
            "--duration", "0.5", "--json"]
    assert main(argv + ["--quiet"]) == 0
    assert capsys.readouterr().err == ""


def test_configure_logging_levels():
    assert LOG_LEVELS == ("debug", "info", "warning", "error")
    configure_logging("debug")
    assert logging.getLogger().level == logging.DEBUG
    with pytest.raises(ValueError):
        configure_logging("verbose")
    configure_logging("warning")


def test_cli_log_level_emits_debug_lines(capsys):
    argv = ["--log-level", "debug", "serve", "--models", "deit-tiny",
            "--rate", "50", "--duration", "0.5", "--quiet", "--json"]
    assert main(argv) == 0
    err = capsys.readouterr().err
    assert "repro.serve.simulator" in err and "dispatch" in err
    configure_logging("warning")
