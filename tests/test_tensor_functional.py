"""Tests for the functional building blocks (softmax, losses, activations)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from scipy.special import softmax as scipy_softmax

from repro.tensor import (
    Tensor,
    cross_entropy,
    dropout,
    gelu,
    kl_div_with_logits,
    layer_norm,
    log_softmax,
    mse_loss,
    one_hot,
    softmax,
)
from repro.tensor.functional import elu, hardswish, linear, silu

from tests.conftest import numeric_gradient


class TestSoftmax:
    def test_matches_scipy(self, rng):
        x = rng.normal(size=(4, 7))
        np.testing.assert_allclose(softmax(Tensor(x)).data, scipy_softmax(x, axis=-1), rtol=1e-10)

    def test_rows_sum_to_one(self, rng):
        out = softmax(Tensor(rng.normal(size=(3, 5, 9))), axis=-1).data
        np.testing.assert_allclose(out.sum(axis=-1), np.ones((3, 5)), rtol=1e-12)

    def test_stable_for_large_inputs(self):
        out = softmax(Tensor([[1000.0, 1000.0, -1000.0]])).data
        assert np.all(np.isfinite(out))
        np.testing.assert_allclose(out[0, :2], [0.5, 0.5])

    def test_shift_invariance(self, rng):
        x = rng.normal(size=(3, 6))
        np.testing.assert_allclose(softmax(Tensor(x)).data, softmax(Tensor(x + 100.0)).data,
                                   rtol=1e-10)

    def test_gradient(self, rng):
        x = rng.normal(size=(3, 4))
        t = Tensor(x.copy(), requires_grad=True)
        (softmax(t)[:, 0]).sum().backward()
        numeric = numeric_gradient(lambda a: float(softmax(Tensor(a))[:, 0].sum().data), x.copy())
        np.testing.assert_allclose(t.grad, numeric, atol=1e-6)

    def test_log_softmax_consistent_with_softmax(self, rng):
        x = rng.normal(size=(5, 8))
        np.testing.assert_allclose(log_softmax(Tensor(x)).data,
                                   np.log(softmax(Tensor(x)).data), rtol=1e-9)


class TestLosses:
    def test_one_hot_encoding(self):
        encoded = one_hot(np.array([0, 2]), 3).data
        np.testing.assert_allclose(encoded, [[1, 0, 0], [0, 0, 1]])

    def test_cross_entropy_uniform_logits(self):
        logits = Tensor(np.zeros((4, 10)))
        loss = cross_entropy(logits, np.zeros(4, dtype=int))
        assert loss.item() == pytest.approx(np.log(10.0))

    def test_cross_entropy_perfect_prediction_is_small(self):
        logits = np.full((2, 3), -100.0)
        logits[0, 1] = 100.0
        logits[1, 2] = 100.0
        loss = cross_entropy(Tensor(logits), np.array([1, 2]))
        assert loss.item() < 1e-6

    def test_cross_entropy_label_smoothing_increases_loss_at_optimum(self):
        logits = np.full((2, 3), -10.0)
        logits[0, 0] = 10.0
        logits[1, 1] = 10.0
        plain = cross_entropy(Tensor(logits), np.array([0, 1]))
        smoothed = cross_entropy(Tensor(logits), np.array([0, 1]), label_smoothing=0.1)
        assert smoothed.item() > plain.item()

    def test_cross_entropy_gradient(self, rng):
        x = rng.normal(size=(3, 5))
        labels = np.array([0, 2, 4])
        t = Tensor(x.copy(), requires_grad=True)
        cross_entropy(t, labels).backward()
        numeric = numeric_gradient(lambda a: float(cross_entropy(Tensor(a), labels).data), x.copy())
        np.testing.assert_allclose(t.grad, numeric, atol=1e-6)

    def test_kl_div_zero_when_equal(self, rng):
        logits = rng.normal(size=(4, 6))
        loss = kl_div_with_logits(Tensor(logits), Tensor(logits.copy()))
        assert loss.item() == pytest.approx(0.0, abs=1e-10)

    def test_kl_div_positive_when_different(self, rng):
        a = rng.normal(size=(4, 6))
        b = rng.normal(size=(4, 6))
        assert kl_div_with_logits(Tensor(a), Tensor(b)).item() > 0.0

    def test_kl_div_teacher_detached(self, rng):
        student = Tensor(rng.normal(size=(2, 4)), requires_grad=True)
        teacher = Tensor(rng.normal(size=(2, 4)), requires_grad=True)
        kl_div_with_logits(student, teacher).backward()
        assert student.grad is not None
        assert teacher.grad is None

    def test_mse_loss(self):
        loss = mse_loss(Tensor([1.0, 2.0]), Tensor([1.0, 4.0]))
        assert loss.item() == pytest.approx(2.0)


class TestActivations:
    def test_gelu_reference_values(self):
        # GELU(0) = 0, GELU is ~x for large positive x, ~0 for large negative x.
        out = gelu(Tensor([0.0, 10.0, -10.0])).data
        assert out[0] == pytest.approx(0.0)
        assert out[1] == pytest.approx(10.0, rel=1e-6)
        assert out[2] == pytest.approx(0.0, abs=1e-6)

    def test_gelu_gradient(self, rng):
        x = rng.normal(size=(4, 4))
        t = Tensor(x.copy(), requires_grad=True)
        gelu(t).sum().backward()
        numeric = numeric_gradient(lambda a: float(gelu(Tensor(a)).sum().data), x.copy())
        np.testing.assert_allclose(t.grad, numeric, atol=1e-6)

    def test_silu_matches_definition(self, rng):
        x = rng.normal(size=(5,))
        np.testing.assert_allclose(silu(Tensor(x)).data, x / (1.0 + np.exp(-x)), rtol=1e-10)

    def test_hardswish_saturates(self):
        out = hardswish(Tensor([-4.0, 0.0, 4.0])).data
        np.testing.assert_allclose(out, [0.0, 0.0, 4.0])

    def test_elu_matches_definition(self):
        out = elu(Tensor([-1.0, 0.5])).data
        np.testing.assert_allclose(out, [np.exp(-1.0) - 1.0, 0.5], rtol=1e-10)

    def test_elu_plus_one_positive(self, rng):
        """The Linear Transformer feature map elu(x)+1 must be strictly positive."""

        x = rng.normal(size=(100,)) * 3
        assert np.all(elu(Tensor(x)).data + 1.0 > 0.0)


class TestLayerNormDropout:
    def test_layer_norm_zero_mean_unit_var(self, rng):
        x = rng.normal(size=(6, 16)) * 5 + 3
        weight = Tensor(np.ones(16))
        bias = Tensor(np.zeros(16))
        out = layer_norm(Tensor(x), weight, bias).data
        np.testing.assert_allclose(out.mean(axis=-1), 0.0, atol=1e-9)
        np.testing.assert_allclose(out.std(axis=-1), 1.0, atol=1e-3)

    def test_layer_norm_affine(self, rng):
        x = rng.normal(size=(2, 8))
        out = layer_norm(Tensor(x), Tensor(np.full(8, 2.0)), Tensor(np.full(8, 1.0))).data
        base = layer_norm(Tensor(x), Tensor(np.ones(8)), Tensor(np.zeros(8))).data
        np.testing.assert_allclose(out, base * 2.0 + 1.0, rtol=1e-10)

    def test_layer_norm_gradient(self, rng):
        x = rng.normal(size=(3, 6))
        weight = Tensor(np.ones(6))
        bias = Tensor(np.zeros(6))
        t = Tensor(x.copy(), requires_grad=True)
        (layer_norm(t, weight, bias) ** 2).sum().backward()
        numeric = numeric_gradient(
            lambda a: float((layer_norm(Tensor(a), weight, bias) ** 2).sum().data), x.copy())
        np.testing.assert_allclose(t.grad, numeric, atol=1e-5)

    def test_dropout_identity_when_not_training(self, rng):
        x = rng.normal(size=(10, 10))
        np.testing.assert_allclose(dropout(Tensor(x), 0.5, training=False).data, x)

    def test_dropout_preserves_expectation(self):
        x = np.ones((200, 200))
        out = dropout(Tensor(x), 0.3, training=True, rng=np.random.default_rng(0)).data
        assert out.mean() == pytest.approx(1.0, rel=0.05)

    def test_dropout_rejects_rate_one(self):
        with pytest.raises(ValueError):
            dropout(Tensor([1.0]), 1.0, training=True)

    def test_linear_functional(self, rng):
        x = rng.normal(size=(4, 3))
        w = rng.normal(size=(3, 5))
        b = rng.normal(size=(5,))
        np.testing.assert_allclose(linear(Tensor(x), Tensor(w), Tensor(b)).data, x @ w + b)


@settings(max_examples=30, deadline=None)
@given(st.integers(1, 8), st.integers(2, 10))
def test_softmax_rows_sum_to_one_property(rows, cols):
    rng = np.random.default_rng(rows * 100 + cols)
    out = softmax(Tensor(rng.normal(size=(rows, cols)) * 10)).data
    np.testing.assert_allclose(out.sum(axis=-1), np.ones(rows), rtol=1e-9)
    assert np.all(out >= 0.0)


@settings(max_examples=30, deadline=None)
@given(st.floats(-50, 50))
def test_gelu_bounded_below_property(value):
    """GELU(x) >= min(0, x) - small constant, and GELU(x) <= max(0, x)."""

    out = float(gelu(Tensor([value])).data[0])
    assert out <= max(0.0, value) + 1e-9
    assert out >= -0.2
