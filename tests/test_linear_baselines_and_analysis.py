"""Tests for the linear-attention baselines, op counting and distribution analysis."""

from __future__ import annotations

import numpy as np
import pytest

from repro.attention import (
    DistributionStats,
    EfficientAttention,
    LinearTransformerAttention,
    LinformerAttention,
    PerformerAttention,
    attention_distribution_stats,
    count_taylor_attention_ops,
    count_vanilla_attention_ops,
    operation_ratio_additions,
    operation_ratio_divisions,
    operation_ratio_multiplications,
    softmax_attention,
)
from repro.attention.distribution import generate_calibrated_qk, summarize_weak_fraction
from repro.attention.op_counting import OperationCounts, table1_rows
from repro.tensor import Tensor
from repro.workloads import (
    DEIT_TINY,
    LEVIT_128,
    MOBILEVIT_XS,
    AttentionLayerSpec,
    get_workload,
    list_workloads,
)


class TestLinearBaselines:
    def test_linear_transformer_shape_and_convexity(self, qkv_tensors):
        module = LinearTransformerAttention()
        out = module(*qkv_tensors)
        assert out.shape == qkv_tensors[0].shape
        # With all-ones values a normalised linear attention returns ones.
        ones = Tensor(np.ones_like(qkv_tensors[2].data))
        np.testing.assert_allclose(module(qkv_tensors[0], qkv_tensors[1], ones).data, 1.0,
                                   rtol=1e-6)

    def test_efficient_attention_shape(self, qkv_tensors):
        assert EfficientAttention()(*qkv_tensors).shape == qkv_tensors[0].shape

    def test_performer_approximates_softmax_for_small_logits(self, rng):
        q = rng.normal(size=(1, 1, 10, 8)) * 0.1
        k = rng.normal(size=(1, 1, 10, 8)) * 0.1
        v = rng.normal(size=(1, 1, 10, 8))
        module = PerformerAttention(head_dim=8, num_features=256, seed=0)
        approx = module(Tensor(q), Tensor(k), Tensor(v)).data
        exact = softmax_attention(q, k, v)
        assert np.max(np.abs(approx - exact)) < 0.15

    def test_performer_deterministic_given_seed(self, qkv_tensors):
        a = PerformerAttention(head_dim=8, seed=3)(*qkv_tensors).data
        b = PerformerAttention(head_dim=8, seed=3)(*qkv_tensors).data
        np.testing.assert_allclose(a, b)

    def test_linformer_shape_and_validation(self, qkv_tensors):
        module = LinformerAttention(num_tokens=12, projection_dim=4)
        assert module(*qkv_tensors).shape == qkv_tensors[0].shape
        with pytest.raises(ValueError):
            LinformerAttention(num_tokens=12, projection_dim=0)
        with pytest.raises(ValueError):
            module(Tensor(np.ones((1, 3, 10, 8))), Tensor(np.ones((1, 3, 10, 8))),
                   Tensor(np.ones((1, 3, 10, 8))))

    def test_linformer_has_parameters(self):
        module = LinformerAttention(num_tokens=12, projection_dim=4)
        assert len(list(module.parameters())) == 2

    def test_all_linear_baselines_avoid_quadratic_map(self, qkv_tensors):
        for module in (LinearTransformerAttention(), EfficientAttention(),
                       PerformerAttention(head_dim=8)):
            module(*qkv_tensors)
            assert module.last_stats["attention_entries"] == 0.0


class TestOpCounting:
    def test_table1_deit_tiny_matches_paper(self):
        vitality = count_taylor_attention_ops(DEIT_TINY).in_millions()
        baseline = count_vanilla_attention_ops(DEIT_TINY).in_millions()
        assert baseline["Mul"] == pytest.approx(178.8, rel=0.02)
        assert baseline["Add"] == pytest.approx(180.2, rel=0.02)
        assert baseline["Div"] == pytest.approx(1.4, rel=0.05)
        assert baseline["Exp"] == pytest.approx(1.4, rel=0.05)
        assert vitality["Mul"] == pytest.approx(58.3, rel=0.03)
        assert vitality["Add"] == pytest.approx(61.0, rel=0.03)
        assert vitality["Div"] == pytest.approx(0.5, rel=0.15)

    def test_table1_mobilevit_xs_matches_paper(self):
        vitality = count_taylor_attention_ops(MOBILEVIT_XS).in_millions()
        baseline = count_vanilla_attention_ops(MOBILEVIT_XS).in_millions()
        assert vitality["Mul"] == pytest.approx(4.8, rel=0.05)
        assert baseline["Mul"] == pytest.approx(28.4, rel=0.05)

    def test_taylor_has_no_exponentiations(self):
        for name in list_workloads():
            assert count_taylor_attention_ops(get_workload(name)).exponentiations == 0

    def test_reduction_ratio_positive_for_all_models(self):
        for name in list_workloads():
            workload = get_workload(name)
            baseline = count_vanilla_attention_ops(workload)
            vitality = count_taylor_attention_ops(workload)
            assert baseline.multiplications > vitality.multiplications
            assert baseline.additions > vitality.additions
            assert baseline.divisions > vitality.divisions

    def test_eq1_ratio_approximates_n_over_d(self):
        ratio = operation_ratio_multiplications(197, 64)
        assert ratio == pytest.approx(197 / 64, rel=0.02)

    def test_eq2_ratio_below_n_over_d(self):
        assert operation_ratio_additions(197, 64) < 197 / 64

    def test_eq3_ratio_approximates_n_over_d(self):
        assert operation_ratio_divisions(197, 64) == pytest.approx(197 / 64, rel=0.01)

    def test_counts_are_additive_and_scalable(self):
        layer = AttentionLayerSpec(tokens=10, qk_dim=4, heads=2, repeats=1)
        single = count_vanilla_attention_ops(layer)
        doubled = count_vanilla_attention_ops(
            AttentionLayerSpec(tokens=10, qk_dim=4, heads=2, repeats=2))
        assert doubled.multiplications == 2 * single.multiplications
        combined = single + single
        assert combined.total == doubled.total

    def test_operation_counts_in_millions_keys(self):
        counts = OperationCounts(1_000_000, 2_000_000, 3_000_000, 4_000_000)
        millions = counts.in_millions()
        assert millions == {"Mul": 1.0, "Add": 2.0, "Div": 3.0, "Exp": 4.0}

    def test_table1_rows_structure(self):
        rows = table1_rows([DEIT_TINY, LEVIT_128])
        assert len(rows) == 2
        assert rows[0]["ratio_mul"] > 1.0


class TestDistributionAnalysis:
    def test_stats_structure(self, rng):
        q = [rng.normal(size=(1, 2, 8, 4)) for _ in range(3)]
        k = [rng.normal(size=(1, 2, 8, 4)) for _ in range(3)]
        stats = attention_distribution_stats(q, k)
        assert len(stats) == 3
        assert isinstance(stats[0], DistributionStats)
        assert 0.0 <= stats[0].fraction_weak_vanilla <= 1.0
        assert stats[0].histogram_vanilla.sum() <= 1 * 2 * 8 * 8

    def test_layer_count_mismatch_raises(self, rng):
        with pytest.raises(ValueError):
            attention_distribution_stats([rng.normal(size=(1, 1, 4, 4))], [])

    def test_calibrated_qk_reproduces_fig3_gain(self):
        """The calibrated generator yields ~46% -> ~67% weak-connection share."""

        queries, keys = generate_calibrated_qk(num_layers=12, seed=0)
        summary = summarize_weak_fraction(attention_distribution_stats(queries, keys))
        assert 0.35 <= summary["mean_fraction_weak_vanilla"] <= 0.58
        assert 0.60 <= summary["mean_fraction_weak_centred"] <= 0.75
        assert summary["mean_gain"] > 0.10

    def test_centering_never_reduces_weak_fraction_much(self, rng):
        q = [rng.normal(size=(1, 1, 16, 8))]
        k = [rng.normal(size=(1, 1, 16, 8)) + 2.0]
        stats = attention_distribution_stats(q, k)
        assert stats[0].fraction_weak_centred >= stats[0].fraction_weak_vanilla - 0.05


class TestWorkloads:
    def test_all_seven_models_present(self):
        assert len(list_workloads()) == 7

    def test_lookup_and_error(self):
        assert get_workload("deit-tiny").name == "deit-tiny"
        with pytest.raises(KeyError):
            get_workload("resnet-50")

    def test_deit_tiny_geometry(self):
        layer = DEIT_TINY.attention_layers[0]
        assert layer.tokens == 197
        assert layer.qk_dim == 64
        assert layer.heads == 3
        assert layer.repeats == 12
        assert layer.embed_dim == 192

    def test_levit_asymmetric_dims(self):
        stage = LEVIT_128.attention_layers[0]
        assert stage.qk_dim == 16
        assert stage.v_dim == 32
        shrink = [l for l in LEVIT_128.attention_layers if l.kv_tokens != l.tokens]
        assert len(shrink) == 2

    def test_invalid_layer_spec(self):
        with pytest.raises(ValueError):
            AttentionLayerSpec(tokens=0, qk_dim=4, heads=1)

    def test_linear_macs_positive(self):
        assert DEIT_TINY.linear_macs() > 0
        assert DEIT_TINY.total_attention_layers() == 12
