"""Tests for the ViT model zoo (DeiT / MobileViT / LeViT) and the registry."""

from __future__ import annotations

import numpy as np
import pytest

from repro.attention import SoftmaxAttention, TaylorAttention, ViTALiTyAttention
from repro.models import (
    MultiHeadAttention,
    TransformerBlock,
    VisionTransformer,
    available_attention_modes,
    available_models,
    create_deit,
    create_levit,
    create_mobilevit,
    create_model,
    make_attention,
)
from repro.tensor import Tensor


@pytest.fixture
def images(rng):
    return Tensor(rng.normal(size=(2, 3, 32, 32)))


class TestMultiHeadAttention:
    def test_output_shape(self, rng):
        mha = MultiHeadAttention(embed_dim=24, num_heads=3)
        out = mha(Tensor(rng.normal(size=(2, 10, 24))))
        assert out.shape == (2, 10, 24)

    def test_rejects_indivisible_heads(self):
        with pytest.raises(ValueError):
            MultiHeadAttention(embed_dim=10, num_heads=3)

    def test_capture_qkv(self, rng):
        mha = MultiHeadAttention(embed_dim=16, num_heads=2, capture_qkv=True)
        mha(Tensor(rng.normal(size=(1, 6, 16))))
        assert mha.captured_q.shape == (1, 2, 6, 8)
        assert mha.captured_k.shape == (1, 2, 6, 8)

    def test_pluggable_attention_changes_output(self, rng):
        x = Tensor(rng.normal(size=(1, 8, 16)))
        softmax_mha = MultiHeadAttention(16, 2, attention=SoftmaxAttention())
        taylor_mha = MultiHeadAttention(16, 2, attention=TaylorAttention())
        taylor_mha.load_state_dict(softmax_mha.state_dict())
        assert np.max(np.abs(softmax_mha(x).data - taylor_mha(x).data)) > 0.0

    def test_transformer_block_residual(self, rng):
        block = TransformerBlock(embed_dim=16, num_heads=2)
        x = Tensor(rng.normal(size=(1, 5, 16)))
        assert block(x).shape == (1, 5, 16)


class TestVisionTransformer:
    def test_forward_shape(self, images):
        model = VisionTransformer(image_size=32, patch_size=8, in_channels=3, embed_dim=24,
                                  depth=2, num_heads=3, num_classes=5)
        assert model(images).shape == (2, 5)

    def test_distillation_heads(self, images):
        model = VisionTransformer(image_size=32, patch_size=8, in_channels=3, embed_dim=24,
                                  depth=2, num_heads=3, num_classes=5, distillation=True)
        class_logits, distillation_logits = model.forward_with_distillation(images)
        assert class_logits.shape == (2, 5)
        assert distillation_logits.shape == (2, 5)
        combined = model(images)
        np.testing.assert_allclose(combined.data,
                                   (class_logits.data + distillation_logits.data) / 2)

    def test_forward_with_distillation_requires_flag(self, images):
        model = VisionTransformer(image_size=32, patch_size=8, in_channels=3, embed_dim=24,
                                  depth=1, num_heads=3, num_classes=5, distillation=False)
        with pytest.raises(RuntimeError):
            model.forward_with_distillation(images)

    def test_attention_modules_listing(self):
        model = VisionTransformer(image_size=32, patch_size=8, in_channels=3, embed_dim=24,
                                  depth=3, num_heads=3, num_classes=5,
                                  attention_factory=TaylorAttention)
        modules = model.attention_modules()
        assert len(modules) == 3
        assert all(isinstance(m, TaylorAttention) for m in modules)

    def test_captured_qkv_per_layer(self, images):
        model = VisionTransformer(image_size=32, patch_size=8, in_channels=3, embed_dim=24,
                                  depth=2, num_heads=3, num_classes=5, capture_qkv=True)
        model(images)
        queries, keys, values = model.captured_qkv()
        assert len(queries) == 2
        assert queries[0].shape == (2, 3, 17, 8)   # 16 patches + class token

    def test_captured_qkv_without_capture_raises(self, images):
        model = VisionTransformer(image_size=32, patch_size=8, in_channels=3, embed_dim=24,
                                  depth=1, num_heads=3, num_classes=5)
        model(images)
        with pytest.raises(RuntimeError):
            model.captured_qkv()


class TestModelFactories:
    def test_create_deit_trainable(self, images):
        model = create_deit("deit-tiny", preset="trainable")
        assert model(images).shape == (2, 10)

    def test_create_deit_unknown(self):
        with pytest.raises(KeyError):
            create_deit("deit-giant")

    def test_deit_paper_geometry(self):
        model = create_deit("deit-tiny", preset="paper")
        assert model.embed_dim == 192
        assert model.depth == 12
        assert model.patch_embed.num_patches == 196

    def test_create_mobilevit(self, images):
        model = create_mobilevit("mobilevit-xxs", preset="trainable")
        assert model(images).shape == (2, 10)
        assert len(model.attention_modules()) == 6   # 2 + 2 + 2 transformer layers

    def test_create_levit(self, images):
        model = create_levit("levit-128s", preset="trainable")
        assert model(images).shape == (2, 10)
        assert len(model.attention_modules()) == 5   # 3 stage layers + 2 downsamplers

    def test_num_classes_override(self, images):
        model = create_deit("deit-tiny", num_classes=7)
        assert model(images).shape == (2, 7)


class TestRegistry:
    def test_available_lists(self):
        assert len(available_models()) == 7
        assert "vitality" in available_attention_modes()

    def test_make_attention_all_modes(self):
        for mode in available_attention_modes():
            module = make_attention(mode, head_dim=8, num_tokens=16)
            assert module is not None

    def test_make_attention_aliases(self):
        assert isinstance(make_attention("lowrank"), TaylorAttention)
        assert isinstance(make_attention("baseline"), SoftmaxAttention)
        assert isinstance(make_attention("unified"), ViTALiTyAttention)

    def test_make_attention_threshold_override(self):
        module = make_attention("vitality", threshold=0.25)
        assert module.threshold == 0.25

    def test_make_attention_unknown(self):
        with pytest.raises(ValueError):
            make_attention("flash")

    def test_performer_requires_head_dim(self):
        with pytest.raises(ValueError):
            make_attention("performer")

    @pytest.mark.parametrize("name", ["deit-tiny", "mobilevit-xxs", "levit-128s"])
    @pytest.mark.parametrize("mode", ["softmax", "taylor", "vitality"])
    def test_create_model_matrix(self, images, name, mode):
        model = create_model(name, attention_mode=mode)
        assert model(images).shape == (2, 10)

    def test_create_model_unknown(self):
        with pytest.raises(KeyError):
            create_model("resnet")

    def test_state_dict_transfer_between_attention_modes(self, images):
        """Models built with different attention modes share parameter names."""

        softmax_model = create_model("deit-tiny", attention_mode="softmax")
        taylor_model = create_model("deit-tiny", attention_mode="taylor")
        taylor_model.load_state_dict(softmax_model.state_dict())
        for (name_a, param_a), (name_b, param_b) in zip(softmax_model.named_parameters(),
                                                        taylor_model.named_parameters()):
            assert name_a == name_b
            np.testing.assert_allclose(param_a.data, param_b.data)

    def test_eval_mode_taylor_equals_vitality_after_transfer(self, images):
        """ViTALiTy at inference reduces to the Taylor-attention model exactly."""

        taylor_model = create_model("deit-tiny", attention_mode="taylor")
        vitality_model = create_model("deit-tiny", attention_mode="vitality")
        vitality_model.load_state_dict(taylor_model.state_dict())
        taylor_model.eval()
        vitality_model.eval()
        np.testing.assert_allclose(taylor_model(images).data, vitality_model(images).data,
                                   rtol=1e-8)
