"""Shared serving configs pinned by ``tests/data/serve_goldens.json``.

``build_golden_reports()`` runs every pinned config through the library and
returns ``{name: report.to_json()}``.  The goldens were captured before the
streaming-summary refactor landed, so the test asserting equality is the
bit-identity contract for ``summary="exact"`` (the default): lazy arrivals,
the incremental load index and the heapify seeding must all reproduce the
pre-refactor event order and report bytes exactly.

Regenerate (only when a report-shape change is intended and documented)::

    PYTHONPATH=src:tests python -c \
        "import json, golden_configs; json.dump(golden_configs.build_golden_reports(), \
         open('tests/data/serve_goldens.json', 'w'), indent=1)"
"""

from repro.plan import Autoscaler
from repro.serve import (
    BurstyTraffic,
    DiurnalTraffic,
    PoissonTraffic,
    ReplayTraffic,
    TokenProfile,
    WorkloadMix,
    serve,
    serve_llm,
)

MIXED = WorkloadMix.of(["deit-tiny", "levit-128"], [2.0, 1.0])
SINGLE = WorkloadMix.of(["deit-tiny"])


def build_golden_reports() -> dict[str, str]:
    reports: dict[str, str] = {}
    reports["poisson-hetero-timeout"] = serve(
        PoissonTraffic(80.0, MIXED), "2xvitality,1xgpu:taylor",
        policy="timeout", router="least-loaded", duration=2.0, seed=7,
        window_seconds=0.5).to_json()
    reports["bursty-energy-fifo"] = serve(
        BurstyTraffic(60.0, SINGLE), "1xvitality,1xgpu",
        policy="fifo", router="energy-aware", duration=2.0, seed=3).to_json()
    reports["diurnal-autoscale"] = serve(
        DiurnalTraffic(120.0, MIXED, period=3.0), "1xvitality",
        policy="size", duration=3.0, seed=11, window_seconds=0.5,
        autoscaler=Autoscaler("queue-depth", "vitality", max_replicas=4,
                              interval=0.25, provision_seconds=0.1),
        percentiles=(0.5, 0.95, 0.99, 0.999)).to_json()
    reports["replay-tail"] = serve(
        ReplayTraffic(((0.01, "deit-tiny"), (0.02, "levit-128"),
                       (0.02, "deit-tiny"), (0.5, "deit-tiny"),
                       (0.95, "levit-128"))), "1xvitality",
        policy="fifo", duration=1.0, seed=0).to_json()
    reports["llm-continuous"] = serve_llm(
        PoissonTraffic(30.0, WorkloadMix.of(
            ["decoder"], tokens=TokenProfile.of("64:256", "16:64"))),
        "2xvitality", scheduler="continuous", duration=2.0, seed=5).to_json()
    reports["llm-disagg"] = serve_llm(
        PoissonTraffic(20.0, WorkloadMix.of(["decoder"])),
        prefill_fleet="1xvitality", decode_fleet="1xvitality",
        duration=2.0, seed=9).to_json()
    return reports
