"""Tests for the serving simulator: traffic, batching, routing, determinism."""

from __future__ import annotations

import json
from collections import deque

import pytest

from repro.serve import (
    BurstyTraffic,
    DiurnalTraffic,
    FIFOPolicy,
    Fleet,
    PoissonTraffic,
    ReplayTraffic,
    Request,
    SizeBatchPolicy,
    TimeoutBatchPolicy,
    WorkloadMix,
    compare,
    make_policy,
    make_router,
    make_traffic,
    percentile,
    serve,
)

MIX = WorkloadMix.of(["deit-tiny"])
MIXED = WorkloadMix.of(["deit-tiny", "levit-128"], weights=[1.0, 1.0])


class TestTraffic:
    def test_poisson_rate_and_determinism(self):
        traffic = PoissonTraffic(rate=200.0, mix=MIX)
        first = traffic.arrivals(10.0, seed=1)
        second = traffic.arrivals(10.0, seed=1)
        assert first == second
        # Mean count is rate * duration; 2000 expected, sigma ~45.
        assert 1700 < len(first) < 2300
        assert all(0 <= r.arrival < 10.0 for r in first)
        assert [r.index for r in first] == list(range(len(first)))

    def test_different_seeds_differ(self):
        traffic = PoissonTraffic(rate=100.0, mix=MIX)
        assert traffic.arrivals(5.0, seed=0) != traffic.arrivals(5.0, seed=1)

    def test_mix_draws_every_model(self):
        traffic = PoissonTraffic(rate=500.0, mix=MIXED)
        models = {r.model for r in traffic.arrivals(2.0, seed=0)}
        assert models == {"deit-tiny", "levit-128"}

    def test_bursty_is_burstier_than_poisson(self):
        """Max arrivals in any 100ms window should exceed Poisson's under
        the same mean-ish rate."""

        def peak_window(requests, window=0.1):
            times = [r.arrival for r in requests]
            return max(sum(1 for t in times if start <= t < start + window)
                       for start in [w * window for w in range(100)])

        poisson = PoissonTraffic(rate=200.0, mix=MIX).arrivals(10.0, seed=3)
        bursty = BurstyTraffic(rate=200.0, mix=MIX).arrivals(10.0, seed=3)
        assert peak_window(bursty) > peak_window(poisson)

    def test_diurnal_peak_vs_trough(self):
        traffic = DiurnalTraffic(peak_rate=400.0, mix=MIX, period=10.0)
        assert traffic.rate_at(0.0) == pytest.approx(400.0 * traffic.floor)
        assert traffic.rate_at(5.0) == pytest.approx(400.0)
        requests = traffic.arrivals(10.0, seed=0)
        trough = sum(1 for r in requests if r.arrival < 1.0 or r.arrival >= 9.0)
        peak = sum(1 for r in requests if 4.0 <= r.arrival < 6.0)
        assert peak > 3 * trough

    def test_replay_orders_and_truncates(self):
        traffic = ReplayTraffic.from_records(
            [[0.5, "deit-tiny"], [0.1, "levit-128"], [9.0, "deit-tiny"]])
        requests = traffic.arrivals(1.0, seed=0)
        assert [(r.arrival, r.model) for r in requests] == \
               [(0.1, "levit-128"), (0.5, "deit-tiny")]

    def test_mix_merges_duplicate_models(self):
        mix = WorkloadMix.of(["deit-tiny", "deit-tiny", "levit-128"],
                             weights=[1.0, 2.0, 3.0])
        assert mix.to_dict() == {"deit-tiny": 3.0, "levit-128": 3.0}

    def test_validation(self):
        with pytest.raises(ValueError, match="unknown workload"):
            WorkloadMix.of(["resnet-50"])
        with pytest.raises(ValueError, match="positive"):
            PoissonTraffic(rate=0.0, mix=MIX)
        with pytest.raises(ValueError, match="duration"):
            PoissonTraffic(rate=1.0, mix=MIX).arrivals(0.0, seed=0)
        with pytest.raises(ValueError, match="unknown traffic"):
            make_traffic("square-wave", 1.0, ["deit-tiny"])
        with pytest.raises(ValueError, match="trace"):
            make_traffic("replay", 1.0, ["deit-tiny"])


def _queued(*models: str, start: float = 0.0, step: float = 0.01):
    return deque(Request(index=i, model=m, arrival=start + i * step)
                 for i, m in enumerate(models))


class TestBatchingPolicies:
    def test_fifo_takes_one(self):
        queue = _queued("deit-tiny", "deit-tiny")
        batch = FIFOPolicy().take(queue, now=1.0, draining=False)
        assert [r.index for r in batch] == [0]
        assert len(queue) == 1

    def test_size_waits_below_threshold_then_fires(self):
        policy = SizeBatchPolicy(batch_size=3)
        queue = _queued("deit-tiny", "deit-tiny")
        assert policy.take(queue, now=1.0, draining=False) is None
        queue = _queued("deit-tiny", "deit-tiny", "deit-tiny", "deit-tiny")
        batch = policy.take(queue, now=1.0, draining=False)
        assert [r.index for r in batch] == [0, 1, 2]
        assert [r.index for r in queue] == [3]

    def test_size_flushes_partial_batch_on_drain(self):
        queue = _queued("deit-tiny")
        batch = SizeBatchPolicy(batch_size=8).take(queue, now=1.0, draining=True)
        assert len(batch) == 1 and not queue

    def test_batches_are_single_model(self):
        queue = _queued("deit-tiny", "levit-128", "deit-tiny")
        batch = SizeBatchPolicy(batch_size=2).take(queue, now=1.0, draining=False)
        assert [r.model for r in batch] == ["deit-tiny", "deit-tiny"]
        assert [r.model for r in queue] == ["levit-128"]

    def test_timeout_fires_on_oldest_wait(self):
        policy = TimeoutBatchPolicy(timeout=0.5, max_batch=8)
        queue = _queued("deit-tiny", "deit-tiny")
        assert policy.take(queue, now=0.4, draining=False) is None
        assert policy.deadline(queue) == pytest.approx(0.5)
        batch = policy.take(queue, now=0.5, draining=False)
        assert len(batch) == 2

    def test_timeout_fires_early_on_full_batch(self):
        policy = TimeoutBatchPolicy(timeout=10.0, max_batch=2)
        queue = _queued("deit-tiny", "deit-tiny", "deit-tiny")
        batch = policy.take(queue, now=0.0, draining=False)
        assert len(batch) == 2

    def test_make_policy_names(self):
        assert make_policy("fifo").name == "fifo"
        assert make_policy("size", batch_size=4).batch_size == 4
        assert make_policy("timeout", timeout=1e-3).timeout == 1e-3
        with pytest.raises(ValueError, match="unknown batching"):
            make_policy("earliest-deadline")


class TestFleet:
    def test_parse_counts_and_attention(self):
        fleet = Fleet.parse("2xvitality,1xgpu:taylor,sanger")
        labels = [replica.name for replica in fleet.replicas]
        assert labels == ["vitality#0", "vitality#1", "gpu:taylor#0", "sanger#0"]
        assert fleet.describe() == "2xvitality,1xgpu:taylor,1xsanger"

    def test_parse_rejects_unknown(self):
        with pytest.raises(KeyError):
            Fleet.parse("2xtpu")
        with pytest.raises(ValueError):
            Fleet.parse("")
        with pytest.raises(ValueError, match="attention"):
            Fleet.parse("1xgpu:softermax")

    def test_warmup_sweeps_share_builder_path(self):
        from repro.engine import ResultCache

        fleet = Fleet.parse("2xvitality,1xgpu:taylor,1xgpu:vanilla")
        sweeps = fleet.warmup_sweeps(["deit-tiny"], batch_sizes=(1, 4))
        specs = [spec for builder in sweeps for spec in builder.expand()]
        # 3 distinct (target, attention) kinds x 2 batch sizes; duplicates
        # from the two vitality replicas collapse.
        assert len(specs) == 6
        cache = ResultCache()
        fleet.warmup(["deit-tiny"], batch_sizes=(1, 4), cache=cache)
        assert cache.stats().misses == 6


class TestServeDeterminism:
    CONFIG = dict(duration=1.5, seed=7)

    def test_same_seed_bit_identical_report(self):
        traffic = BurstyTraffic(rate=150.0, mix=MIXED)
        first = serve(traffic, "2xvitality,1xgpu", policy="timeout", **self.CONFIG)
        second = serve(traffic, "2xvitality,1xgpu", policy="timeout", **self.CONFIG)
        assert first.to_json() == second.to_json()

    def test_different_seed_differs(self):
        traffic = PoissonTraffic(rate=150.0, mix=MIX)
        first = serve(traffic, "1xvitality", duration=1.0, seed=0)
        second = serve(traffic, "1xvitality", duration=1.0, seed=1)
        assert first.to_json() != second.to_json()

    def test_single_request_identical_across_schedulers(self):
        """The degenerate one-request run: every policy dispatches the lone
        request immediately (drain flush), so the reports agree exactly."""

        traffic = ReplayTraffic.from_records([[0.25, "deit-tiny"]])
        rows = {}
        for policy in ("fifo", "size", "timeout"):
            report = serve(traffic, "1xvitality", policy=policy,
                           duration=1.0, seed=0)
            rows[policy] = (report.completed, report.latency.to_dict(),
                            report.queue_wait.to_dict(),
                            report.total_energy_joules)
        assert rows["fifo"] == rows["size"] == rows["timeout"]
        assert rows["fifo"][0] == 1

    def test_matrix_traffic_x_policy_x_heterogeneous_fleet(self):
        """The acceptance matrix: 3 traffic patterns x 3 policies on a
        heterogeneous fleet, each cell deterministic and fully served."""

        patterns = {
            "poisson": PoissonTraffic(rate=80.0, mix=MIX),
            "bursty": BurstyTraffic(rate=80.0, mix=MIX),
            "diurnal": DiurnalTraffic(peak_rate=120.0, mix=MIX, period=1.0),
        }
        for name, traffic in patterns.items():
            for policy in ("fifo", "size", "timeout"):
                report = serve(traffic, "1xvitality,1xgpu", policy=policy,
                               duration=1.0, seed=2)
                again = serve(traffic, "1xvitality,1xgpu", policy=policy,
                              duration=1.0, seed=2)
                assert report.to_json() == again.to_json(), (name, policy)
                assert report.completed == report.offered > 0, (name, policy)
                assert report.latency.p50 <= report.latency.p95 <= \
                       report.latency.p99 <= report.latency.max
                assert report.throughput_rps > 0
                assert report.energy_per_request_joules > 0
                assert 0 <= report.slo_violation_rate <= 1


class TestServeBehavior:
    def test_all_requests_served_and_accounted(self):
        traffic = PoissonTraffic(rate=100.0, mix=MIXED)
        report = serve(traffic, "2xvitality", policy="size", duration=1.0, seed=0)
        assert report.completed == report.offered
        assert sum(r.requests for r in report.per_replica) == report.completed
        assert report.total_energy_joules == pytest.approx(
            sum(r.energy_joules for r in report.per_replica))

    def test_batching_amortises_dispatch_overhead(self):
        """Under saturating traffic, batching sustains more throughput than
        one-at-a-time dispatch because the per-dispatch overhead amortises."""

        traffic = PoissonTraffic(rate=2000.0, mix=MIX)
        fifo = serve(traffic, "1xvitality", policy="fifo", duration=0.5, seed=0)
        size = serve(traffic, "1xvitality", policy="size", duration=0.5, seed=0)
        assert size.mean_batch_size > 4
        assert size.throughput_rps > fifo.throughput_rps

    def test_timeout_bounds_size_policy_tail(self):
        traffic = PoissonTraffic(rate=100.0, mix=MIX)
        size = serve(traffic, "2xvitality", policy="size", duration=2.0, seed=0)
        timeout = serve(traffic, "2xvitality", policy="timeout", duration=2.0, seed=0)
        assert timeout.latency.p99 < size.latency.p99

    def test_taylor_fleet_outserves_vanilla_fleet(self):
        """The acceptance criterion, directly: identical saturating traffic,
        higher sustained throughput on the taylor-attention fleet."""

        traffic = PoissonTraffic(rate=600.0, mix=MIX)
        reports = compare(traffic, {"taylor": "2xvitality", "vanilla": "2xsanger"},
                          policy="timeout", duration=1.0, seed=0)
        assert (reports["taylor"].throughput_rps
                > 1.2 * reports["vanilla"].throughput_rps)
        assert (reports["taylor"].energy_per_request_joules
                < reports["vanilla"].energy_per_request_joules)

    def test_least_loaded_uses_whole_fleet(self):
        traffic = PoissonTraffic(rate=800.0, mix=MIX)
        report = serve(traffic, "2xvitality", router="least-loaded",
                       duration=1.0, seed=0)
        shares = [r.requests / report.completed for r in report.per_replica]
        assert min(shares) > 0.25

    def test_energy_aware_prefers_efficient_replicas(self):
        """At light load every request stays on the accelerator; the GPU
        replica only exists to absorb spills."""

        traffic = PoissonTraffic(rate=50.0, mix=MIX)
        report = serve(traffic, "1xvitality,1xgpu", router="energy-aware",
                       duration=1.0, seed=0)
        gpu = [r for r in report.per_replica if r.target == "gpu"][0]
        assert gpu.requests == 0
        assert make_router("energy-aware").name == "energy-aware"

    def test_serve_uses_bounded_cache_and_reports_it(self):
        traffic = PoissonTraffic(rate=200.0, mix=MIX)
        report = serve(traffic, "1xvitality", policy="size", duration=1.0, seed=0)
        assert report.cache.max_entries is not None
        assert report.cache.misses > 0
        assert report.cache.hits > report.cache.misses   # shapes are reused

    def test_json_round_trip(self):
        traffic = PoissonTraffic(rate=50.0, mix=MIX)
        report = serve(traffic, "1xvitality", duration=0.5, seed=0)
        payload = json.loads(report.to_json())
        assert payload["completed"] == report.completed
        assert payload["config"]["fleet"] == "1xvitality"
        assert payload["per_replica"][0]["name"] == "vitality#0"
        assert payload["cache"]["misses"] == report.cache.misses

    def test_invalid_arguments(self):
        traffic = PoissonTraffic(rate=10.0, mix=MIX)
        with pytest.raises(ValueError, match="slo_seconds"):
            serve(traffic, "1xvitality", duration=1.0, slo_seconds=0.0)
        with pytest.raises(ValueError, match="dispatch_overhead"):
            serve(traffic, "1xvitality", duration=1.0,
                  dispatch_overhead_seconds=-1.0)
        with pytest.raises(ValueError, match="unknown router"):
            serve(traffic, "1xvitality", router="round-robin", duration=1.0)


class TestServeEdgeCases:
    """Corners the capacity search exercises: empty runs, hopeless SLOs,
    replica drain with work in flight."""

    def test_zero_arrival_run(self):
        traffic = ReplayTraffic(())
        report = serve(traffic, "2xvitality", duration=1.0, seed=0)
        assert report.offered == report.completed == 0
        assert report.throughput_rps == 0.0
        assert report.slo_violation_rate == 0.0
        assert report.energy_per_request_joules == 0.0
        assert report.latency.count == 0 and report.latency.p99 == 0.0
        assert report.makespan == 1.0
        assert report.replica_seconds == pytest.approx(2.0)
        json.loads(report.to_json())                 # still serialisable

    def test_zero_arrivals_in_window(self):
        """A trace with one early request leaves later windows empty."""

        traffic = ReplayTraffic.from_records([[0.1, "deit-tiny"]])
        report = serve(traffic, "1xvitality", duration=2.0, seed=0,
                       window_seconds=0.5)
        assert report.completed == 1
        assert [window.completed for window in report.windows][1:] == [0, 0, 0]
        assert sum(window.arrivals for window in report.windows) == 1

    def test_fleet_that_never_meets_the_slo(self):
        """An SLO below the bare service time: every request violates, yet
        the run still completes and reports cleanly."""

        traffic = PoissonTraffic(rate=50.0, mix=MIX)
        report = serve(traffic, "1xvitality", policy="fifo", duration=1.0,
                       seed=0, slo_seconds=1e-6)
        assert report.completed == report.offered > 0
        assert report.slo_violation_rate == 1.0
        assert report.latency.p50 > report.slo_seconds

    def test_overloaded_fleet_still_serves_everything(self):
        traffic = PoissonTraffic(rate=4000.0, mix=MIX)
        report = serve(traffic, "1xvitality", policy="fifo", duration=0.5,
                       seed=0)
        assert report.completed == report.offered
        assert report.makespan > report.duration     # the drain tail
        assert report.latency.max > report.queue_wait.p50 > 0

    def test_replica_drain_with_in_flight_batches(self):
        """Scale-down mid-run: the drained replica finishes its in-flight
        batch, flushes its queue, retires — and loses no requests."""

        from repro.plan import Autoscaler, ScheduledScalePolicy

        scaler = Autoscaler(ScheduledScalePolicy(((0.2, 1),)), "vitality",
                            min_replicas=1, max_replicas=2, interval=0.1,
                            provision_seconds=0.1)
        traffic = PoissonTraffic(rate=1500.0, mix=MIX)
        report = serve(traffic, "2xvitality", policy="size", duration=1.0,
                       seed=0, autoscaler=scaler)
        assert report.completed == report.offered
        retired = [replica for replica in report.per_replica
                   if replica.retired_at is not None]
        assert len(retired) == 1
        drain_time = next(event.time for event in report.scale_events
                          if event.action == "drain")
        # The drained replica was mid-batch or queued at 1500 req/s, so its
        # retirement strictly trails the drain decision.
        assert retired[0].retired_at > drain_time
        assert retired[0].requests > 0
        # After retirement it serves nothing: every completion on it precedes
        # (or coincides with) its retirement.
        assert retired[0].busy_seconds <= retired[0].retired_at

    def test_drained_replica_receives_no_new_requests(self):
        from repro.plan import Autoscaler, ScheduledScalePolicy

        scaler = Autoscaler(ScheduledScalePolicy(((0.5, 1),)), "vitality",
                            min_replicas=1, max_replicas=2, interval=0.25,
                            provision_seconds=0.1)
        traffic = ReplayTraffic.from_records(
            [[0.1, "deit-tiny"], [0.2, "deit-tiny"],
             [0.8, "deit-tiny"], [0.9, "deit-tiny"]])
        report = serve(traffic, "2xvitality", policy="fifo", duration=1.0,
                       seed=0, autoscaler=scaler)
        survivor = [replica for replica in report.per_replica
                    if replica.retired_at is None]
        # Both late arrivals land on the surviving replica.
        assert sum(replica.requests for replica in survivor) >= 2
        assert report.completed == 4


class TestConfigurablePercentiles:
    def test_default_json_shape_unchanged(self):
        summary = serve(PoissonTraffic(rate=50.0, mix=MIX), "1xvitality",
                        duration=0.5, seed=0).latency
        assert set(summary.to_dict()) == \
            {"count", "mean", "p50", "p95", "p99", "max"}

    def test_extra_percentiles_ride_along(self):
        report = serve(PoissonTraffic(rate=200.0, mix=MIX), "1xvitality",
                       duration=1.0, seed=0,
                       percentiles=(0.5, 0.95, 0.99, 0.999))
        payload = json.loads(report.to_json())
        assert "p99.9" in payload["latency"]
        assert report.latency.quantile(0.999) >= report.latency.p99
        assert report.latency.quantile(0.999) <= report.latency.max
        assert "p99.9_ms" in report.summary_row()

    def test_quantile_lookup_errors_on_missing(self):
        report = serve(PoissonTraffic(rate=50.0, mix=MIX), "1xvitality",
                       duration=0.5, seed=0)
        assert report.latency.quantile(0.99) == report.latency.p99
        with pytest.raises(KeyError, match="p99.9"):
            report.latency.quantile(0.999)

    def test_window_validation(self):
        with pytest.raises(ValueError, match="window_seconds"):
            serve(PoissonTraffic(rate=50.0, mix=MIX), "1xvitality",
                  duration=0.5, window_seconds=0.0)

    def test_per_model_summaries_carry_extra_percentiles(self):
        """Regression: per-model summaries used to drop the percentiles knob,
        so extra quantiles were reachable fleet-wide but not per model."""

        report = serve(PoissonTraffic(rate=200.0, mix=MIXED), "1xvitality",
                       duration=1.0, seed=0,
                       percentiles=(0.5, 0.95, 0.99, 0.999))
        assert report.per_model
        for model, summary in report.per_model:
            assert summary.quantile(0.999) >= summary.p99
            assert "p99.9" in summary.to_dict()


class TestMetrics:
    def test_percentile_nearest_rank(self):
        values = [10.0, 20.0, 30.0, 40.0, 50.0]
        assert percentile(values, 0.50) == 30.0
        assert percentile(values, 0.95) == 50.0
        assert percentile(values, 0.99) == 50.0
        assert percentile([7.0], 0.99) == 7.0
        with pytest.raises(ValueError):
            percentile([], 0.5)
        with pytest.raises(ValueError):
            percentile(values, 1.5)
