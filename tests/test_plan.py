"""Tests for repro.plan: queueing model, optimizer, autoscaling, determinism.

The acceptance assertions of the capacity-planning subsystem live here:

* the analytic utilization estimate lands within 15% of the discrete-event
  simulator on a reference scenario;
* the optimizer's chosen fleet meets the p99 SLO in simulation while the
  one-replica-smaller fleet does not;
* an autoscaled run meets the same SLO as a peak-sized static fleet while
  provisioning strictly fewer replica-seconds;
* ``repro plan`` / ``repro serve`` output is bit-identical across repeat
  runs under a fixed seed.
"""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.experiments.plan_exps import autoscale_study, capacity_planning
from repro.plan import (
    Autoscaler,
    QueueDepthScalePolicy,
    ScheduledScalePolicy,
    ServiceTimes,
    UtilizationScalePolicy,
    erlang_c,
    estimate_fleet,
    make_scale_policy,
    plan_capacity,
)
from repro.serve import (
    DiurnalTraffic,
    PoissonTraffic,
    ReplicaSpec,
    WorkloadMix,
    serve,
)

MIX = WorkloadMix.of(["deit-tiny"])


class TestErlangC:
    def test_mm1_wait_probability_is_utilization(self):
        # For c=1 the Erlang C delay probability reduces to rho.
        for rho in (0.1, 0.5, 0.9):
            assert erlang_c(1, rho) == pytest.approx(rho)

    def test_mm2_known_value(self):
        # M/M/2 at rho=0.5 has P(wait) = 1/3 (textbook value).
        assert erlang_c(2, 1.0) == pytest.approx(1.0 / 3.0)

    def test_boundaries_and_validation(self):
        assert erlang_c(4, 0.0) == 0.0
        assert erlang_c(2, 2.0) == 1.0
        assert erlang_c(2, 5.0) == 1.0
        with pytest.raises(ValueError):
            erlang_c(0, 1.0)
        with pytest.raises(ValueError):
            erlang_c(2, -1.0)


class TestQueueingEstimate:
    def test_utilization_within_15_percent_of_simulation(self):
        """The acceptance criterion: the reference scenario's analytic
        steady-state utilization tracks the simulated value within 15%."""

        rate = 400.0
        estimate = estimate_fleet("1xvitality", rate, MIX, policy="fifo")
        report = serve(PoissonTraffic(rate=rate, mix=MIX), "1xvitality",
                       policy="fifo", duration=4.0, seed=0)
        simulated = sum(r.utilization for r in report.per_replica)
        assert simulated > 0.3                      # a meaningful load level
        assert abs(estimate.utilization - simulated) / simulated < 0.15

    def test_utilization_tracks_batched_policies_too(self):
        for policy, rate, replicas in (("timeout", 1200.0, 2),
                                       ("size", 2400.0, 2)):
            estimate = estimate_fleet(f"{replicas}xvitality", rate, MIX,
                                      policy=policy)
            report = serve(PoissonTraffic(rate=rate, mix=MIX),
                           f"{replicas}xvitality", policy=policy,
                           duration=4.0, seed=0)
            simulated = sum(r.utilization for r in report.per_replica) / replicas
            assert abs(estimate.utilization - simulated) / simulated < 0.15, policy

    def test_unstable_fleet_detected(self):
        estimate = estimate_fleet("1xvitality", 5000.0, MIX, policy="fifo")
        assert not estimate.stable
        assert estimate.utilization > 1.0
        assert estimate.predicted(0.99) is None
        assert estimate.mean_latency_seconds is None
        json.dumps(estimate.to_dict())              # no infinities leak out

    def test_throughput_ceiling_matches_saturated_simulation(self):
        estimate = estimate_fleet("1xvitality", 5000.0, MIX, policy="fifo")
        report = serve(PoissonTraffic(rate=5000.0, mix=MIX), "1xvitality",
                       policy="fifo", duration=1.0, seed=0)
        # Saturated: every request completes eventually, so completed/makespan
        # converges on the service ceiling.
        assert report.makespan > report.duration
        assert report.throughput_rps == \
            pytest.approx(estimate.throughput_ceiling_rps, rel=0.10)

    def test_service_times_shared_across_estimates(self):
        table = ServiceTimes()
        for count in (1, 2, 3):
            estimate_fleet(f"{count}xvitality", 400.0, MIX, policy="fifo",
                           service_times=table)
        # One engine simulation total: every fleet size reuses the
        # (deit-tiny, vitality, batch=1) result.
        assert table.cache.stats().misses == 1

    def test_batching_raises_predicted_throughput_ceiling(self):
        fifo = estimate_fleet("1xvitality", 400.0, MIX, policy="fifo")
        batched = estimate_fleet("1xvitality", 3000.0, MIX, policy="timeout",
                                 batch_size=8)
        assert batched.effective_batch > 1
        assert batched.throughput_ceiling_rps > fifo.throughput_ceiling_rps

    def test_heterogeneous_fleet_and_mix_accepted(self):
        mixed = WorkloadMix.of(["deit-tiny", "levit-128"], weights=[1.0, 3.0])
        estimate = estimate_fleet("1xvitality,1xgpu:taylor", 100.0, mixed,
                                  policy="timeout")
        assert estimate.replicas == 2
        assert estimate.stable
        assert estimate.energy_per_request_joules > 0

    def test_validation(self):
        with pytest.raises(ValueError, match="rate"):
            estimate_fleet("1xvitality", 0.0, MIX)
        with pytest.raises(ValueError, match="unknown batching"):
            estimate_fleet("1xvitality", 10.0, MIX, policy="earliest-deadline")
        with pytest.raises(ValueError, match="dispatch_overhead"):
            ServiceTimes(dispatch_overhead_seconds=-1.0)
        with pytest.raises(KeyError, match="p75"):
            estimate_fleet("1xvitality", 10.0, MIX).predicted(0.75)


class TestOptimizer:
    #: One shared search: rate saturating one vitality replica but not two.
    SCENARIO = dict(rate=1200.0, models=["deit-tiny"], slo_seconds=0.02,
                    duration=2.0, targets=("vitality",), max_replicas=4,
                    policy="fifo", seed=0)

    def test_chosen_fleet_meets_slo_and_one_smaller_does_not(self):
        """The acceptance criterion, directly: the optimizer's choice attains
        the p99 SLO in simulation, the next-smaller fleet misses it."""

        payload = plan_capacity(**self.SCENARIO)
        chosen = payload["chosen"]
        assert chosen is not None
        assert chosen["slo_attained"]
        assert chosen["p99_ms"] <= 20.0
        boundary = payload["boundary"]
        assert boundary is not None
        assert boundary["fleet"] == f"{chosen['replicas'] - 1}x{chosen['kind']}"
        assert not boundary["slo_attained"]
        assert boundary["p99_ms"] > 20.0

    def test_analytic_prune_agrees_with_simulation_on_stability(self):
        payload = plan_capacity(**self.SCENARIO)
        by_fleet = {candidate["fleet"]: candidate
                    for candidate in payload["candidates"]}
        # 1xvitality is overloaded at 1200 req/s (capacity ~840): pruned
        # analytically, confirmed failing by the boundary simulation.
        assert not by_fleet["1xvitality"]["predicted_feasible"]
        assert by_fleet["2xvitality"]["predicted_feasible"]

    def test_chosen_is_cheapest_and_on_the_frontier(self):
        payload = plan_capacity(**self.SCENARIO)
        chosen = payload["chosen"]
        attained = [candidate for candidate in payload["validated"]
                    if candidate["slo_attained"]]
        assert chosen["area_mm2"] == min(c["area_mm2"] for c in attained)
        assert chosen["pareto"]
        frontier = payload["pareto_frontier"]
        assert frontier
        costs = [point["area_mm2"] for point in frontier]
        assert costs == sorted(costs)

    def test_payload_is_json_and_deterministic(self):
        first = plan_capacity(**self.SCENARIO)
        second = plan_capacity(**self.SCENARIO)
        assert json.dumps(first) == json.dumps(second)

    def test_no_feasible_candidate_reports_empty_choice(self):
        payload = plan_capacity(rate=5000.0, models=["deit-tiny"],
                                slo_seconds=0.005, duration=0.5,
                                targets=("vitality",), max_replicas=1,
                                policy="fifo", seed=0)
        assert payload["chosen"] is None
        assert payload["validated"] == []
        assert payload["pareto_frontier"] == []

    def test_platform_targets_fall_back_to_energy_cost(self):
        payload = plan_capacity(rate=40.0, models=["deit-tiny"],
                                slo_seconds=0.2, duration=1.0,
                                targets=("gpu:taylor",), max_replicas=2,
                                top_k=1, policy="fifo", seed=0)
        assert payload["objectives"][0] == "energy_per_request_mj"
        assert all(candidate["area_mm2"] is None
                   for candidate in payload["candidates"])

    def test_validation(self):
        with pytest.raises(ValueError, match="slo_seconds"):
            plan_capacity(100.0, ["deit-tiny"], slo_seconds=0.0, duration=1.0)
        with pytest.raises(ValueError, match="max_replicas"):
            plan_capacity(100.0, ["deit-tiny"], slo_seconds=0.1, duration=1.0,
                          max_replicas=0)
        with pytest.raises(ValueError, match="target kind"):
            plan_capacity(100.0, ["deit-tiny"], slo_seconds=0.1, duration=1.0,
                          targets=())
        with pytest.raises(KeyError):
            plan_capacity(100.0, ["deit-tiny"], slo_seconds=0.1, duration=1.0,
                          targets=("tpu",))


class TestAutoscaling:
    DIURNAL = dict(duration=4.0, seed=0)

    def _scaler(self, max_replicas=3):
        return Autoscaler("utilization", "vitality", min_replicas=1,
                          max_replicas=max_replicas, interval=0.1,
                          provision_seconds=0.2)

    def test_autoscaled_meets_slo_on_fewer_replica_seconds(self):
        """The acceptance criterion: same diurnal traffic, same SLO attained,
        strictly fewer provisioned replica-seconds than the peak-sized fleet."""

        slo = 0.03
        traffic = DiurnalTraffic(peak_rate=1200.0, mix=MIX, period=4.0)
        static = serve(traffic, "3xvitality", policy="fifo",
                       slo_seconds=slo, **self.DIURNAL)
        autoscaled = serve(traffic, "1xvitality", policy="fifo",
                           slo_seconds=slo, autoscaler=self._scaler(),
                           **self.DIURNAL)
        assert static.latency.p99 <= slo
        assert autoscaled.latency.p99 <= slo
        assert autoscaled.completed == autoscaled.offered == static.offered
        assert autoscaled.replica_seconds < static.replica_seconds
        assert static.replica_seconds == pytest.approx(3 * static.makespan)

    def test_autoscaled_run_is_deterministic(self):
        traffic = DiurnalTraffic(peak_rate=1200.0, mix=MIX, period=4.0)
        scaler = self._scaler()
        first = serve(traffic, "1xvitality", policy="fifo",
                      autoscaler=scaler, window_seconds=0.5, **self.DIURNAL)
        second = serve(traffic, "1xvitality", policy="fifo",
                       autoscaler=scaler, window_seconds=0.5, **self.DIURNAL)
        assert first.to_json() == second.to_json()
        assert first.scale_events                    # it actually scaled

    def test_scale_events_tell_a_consistent_story(self):
        traffic = DiurnalTraffic(peak_rate=1200.0, mix=MIX, period=4.0)
        report = serve(traffic, "1xvitality", policy="fifo",
                       autoscaler=self._scaler(), window_seconds=1.0,
                       **self.DIURNAL)
        actions = [event.action for event in report.scale_events]
        assert "scale-up" in actions and "online" in actions
        assert actions.count("scale-up") == actions.count("online")
        assert actions.count("drain") == actions.count("retired")
        times = [event.time for event in report.scale_events]
        assert times == sorted(times)
        # Windowed reporting makes the scale-up visible: the busiest window
        # runs more replicas than the first.
        assert report.windows is not None
        peak_window = max(report.windows, key=lambda w: w.arrivals)
        assert peak_window.mean_active_replicas > \
            report.windows[0].mean_active_replicas
        assert sum(window.completed for window in report.windows) == \
            report.completed

    def test_max_replicas_respected(self):
        traffic = PoissonTraffic(rate=5000.0, mix=MIX)
        report = serve(traffic, "1xvitality", policy="fifo",
                       autoscaler=self._scaler(max_replicas=2),
                       duration=2.0, seed=0)
        assert len(report.per_replica) <= 2

    def test_scheduled_policy_steps(self):
        scaler = Autoscaler(ScheduledScalePolicy(((0.0, 2), (1.0, 1))),
                            "vitality", min_replicas=1, max_replicas=2,
                            interval=0.25, provision_seconds=0.1)
        traffic = PoissonTraffic(rate=200.0, mix=MIX)
        report = serve(traffic, "1xvitality", policy="fifo",
                       autoscaler=scaler, duration=2.0, seed=0)
        actions = [event.action for event in report.scale_events]
        assert actions.count("online") == 1
        assert actions.count("retired") == 1
        retired = [replica for replica in report.per_replica
                   if replica.retired_at is not None]
        assert len(retired) == 1
        assert retired[0].retired_at >= 1.0

    def test_policy_construction_and_validation(self):
        assert make_scale_policy("utilization").name == "utilization"
        assert make_scale_policy("queue-depth", high=8.0).high == 8.0
        with pytest.raises(ValueError, match="unknown scaling"):
            make_scale_policy("predictive")
        with pytest.raises(ValueError):
            UtilizationScalePolicy(high=0.2, low=0.5)
        with pytest.raises(ValueError):
            QueueDepthScalePolicy(high=1.0, low=2.0)
        with pytest.raises(ValueError, match="sorted"):
            ScheduledScalePolicy(((1.0, 2), (0.5, 1)))
        with pytest.raises(ValueError, match="min_replicas"):
            Autoscaler("utilization", "vitality", min_replicas=0)
        with pytest.raises(ValueError, match="max_replicas"):
            Autoscaler("utilization", "vitality", min_replicas=3,
                       max_replicas=2)
        with pytest.raises(ValueError, match="interval"):
            Autoscaler("utilization", "vitality", interval=0.0)
        with pytest.raises(KeyError):
            Autoscaler("utilization", "tpu")
        assert Autoscaler("utilization",
                          ReplicaSpec("gpu", "taylor")).unit.label == "gpu:taylor"


class TestRegisteredExperiments:
    def test_capacity_experiment_payload(self):
        payload = capacity_planning(quick=True)
        assert payload["chosen"] is not None
        assert payload["chosen"]["slo_attained"]
        assert payload["boundary"] is not None
        assert not payload["boundary"]["slo_attained"]
        json.dumps(payload)

    def test_autoscale_experiment_payload(self):
        payload = autoscale_study(quick=True)
        assert payload["static"]["slo_attained"]
        assert payload["autoscaled"]["slo_attained"]
        assert payload["autoscaled"]["replica_seconds"] < \
            payload["static"]["replica_seconds"]
        assert payload["replica_seconds_saved"] > 0
        assert payload["autoscaled_scale_events"]
        json.dumps(payload)


class TestCLIDeterminism:
    PLAN_ARGS = ["plan", "--rate", "1100", "--duration", "1", "--slo-ms", "20",
                 "--targets", "vitality", "--max-replicas", "3",
                 "--policy", "fifo", "--json"]
    SERVE_ARGS = ["serve", "--rate", "300", "--duration", "1",
                  "--fleet", "1xvitality", "--policy", "fifo",
                  "--percentiles", "50,95,99,99.9", "--window-ms", "250",
                  "--autoscale", "utilization", "--scale-max", "2",
                  "--scale-interval-ms", "100", "--provision-ms", "100",
                  "--json"]

    def _run(self, argv, capsys) -> str:
        assert main(argv) == 0
        return capsys.readouterr().out

    def test_repro_plan_bit_identical_across_runs(self, capsys):
        first = self._run(self.PLAN_ARGS, capsys)
        second = self._run(self.PLAN_ARGS, capsys)
        assert first == second
        payload = json.loads(first)
        assert payload["chosen"]["fleet"] == "2xvitality"

    def test_repro_serve_autoscaled_bit_identical_across_runs(self, capsys):
        first = self._run(self.SERVE_ARGS, capsys)
        second = self._run(self.SERVE_ARGS, capsys)
        assert first == second
        payload = json.loads(first)
        assert "p99.9" in payload["latency"]
        assert "windows" in payload
        assert payload["config"]["autoscaler"]["policy"]["name"] == "utilization"
