"""Tests for the unified simulation engine: specs, targets, cache, sweeps."""

from __future__ import annotations

import json

import pytest

from repro.engine import (
    ResultCache,
    RunSpec,
    Sweep,
    UnknownTargetError,
    VitalityTarget,
    get_target,
    list_targets,
    scale_workload_tokens,
    simulate,
    sweep,
)
from repro.hardware import (
    SangerAccelerator,
    StepResult,
    ViTALiTyAccelerator,
    get_platform,
    pipeline_latency,
    pipeline_speedup,
    sequential_latency,
)
from repro.workloads import get_workload, list_workloads


class TestPipelineEdgeCases:
    def test_empty_step_list(self):
        assert pipeline_latency([]) == 0
        assert sequential_latency([]) == 0
        assert pipeline_speedup([]) == 1.0

    def test_single_chunk_no_overlap(self):
        steps = [StepResult("a", "systolic", 40, 0.0), StepResult("b", "systolic", 60, 0.0)]
        assert pipeline_latency(steps) == sequential_latency(steps) == 100
        assert pipeline_speedup(steps) == 1.0

    def test_single_step(self):
        steps = [StepResult("only", "adder", 7, 0.0)]
        assert pipeline_latency(steps) == 7
        assert pipeline_speedup(steps) == 1.0

    def test_tie_between_chunks(self):
        """Two chunks with equal busy time: either is dominant, the other is
        the fill overhead, so the pipelined latency equals the sequential one."""

        steps = [StepResult("a", "systolic", 50, 0.0), StepResult("b", "adder", 50, 0.0)]
        assert pipeline_latency(steps) == 100 == sequential_latency(steps)
        assert pipeline_speedup(steps) == 1.0

    def test_three_way_tie_still_bounded_by_sequential(self):
        steps = [StepResult("a", "x", 30, 0.0), StepResult("b", "y", 30, 0.0),
                 StepResult("c", "z", 30, 0.0)]
        assert pipeline_latency(steps) == 60
        assert pipeline_latency(steps) <= sequential_latency(steps)
        assert pipeline_speedup(steps) == pytest.approx(1.5)

    def test_zero_cycle_steps(self):
        steps = [StepResult("a", "systolic", 100, 0.0), StepResult("m", "memory", 0, 0.0)]
        assert pipeline_latency(steps) == 100
        assert pipeline_speedup(steps) == 1.0


class TestRunSpec:
    def test_hashable_and_equal(self):
        a = RunSpec("deit-tiny", target="sanger")
        b = RunSpec("deit-tiny", target="sanger")
        assert a == b
        assert hash(a) == hash(b)
        assert len({a, b}) == 1

    def test_distinct_options_hash_differently(self):
        specs = {
            RunSpec("deit-tiny"),
            RunSpec("deit-tiny", include_linear=False),
            RunSpec("deit-tiny", batch_size=2),
            RunSpec("deit-tiny", dataflow="g_stationary"),
        }
        assert len(specs) == 4

    def test_validation(self):
        with pytest.raises(ValueError):
            RunSpec("deit-tiny", batch_size=0)
        with pytest.raises(ValueError):
            RunSpec("deit-tiny", tokens=0)
        with pytest.raises(ValueError):
            RunSpec("deit-tiny", dataflow="sideways")
        with pytest.raises(ValueError):
            RunSpec("deit-tiny", attention="softermax")
        with pytest.raises(ValueError):
            RunSpec("deit-tiny", scale_to_peak=-1.0)
        with pytest.raises(ValueError):
            RunSpec("")

    def test_to_dict_round_trip(self):
        spec = RunSpec("levit-128", target="salo", include_linear=False)
        assert RunSpec(**spec.to_dict()) == spec

    def test_token_scaling_preserves_stage_structure(self):
        workload = get_workload("levit-128")
        scaled = scale_workload_tokens(workload, 392)
        assert len(scaled.attention_layers) == len(workload.attention_layers)
        assert max(s.tokens for s in scaled.attention_layers) == 392
        # LeViT's shrinking blocks keep kv_tokens > tokens after scaling.
        shrink = scaled.attention_layers[-1]
        assert shrink.kv_tokens > shrink.tokens

    def test_token_scaling_identity(self):
        workload = get_workload("deit-tiny")
        assert scale_workload_tokens(workload, 197) is workload


class TestTargetRegistry:
    def test_expected_targets_registered(self):
        names = list_targets()
        for required in ("vitality", "vitality-gstationary", "vitality-unpipelined",
                         "sanger", "salo", "cpu", "edge_gpu", "gpu"):
            assert required in names

    def test_unknown_target_error_lists_available(self):
        with pytest.raises(UnknownTargetError, match="vitality"):
            get_target("tpu")

    def test_peaks_positive(self):
        for name in list_targets():
            assert get_target(name).peak_macs_per_second > 0

    def test_platform_peak_matches_platform_model(self):
        assert (get_target("gpu").peak_macs_per_second
                == get_platform("gpu").peak_macs_per_second)

    def test_native_attention_mode_enforced(self):
        with pytest.raises(ValueError, match="native"):
            simulate(RunSpec("deit-tiny", target="vitality", attention="vanilla"),
                     cache=ResultCache())
        with pytest.raises(ValueError, match="native"):
            simulate(RunSpec("deit-tiny", target="sanger", attention="taylor"),
                     cache=ResultCache())

    def test_scaled_to_peak_variant(self):
        base = VitalityTarget("vitality-test")
        scaled = base.scaled_to_peak(base.peak_macs_per_second * 3)
        fast = scaled.simulate(RunSpec("deit-tiny"))
        slow = base.simulate(RunSpec("deit-tiny"))
        assert fast.end_to_end_latency < slow.end_to_end_latency

    def test_unsupported_options_rejected_not_ignored(self):
        """Baseline/platform targets must fail loudly on options they cannot
        honor rather than returning unmodified numbers."""

        for target in ("sanger", "salo", "gpu"):
            with pytest.raises(ValueError, match="does not support"):
                simulate(RunSpec("deit-tiny", target=target, scale_to_peak=1e15),
                         cache=ResultCache())
            with pytest.raises(ValueError, match="does not support"):
                simulate(RunSpec("deit-tiny", target=target, dataflow="g_stationary"),
                         cache=ResultCache())

    def test_replacing_target_evicts_its_cached_results(self):
        from repro.engine import DEFAULT_CACHE, register_target

        original = get_target("salo")
        spec = RunSpec("deit-tiny", target="salo")
        try:
            stale = simulate(spec)
            assert spec in DEFAULT_CACHE

            class Doubled:
                name = "salo"
                peak_macs_per_second = original.peak_macs_per_second

                def simulate(self, spec):
                    result = original.simulate(spec)
                    return type(result)(**{**result.__dict__,
                                           "attention_latency": result.attention_latency * 2})

            register_target(Doubled(), replace=True)
            assert spec not in DEFAULT_CACHE
            fresh = simulate(spec)
            assert fresh.attention_latency == 2 * stale.attention_latency
        finally:
            register_target(original, replace=True)


class TestEngineMatchesHardwareModels:
    """The engine is a facade: its numbers are the hardware models' numbers."""

    def test_vitality_run_matches_direct_accelerator(self):
        workload = get_workload("deit-tiny")
        direct = ViTALiTyAccelerator().run_model(workload)
        engine = simulate(RunSpec("deit-tiny", target="vitality"), cache=ResultCache())
        assert engine.attention_latency == direct.attention_latency
        assert engine.end_to_end_latency == direct.end_to_end_latency
        assert engine.end_to_end_energy == direct.end_to_end_energy

    def test_sanger_run_matches_direct_accelerator(self):
        workload = get_workload("levit-128")
        direct = SangerAccelerator().run_model(workload)
        engine = simulate(RunSpec("levit-128", target="sanger"), cache=ResultCache())
        assert engine.attention_latency == direct.attention_latency
        assert engine.end_to_end_energy == direct.end_to_end_energy

    def test_platform_run_matches_direct_platform(self):
        workload = get_workload("deit-tiny")
        platform = get_platform("edge_gpu")
        engine = simulate(RunSpec("deit-tiny", target="edge_gpu"), cache=ResultCache())
        assert engine.end_to_end_latency == platform.end_to_end_latency(workload)
        assert engine.end_to_end_energy == platform.end_to_end_energy(workload)

    def test_vitality_breakdown_matches_table5_method(self):
        workload = get_workload("deit-base")
        direct = ViTALiTyAccelerator().attention_energy_breakdown(workload)
        engine = simulate(RunSpec("deit-base", target="vitality"), cache=ResultCache())
        breakdown = engine.breakdown()
        assert breakdown["data_access"] == direct.data_access
        assert breakdown["systolic_array"] == direct.systolic_array

    def test_variant_targets_match_spec_overrides(self):
        cache = ResultCache()
        via_variant = simulate(RunSpec("deit-tiny", target="vitality-unpipelined",
                                       include_linear=False), cache=cache)
        via_override = simulate(RunSpec("deit-tiny", target="vitality", pipelined=False,
                                        include_linear=False), cache=cache)
        assert via_variant.attention_latency == via_override.attention_latency


class TestResultCache:
    def test_same_spec_simulated_once(self):
        cache = ResultCache()
        calls = []

        def runner(spec):
            calls.append(spec)
            return simulate(spec, cache=ResultCache())

        spec = RunSpec("deit-tiny", target="salo")
        first = cache.get_or_run(spec, runner)
        second = cache.get_or_run(spec, runner)
        assert len(calls) == 1
        assert first is second
        stats = cache.stats()
        assert (stats.hits, stats.misses, stats.size) == (1, 1, 1)

    def test_noop_options_share_one_cache_entry(self):
        """Options a target provably ignores must not fork the cache."""

        cache = ResultCache()
        # vitality: scaling to a peak below the native one is a no-op.
        native_peak = get_target("vitality").peak_macs_per_second
        simulate(RunSpec("deit-tiny", target="vitality"), cache=cache)
        simulate(RunSpec("deit-tiny", target="vitality", scale_to_peak=native_peak / 2),
                 cache=cache)
        # salo models attention only, so include_linear is a no-op.
        simulate(RunSpec("deit-tiny", target="salo"), cache=cache)
        simulate(RunSpec("deit-tiny", target="salo", include_linear=False), cache=cache)
        # platforms: attention=None means vanilla.
        simulate(RunSpec("deit-tiny", target="cpu"), cache=cache)
        simulate(RunSpec("deit-tiny", target="cpu", attention="vanilla"), cache=cache)
        stats = cache.stats()
        assert (stats.misses, stats.hits) == (3, 3)

    def test_simulate_uses_cache(self):
        cache = ResultCache()
        spec = RunSpec("deit-tiny", target="vitality", include_linear=False)
        simulate(spec, cache=cache)
        simulate(spec, cache=cache)
        simulate(RunSpec("deit-tiny", target="vitality"), cache=cache)
        stats = cache.stats()
        assert stats.hits == 1
        assert stats.misses == 2
        assert 0 < stats.hit_rate < 1

    def test_clear(self):
        cache = ResultCache()
        simulate(RunSpec("deit-tiny", target="salo"), cache=cache)
        assert len(cache) == 1
        cache.clear()
        assert len(cache) == 0
        assert cache.stats().misses == 0

    def test_lru_bound_evicts_oldest(self):
        cache = ResultCache(max_entries=2)
        specs = [RunSpec("deit-tiny", target="salo"),
                 RunSpec("deit-small", target="salo"),
                 RunSpec("levit-128", target="salo")]
        for spec in specs:
            simulate(spec, cache=cache)
        assert len(cache) == 2
        assert specs[0] not in cache         # least recently used went first
        assert specs[1] in cache and specs[2] in cache
        stats = cache.stats()
        assert (stats.evictions, stats.max_entries) == (1, 2)

    def test_lru_hit_refreshes_recency(self):
        cache = ResultCache(max_entries=2)
        first = RunSpec("deit-tiny", target="salo")
        second = RunSpec("deit-small", target="salo")
        simulate(first, cache=cache)
        simulate(second, cache=cache)
        simulate(first, cache=cache)         # hit: first is now most recent
        simulate(RunSpec("levit-128", target="salo"), cache=cache)
        assert first in cache
        assert second not in cache

    def test_unbounded_cache_never_evicts(self):
        cache = ResultCache()
        for model in list_workloads():
            simulate(RunSpec(model, target="salo"), cache=cache)
        stats = cache.stats()
        assert stats.evictions == 0
        assert stats.max_entries is None
        assert stats.size == len(list_workloads())

    def test_lru_validation_and_stats_dict(self):
        with pytest.raises(ValueError, match="max_entries"):
            ResultCache(max_entries=0)
        cache = ResultCache(max_entries=1)
        simulate(RunSpec("deit-tiny", target="salo"), cache=cache)
        payload = cache.stats().to_dict()
        assert payload["size"] == 1
        assert payload["max_entries"] == 1
        assert payload["hit_rate"] == 0.0
        cache.clear()
        assert cache.stats().evictions == 0

    def test_kwargs_form(self):
        cache = ResultCache()
        result = simulate("deit-tiny", target="salo", cache=cache)
        assert result.target == "salo"
        with pytest.raises(TypeError):
            simulate(RunSpec("deit-tiny"), target="salo", cache=cache)


class TestSweep:
    def test_explicit_empty_models_yields_empty_sweep(self):
        """An explicitly empty model selection must not fan out to all models."""

        outcome = Sweep().models().targets("vitality").run(cache=ResultCache())
        assert outcome.results == ()

    def test_cross_product_expansion(self):
        specs = list(Sweep().models("deit-tiny", "levit-128")
                     .targets("vitality", "sanger").expand())
        assert len(specs) == 4
        assert {(s.model, s.target) for s in specs} == {
            ("deit-tiny", "vitality"), ("deit-tiny", "sanger"),
            ("levit-128", "vitality"), ("levit-128", "sanger"),
        }

    def test_all_models_times_two_targets_hits_cache_on_second_pass(self):
        """The acceptance scenario: 7 models x 2 targets, second pass all hits."""

        cache = ResultCache()
        builder = Sweep().all_models().targets("vitality", "sanger")
        first = builder.run(cache=cache)
        expected = len(list_workloads()) * 2
        assert len(first.results) == expected
        assert (first.misses, first.hits) == (expected, 0)
        second = builder.run(cache=cache)
        assert (second.misses, second.hits) == (0, expected)
        assert [r.end_to_end_latency for r in second.results] == \
               [r.end_to_end_latency for r in first.results]

    def test_over_models_and_over_targets_accept_iterables(self):
        """The builder path fleet specs share: iterables in, duplicates out."""

        from_iterables = Sweep().over_models(["deit-tiny", "deit-tiny"]) \
                                .over_targets(("vitality", "sanger", "vitality"))
        from_varargs = Sweep().over_models("deit-tiny") \
                              .over_targets("vitality", "sanger")
        assert list(from_iterables.expand()) == list(from_varargs.expand())
        assert len(list(from_iterables.expand())) == 2

    def test_over_models_rejects_non_names(self):
        with pytest.raises(TypeError, match="over_models"):
            Sweep().over_models([1, 2])
        with pytest.raises(TypeError, match="over_targets"):
            Sweep().over_targets(["vitality", None])

    def test_rows_and_dict(self):
        outcome = Sweep().models("deit-tiny").targets("salo").run(cache=ResultCache())
        rows = outcome.to_rows()
        assert rows[0]["model"] == "deit-tiny"
        assert rows[0]["target"] == "salo"
        payload = outcome.to_dict()
        assert payload["cache"]["misses"] == 1

    def test_convenience_function(self):
        outcome = sweep(["deit-tiny"], ["vitality", "salo"], cache=ResultCache(),
                        include_linear=False)
        assert len(outcome.results) == 2
        assert all(r.linear_latency == 0.0 for r in outcome.results)

    def test_unknown_axis_rejected(self):
        with pytest.raises(TypeError):
            sweep(["deit-tiny"], ["vitality"], cache=ResultCache(), colour=["red"])
        # Sweep method names that are not axes must not be invocable either.
        with pytest.raises(TypeError):
            sweep(["deit-tiny"], ["vitality"], cache=ResultCache(), run=[])


class TestRunResult:
    def test_batch_scales_linearly(self):
        cache = ResultCache()
        one = simulate(RunSpec("deit-tiny", target="vitality"), cache=cache)
        four = simulate(RunSpec("deit-tiny", target="vitality", batch_size=4), cache=cache)
        assert four.end_to_end_latency == pytest.approx(4 * one.end_to_end_latency)
        assert four.end_to_end_energy == pytest.approx(4 * one.end_to_end_energy)

    def test_token_override_increases_latency(self):
        cache = ResultCache()
        base = simulate(RunSpec("deit-tiny", target="vitality"), cache=cache)
        longer = simulate(RunSpec("deit-tiny", target="vitality", tokens=788), cache=cache)
        assert longer.end_to_end_latency > base.end_to_end_latency

    def test_salo_has_no_linear_component(self):
        result = simulate(RunSpec("deit-tiny", target="salo"), cache=ResultCache())
        assert result.linear_latency == 0.0
        assert result.end_to_end_latency == result.attention_latency

    def test_layer_records_cover_workload(self):
        workload = get_workload("deit-tiny")
        result = simulate(RunSpec("deit-tiny", target="vitality"), cache=ResultCache())
        expected = len(workload.attention_layers) + len(workload.linear_layers)
        assert len(result.layers) == expected
        attention = [layer for layer in result.layers if layer.kind == "attention"]
        assert attention and all(layer.steps for layer in attention)

    def test_json_serialisation(self):
        result = simulate(RunSpec("deit-tiny", target="edge_gpu", attention="taylor",
                                  include_linear=False), cache=ResultCache())
        payload = json.loads(result.to_json(include_layers=True))
        assert payload["target"] == "edge_gpu"
        assert payload["end_to_end_latency"] == pytest.approx(result.end_to_end_latency)
        step_names = [step["name"] for step in payload["layers"][0]["steps"]]
        assert len(step_names) == 6   # the six Taylor-attention steps
