"""Tests for the neural-network module system and basic layers."""

from __future__ import annotations

import numpy as np
import pytest

from repro import nn
from repro.tensor import Tensor

from tests.conftest import numeric_gradient


class TestModuleSystem:
    def test_parameter_registration(self):
        layer = nn.Linear(4, 3)
        names = [name for name, _ in layer.named_parameters()]
        assert names == ["weight", "bias"]

    def test_nested_module_parameters(self):
        model = nn.Sequential(nn.Linear(4, 8), nn.GELU(), nn.Linear(8, 2))
        assert len(list(model.parameters())) == 4
        assert model.num_parameters() == 4 * 8 + 8 + 8 * 2 + 2

    def test_named_parameters_prefixes(self):
        model = nn.Sequential(nn.Linear(2, 2))
        names = dict(model.named_parameters())
        assert "layer0.weight" in names

    def test_modules_traversal_includes_self(self):
        model = nn.Sequential(nn.Linear(2, 2), nn.Linear(2, 2))
        assert len(list(model.modules())) == 3

    def test_train_eval_propagates(self):
        model = nn.Sequential(nn.Linear(2, 2), nn.Dropout(0.5))
        model.eval()
        assert all(not module.training for module in model.modules())
        model.train()
        assert all(module.training for module in model.modules())

    def test_zero_grad(self):
        layer = nn.Linear(3, 2)
        out = layer(Tensor(np.ones((1, 3)))).sum()
        out.backward()
        assert layer.weight.grad is not None
        layer.zero_grad()
        assert layer.weight.grad is None

    def test_state_dict_roundtrip(self):
        source = nn.Sequential(nn.Linear(4, 4), nn.LayerNorm(4))
        target = nn.Sequential(nn.Linear(4, 4), nn.LayerNorm(4))
        target.load_state_dict(source.state_dict())
        x = Tensor(np.random.default_rng(0).normal(size=(2, 4)))
        np.testing.assert_allclose(source(x).data, target(x).data)

    def test_state_dict_shape_mismatch_raises(self):
        layer = nn.Linear(4, 4)
        state = layer.state_dict()
        state["weight"] = np.zeros((2, 2))
        with pytest.raises(ValueError):
            layer.load_state_dict(state)

    def test_state_dict_unknown_key_raises(self):
        layer = nn.Linear(4, 4)
        with pytest.raises(KeyError):
            layer.load_state_dict({"nope": np.zeros(1)})

    def test_buffers_in_state_dict(self):
        bn = nn.BatchNorm2d(3)
        state = bn.state_dict()
        assert "running_mean" in state
        assert "running_var" in state

    def test_apply_visits_all_modules(self):
        model = nn.Sequential(nn.Linear(2, 2), nn.Linear(2, 2))
        visited = []
        model.apply(lambda m: visited.append(type(m).__name__))
        assert visited.count("Linear") == 2

    def test_module_list_indexing_and_len(self):
        ml = nn.ModuleList([nn.Linear(2, 2) for _ in range(3)])
        assert len(ml) == 3
        assert isinstance(ml[1], nn.Linear)
        with pytest.raises(RuntimeError):
            ml(Tensor(np.ones((1, 2))))

    def test_sequential_append(self):
        model = nn.Sequential(nn.Linear(2, 3))
        model.append(nn.Linear(3, 4))
        assert model(Tensor(np.ones((1, 2)))).shape == (1, 4)


class TestLinear:
    def test_forward_matches_manual(self, rng):
        layer = nn.Linear(5, 3)
        x = rng.normal(size=(4, 5))
        expected = x @ layer.weight.data + layer.bias.data
        np.testing.assert_allclose(layer(Tensor(x)).data, expected)

    def test_no_bias_option(self):
        layer = nn.Linear(5, 3, bias=False)
        assert layer.bias is None
        assert len(list(layer.parameters())) == 1

    def test_weight_gradient(self, rng):
        layer = nn.Linear(3, 2)
        x = rng.normal(size=(4, 3))
        layer(Tensor(x)).sum().backward()
        np.testing.assert_allclose(layer.weight.grad, x.sum(axis=0)[:, None] * np.ones((3, 2)))

    def test_identity(self, rng):
        x = rng.normal(size=(3, 3))
        np.testing.assert_allclose(nn.Identity()(Tensor(x)).data, x)

    def test_tokens_batch_forward(self, rng):
        """Linear applies to the last dim of (batch, tokens, features) input."""

        layer = nn.Linear(6, 2)
        out = layer(Tensor(rng.normal(size=(2, 5, 6))))
        assert out.shape == (2, 5, 2)


class TestNorms:
    def test_layer_norm_normalises(self, rng):
        layer = nn.LayerNorm(8)
        out = layer(Tensor(rng.normal(size=(4, 8)) * 7 + 2)).data
        np.testing.assert_allclose(out.mean(axis=-1), 0.0, atol=1e-8)

    def test_layer_norm_gradient_through_weight(self, rng):
        layer = nn.LayerNorm(4)
        x = Tensor(rng.normal(size=(2, 4)))
        (layer(x) ** 2).sum().backward()
        assert layer.weight.grad is not None
        assert layer.bias.grad is not None

    def test_batchnorm_train_normalises_batch(self, rng):
        bn = nn.BatchNorm2d(3)
        x = rng.normal(size=(8, 3, 4, 4)) * 3 + 5
        out = bn(Tensor(x)).data
        np.testing.assert_allclose(out.mean(axis=(0, 2, 3)), 0.0, atol=1e-7)
        np.testing.assert_allclose(out.std(axis=(0, 2, 3)), 1.0, atol=1e-2)

    def test_batchnorm_updates_running_stats(self, rng):
        bn = nn.BatchNorm2d(2, momentum=0.5)
        x = rng.normal(size=(4, 2, 3, 3)) + 10.0
        bn(Tensor(x))
        assert np.all(bn.running_mean > 1.0)

    def test_batchnorm_eval_uses_running_stats(self, rng):
        bn = nn.BatchNorm2d(2)
        x = rng.normal(size=(4, 2, 3, 3)) + 10.0
        for _ in range(60):
            bn(Tensor(x))
        bn.eval()
        out = bn(Tensor(x)).data
        # After many identical batches the running stats approach the batch
        # stats, so eval-mode output is close to normalised.
        assert abs(out.mean()) < 0.5

    def test_batchnorm_rejects_wrong_rank(self):
        with pytest.raises(ValueError):
            nn.BatchNorm2d(3)(Tensor(np.ones((2, 3))))


class TestDropoutActivations:
    def test_dropout_eval_identity(self, rng):
        layer = nn.Dropout(0.9)
        layer.eval()
        x = rng.normal(size=(5, 5))
        np.testing.assert_allclose(layer(Tensor(x)).data, x)

    def test_dropout_train_zeroes_entries(self):
        layer = nn.Dropout(0.5, seed=0)
        out = layer(Tensor(np.ones((50, 50)))).data
        assert (out == 0.0).mean() == pytest.approx(0.5, abs=0.05)

    def test_dropout_invalid_rate(self):
        with pytest.raises(ValueError):
            nn.Dropout(1.5)

    def test_activation_modules_match_functional(self, rng):
        x = rng.normal(size=(4, 4))
        from repro.tensor import functional as F

        np.testing.assert_allclose(nn.GELU()(Tensor(x)).data, F.gelu(Tensor(x)).data)
        np.testing.assert_allclose(nn.ReLU()(Tensor(x)).data, np.maximum(x, 0))
        np.testing.assert_allclose(nn.SiLU()(Tensor(x)).data, F.silu(Tensor(x)).data)
        np.testing.assert_allclose(nn.Hardswish()(Tensor(x)).data, F.hardswish(Tensor(x)).data)
        np.testing.assert_allclose(nn.Sigmoid()(Tensor(x)).data, 1 / (1 + np.exp(-x)))
        np.testing.assert_allclose(nn.Tanh()(Tensor(x)).data, np.tanh(x))


class TestEmbeddings:
    def test_patch_embedding_shape(self, rng):
        embed = nn.PatchEmbedding(image_size=16, patch_size=4, in_channels=3, embed_dim=8)
        out = embed(Tensor(rng.normal(size=(2, 3, 16, 16))))
        assert out.shape == (2, 16, 8)

    def test_patch_embedding_rejects_bad_sizes(self):
        with pytest.raises(ValueError):
            nn.PatchEmbedding(image_size=15, patch_size=4, in_channels=3, embed_dim=8)
        embed = nn.PatchEmbedding(16, 4, 3, 8)
        with pytest.raises(ValueError):
            embed(Tensor(np.ones((1, 3, 8, 8))))

    def test_patch_embedding_patch_content(self, rng):
        """Each output token depends only on its own patch."""

        embed = nn.PatchEmbedding(image_size=8, patch_size=4, in_channels=1, embed_dim=4)
        base = rng.normal(size=(1, 1, 8, 8))
        modified = base.copy()
        modified[0, 0, :4, :4] += 10.0   # only the first patch changes
        delta = embed(Tensor(modified)).data - embed(Tensor(base)).data
        assert np.abs(delta[0, 0]).sum() > 0
        np.testing.assert_allclose(delta[0, 1:], 0.0, atol=1e-12)

    def test_positional_embedding_adds(self, rng):
        pos = nn.PositionalEmbedding(num_tokens=5, embed_dim=4)
        x = rng.normal(size=(2, 5, 4))
        np.testing.assert_allclose(pos(Tensor(x)).data, x + pos.embedding.data)

    def test_positional_embedding_token_mismatch(self):
        pos = nn.PositionalEmbedding(num_tokens=5, embed_dim=4)
        with pytest.raises(ValueError):
            pos(Tensor(np.ones((1, 6, 4))))

    def test_class_token_prepends(self, rng):
        token = nn.ClassToken(embed_dim=4)
        out = token(Tensor(rng.normal(size=(3, 7, 4))))
        assert out.shape == (3, 8, 4)
        np.testing.assert_allclose(out.data[0, 0], token.class_token.data[0, 0])

    def test_distillation_token_adds_two(self, rng):
        token = nn.ClassToken(embed_dim=4, with_distillation_token=True)
        out = token(Tensor(rng.normal(size=(2, 3, 4))))
        assert out.shape == (2, 5, 4)
        assert token.num_extra_tokens == 2


class TestPooling:
    def test_global_avg_pool(self, rng):
        x = rng.normal(size=(2, 3, 4, 4))
        out = nn.GlobalAvgPool2d()(Tensor(x))
        np.testing.assert_allclose(out.data, x.mean(axis=(2, 3)))

    def test_avg_pool_window(self):
        x = np.arange(16.0).reshape(1, 1, 4, 4)
        out = nn.AvgPool2d(2)(Tensor(x)).data
        np.testing.assert_allclose(out[0, 0], [[2.5, 4.5], [10.5, 12.5]])

    def test_max_pool_window(self):
        x = np.arange(16.0).reshape(1, 1, 4, 4)
        out = nn.MaxPool2d(2)(Tensor(x)).data
        np.testing.assert_allclose(out[0, 0], [[5.0, 7.0], [13.0, 15.0]])

    def test_pool_rejects_indivisible(self):
        with pytest.raises(ValueError):
            nn.AvgPool2d(3)(Tensor(np.ones((1, 1, 4, 4))))
