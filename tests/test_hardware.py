"""Tests for the hardware models: systolic array, processors, pipeline, accelerators."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.hardware import (
    AccumulatorArray,
    AdderArray,
    Dataflow,
    DividerArray,
    MemoryEnergyConfig,
    SALOAccelerator,
    SangerAccelerator,
    SangerAcceleratorConfig,
    StepResult,
    SystolicArray,
    ViTALiTyAccelerator,
    ViTALiTyAcceleratorConfig,
    get_platform,
    linear_attention_processor_requirements,
    matmul_cycles,
    pipeline_latency,
    sequential_latency,
)
from repro.hardware.energy import MemoryTrafficModel
from repro.workloads import DEIT_BASE, DEIT_TINY, LEVIT_128, AttentionLayerSpec, LinearLayerSpec


class TestSystolicArray:
    def test_cycles_scale_with_work(self):
        small = matmul_cycles(64, 64, 64, 64, 64)
        large = matmul_cycles(256, 64, 64, 64, 64)
        assert large > small

    def test_tiling_over_rows_and_columns(self):
        """Quadrupling the stationary tile count quadruples the streaming cycles."""

        fill = 64 + 64
        one_tile = matmul_cycles(10, 64, 64, 64, 64) - fill
        four_tiles = matmul_cycles(10, 128, 128, 64, 64) - fill
        assert four_tiles == 4 * one_tile

    def test_batch_amortises_fill(self):
        single = matmul_cycles(64, 64, 64, 64, 64, batch=1)
        batched = matmul_cycles(64, 64, 64, 64, 64, batch=4)
        assert batched < 4 * single

    def test_utilization_bounds(self):
        with pytest.raises(ValueError):
            matmul_cycles(1, 1, 1, 64, 64, utilization=0.0)
        with pytest.raises(ValueError):
            matmul_cycles(0, 1, 1, 64, 64)

    def test_energy_proportional_to_cycles(self):
        config = ViTALiTyAcceleratorConfig()
        array = SystolicArray(config.sa_general, config.frequency_hz, utilization=1.0)
        short = array.matmul(32, 64, 64)
        long = array.matmul(320, 64, 64)
        assert long.energy_joules > short.energy_joules
        assert long.macs == 10 * short.macs

    def test_pe_energy_scale(self):
        config = ViTALiTyAcceleratorConfig()
        array = SystolicArray(config.sa_general, config.frequency_hz)
        plain = array.matmul(64, 64, 64)
        scaled = array.matmul(64, 64, 64, pe_energy_scale=1.2)
        assert scaled.energy_joules == pytest.approx(plain.energy_joules * 1.2)

    @settings(max_examples=30, deadline=None)
    @given(m=st.integers(1, 300), k=st.integers(1, 300), n=st.integers(1, 300))
    def test_cycles_at_least_ideal_property(self, m, k, n):
        """The cycle count can never beat the ideal MACs / PEs bound."""

        cycles = matmul_cycles(m, k, n, 64, 64, utilization=1.0)
        assert cycles >= (m * k * n) / (64 * 64)


class TestProcessorsAndPipeline:
    def _config(self):
        return ViTALiTyAcceleratorConfig()

    def test_accumulator_cycles(self):
        config = self._config()
        acc = AccumulatorArray(config.accumulator_array, config.frequency_hz)
        result = acc.column_sum(tokens=197, features=64)
        assert result.cycles == int(np.ceil(197 * 64 / 64))

    def test_adder_and_divider(self):
        config = self._config()
        adder = AdderArray(config.adder_array, config.frequency_hz)
        divider = DividerArray(config.divider_array, config.frequency_hz)
        assert adder.elementwise(128).cycles == 2
        assert divider.single_divisor(64).cycles == 1
        assert divider.multiple_divisors(65).cycles == 2

    def test_zero_operations(self):
        config = self._config()
        adder = AdderArray(config.adder_array, config.frequency_hz)
        assert adder.elementwise(0).cycles == 0
        with pytest.raises(ValueError):
            adder.elementwise(-1)

    def test_pipeline_latency_bounded_by_sequential(self):
        steps = [StepResult("a", "systolic", 100, 0.0), StepResult("b", "adder", 30, 0.0),
                 StepResult("c", "divider", 20, 0.0)]
        assert pipeline_latency(steps) <= sequential_latency(steps)
        assert pipeline_latency(steps) >= 100

    def test_pipeline_single_chunk_no_gain(self):
        steps = [StepResult("a", "systolic", 50, 0.0), StepResult("b", "systolic", 70, 0.0)]
        assert pipeline_latency(steps) == sequential_latency(steps)

    def test_pipeline_empty(self):
        assert pipeline_latency([]) == 0

    def test_memory_traffic_model(self):
        memory = MemoryTrafficModel(MemoryEnergyConfig())
        memory.access_sram(1000)
        memory.access_dram(10)
        assert memory.energy_joules > 0
        with pytest.raises(ValueError):
            memory.access_sram(-1)


class TestViTALiTyAccelerator:
    def test_attention_layer_has_all_steps(self):
        accelerator = ViTALiTyAccelerator()
        layer = accelerator.run_attention_layer(DEIT_TINY.attention_layers[0])
        step_names = {step.name.split(":")[0] for step in layer.steps}
        assert {"1", "2", "3", "4", "5", "6"} <= step_names
        assert layer.cycles > 0
        assert layer.energy_joules > 0

    def test_pipelining_reduces_latency(self):
        spec = DEIT_TINY.attention_layers[0]
        pipelined = ViTALiTyAccelerator(pipelined=True).run_attention_layer(spec)
        sequential = ViTALiTyAccelerator(pipelined=False).run_attention_layer(spec)
        assert pipelined.cycles < sequential.cycles
        assert pipelined.energy_joules == pytest.approx(sequential.energy_joules)

    def test_down_forward_saves_energy_over_g_stationary(self):
        """Table V: down-forward accumulation has lower overall energy."""

        down_forward = ViTALiTyAccelerator(dataflow=Dataflow.DOWN_FORWARD)
        g_stationary = ViTALiTyAccelerator(dataflow=Dataflow.G_STATIONARY)
        for workload in (DEIT_BASE, LEVIT_128):
            ours = down_forward.attention_energy_breakdown(workload)
            theirs = g_stationary.attention_energy_breakdown(workload)
            assert ours.overall < theirs.overall
            # ... while G-stationary has lower data-access energy (it keeps G in the PEs).
            assert theirs.data_access < ours.data_access
            # And the pre/post-processor energy is identical across dataflows.
            assert ours.other_processors == pytest.approx(theirs.other_processors)

    def test_model_result_aggregates_layers(self):
        accelerator = ViTALiTyAccelerator()
        result = accelerator.run_model(DEIT_TINY)
        assert result.attention_cycles > 0
        assert result.linear_cycles > result.attention_cycles   # projections dominate DeiT
        assert result.end_to_end_latency == pytest.approx(
            result.attention_latency + result.linear_latency)

    def test_attention_only_mode(self):
        result = ViTALiTyAccelerator().run_model(DEIT_TINY, include_linear=False)
        assert result.linear_cycles == 0

    def test_scaled_to_peak_increases_throughput(self):
        accelerator = ViTALiTyAccelerator()
        scaled = accelerator.scaled_to_peak(accelerator.peak_macs_per_second * 3)
        assert scaled.peak_macs_per_second > accelerator.peak_macs_per_second
        base_linear = accelerator.run_model(DEIT_TINY).linear_cycles
        scaled_linear = scaled.run_model(DEIT_TINY).linear_cycles
        assert scaled_linear < base_linear

    def test_scaled_to_peak_validation(self):
        with pytest.raises(ValueError):
            ViTALiTyAccelerator().scaled_to_peak(0)

    def test_levit_asymmetric_layer_runs(self):
        layer = ViTALiTyAccelerator().run_attention_layer(LEVIT_128.attention_layers[-1])
        assert layer.cycles > 0

    def test_table3_budget_parity(self):
        """ViTALiTy and Sanger configurations have comparable area and power (Table III)."""

        vitality = ViTALiTyAcceleratorConfig()
        sanger = SangerAcceleratorConfig()
        assert vitality.total_area_mm2 == pytest.approx(5.223, rel=0.01)
        assert sanger.total_area_mm2 == pytest.approx(5.194, rel=0.01)
        assert vitality.total_power_mw == pytest.approx(1460, rel=0.01)
        assert sanger.total_power_mw == pytest.approx(1450, rel=0.01)
        assert abs(vitality.total_area_mm2 - sanger.total_area_mm2) / vitality.total_area_mm2 < 0.05


class TestSangerSALOPlatforms:
    def test_sanger_layer_and_model(self):
        sanger = SangerAccelerator()
        layer = sanger.run_attention_layer(DEIT_TINY.attention_layers[0])
        assert layer.cycles > 0
        result = sanger.run_model(DEIT_TINY)
        assert result.end_to_end_latency > 0

    def test_sanger_density_scales_latency(self):
        sparse = SangerAccelerator(density=0.1).run_model(DEIT_TINY, include_linear=False)
        dense = SangerAccelerator(density=0.9).run_model(DEIT_TINY, include_linear=False)
        assert sparse.attention_latency < dense.attention_latency

    def test_sanger_validation(self):
        with pytest.raises(ValueError):
            SangerAccelerator(density=0.0)
        with pytest.raises(ValueError):
            SangerAccelerator(load_balance_efficiency=1.5)

    def test_vitality_beats_sanger_on_attention(self):
        """Headline result: ViTALiTy is several times faster than Sanger on attention."""

        vitality = ViTALiTyAccelerator().run_model(DEIT_TINY, include_linear=False)
        sanger = SangerAccelerator().run_model(DEIT_TINY, include_linear=False)
        speedup = sanger.attention_latency / vitality.attention_latency
        assert 2.0 < speedup < 20.0

    def test_salo_slower_than_vitality(self):
        vitality = ViTALiTyAccelerator().run_model(DEIT_TINY, include_linear=False)
        salo = SALOAccelerator().run_model(DEIT_TINY)
        assert salo.attention_latency > vitality.attention_latency

    def test_platform_lookup(self):
        assert get_platform("gpu").name == "gpu"
        with pytest.raises(KeyError):
            get_platform("tpu")

    def test_platform_vanilla_profile_structure(self):
        profile = get_platform("edge_gpu").vanilla_attention_profile(DEIT_TINY)
        assert set(profile) == {"1:QK^T", "2:softmax", "3:SV"}
        assert all(latency > 0 for latency in profile.values())

    def test_platform_taylor_profile_structure(self):
        profile = get_platform("edge_gpu").taylor_attention_profile(DEIT_TINY)
        assert len(profile) == 6

    def test_edge_gpu_totals_match_table2(self):
        """Calibration check: TX2 totals land near the paper's Table II values."""

        tx2 = get_platform("edge_gpu")
        vanilla_ms = tx2.attention_latency(DEIT_TINY) * 1e3
        taylor_ms = tx2.attention_latency(DEIT_TINY, taylor=True) * 1e3
        assert vanilla_ms == pytest.approx(11.65, rel=0.25)
        assert taylor_ms == pytest.approx(14.03, rel=0.25)
        # The key qualitative point: the GPU does NOT benefit from Taylor attention.
        assert taylor_ms > vanilla_ms * 0.9

    def test_fig1_breakdown_softmax_step_dominates(self):
        """Fig. 1: the softmax attention map step dominates MHA runtime on every platform."""

        for platform_name in ("gpu", "edge_gpu", "pixel3"):
            breakdown = get_platform(platform_name).mha_runtime_breakdown(DEIT_TINY)
            assert sum(breakdown.values()) == pytest.approx(1.0)
            assert breakdown["step2_softmax_map"] == max(breakdown.values())
            assert 0.4 < breakdown["step2_softmax_map"] < 0.75

    def test_energy_positive_and_consistent(self):
        platform = get_platform("cpu")
        assert platform.attention_energy(DEIT_TINY) > 0
        assert platform.end_to_end_energy(DEIT_TINY) > platform.attention_energy(DEIT_TINY)

    def test_table6_requirements(self):
        table = linear_attention_processor_requirements()
        assert set(table) == {"linformer", "efficient", "performer", "linear_transformer", "vitality"}
        vitality = linear_attention_processor_requirements("vitality")
        assert not vitality.needs_exponentiation       # Taylor attention needs no exp unit
        assert "Acc." in vitality.processor_list()
        for name in ("linformer", "efficient", "performer", "linear_transformer"):
            assert linear_attention_processor_requirements(name).needs_exponentiation
        with pytest.raises(KeyError):
            linear_attention_processor_requirements("flash")
