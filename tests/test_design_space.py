"""Tests for the parametric microarchitecture core and design-space stack:
knob parsing round-trips, configured targets, seed-equivalence goldens,
parallel sweeps, the disk cache and the DSE Pareto frontier."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.engine import (
    DiskResultCache,
    ResultCache,
    RunSpec,
    Sweep,
    UnknownTargetError,
    canonicalise_spec,
    get_target,
    simulate,
    split_configured_names,
)
from repro.engine.results import RunResult
from repro.experiments import run_experiment
from repro.experiments.dse_exps import explore_design_space, pareto_frontier
from repro.hardware import (
    HardwareConfig,
    KnobError,
    SALO_SCHEMA,
    SANGER_SCHEMA,
    VITALITY_SCHEMA,
    ViTALiTyAcceleratorConfig,
    build_vitality_config,
)
from repro.serve import Fleet

GOLDEN_PATH = Path(__file__).parent / "data" / "seed_hardware_golden.json"


class TestKnobParsing:
    @pytest.mark.parametrize("text", [
        "pe=32x32,freq=1ghz",
        "freq=433mhz",
        "pe=16x64,sram_kb=400,dram_pj=45.5",
        "util=0.9,freq=750mhz",
    ])
    def test_parse_render_parse_round_trip(self, text):
        config = VITALITY_SCHEMA.parse(text)
        rendered = VITALITY_SCHEMA.render(config)
        assert VITALITY_SCHEMA.parse(rendered) == config

    def test_knob_order_is_normalised(self):
        assert (VITALITY_SCHEMA.parse("freq=1ghz,pe=32x32")
                == VITALITY_SCHEMA.parse("pe=32x32,freq=1ghz"))

    def test_reference_values_are_dropped(self):
        config = VITALITY_SCHEMA.parse("pe=64x64,freq=500mhz,util=0.85,sram_kb=200")
        assert config.is_reference
        assert VITALITY_SCHEMA.render(config) == ""

    def test_frequency_spellings(self):
        assert VITALITY_SCHEMA.parse("freq=1ghz") == VITALITY_SCHEMA.parse("freq=1000mhz")
        assert VITALITY_SCHEMA.parse("freq=250mhz").get("freq") == 250e6
        assert VITALITY_SCHEMA.parse("freq=2.5e8") == VITALITY_SCHEMA.parse("freq=250mhz")

    def test_config_is_hashable_and_order_insensitive(self):
        a = SANGER_SCHEMA.parse("density=0.2,pe=32x8")
        b = SANGER_SCHEMA.parse("pe=32x8,density=0.2")
        assert hash(a) == hash(b)
        assert a.get("density") == 0.2
        assert "pe" in a and "freq" not in a

    @pytest.mark.parametrize("text,fragment", [
        ("pew=2", "unknown knob 'pew'"),
        ("pe=32", "ROWSxCOLS"),
        ("pe=0x8", ">= 1"),
        ("freq=fast", "frequency"),
        ("freq=-5mhz", "positive"),
        ("util=1.5", "fraction"),
        ("sram_kb=nope", "positive integer"),
        ("pe", "knob=value"),
        ("pe=32x32,pe=64x64", "duplicate knob"),
    ])
    def test_invalid_knobs_raise_actionable_errors(self, text, fragment):
        with pytest.raises(KnobError) as excinfo:
            VITALITY_SCHEMA.parse(text)
        assert fragment in str(excinfo.value)

    def test_unknown_knob_error_lists_valid_knobs(self):
        with pytest.raises(KnobError) as excinfo:
            SALO_SCHEMA.parse("density=0.5")
        assert "window" in str(excinfo.value) and "global" in str(excinfo.value)

    def test_family_mismatch_rejected(self):
        with pytest.raises(KnobError, match="family"):
            build_vitality_config(HardwareConfig("sanger", (("pe", (8, 8)),)))


class TestConfiguredTargets:
    def test_spellings_share_one_instance(self):
        a = get_target("vitality[pe=32x32,freq=1ghz]")
        b = get_target("vitality[freq=1ghz,pe=32x32]")
        assert a is b
        assert a.name == "vitality[freq=1ghz,pe=32x32]"

    def test_reference_knobs_resolve_to_base_target(self):
        assert get_target("vitality[pe=64x64,freq=500mhz]") is get_target("vitality")
        assert get_target("sanger[]") is get_target("sanger")

    def test_every_family_is_configurable(self):
        assert get_target("sanger[density=0.2]").name == "sanger[density=0.2]"
        assert get_target("salo[window=128,global=8]").peak_macs_per_second > 0
        slow = get_target("gpu[compute=0.5]")
        assert slow.peak_macs_per_second == get_target("gpu").peak_macs_per_second / 2

    def test_unknown_base_and_bad_knob_errors(self):
        with pytest.raises(UnknownTargetError, match="tpu"):
            get_target("tpu[pe=1x1]")
        with pytest.raises(KnobError, match="unknown knob"):
            get_target("salo[density=0.5]")

    def test_variant_targets_accept_knobs(self):
        target = get_target("vitality-unpipelined[pe=32x32]")
        result = target.simulate(RunSpec("deit-tiny", include_linear=False))
        base = get_target("vitality[pe=32x32]").simulate(
            RunSpec("deit-tiny", include_linear=False))
        assert result.attention_latency > base.attention_latency

    def test_canonical_spec_rewrites_target_name(self):
        spec = canonicalise_spec(RunSpec("deit-tiny", target="vitality[freq=1ghz,pe=32x32]"))
        assert spec.target == "vitality[freq=1ghz,pe=32x32]"
        reference = canonicalise_spec(RunSpec("deit-tiny", target="vitality[pe=64x64]"))
        assert reference.target == "vitality"

    def test_spellings_share_cache_entries(self):
        cache = ResultCache()
        simulate(RunSpec("deit-tiny", target="vitality[pe=32x32,freq=1ghz]"), cache=cache)
        simulate(RunSpec("deit-tiny", target="vitality[freq=1ghz,pe=32x32]"), cache=cache)
        stats = cache.stats()
        assert (stats.misses, stats.hits) == (1, 1)

    def test_result_carries_config(self):
        result = simulate(RunSpec("deit-tiny", target="vitality[pe=32x32]"),
                          cache=ResultCache())
        assert result.config == "pe=32x32"
        assert json.loads(result.to_json())["config"] == "pe=32x32"
        reference = simulate(RunSpec("deit-tiny", target="vitality"), cache=ResultCache())
        assert reference.config == ""

    def test_design_points_change_the_physics(self):
        cache = ResultCache()
        base = simulate(RunSpec("deit-tiny", target="vitality"), cache=cache)
        narrow = simulate(RunSpec("deit-tiny", target="vitality[pe=32x32]"), cache=cache)
        fast = simulate(RunSpec("deit-tiny", target="vitality[freq=1ghz]"), cache=cache)
        assert narrow.end_to_end_latency > base.end_to_end_latency
        assert fast.end_to_end_latency < base.end_to_end_latency
        assert get_target("vitality[pe=32x32]").area_mm2 < get_target("vitality").area_mm2

    def test_memory_knobs_shape_energy_only(self):
        cache = ResultCache()
        base = simulate(RunSpec("deit-tiny", target="vitality"), cache=cache)
        cheap = simulate(RunSpec("deit-tiny", target="vitality[dram_pj=10]"), cache=cache)
        assert cheap.end_to_end_latency == base.end_to_end_latency
        assert cheap.end_to_end_energy < base.end_to_end_energy


class TestSeedEquivalence:
    """Default-config targets must reproduce the seed outputs bit-identically.

    The golden file was generated by the pre-refactor (seed) hardware models;
    every value is compared exactly, not approximately — the parametric core
    moved the arithmetic, not the numbers.
    """

    @pytest.fixture(scope="class")
    def golden(self):
        return json.loads(GOLDEN_PATH.read_text())

    @pytest.mark.parametrize("experiment", ["fig11", "fig12", "tab5", "salo", "table2"])
    def test_experiment_matches_seed_bit_identically(self, golden, experiment):
        if experiment == "table2":
            current = run_experiment("tab2")
        else:
            current = run_experiment(experiment)
        assert json.loads(json.dumps(current)) == golden[experiment]

    def test_explicit_reference_design_point_is_bit_identical(self):
        cache = ResultCache()
        reference = simulate(RunSpec("deit-base", target="vitality"), cache=cache)
        explicit = simulate(
            RunSpec("deit-base",
                    target="vitality[pe=64x64,freq=500mhz,sram_kb=200,util=0.85]"),
            cache=ResultCache())
        assert explicit.end_to_end_latency == reference.end_to_end_latency
        assert explicit.end_to_end_energy == reference.end_to_end_energy
        assert explicit.breakdown() == reference.breakdown()

    def test_builder_reference_configs_are_the_reference_objects(self):
        assert build_vitality_config(None) == ViTALiTyAcceleratorConfig()
        assert build_vitality_config(VITALITY_SCHEMA.parse("")) is build_vitality_config(None)


class TestParallelSweep:
    def _builder(self):
        return (Sweep().models("deit-tiny", "levit-128")
                .targets("vitality", "salo")
                .over_configs("", "pe=32x32"))

    def test_jobs_match_serial_exactly(self):
        serial = self._builder().run(cache=ResultCache())
        parallel = self._builder().run(cache=ResultCache(), jobs=2)
        assert serial.specs == parallel.specs
        assert serial.results == parallel.results
        assert (serial.hits, serial.misses) == (parallel.hits, parallel.misses)

    def test_parallel_warm_cache_all_hits(self):
        cache = ResultCache()
        self._builder().run(cache=cache)
        second = self._builder().run(cache=cache, jobs=2)
        assert second.misses == 0
        assert second.hits == len(second.results)

    def test_over_configs_expansion(self):
        specs = list(Sweep().models("deit-tiny").targets("vitality", "sanger")
                     .over_configs("", "freq=1ghz").expand())
        assert [spec.target for spec in specs] == [
            "vitality", "vitality[freq=1ghz]", "sanger", "sanger[freq=1ghz]"]

    def test_over_configs_rejects_preconfigured_targets(self):
        with pytest.raises(ValueError, match="already-configured"):
            list(Sweep().models("deit-tiny").targets("vitality[pe=32x32]")
                 .over_configs("freq=1ghz").expand())

    def test_locally_registered_targets_simulate_in_process(self):
        """Specs a fresh worker could not resolve must not be shipped out:
        a replaced built-in has to answer with the replacement's numbers
        even under jobs > 1."""

        from repro.engine import register_target

        original = get_target("salo")
        try:
            class Doubled:
                name = "salo"
                knob_schema = original.knob_schema
                peak_macs_per_second = original.peak_macs_per_second

                def canonical_spec(self, spec):
                    return original.canonical_spec(spec)

                def simulate(self, spec):
                    result = original.simulate(spec)
                    return type(result)(**{**result.__dict__,
                                           "attention_latency": result.attention_latency * 2})

            register_target(Doubled(), replace=True)
            outcome = (Sweep().models("deit-tiny").targets("salo")
                       .run(cache=ResultCache(), jobs=2))
            stock = original.simulate(canonicalise_spec(RunSpec("deit-tiny", target="salo")))
            assert outcome.results[0].attention_latency == 2 * stock.attention_latency
        finally:
            register_target(original, replace=True)

    def test_eviction_fallback_stays_off_the_default_cache(self):
        """A bounded private cache that evicts a repeat's first occurrence
        mid-replay must re-simulate inline, not leak runs into the
        process-global default cache."""

        from repro.engine import cache_stats

        bounded = ResultCache(max_entries=1)
        # Two spellings of one design point plus an interloper: the replay
        # sees [X, Y, X], and Y's insertion evicts X before its repeat.
        builder = (Sweep().models("deit-tiny")
                   .targets("vitality[pe=32x32]", "salo",
                            "vitality[freq=500mhz,pe=32x32]")
                   .attention_only())
        simulate(RunSpec("deit-tiny", target="vitality[pe=32x32]",
                         include_linear=False), cache=bounded)
        before = cache_stats()
        outcome = builder.run(cache=bounded, jobs=2)
        after = cache_stats()
        assert (after.size, after.misses) == (before.size, before.misses)
        assert outcome.results[0] == outcome.results[2]


class TestDiskCache:
    def test_results_survive_across_instances(self, tmp_path):
        spec = RunSpec("deit-tiny", target="vitality[pe=32x32]")
        first = DiskResultCache(tmp_path)
        original = simulate(spec, cache=first)
        assert first.stats().disk_hits == 0
        second = DiskResultCache(tmp_path)          # fresh process stand-in
        restored = simulate(spec, cache=second)
        assert restored == original                 # layers, steps and all
        assert second.stats().disk_hits == 1
        assert spec in second

    def test_corrupt_entries_are_resimulated(self, tmp_path):
        spec = RunSpec("deit-tiny", target="salo")
        cache = DiskResultCache(tmp_path)
        expected = simulate(spec, cache=cache)
        for entry in tmp_path.glob("*.json"):
            entry.write_text("{not json")
        fresh = DiskResultCache(tmp_path)
        assert simulate(spec, cache=fresh) == expected
        assert fresh.stats().disk_hits == 0

    def test_clear_removes_disk_entries(self, tmp_path):
        cache = DiskResultCache(tmp_path)
        simulate(RunSpec("deit-tiny", target="salo"), cache=cache)
        assert list(tmp_path.glob("*.json"))
        cache.clear()
        assert not list(tmp_path.glob("*.json"))

    def test_parallel_sweep_composes_with_disk_cache(self, tmp_path):
        builder = Sweep().models("deit-tiny").targets("vitality") \
                         .over_configs("pe=32x32", "pe=48x48")
        first = builder.run(cache=DiskResultCache(tmp_path), jobs=2)
        warm = DiskResultCache(tmp_path)
        second = builder.run(cache=warm, jobs=2)
        assert second.results == first.results
        assert warm.stats().disk_hits == len(second.results)

    def test_run_result_dict_round_trip(self):
        result = simulate(RunSpec("deit-tiny", target="vitality[freq=1ghz]"),
                          cache=ResultCache())
        payload = json.loads(json.dumps(result.to_dict(include_layers=True)))
        assert RunResult.from_dict(payload) == result


class TestDesignSpaceExploration:
    def test_pareto_frontier_drops_dominated_points(self):
        points = [
            {"name": "a", "latency": 1.0, "energy": 2.0},
            {"name": "b", "latency": 2.0, "energy": 1.0},
            {"name": "c", "latency": 2.0, "energy": 2.0},   # dominated by a and b
        ]
        frontier = pareto_frontier(points, ("latency", "energy"))
        assert [point["name"] for point in frontier] == ["a", "b"]

    def test_tiny_space_emits_valid_frontier(self):
        payload = explore_design_space(pe=("32x32", "64x64"),
                                       freq=("500mhz", "1ghz"),
                                       sram_kb=(200,), cache=ResultCache())
        assert payload["evaluated"] == 4
        assert payload["objectives"] == ["latency_ms", "energy_mj", "area_mm2"]
        assert payload["pareto_frontier"]
        json.dumps(payload)                         # JSON-serialisable end to end
        frontier = payload["pareto_frontier"]
        for point in frontier:
            assert point["pareto"] is True
            assert point["latency_ms"] > 0 and point["area_mm2"] > 0
        # No frontier point may dominate another frontier point.
        for point in frontier:
            for other in frontier:
                if other is point:
                    continue
                assert not (all(other[k] <= point[k] for k in payload["objectives"])
                            and any(other[k] < point[k] for k in payload["objectives"]))

    def test_three_knob_space_with_parallel_jobs(self):
        payload = explore_design_space(pe=("32x32", "64x64"), freq=("500mhz", "1ghz"),
                                       sram_kb=(100, 200), jobs=2, cache=ResultCache())
        assert payload["evaluated"] == 8
        assert {point["target"] for point in payload["points"]} >= {"vitality"}
        assert payload["pareto_frontier"]

    def test_registered_as_experiment(self):
        payload = run_experiment("dse", pe=("32x32",), freq=("1ghz",),
                                 sram_kb=(200,), cache=ResultCache())
        assert payload["evaluated"] == 1
        assert payload["points"][0]["pareto"] is True


class TestConfiguredFleets:
    def test_split_configured_names(self):
        assert split_configured_names("vitality[pe=32x32,freq=1ghz],sanger") == (
            "vitality[pe=32x32,freq=1ghz]", "sanger")
        assert split_configured_names(" a , b ") == ("a", "b")
        assert split_configured_names("") == ()

    def test_fleet_mixes_design_points(self):
        fleet = Fleet.parse("2xvitality[pe=32x32,freq=1ghz],1xvitality")
        assert len(fleet.replicas) == 3
        labels = [replica.spec.target for replica in fleet.replicas]
        assert labels.count("vitality[pe=32x32,freq=1ghz]") == 2
        assert labels.count("vitality") == 1

    def test_fleet_configured_platform_with_attention_pin(self):
        fleet = Fleet.parse("1xgpu[compute=0.5]:taylor")
        spec = fleet.replicas[0].spec
        assert spec.target == "gpu[compute=0.5]"
        assert spec.attention == "taylor"

    def test_fleet_rejects_bad_knobs_at_parse_time(self):
        with pytest.raises(KnobError, match="unknown knob"):
            Fleet.parse("2xvitality[warp=9]")
