"""Tests for Property 1 (mean-centering) and the centred-key construction."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.attention import (
    mean_center_keys,
    mean_center_keys_array,
    softmax_shift_invariance_gap,
)
from repro.attention.mean_centering import similarity_matrix
from repro.tensor import Tensor


class TestMeanCentering:
    def test_centred_keys_have_zero_column_mean(self, rng):
        k = rng.normal(size=(2, 3, 10, 6)) + 5.0
        centred = mean_center_keys_array(k)
        np.testing.assert_allclose(centred.mean(axis=-2), 0.0, atol=1e-12)

    def test_tensor_and_array_paths_agree(self, rng):
        k = rng.normal(size=(2, 2, 7, 5))
        np.testing.assert_allclose(mean_center_keys(Tensor(k)).data,
                                   mean_center_keys_array(k), rtol=1e-12)

    def test_centering_is_idempotent(self, rng):
        k = rng.normal(size=(4, 8))
        once = mean_center_keys_array(k)
        np.testing.assert_allclose(mean_center_keys_array(once), once, atol=1e-12)

    def test_property1_softmax_invariance(self, rng):
        """Property 1: mean-centering the keys does not change the softmax attention."""

        q = rng.normal(size=(2, 3, 16, 8)) * 2
        k = rng.normal(size=(2, 3, 16, 8)) * 2 + 1.5
        assert softmax_shift_invariance_gap(q, k) < 1e-10

    def test_property1_holds_with_large_offsets(self, rng):
        q = rng.normal(size=(1, 1, 8, 4))
        k = rng.normal(size=(1, 1, 8, 4)) + 50.0
        assert softmax_shift_invariance_gap(q, k) < 1e-8

    def test_centred_similarity_rows_have_zero_mean(self, rng):
        """Row-wise mean of the centred similarity matrix is exactly zero."""

        q = rng.normal(size=(1, 2, 12, 6))
        k = rng.normal(size=(1, 2, 12, 6)) + 3.0
        centred = similarity_matrix(q, k, centre=True)
        np.testing.assert_allclose(centred.mean(axis=-1), 0.0, atol=1e-10)

    def test_centering_shrinks_similarity_spread(self, rng):
        """Mean-centering concentrates the similarities around zero when keys share an offset."""

        q = rng.normal(size=(1, 1, 20, 8))
        shared = rng.normal(size=(1, 1, 1, 8)) * 4.0
        k = rng.normal(size=(1, 1, 20, 8)) + shared
        raw = similarity_matrix(q, k, centre=False)
        centred = similarity_matrix(q, k, centre=True)
        assert np.abs(centred).mean() < np.abs(raw).mean()

    def test_gradient_flows_through_centering(self, rng):
        k = Tensor(rng.normal(size=(1, 1, 5, 4)), requires_grad=True)
        mean_center_keys(k).sum().backward()
        # d/dk sum(K - mean(K)) = 0 because the mean removes exactly the sum.
        np.testing.assert_allclose(k.grad, 0.0, atol=1e-12)


@settings(max_examples=25, deadline=None)
@given(tokens=st.integers(2, 12), head_dim=st.integers(1, 8), offset=st.floats(-20, 20))
def test_property1_shift_invariance_property(tokens, head_dim, offset):
    """Softmax over mean-centred keys equals softmax over raw keys for any geometry."""

    rng = np.random.default_rng(tokens * 31 + head_dim)
    q = rng.normal(size=(1, 1, tokens, head_dim))
    k = rng.normal(size=(1, 1, tokens, head_dim)) + offset
    assert softmax_shift_invariance_gap(q, k) < 1e-8


@settings(max_examples=25, deadline=None)
@given(tokens=st.integers(2, 10), head_dim=st.integers(1, 6))
def test_centred_key_column_sum_is_zero_property(tokens, head_dim):
    """k_hat_sum = 1_n^T K_hat is exactly zero — the structural fact Algorithm 1 relies on."""

    rng = np.random.default_rng(tokens * 7 + head_dim)
    k = rng.normal(size=(tokens, head_dim)) * 3 + rng.normal()
    centred = mean_center_keys_array(k)
    np.testing.assert_allclose(centred.sum(axis=0), 0.0, atol=1e-10)
