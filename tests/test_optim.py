"""Tests for optimizers and learning-rate schedules."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn.module import Parameter
from repro.optim import SGD, Adam, AdamW, ConstantSchedule, CosineSchedule, WarmupCosineSchedule
from repro.tensor import Tensor


def _quadratic_loss(parameter: Parameter, target: np.ndarray) -> Tensor:
    diff = parameter - Tensor(target)
    return (diff * diff).sum()


def _optimize(optimizer_factory, steps: int = 200) -> float:
    target = np.array([3.0, -2.0, 0.5])
    parameter = Parameter(np.zeros(3))
    optimizer = optimizer_factory([parameter])
    for _ in range(steps):
        loss = _quadratic_loss(parameter, target)
        optimizer.zero_grad()
        loss.backward()
        optimizer.step()
    return float(np.max(np.abs(parameter.data - target)))


class TestOptimizers:
    def test_sgd_converges_on_quadratic(self):
        assert _optimize(lambda p: SGD(p, lr=0.1)) < 1e-4

    def test_sgd_with_momentum_converges(self):
        assert _optimize(lambda p: SGD(p, lr=0.05, momentum=0.9)) < 1e-4

    def test_adam_converges_on_quadratic(self):
        assert _optimize(lambda p: Adam(p, lr=0.1)) < 1e-3

    def test_adamw_converges_on_quadratic(self):
        assert _optimize(lambda p: AdamW(p, lr=0.1, weight_decay=0.0)) < 1e-3

    def test_weight_decay_shrinks_solution(self):
        target = np.array([5.0])
        decayed = Parameter(np.zeros(1))
        plain = Parameter(np.zeros(1))
        opt_decayed = AdamW([decayed], lr=0.05, weight_decay=0.1)
        opt_plain = AdamW([plain], lr=0.05, weight_decay=0.0)
        for _ in range(400):
            for parameter, optimizer in ((decayed, opt_decayed), (plain, opt_plain)):
                loss = _quadratic_loss(parameter, target)
                optimizer.zero_grad()
                loss.backward()
                optimizer.step()
        assert abs(decayed.data[0]) < abs(plain.data[0])

    def test_empty_parameter_list_rejected(self):
        with pytest.raises(ValueError):
            SGD([], lr=0.1)

    def test_non_positive_lr_rejected(self):
        with pytest.raises(ValueError):
            Adam([Parameter(np.zeros(1))], lr=0.0)

    def test_invalid_momentum_rejected(self):
        with pytest.raises(ValueError):
            SGD([Parameter(np.zeros(1))], lr=0.1, momentum=1.0)

    def test_step_skips_parameters_without_grad(self):
        parameter = Parameter(np.ones(2))
        optimizer = SGD([parameter], lr=0.1)
        optimizer.step()  # no gradient accumulated yet
        np.testing.assert_allclose(parameter.data, np.ones(2))

    def test_clip_grad_norm(self):
        parameter = Parameter(np.zeros(3))
        parameter.grad = np.array([3.0, 4.0, 0.0])   # norm 5
        optimizer = SGD([parameter], lr=0.1)
        norm = optimizer.clip_grad_norm(1.0)
        assert norm == pytest.approx(5.0)
        assert np.linalg.norm(parameter.grad) == pytest.approx(1.0)

    def test_clip_grad_norm_no_clip_below_max(self):
        parameter = Parameter(np.zeros(2))
        parameter.grad = np.array([0.3, 0.4])
        SGD([parameter], lr=0.1).clip_grad_norm(1.0)
        np.testing.assert_allclose(parameter.grad, [0.3, 0.4])


class TestSchedules:
    def _optimizer(self, lr=1.0):
        return SGD([Parameter(np.zeros(1))], lr=lr)

    def test_constant_schedule(self):
        schedule = ConstantSchedule(self._optimizer(0.5))
        for _ in range(5):
            assert schedule.step() == pytest.approx(0.5)

    def test_cosine_decays_to_min(self):
        optimizer = self._optimizer(1.0)
        schedule = CosineSchedule(optimizer, total_epochs=10, min_lr=0.1)
        values = [schedule.step() for _ in range(10)]
        assert values[0] > values[-1]
        assert values[-1] == pytest.approx(0.1)
        assert optimizer.lr == pytest.approx(0.1)

    def test_cosine_monotone_decreasing(self):
        schedule = CosineSchedule(self._optimizer(1.0), total_epochs=20)
        values = [schedule.step() for _ in range(20)]
        assert all(a >= b for a, b in zip(values, values[1:]))

    def test_warmup_increases_then_decays(self):
        schedule = WarmupCosineSchedule(self._optimizer(1.0), total_epochs=10, warmup_epochs=3)
        values = [schedule.step() for _ in range(10)]
        assert values[0] < values[2]            # warmup ramps up
        assert values[2] == pytest.approx(1.0)  # reaches base LR
        assert values[-1] < values[3]           # cosine decays afterwards

    def test_warmup_validation(self):
        with pytest.raises(ValueError):
            WarmupCosineSchedule(self._optimizer(), total_epochs=5, warmup_epochs=5)
        with pytest.raises(ValueError):
            CosineSchedule(self._optimizer(), total_epochs=0)
