"""Tests for the linear Taylor attention (Algorithm 1)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.attention import (
    SoftmaxAttention,
    TaylorAttention,
    global_context_matrix,
    softmax_attention,
    taylor_attention,
    taylor_attention_map,
)
from repro.attention.mean_centering import mean_center_keys_array
from repro.tensor import Tensor


def naive_first_order_taylor(q, k, v):
    """Direct (quadratic) evaluation of the first-order Taylor softmax attention."""

    d = q.shape[-1]
    k_hat = mean_center_keys_array(k)
    similarity = q @ np.swapaxes(k_hat, -1, -2) / np.sqrt(d)
    weights = 1.0 + similarity
    weights = weights / weights.sum(axis=-1, keepdims=True)
    return weights @ v


class TestTaylorAttentionCorrectness:
    def test_matches_naive_first_order(self, qkv_small):
        """Algorithm 1 (associative ordering) equals the explicit Taylor attention map."""

        q, k, v = qkv_small
        np.testing.assert_allclose(taylor_attention(q, k, v), naive_first_order_taylor(q, k, v),
                                   rtol=1e-8, atol=1e-10)

    def test_close_to_softmax_in_weak_regime(self, qkv_small):
        """When all similarities are small, Taylor attention approximates softmax attention."""

        q, k, v = qkv_small
        taylor = taylor_attention(q, k, v)
        soft = softmax_attention(q, k, v)
        assert np.max(np.abs(taylor - soft)) < 0.05

    def test_diverges_from_softmax_for_strong_connections(self, rng):
        """With large similarities the first-order approximation breaks down (Section III-C)."""

        q = rng.normal(size=(1, 1, 16, 8)) * 3.0
        k = rng.normal(size=(1, 1, 16, 8)) * 3.0
        v = rng.normal(size=(1, 1, 16, 8))
        gap = np.max(np.abs(taylor_attention(q, k, v) - softmax_attention(q, k, v)))
        assert gap > 0.1

    def test_intermediates_shapes(self, qkv_small):
        q, k, v = qkv_small
        inter = taylor_attention(q, k, v, return_intermediates=True)
        batch, heads, tokens, dim = q.shape
        assert inter.global_context.shape == (batch, heads, dim, dim)
        assert inter.k_hat_sum.shape == (batch, heads, 1, dim)
        assert inter.v_sum.shape == (batch, heads, 1, dim)
        assert inter.denominator.shape == (batch, heads, tokens, 1)
        assert inter.numerator.shape == (batch, heads, tokens, dim)
        assert inter.score.shape == q.shape

    def test_denominator_equals_n_sqrt_d(self, qkv_small):
        """With exact mean-centering the Taylor denominator is the constant n*sqrt(d)."""

        q, k, v = qkv_small
        tokens, dim = q.shape[-2], q.shape[-1]
        inter = taylor_attention(q, k, v, return_intermediates=True)
        np.testing.assert_allclose(inter.denominator, tokens * np.sqrt(dim), rtol=1e-8)

    def test_attention_map_rows_sum_to_one(self, qkv_small):
        q, k, _ = qkv_small
        weights = taylor_attention_map(q, k, normalise=True)
        np.testing.assert_allclose(weights.sum(axis=-1), 1.0, rtol=1e-8)

    def test_global_context_matrix(self, qkv_small):
        _, k, v = qkv_small
        g = global_context_matrix(k, v)
        expected = np.swapaxes(mean_center_keys_array(k), -1, -2) @ v
        np.testing.assert_allclose(g, expected, rtol=1e-12)

    def test_uniform_values_recovered_exactly(self, rng):
        """If all values are identical the attention output equals that value exactly."""

        q = rng.normal(size=(1, 1, 10, 4))
        k = rng.normal(size=(1, 1, 10, 4))
        v = np.ones((1, 1, 10, 4)) * 2.5
        np.testing.assert_allclose(taylor_attention(q, k, v), 2.5, rtol=1e-8)

    def test_asymmetric_value_dimension(self, rng):
        """LeViT-style geometry: value head dim differs from query/key head dim."""

        q = rng.normal(size=(1, 2, 12, 8)) * 0.2
        k = rng.normal(size=(1, 2, 12, 8)) * 0.2
        v = rng.normal(size=(1, 2, 12, 16))
        out = taylor_attention(q, k, v)
        assert out.shape == (1, 2, 12, 16)
        np.testing.assert_allclose(out, naive_first_order_taylor(q, k, v), rtol=1e-8)

    def test_asymmetric_token_counts(self, rng):
        """Shrinking attention: fewer queries than keys/values."""

        q = rng.normal(size=(1, 2, 5, 8)) * 0.2
        k = rng.normal(size=(1, 2, 20, 8)) * 0.2
        v = rng.normal(size=(1, 2, 20, 8))
        out = taylor_attention(q, k, v)
        assert out.shape == (1, 2, 5, 8)
        np.testing.assert_allclose(out, naive_first_order_taylor(q, k, v), rtol=1e-8)


class TestTaylorAttentionModule:
    def test_module_matches_functional(self, qkv_tensors, qkv_small):
        q, k, v = qkv_small
        module = TaylorAttention()
        out = module(*qkv_tensors)
        np.testing.assert_allclose(out.data, taylor_attention(q, k, v), rtol=1e-6)

    def test_module_never_materialises_attention_matrix(self, qkv_tensors):
        module = TaylorAttention()
        module(*qkv_tensors)
        assert module.last_stats["attention_entries"] == 0.0
        assert module.last_stats["global_context_entries"] > 0

    def test_gradients_flow_to_all_inputs(self, qkv_small):
        q, k, v = qkv_small
        qt = Tensor(q, requires_grad=True)
        kt = Tensor(k, requires_grad=True)
        vt = Tensor(v, requires_grad=True)
        TaylorAttention()(qt, kt, vt).sum().backward()
        assert qt.grad is not None and np.any(qt.grad != 0)
        assert kt.grad is not None
        assert vt.grad is not None and np.any(vt.grad != 0)

    def test_module_agrees_with_softmax_module_in_weak_regime(self, qkv_tensors):
        taylor = TaylorAttention()(*qkv_tensors).data
        soft = SoftmaxAttention()(*qkv_tensors).data
        assert np.max(np.abs(taylor - soft)) < 0.05

    def test_shape_validation(self, rng):
        module = TaylorAttention()
        q = Tensor(rng.normal(size=(1, 2, 4, 8)))
        bad_k = Tensor(rng.normal(size=(1, 2, 4, 6)))
        v = Tensor(rng.normal(size=(1, 2, 4, 8)))
        with pytest.raises(ValueError):
            module(q, bad_k, v)
        with pytest.raises(ValueError):
            module(Tensor(rng.normal(size=(4, 8))), bad_k, v)


@settings(max_examples=20, deadline=None)
@given(tokens=st.integers(2, 16), head_dim=st.integers(2, 10), scale=st.floats(0.01, 0.3))
def test_taylor_equals_naive_property(tokens, head_dim, scale):
    """Associative-order Algorithm 1 equals the explicit map for any small geometry."""

    rng = np.random.default_rng(tokens * 13 + head_dim)
    q = rng.normal(size=(1, 1, tokens, head_dim)) * scale
    k = rng.normal(size=(1, 1, tokens, head_dim)) * scale
    v = rng.normal(size=(1, 1, tokens, head_dim))
    np.testing.assert_allclose(taylor_attention(q, k, v), naive_first_order_taylor(q, k, v),
                               rtol=1e-7, atol=1e-9)


@settings(max_examples=20, deadline=None)
@given(scale=st.floats(0.01, 0.25))
def test_taylor_approximation_error_shrinks_with_scale_property(scale):
    """The smaller the similarities, the closer Taylor attention is to softmax attention."""

    rng = np.random.default_rng(42)
    q = rng.normal(size=(1, 1, 12, 8))
    k = rng.normal(size=(1, 1, 12, 8))
    v = rng.normal(size=(1, 1, 12, 8))
    small = np.max(np.abs(taylor_attention(q * scale, k * scale, v)
                          - softmax_attention(q * scale, k * scale, v)))
    large = np.max(np.abs(taylor_attention(q * scale * 4, k * scale * 4, v)
                          - softmax_attention(q * scale * 4, k * scale * 4, v)))
    assert small <= large + 1e-9
