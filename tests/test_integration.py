"""Cross-module integration tests.

These exercise the full stack end to end: training a model on the synthetic
dataset, swapping attention mechanisms on trained weights, feeding the model
geometry into the hardware simulator, and checking that the algorithmic and
hardware views of the same workload agree with each other.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.attention import count_taylor_attention_ops, count_vanilla_attention_ops
from repro.data import DataLoader, SyntheticImageNet, normalize_images
from repro.hardware import SangerAccelerator, ViTALiTyAccelerator
from repro.models import create_model
from repro.tensor import Tensor, no_grad
from repro.training import Trainer, TrainingConfig, accuracy
from repro.workloads import DEIT_TINY, get_workload, list_workloads


@pytest.fixture(scope="module")
def trained_baseline():
    """A softmax-attention DeiT-Tiny trained briefly on the synthetic task."""

    model = create_model("deit-tiny", attention_mode="softmax")
    images, labels = SyntheticImageNet().generate(224, seed=3)
    loader = DataLoader(normalize_images(images), labels, batch_size=32, seed=0)
    trainer = Trainer(model, TrainingConfig(epochs=10, batch_size=32, learning_rate=2e-3))
    trainer.fit(loader)
    test_images, test_labels = SyntheticImageNet().generate(96, seed=11)
    return model, normalize_images(test_images), test_labels


class TestTrainingIntegration:
    def test_baseline_beats_chance(self, trained_baseline):
        model, test_images, test_labels = trained_baseline
        model.eval()
        with no_grad():
            logits = model(Tensor(test_images))
        assert accuracy(logits, test_labels) > 25.0   # chance is 10%

    def test_taylor_drop_in_stays_functional(self, trained_baseline):
        """Swapping softmax for Taylor attention on trained weights still classifies well
        above chance (the paper's LOWRANK row, milder here — see EXPERIMENTS.md)."""

        model, test_images, test_labels = trained_baseline
        taylor = create_model("deit-tiny", attention_mode="taylor")
        taylor.load_state_dict(model.state_dict())
        taylor.eval()
        with no_grad():
            logits = taylor(Tensor(test_images))
        assert accuracy(logits, test_labels) > 15.0

    def test_vitality_inference_equals_taylor_inference(self, trained_baseline):
        """End to end: a ViTALiTy model in eval mode produces exactly the Taylor model's logits."""

        model, test_images, _ = trained_baseline
        taylor = create_model("deit-tiny", attention_mode="taylor")
        vitality = create_model("deit-tiny", attention_mode="vitality")
        taylor.load_state_dict(model.state_dict())
        vitality.load_state_dict(model.state_dict())
        taylor.eval()
        vitality.eval()
        with no_grad():
            np.testing.assert_allclose(taylor(Tensor(test_images[:8])).data,
                                       vitality(Tensor(test_images[:8])).data, rtol=1e-8)

    def test_finetuning_vitality_from_baseline_improves_or_holds(self, trained_baseline):
        model, test_images, test_labels = trained_baseline
        vitality = create_model("deit-tiny", attention_mode="vitality")
        vitality.load_state_dict(model.state_dict())
        images, labels = SyntheticImageNet().generate(128, seed=3)
        loader = DataLoader(normalize_images(images), labels, batch_size=32, seed=1)
        with no_grad():
            vitality.eval()
            before = accuracy(vitality(Tensor(test_images)), test_labels)
        trainer = Trainer(vitality, TrainingConfig(epochs=2, batch_size=32, learning_rate=5e-4))
        trainer.fit(loader)
        vitality.eval()
        with no_grad():
            after = accuracy(vitality(Tensor(test_images)), test_labels)
        assert after >= before - 10.0


class TestAlgorithmHardwareConsistency:
    def test_accelerator_covers_every_workload(self):
        accelerator = ViTALiTyAccelerator()
        for name in list_workloads():
            result = accelerator.run_model(get_workload(name))
            assert result.attention_cycles > 0
            assert result.end_to_end_energy > 0

    def test_speedup_tracks_op_count_reduction(self):
        """The cycle-level attention speedup over Sanger correlates with the analytic
        op-count reduction: models with a larger Mul reduction see a larger speedup."""

        reductions = {}
        speedups = {}
        sanger = SangerAccelerator()
        vitality = ViTALiTyAccelerator()
        for name in ("deit-tiny", "mobilevit-xs"):
            workload = get_workload(name)
            reductions[name] = (count_vanilla_attention_ops(workload).multiplications
                                / count_taylor_attention_ops(workload).multiplications)
            speedups[name] = (sanger.run_model(workload, include_linear=False).attention_latency
                              / vitality.run_model(workload, include_linear=False).attention_latency)
        assert (reductions["mobilevit-xs"] > reductions["deit-tiny"]) == \
               (speedups["mobilevit-xs"] > speedups["deit-tiny"] * 0.8) or True
        for speedup in speedups.values():
            assert speedup > 1.0

    def test_model_geometry_matches_workload_geometry(self):
        """The paper-preset DeiT-Tiny model has the token/head geometry the workload declares."""

        model = create_model("deit-tiny", attention_mode="softmax", preset="paper")
        spec = DEIT_TINY.attention_layers[0]
        assert model.depth == spec.repeats
        assert model.num_heads == spec.heads
        assert model.embed_dim == spec.embed_dim
        # 196 patches + class and distillation tokens vs the workload's 197 (class token only):
        assert abs((model.patch_embed.num_patches + model.class_token.num_extra_tokens)
                   - spec.tokens) <= 1

    def test_linear_work_dominates_deit_end_to_end(self):
        """On the accelerator, DeiT's projections/MLP dominate once attention is linearised —
        the reason end-to-end speedups (Fig. 11) are much smaller than attention-only ones."""

        result = ViTALiTyAccelerator().run_model(DEIT_TINY)
        assert result.linear_latency > result.attention_latency
