"""Tests for the workload IR and its configured-name grammar: knob
round-trips, canonicalisation equivalences, cache unification, the sequence
families (encoder/decoder/transformer), decode-phase op counts and the
seqscale experiment."""

from __future__ import annotations

import json

import pytest

from repro.attention.op_counting import (
    count_taylor_attention_ops,
    count_vanilla_attention_ops,
)
from repro.cli import main
from repro.engine import (
    DiskResultCache,
    ResultCache,
    RunSpec,
    Sweep,
    UnknownWorkloadError,
    canonical_workload_name,
    canonicalise_spec,
    scale_workload_tokens,
    simulate,
)
from repro.experiments import run_experiment
from repro.knobs import KnobError
from repro.serve import Fleet, PoissonTraffic, WorkloadMix, serve
from repro.workloads import (
    AttentionLayerSpec,
    DEIT_TINY,
    FAMILIES,
    get_family,
    get_workload,
    list_families,
    list_workloads,
)


class TestGrammarResolution:
    def test_bare_names_resolve_to_seed_objects(self):
        for name in list_workloads():
            assert get_workload(name).name == name
        assert get_workload("deit-tiny") is DEIT_TINY

    def test_every_seed_name_is_a_family(self):
        assert set(list_workloads()) <= set(list_families())
        assert {"encoder", "decoder", "transformer"} <= set(list_families())

    def test_knob_round_trip(self):
        family = get_family("decoder")
        config = family.resolve("tokens=1,kv_tokens=2048,phase=decode")
        rendered = family.schema.render(config)
        assert family.resolve(rendered) == config

    def test_spellings_share_one_object(self):
        a = get_workload("decoder[tokens=1,kv_tokens=2048,phase=decode]")
        b = get_workload("decoder[phase=decode,kv_tokens=2048]")
        c = get_workload("decoder[kv_tokens=2048,phase=decode,tokens=1,heads=12]")
        d = get_workload("decoder[tokens=1,kv_tokens=2048]")   # explicit geometry
        assert a is b is c is d
        # phase is a lowering macro: once it has shaped tokens/kv_tokens it is
        # dropped, so the canonical name is the explicit geometry.
        assert a.name == "decoder[kv_tokens=2048,tokens=1]"

    def test_canonical_names_re_parse_to_themselves(self):
        for name in ("decoder[phase=decode,tokens=4,kv_tokens=4]",
                     "decoder[kv_tokens=2048,phase=decode]",
                     "encoder[tokens=64,kv_tokens=64]"):
            canonical = canonical_workload_name(name)
            assert canonical_workload_name(canonical) == canonical
            assert get_workload(canonical) is get_workload(name)

    def test_first_decode_step_simulates(self):
        # kv_tokens == tokens drops the kv knob and phase drops after
        # lowering; the canonicalised spec must still resolve and run.
        result = simulate(
            RunSpec("decoder[phase=decode,tokens=4,kv_tokens=4]", target="gpu"),
            cache=ResultCache())
        assert result.model == "decoder[tokens=4]"
        assert result.end_to_end_latency > 0

    def test_reference_knobs_resolve_to_reference_object(self):
        assert get_workload("deit-tiny[tokens=197]") is DEIT_TINY
        assert get_workload("deit-tiny[tokens=197,heads=3,dim=192]") is DEIT_TINY
        assert get_workload("decoder[tokens=1024]") is get_workload("decoder")

    def test_kv_tokens_equal_to_tokens_is_dropped(self):
        assert canonical_workload_name("decoder[kv_tokens=1024]") == "decoder"
        assert canonical_workload_name("encoder[tokens=64,kv_tokens=64]") == \
            "encoder[tokens=64]"

    def test_decode_phase_lowers_to_single_query(self):
        workload = get_workload("decoder[kv_tokens=512,phase=decode]")
        layer = workload.attention_layers[0]
        assert (layer.tokens, layer.kv_tokens, layer.causal) == (1, 512, True)

    def test_decode_phase_requires_kv_tokens(self):
        with pytest.raises(KnobError, match="kv_tokens"):
            get_workload("decoder[phase=decode]")

    def test_decode_keeps_explicit_tokens_even_at_the_family_default(self):
        # 1024 is decoder's reference tokens value; spelling it out in a
        # decode config is a deliberate chunk size, not an absent knob.
        explicit = get_workload("decoder[tokens=1024,kv_tokens=2048,phase=decode]")
        assert explicit.attention_layers[0].tokens == 1024
        assert canonical_workload_name(
            "decoder[tokens=1024,kv_tokens=2048,phase=decode]") == \
            "decoder[kv_tokens=2048]"
        neighbour = get_workload("decoder[tokens=1023,kv_tokens=2048,phase=decode]")
        assert neighbour.attention_layers[0].tokens == 1023

    def test_causal_needs_kv_at_least_tokens(self):
        with pytest.raises(KnobError, match="kv_tokens >= tokens"):
            get_workload("decoder[tokens=512,kv_tokens=256]")
        with pytest.raises(ValueError):
            AttentionLayerSpec(tokens=8, qk_dim=4, heads=1, kv_tokens=4, causal=True)

    def test_heads_must_divide_dim(self):
        with pytest.raises(KnobError, match="divide"):
            get_workload("transformer[dim=100,heads=3]")

    def test_unknown_workload_lists_families_and_knobs(self):
        with pytest.raises(UnknownWorkloadError) as excinfo:
            get_workload("resnet-50")
        message = str(excinfo.value.args[0])
        assert "families" in message and "decoder" in message
        assert "kv_tokens" in message

    def test_malformed_bracket_rejected(self):
        with pytest.raises(UnknownWorkloadError):
            get_workload("deit-tiny[tokens=64")
        with pytest.raises(KnobError, match="unknown knob"):
            get_workload("deit-tiny[pe=32x32]")

    def test_duplicate_knobs_rejected_even_at_reference_value(self):
        with pytest.raises(KnobError, match="duplicate knob"):
            get_workload("deit-tiny[tokens=197,tokens=512]")
        with pytest.raises(KnobError, match="duplicate knob"):
            get_workload("deit-tiny[tokens=512,tokens=1024]")

    def test_sequence_families_have_sensible_geometry(self):
        encoder = get_workload("encoder")
        assert encoder.attention_layers[0].embed_dim == 768
        assert not encoder.attention_layers[0].causal
        decoder = get_workload("decoder")
        assert decoder.attention_layers[0].causal
        assert decoder.attention_layers[0].tokens == 1024
        transformer = get_workload("transformer")
        assert transformer.linear_macs() == DEIT_TINY.linear_macs()


class TestTokenScaling:
    def test_tokens_knob_matches_deprecated_override(self):
        via_knob = get_workload("levit-128[tokens=392]")
        via_scale = scale_workload_tokens(get_workload("levit-128"), 392)
        assert via_knob.attention_layers == via_scale.attention_layers
        assert via_knob.linear_layers == via_scale.linear_layers

    def test_multi_stage_ratios_floor_consistently(self):
        scaled = get_workload("mobilevit-xs[tokens=300]")
        # 256/64/16-token stages at ratio 300/256, floored: 300, 75, 18.
        assert [layer.tokens for layer in scaled.attention_layers] == [300, 75, 18]

    def test_reference_tokens_is_identity(self):
        workload = get_workload("levit-128")
        assert scale_workload_tokens(workload, 196) is workload
        assert get_workload("levit-128[tokens=196]") is workload

    def test_scaling_preserves_shrinking_blocks(self):
        scaled = get_workload("levit-128[tokens=392]")
        shrink = scaled.attention_layers[-1]
        assert shrink.kv_tokens > shrink.tokens


class TestCacheUnification:
    def test_configured_spellings_share_cache_entries(self):
        cache = ResultCache()
        simulate(RunSpec("deit-tiny", tokens=512), cache=cache)
        simulate(RunSpec("deit-tiny[tokens=512]"), cache=cache)
        simulate(RunSpec("deit-tiny[heads=3,tokens=512]"), cache=cache)
        stats = cache.stats()
        assert (stats.misses, stats.hits, stats.size) == (1, 2, 1)

    def test_reference_tokens_share_the_bare_entry(self):
        cache = ResultCache()
        simulate(RunSpec("deit-tiny"), cache=cache)
        simulate(RunSpec("deit-tiny", tokens=197), cache=cache)
        simulate(RunSpec("deit-tiny[tokens=197]"), cache=cache)
        stats = cache.stats()
        assert (stats.misses, stats.hits, stats.size) == (1, 2, 1)

    def test_canonicalise_spec_lowers_tokens_onto_grammar(self):
        spec = canonicalise_spec(RunSpec("deit-tiny", tokens=512, target="salo"))
        assert spec.model == "deit-tiny[tokens=512]"
        assert spec.tokens is None
        reference = canonicalise_spec(RunSpec("deit-tiny", tokens=197))
        assert reference.model == "deit-tiny"

    def test_result_model_is_canonical(self):
        result = simulate(RunSpec("deit-tiny", tokens=512, target="gpu"),
                          cache=ResultCache())
        assert result.model == "deit-tiny[tokens=512]"

    def test_disk_cache_keys_on_canonical_names(self, tmp_path):
        first = DiskResultCache(tmp_path)
        original = simulate(RunSpec("deit-tiny", tokens=512), cache=first)
        second = DiskResultCache(tmp_path)
        restored = simulate(RunSpec("deit-tiny[tokens=512]"), cache=second)
        assert restored == original
        assert second.stats().disk_hits == 1

    def test_model_and_target_knobs_cross_in_sweeps(self):
        outcome = (Sweep()
                   .models("decoder", "deit-tiny")
                   .model_configs("", "tokens=128")
                   .targets("vitality")
                   .over_configs("", "pe=32x32")
                   .run(cache=ResultCache()))
        assert len(outcome.results) == 8
        models = {spec.model for spec in outcome.specs}
        assert models == {"decoder", "decoder[tokens=128]",
                          "deit-tiny", "deit-tiny[tokens=128]"}

    def test_model_configs_rejects_preconfigured_models(self):
        with pytest.raises(ValueError, match="already-configured"):
            list(Sweep().models("decoder[tokens=64]").model_configs("tokens=128")
                 .expand())

    def test_parallel_sweep_handles_configured_models(self):
        builder = (Sweep().models("decoder").model_configs("tokens=64", "tokens=128")
                   .targets("vitality", "gpu"))
        serial = builder.run(cache=ResultCache())
        parallel = builder.run(cache=ResultCache(), jobs=2)
        assert serial.results == parallel.results


class TestDecodeOpCounts:
    def test_causal_prefill_halves_the_score_matrix(self):
        full = AttentionLayerSpec(tokens=256, qk_dim=64, heads=4)
        causal = AttentionLayerSpec(tokens=256, qk_dim=64, heads=4, causal=True)
        ratio = (count_vanilla_attention_ops(causal).exponentiations
                 / count_vanilla_attention_ops(full).exponentiations)
        assert ratio == pytest.approx((256 + 1) / (2 * 256))

    def test_decode_step_counts_scale_with_cache_length(self):
        def vanilla_at(kv):
            layer = AttentionLayerSpec(tokens=1, qk_dim=64, heads=4,
                                       kv_tokens=kv, causal=True)
            return count_vanilla_attention_ops(layer)

        assert vanilla_at(2048).multiplications == 2 * vanilla_at(1024).multiplications
        assert vanilla_at(1024).exponentiations == 4 * 1024

    def test_taylor_counts_are_causal_invariant(self):
        full = AttentionLayerSpec(tokens=256, qk_dim=64, heads=4)
        causal = AttentionLayerSpec(tokens=256, qk_dim=64, heads=4, causal=True)
        assert count_taylor_attention_ops(full) == count_taylor_attention_ops(causal)

    def test_decode_favors_vanilla_prefill_favors_taylor(self):
        """Without a carried context cache, one decode step is cheaper under
        softmax attention, while long prefill is cheaper under Taylor — the
        asymmetry seqscale quantifies."""

        decode = get_workload("decoder[tokens=1,kv_tokens=2048,phase=decode]")
        assert (count_vanilla_attention_ops(decode).total
                < count_taylor_attention_ops(decode).total)
        prefill = get_workload("decoder[tokens=2048]")
        assert (count_taylor_attention_ops(prefill).total
                < count_vanilla_attention_ops(prefill).total)


class TestSeqscaleExperiment:
    def test_two_point_sweep(self):
        payload = run_experiment("seqscale", tokens=(128, 1024),
                                 cache=ResultCache())
        assert [row["tokens"] for row in payload["rows"]] == [128, 1024]
        assert payload["rows"][1]["op_ratio"] > payload["rows"][0]["op_ratio"]
        json.dumps(payload)

    def test_crossover_reported_on_decoder_ladder(self):
        payload = run_experiment("seqscale", tokens=(128, 256, 512, 1024),
                                 cache=ResultCache())
        crossover = payload["latency_crossover_tokens"]
        assert crossover is not None
        rows = {row["tokens"]: row for row in payload["rows"]}
        assert rows[crossover]["latency_ratio"] > 1.0

    def test_deit_family_ladder(self):
        payload = run_experiment("seqscale", model="deit-tiny",
                                 tokens=(197, 788), baseline="edge_gpu",
                                 cache=ResultCache())
        assert payload["rows"][0]["workload"] == "deit-tiny"
        assert payload["rows"][1]["workload"] == "deit-tiny[tokens=788]"

    def test_accelerator_is_peak_matched_to_the_baseline(self):
        from repro.engine import get_target

        cache = ResultCache()
        payload = run_experiment("seqscale", tokens=(1024,), cache=cache)
        expected = simulate(
            RunSpec("decoder", target="vitality",
                    scale_to_peak=get_target("gpu").peak_macs_per_second),
            cache=cache)
        assert payload["rows"][0]["vitality_ms"] == \
            pytest.approx(expected.end_to_end_latency * 1e3)


class TestServeConfiguredWorkloads:
    def test_mix_accepts_configured_names(self):
        mix = WorkloadMix.of(["deit-tiny[tokens=64]", "deit-tiny"])
        assert dict(mix.entries)["deit-tiny[tokens=64]"] == 1.0

    def test_mix_rejects_unknown_and_bad_knobs(self):
        with pytest.raises(ValueError, match="in mix.*unknown workload"):
            WorkloadMix.of(["resnet-50"])
        # Bad knobs carry the same construction-site context as bad families.
        with pytest.raises(ValueError, match="in mix.*unknown knob"):
            WorkloadMix.of(["deit-tiny[pe=32x32]"])
        with pytest.raises(ValueError, match="in mix.*positive integer"):
            WorkloadMix.of(["deit-tiny[tokens=0]"])

    def test_serve_runs_a_configured_mix(self):
        traffic = PoissonTraffic(
            rate=30.0, mix=WorkloadMix.of(["deit-tiny[tokens=64]", "deit-tiny"]))
        report = serve(traffic, Fleet.parse("2xvitality"), duration=1.0, seed=0)
        assert report.completed == report.offered > 0
        served = {model for model, _ in report.per_model}
        assert "deit-tiny[tokens=64]" in served


class TestWorkloadsCLI:
    def test_workloads_listing_json(self, capsys):
        assert main(["workloads"]) == 0
        payload = json.loads(capsys.readouterr().out)
        families = {entry["family"]: entry for entry in payload["families"]}
        assert set(families) == set(list_families())
        decoder = families["decoder"]
        knob_names = {knob["name"] for knob in decoder["knobs"]}
        assert {"tokens", "kv_tokens", "causal", "phase"} <= knob_names
        assert decoder["reference"]["attention_layers"][0]["causal"] is True
        assert payload["seed_workloads"] == list_workloads()

    def test_workloads_single_name_json(self, capsys):
        assert main(["workloads", "decoder[kv_tokens=2048,phase=decode]"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["canonical_name"] == "decoder[kv_tokens=2048,tokens=1]"
        assert payload["attention_layers"][0]["kv_tokens"] == 2048
        assert payload["attention_ops_millions"]["vanilla"] > 0

    def test_workloads_unknown_name_clean_error(self, capsys):
        assert main(["workloads", "resnet-50"]) == 2
        assert "unknown workload" in capsys.readouterr().err

    def test_simulate_configured_workload(self, capsys):
        assert main(["simulate", "deit-tiny[tokens=512]", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["model"] == "deit-tiny[tokens=512]"
        assert payload["end_to_end_latency"] > 0

    def test_simulate_bad_workload_knob_clean_error(self, capsys):
        assert main(["simulate", "decoder[phase=decode]"]) == 2
        assert "kv_tokens" in capsys.readouterr().err

    def test_accelerate_bad_knobs_clean_error(self, capsys):
        assert main(["accelerate", "deit-tiny[tokens=0]"]) == 2
        assert "positive integer" in capsys.readouterr().err
        assert main(["accelerate", "deit-tiny", "--baseline", "gpu[bogus=1]"]) == 2
        assert "unknown knob" in capsys.readouterr().err

    def test_sweep_crosses_configured_models_and_targets(self, capsys):
        assert main(["sweep", "--models", "decoder[kv_tokens=1024],deit-tiny",
                     "--targets", "vitality[pe=32x32],gpu", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert len(payload["runs"]) == 4
        models = {run["spec"]["model"] for run in payload["runs"]}
        assert models == {"decoder[kv_tokens=1024]", "deit-tiny"}

    def test_serve_accepts_configured_workload_mix(self, capsys):
        assert main(["serve", "--duration", "1", "--rate", "20",
                     "--models", "deit-tiny[tokens=64],deit-tiny",
                     "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["completed"] > 0
        assert "deit-tiny[tokens=64]" in payload["config"]["traffic"]["mix"]

    def test_list_mentions_families(self, capsys):
        assert main(["list"]) == 0
        assert "transformer" in capsys.readouterr().out


class TestSeedGoldenUnderGrammar:
    """The grammar refactor moved workload resolution, not the numbers: the
    seed experiments replayed through the redesigned API must match the
    golden file bit-for-bit (see also TestSeedEquivalence in
    test_design_space.py, which asserts the same for every hardware path)."""

    def test_fig11_and_table2_bit_identical(self):
        import pathlib

        golden = json.loads((pathlib.Path(__file__).parent / "data"
                             / "seed_hardware_golden.json").read_text())
        assert json.loads(json.dumps(run_experiment("fig11"))) == golden["fig11"]
        assert json.loads(json.dumps(run_experiment("tab2"))) == golden["table2"]

    def test_families_reference_objects_are_seed_objects(self):
        for name in list_workloads():
            assert FAMILIES[name].reference is get_workload(name)
