"""Tests for the synthetic dataset, data loading, metrics and the training stack."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import DataLoader, SyntheticConfig, SyntheticImageNet
from repro.data.transforms import horizontal_flip, normalize_images, random_crop_pad
from repro.models import create_model
from repro.tensor import Tensor
from repro.training import (
    AverageMeter,
    DistillationConfig,
    FinetuneConfig,
    SCHEMES,
    Trainer,
    TrainingConfig,
    ViTALiTyFinetuner,
    accuracy,
    distillation_loss,
    top_k_accuracy,
)
from repro.training.distillation import combined_loss


class TestSyntheticDataset:
    def test_deterministic_given_seed(self):
        dataset = SyntheticImageNet(SyntheticConfig(seed=7))
        images_a, labels_a = dataset.generate(32, seed=1)
        images_b, labels_b = dataset.generate(32, seed=1)
        np.testing.assert_allclose(images_a, images_b)
        np.testing.assert_array_equal(labels_a, labels_b)

    def test_different_seed_differs(self):
        dataset = SyntheticImageNet()
        images_a, _ = dataset.generate(8, seed=1)
        images_b, _ = dataset.generate(8, seed=2)
        assert np.abs(images_a - images_b).max() > 0.0

    def test_shapes_and_ranges(self):
        config = SyntheticConfig(image_size=32, channels=3)
        images, labels = SyntheticImageNet(config).generate(16)
        assert images.shape == (16, 3, 32, 32)
        assert labels.shape == (16,)
        assert images.min() >= 0.0
        assert labels.max() < config.num_classes

    def test_balanced_labels(self):
        images, labels = SyntheticImageNet().generate(100)
        counts = np.bincount(labels, minlength=10)
        assert counts.min() == 10

    def test_group_structure(self):
        dataset = SyntheticImageNet(SyntheticConfig(num_classes=10, classes_per_group=2))
        assert dataset.group_of(0) == dataset.group_of(1)
        assert dataset.group_of(0) != dataset.group_of(2)

    def test_same_group_shares_global_pattern(self):
        dataset = SyntheticImageNet()
        np.testing.assert_allclose(dataset._global_pattern(dataset.group_of(0)),
                                   dataset._global_pattern(dataset.group_of(1)))

    def test_same_group_different_glyph_position(self):
        dataset = SyntheticImageNet()
        assert dataset._glyph_position(0) != dataset._glyph_position(1)

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            SyntheticConfig(num_classes=10, classes_per_group=3)
        with pytest.raises(ValueError):
            SyntheticConfig(glyph_size=20, image_size=32)

    def test_train_test_split_disjoint_noise(self):
        train_x, _, test_x, _ = SyntheticImageNet().train_test_split(16, 16)
        assert np.abs(train_x[:16] - test_x[:16]).max() > 0.0


class TestDataLoaderAndTransforms:
    def test_loader_batches(self):
        images = np.zeros((10, 3, 4, 4))
        labels = np.arange(10)
        loader = DataLoader(images, labels, batch_size=4, shuffle=False)
        batches = list(loader)
        assert len(batches) == 3
        assert batches[0][0].shape == (4, 3, 4, 4)
        assert batches[-1][0].shape == (2, 3, 4, 4)

    def test_loader_drop_last(self):
        loader = DataLoader(np.zeros((10, 1)), np.zeros(10), batch_size=4, drop_last=True)
        assert len(loader) == 2

    def test_loader_shuffles(self):
        labels = np.arange(32)
        loader = DataLoader(np.zeros((32, 1)), labels, batch_size=32, shuffle=True, seed=0)
        (_, batch_labels), = list(loader)
        assert not np.array_equal(batch_labels, labels)
        assert sorted(batch_labels) == list(labels)

    def test_loader_validation(self):
        with pytest.raises(ValueError):
            DataLoader(np.zeros((4, 1)), np.zeros(3), batch_size=2)
        with pytest.raises(ValueError):
            DataLoader(np.zeros((4, 1)), np.zeros(4), batch_size=0)

    def test_normalize_images(self):
        out = normalize_images(np.full((2, 3, 4, 4), 0.75), mean=0.5, std=0.5)
        np.testing.assert_allclose(out, 0.5)
        with pytest.raises(ValueError):
            normalize_images(np.ones((1,)), std=0.0)

    def test_horizontal_flip_preserves_content(self, rng):
        images = rng.normal(size=(6, 3, 8, 8))
        flipped = horizontal_flip(images, probability=1.0, rng=np.random.default_rng(0))
        np.testing.assert_allclose(flipped, images[..., ::-1])

    def test_random_crop_pad_shape(self, rng):
        images = rng.normal(size=(3, 3, 16, 16))
        out = random_crop_pad(images, padding=2, rng=np.random.default_rng(0))
        assert out.shape == images.shape


class TestMetrics:
    def test_accuracy(self):
        logits = np.array([[0.1, 0.9], [0.8, 0.2], [0.3, 0.7]])
        assert accuracy(logits, np.array([1, 0, 0])) == pytest.approx(100 * 2 / 3)

    def test_top_k_accuracy(self):
        logits = np.array([[0.5, 0.3, 0.2], [0.1, 0.2, 0.7]])
        assert top_k_accuracy(logits, np.array([1, 0]), k=2) == pytest.approx(50.0)
        assert top_k_accuracy(logits, np.array([1, 0]), k=3) == pytest.approx(100.0)

    def test_average_meter(self):
        meter = AverageMeter()
        meter.update(1.0, weight=1)
        meter.update(3.0, weight=3)
        assert meter.average == pytest.approx(2.5)
        meter.reset()
        assert meter.average == 0.0


class TestDistillation:
    def test_config_validation(self):
        with pytest.raises(ValueError):
            DistillationConfig(alpha=1.5)
        with pytest.raises(ValueError):
            DistillationConfig(temperature=0.0)
        with pytest.raises(ValueError):
            DistillationConfig(kind="medium")

    def test_soft_loss_zero_for_identical(self, rng):
        logits = Tensor(rng.normal(size=(4, 5)))
        loss = distillation_loss(logits, logits, DistillationConfig(kind="soft"))
        assert loss.item() == pytest.approx(0.0, abs=1e-10)

    def test_hard_loss_uses_teacher_argmax(self, rng):
        student = Tensor(rng.normal(size=(4, 5)))
        teacher = Tensor(np.eye(5)[:4] * 10)
        loss = distillation_loss(student, teacher, DistillationConfig(kind="hard"))
        assert loss.item() > 0.0

    def test_combined_loss_interpolates(self, rng):
        logits = Tensor(rng.normal(size=(4, 5)))
        labels = np.array([0, 1, 2, 3])
        teacher = Tensor(rng.normal(size=(4, 5)))
        no_kd = combined_loss(logits, logits, labels, None, None)
        with_kd = combined_loss(logits, logits, labels, teacher,
                                DistillationConfig(alpha=0.5))
        assert no_kd.item() != with_kd.item()


class TestTrainerAndFinetuner:
    @pytest.fixture(scope="class")
    def tiny_finetuner(self):
        config = FinetuneConfig(model_name="deit-tiny", train_samples=64, test_samples=32,
                                pretrain_epochs=2, finetune_epochs=1, batch_size=16,
                                learning_rate=2e-3)
        return ViTALiTyFinetuner(config)

    def test_trainer_reduces_loss(self):
        model = create_model("deit-tiny", attention_mode="softmax")
        dataset = SyntheticImageNet()
        images, labels = dataset.generate(64)
        loader = DataLoader(normalize_images(images), labels, batch_size=16, seed=0)
        trainer = Trainer(model, TrainingConfig(epochs=3, batch_size=16, learning_rate=2e-3))
        history = trainer.fit(loader)
        assert len(history) == 3
        assert history[-1].train_loss < history[0].train_loss

    def test_trainer_evaluate_returns_percentage(self, tiny_finetuner):
        model, acc = tiny_finetuner.pretrained_baseline()
        assert 0.0 <= acc <= 100.0

    def test_scheme_names_complete(self):
        assert set(SCHEMES) == {"baseline", "sparse", "lowrank", "lowrank+sparse",
                                "lowrank+sparse+kd", "vitality", "vitality+kd"}

    def test_unknown_scheme_rejected(self, tiny_finetuner):
        with pytest.raises(ValueError):
            tiny_finetuner.run_scheme("magic")

    def test_lowrank_scheme_requires_no_training(self, tiny_finetuner):
        result = tiny_finetuner.run_scheme("lowrank")
        assert result.history == []
        assert 0.0 <= result.accuracy <= 100.0

    def test_vitality_scheme_tracks_occupancy(self, tiny_finetuner):
        result = tiny_finetuner.run_scheme("vitality", epochs=1)
        assert len(result.sparse_occupancy_per_epoch) == 1
        assert 0.0 <= result.sparse_occupancy_per_epoch[0] <= 1.0

    def test_weight_transfer_preserves_values(self, tiny_finetuner):
        baseline, _ = tiny_finetuner.pretrained_baseline()
        taylor = create_model("deit-tiny", attention_mode="taylor")
        tiny_finetuner._transfer_weights(baseline, taylor)
        source = dict(baseline.named_parameters())
        for name, parameter in taylor.named_parameters():
            np.testing.assert_allclose(parameter.data, source[name].data)
