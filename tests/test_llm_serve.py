"""Tests for LLM serving: continuous batching, KV accounting, disaggregation."""

from __future__ import annotations

import json

import pytest

from repro.engine import ResultCache
from repro.plan import estimate_llm_pools, plan_llm_capacity
from repro.serve import (
    KVCacheConfig,
    PoissonTraffic,
    ReplayTraffic,
    TokenDistribution,
    TokenProfile,
    WorkloadMix,
    serve,
    serve_llm,
)

MIX = WorkloadMix.of(["decoder"])


def _traffic(rate: float = 15.0, mix: WorkloadMix = MIX) -> PoissonTraffic:
    return PoissonTraffic(rate=rate, mix=mix)


class TestTokenProfiles:
    def test_distribution_grammar(self):
        assert TokenDistribution.parse("512") == TokenDistribution(512, 512)
        assert TokenDistribution.parse("64:256") == TokenDistribution(64, 256)
        assert TokenDistribution.parse(128).mean == 128.0
        with pytest.raises(ValueError):
            TokenDistribution.parse("256:64")

    def test_unprofiled_requests_carry_no_tokens(self):
        requests = _traffic().arrivals(2.0, seed=0)
        assert all(r.prompt_tokens is None and r.output_tokens is None
                   for r in requests)

    def test_profiled_requests_sample_in_range(self):
        mix = WorkloadMix.of(["decoder"],
                             tokens=TokenProfile.of("128:256", 32))
        requests = PoissonTraffic(rate=50.0, mix=mix).arrivals(2.0, seed=0)
        assert requests
        assert all(128 <= r.prompt_tokens <= 256 for r in requests)
        assert all(r.output_tokens == 32 for r in requests)
        assert len({r.prompt_tokens for r in requests}) > 1
        again = PoissonTraffic(rate=50.0, mix=mix).arrivals(2.0, seed=0)
        assert requests == again

    def test_profiles_do_not_disturb_unprofiled_arrivals(self):
        """Adding a profile must not shift the arrival sequence itself."""

        plain = _traffic(50.0).arrivals(2.0, seed=0)
        mix = WorkloadMix.of(["decoder"], tokens=TokenProfile.of(512, 64))
        profiled = PoissonTraffic(rate=50.0, mix=mix).arrivals(2.0, seed=0)
        assert [(r.arrival, r.model) for r in plain] == \
            [(r.arrival, r.model) for r in profiled]

    def test_replay_token_records(self):
        trace = ReplayTraffic.from_records(
            [[0.0, "decoder", 128, 8], [0.5, "decoder", 256, 4]])
        requests = trace.arrivals(1.0, seed=0)
        assert [(r.prompt_tokens, r.output_tokens) for r in requests] == \
            [(128, 8), (256, 4)]
        with pytest.raises(ValueError):
            ReplayTraffic.from_records([[0.0, "decoder", 128]])


class TestKVCache:
    def test_capacity_from_sram(self):
        from repro.workloads import get_workload
        kv = KVCacheConfig()
        per_token = kv.bytes_per_token(get_workload("decoder"))
        # decoder: 12 layers x 12 heads x (64 + 64) dims x 2 bytes.
        assert per_token == 12 * 12 * 128 * 2
        report = serve_llm(_traffic(2.0), fleet="1xvitality", duration=1.0,
                           prompt_tokens=64, output_tokens=4)
        expected = int(200 * 1024 * kv.dram_ratio // per_token)
        assert report.per_replica[0].kv_capacity_tokens == expected

    def test_admission_at_exactly_full_capacity(self):
        """A reservation equal to the remaining capacity must be admitted."""

        trace = ReplayTraffic.from_records([[0.0, "decoder", 96, 32]])
        report = serve_llm(trace, fleet="1xvitality", duration=1.0,
                           kv=KVCacheConfig(capacity_tokens=128))
        assert report.completed == 1
        assert report.per_replica[0].kv_peak_tokens == 128

    def test_oversized_request_is_a_clean_error(self):
        trace = ReplayTraffic.from_records([[0.0, "decoder", 256, 16]])
        with pytest.raises(ValueError, match="KV tokens"):
            serve_llm(trace, fleet="1xvitality", duration=1.0,
                      kv=KVCacheConfig(capacity_tokens=128))

    def test_completion_unblocks_queued_request(self):
        """Two requests, capacity for one: the second must wait for the
        first's completion to free KV, then run to completion."""

        trace = ReplayTraffic.from_records(
            [[0.0, "decoder", 96, 16], [0.001, "decoder", 96, 16]])
        blocked = serve_llm(trace, fleet="1xvitality", duration=1.0,
                            kv=KVCacheConfig(capacity_tokens=128))
        ample = serve_llm(trace, fleet="1xvitality", duration=1.0,
                          kv=KVCacheConfig(capacity_tokens=4096))
        assert blocked.completed == ample.completed == 2
        assert blocked.per_replica[0].kv_peak_tokens <= 128
        # Under the tight cap the second request's admission waits for the
        # first's *completion* (its decode included), not just its prefill.
        assert blocked.queue_wait.max > ample.queue_wait.max + 0.005

    def test_kv_never_exceeds_capacity(self):
        report = serve_llm(_traffic(30.0), fleet="1xvitality", duration=2.0,
                           kv=KVCacheConfig(capacity_tokens=2048),
                           prompt_tokens=256, output_tokens=32)
        replica = report.per_replica[0]
        assert 0 < replica.kv_peak_tokens <= 2048


class TestServeLLM:
    def test_deterministic_reports(self):
        first = serve_llm(_traffic(), fleet="2xvitality", duration=2.0, seed=4)
        second = serve_llm(_traffic(), fleet="2xvitality", duration=2.0, seed=4)
        assert first.to_json() == second.to_json()

    def test_disaggregated_deterministic(self):
        kwargs = dict(prefill_fleet="1xvitality", decode_fleet="1xvitality",
                      duration=2.0, seed=4)
        first = serve_llm(_traffic(), **kwargs)
        second = serve_llm(_traffic(), **kwargs)
        assert first.to_json() == second.to_json()

    def test_every_request_served_with_roles(self):
        report = serve_llm(_traffic(), prefill_fleet="1xvitality",
                           decode_fleet="1xvitality", duration=2.0, seed=0)
        assert report.completed == report.offered > 0
        roles = {r.role for r in report.per_replica}
        assert roles == {"prefill", "decode"}
        decode = next(r for r in report.per_replica if r.role == "decode")
        prefill = next(r for r in report.per_replica if r.role == "prefill")
        assert decode.decode_steps > 0
        # Completions are recorded on the decode pool; the prefill pool only
        # runs prompt chunks.
        assert decode.requests == report.completed
        assert prefill.requests == 0 and prefill.decode_steps == 0

    def test_ttft_and_tpot_sanity(self):
        report = serve_llm(_traffic(2.0), fleet="1xvitality", duration=2.0,
                           prompt_tokens=512, output_tokens=16)
        # TTFT covers at least the prefill compute (512 tokens ~ 26ms on
        # vitality), TPOT at least one decode step (~1ms), both well under
        # a second at this trivial load.
        assert 0.02 < report.ttft.mean < 0.2
        assert 5e-4 < report.tpot.mean < 0.05
        assert report.llm["generated_tokens"] == report.completed * 15
        assert report.llm["prefill_tokens"] == report.offered * 512

    def test_continuous_beats_monolithic_decode_throughput(self):
        cache = ResultCache(max_entries=4096)
        mix = WorkloadMix.of(["decoder"],
                             tokens=TokenProfile.of(256, "16:128"))
        traffic = PoissonTraffic(rate=40.0, mix=mix)
        rates = {}
        for scheduler in ("continuous", "monolithic"):
            report = serve_llm(traffic, fleet="2xvitality", duration=2.0,
                               seed=0, scheduler=scheduler, cache=cache)
            rates[scheduler] = report.llm["decode_tokens_per_second"]
        assert rates["continuous"] > rates["monolithic"]

    def test_monolithic_rejects_disaggregated_fleets(self):
        with pytest.raises(ValueError, match="monolithic"):
            serve_llm(_traffic(), prefill_fleet="1xvitality",
                      decode_fleet="1xvitality", scheduler="monolithic",
                      duration=1.0)

    def test_fleet_arguments_are_exclusive(self):
        with pytest.raises(ValueError):
            serve_llm(_traffic(), fleet="1xvitality",
                      prefill_fleet="1xvitality", decode_fleet="1xvitality",
                      duration=1.0)
        with pytest.raises(ValueError):
            serve_llm(_traffic(), duration=1.0)

    def test_non_sequence_model_is_rejected(self):
        traffic = PoissonTraffic(rate=5.0, mix=WorkloadMix.of(["deit-tiny"]))
        with pytest.raises(ValueError, match="sequence-family"):
            serve_llm(traffic, fleet="1xvitality", duration=1.0)

    def test_classic_report_shape_unchanged(self):
        """The additive LLM fields must not leak into classic serve JSON."""

        report = serve(_traffic(5.0), "1xvitality", duration=1.0, seed=0)
        payload = json.loads(report.to_json())
        assert "ttft" not in payload and "tpot" not in payload
        assert "llm" not in payload
        assert all("role" not in replica for replica in payload["per_replica"])
        assert "ttft_p95_ms" not in report.summary_row()

    def test_llm_report_json_round_trip(self):
        report = serve_llm(_traffic(), fleet="1xvitality", duration=1.0, seed=0)
        payload = json.loads(report.to_json())
        assert payload["llm"]["scheduler"] == "continuous"
        assert payload["ttft"]["count"] == report.completed
        assert payload["per_replica"][0]["role"] == "unified"


class TestLLMPlanning:
    def test_estimate_llm_pools(self):
        estimate = estimate_llm_pools("2xvitality", "1xvitality", 10.0,
                                      "decoder", prompt_tokens=512,
                                      output_tokens=64)
        assert estimate.prefill_stable
        assert estimate.prefill_service_seconds > 0.01
        assert estimate.predicted_ttft(0.95) >= estimate.prefill_service_seconds
        assert 1 <= estimate.decode_batch <= estimate.decode_concurrency_cap
        payload = estimate.to_dict()
        assert payload["stable"] == estimate.stable

    def test_estimate_overload_is_unstable(self):
        estimate = estimate_llm_pools("1xvitality", "1xvitality", 500.0,
                                      "decoder")
        assert not estimate.stable
        assert estimate.ttft_mean_seconds is None or estimate.tpot_seconds is None

    def test_plan_llm_capacity_chooses_and_validates(self):
        payload = plan_llm_capacity(
            8.0, "decoder", ttft_slo_seconds=0.2, tpot_slo_seconds=0.01,
            duration=1.0, max_replicas=4, top_k=1)
        assert payload["evaluated"] == 6       # splits of 2..4 replicas
        chosen = payload["chosen"]
        assert chosen is not None
        assert chosen["slo_attained"]
        reference = payload["colocated_reference"]
        assert reference["fleet"] == f"{chosen['replicas']}xvitality"
