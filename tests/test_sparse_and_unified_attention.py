"""Tests for the Sanger sparse attention and the unified ViTALiTy attention."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.attention import (
    SangerSparseAttention,
    SoftmaxAttention,
    TaylorAttention,
    ViTALiTyAttention,
    pack_and_split,
    predict_sparsity_mask,
    quantize_symmetric,
    softmax_attention,
)
from repro.tensor import Tensor


class TestQuantization:
    def test_quantization_bounded_error(self, rng):
        x = rng.normal(size=(8, 16))
        quantised = quantize_symmetric(x, bits=8)
        scale = np.abs(x).max(axis=-1, keepdims=True) / 127
        assert np.max(np.abs(quantised - x)) <= scale.max() / 2 + 1e-12

    def test_lower_bits_mean_larger_error(self, rng):
        x = rng.normal(size=(4, 32))
        error4 = np.abs(quantize_symmetric(x, bits=4) - x).mean()
        error8 = np.abs(quantize_symmetric(x, bits=8) - x).mean()
        assert error8 < error4

    def test_zero_row_handled(self):
        np.testing.assert_allclose(quantize_symmetric(np.zeros((2, 4))), 0.0)

    def test_invalid_bits(self):
        with pytest.raises(ValueError):
            quantize_symmetric(np.ones((2, 2)), bits=0)


class TestSparsityMask:
    def test_mask_shape_and_dtype(self, qkv_small):
        q, k, _ = qkv_small
        mask = predict_sparsity_mask(q, k, threshold=0.1)
        assert mask.shape == q.shape[:-1] + (k.shape[-2],)
        assert mask.dtype == bool

    def test_every_row_has_at_least_one_entry(self, rng):
        q = rng.normal(size=(2, 2, 10, 8))
        k = rng.normal(size=(2, 2, 10, 8))
        mask = predict_sparsity_mask(q, k, threshold=0.99)
        assert np.all(mask.sum(axis=-1) >= 1)

    def test_threshold_zero_keeps_everything(self, qkv_small):
        q, k, _ = qkv_small
        assert predict_sparsity_mask(q, k, threshold=0.0).all()

    def test_higher_threshold_is_sparser(self, rng):
        q = rng.normal(size=(1, 2, 16, 8))
        k = rng.normal(size=(1, 2, 16, 8))
        low = predict_sparsity_mask(q, k, threshold=0.02).mean()
        high = predict_sparsity_mask(q, k, threshold=0.5).mean()
        assert high <= low

    def test_invalid_threshold(self, qkv_small):
        q, k, _ = qkv_small
        with pytest.raises(ValueError):
            predict_sparsity_mask(q, k, threshold=1.5)


class TestPackAndSplit:
    def test_dense_mask_row_count(self):
        mask = np.ones((4, 64), dtype=bool)
        result = pack_and_split(mask, row_capacity=64)
        assert result.packed_rows == 4
        assert result.density == 1.0

    def test_empty_mask(self):
        result = pack_and_split(np.zeros((4, 8), dtype=bool))
        assert result.packed_rows == 0
        assert result.density == 0.0
        assert result.load_balance_efficiency == 1.0

    def test_long_rows_are_split(self):
        mask = np.ones((1, 130), dtype=bool)
        result = pack_and_split(mask, row_capacity=64)
        assert result.packed_rows == 3   # 64 + 64 + 2

    def test_short_rows_are_packed(self):
        mask = np.zeros((8, 64), dtype=bool)
        mask[:, :8] = True              # 8 rows of 8 entries fit in one 64-wide row
        result = pack_and_split(mask, row_capacity=64)
        assert result.packed_rows == 1

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            pack_and_split(np.ones((2, 2), dtype=bool), row_capacity=0)

    @settings(max_examples=25, deadline=None)
    @given(rows=st.integers(1, 8), cols=st.integers(1, 80), density=st.floats(0.0, 1.0))
    def test_capacity_conservation_property(self, rows, cols, density):
        """Packed rows always hold every active entry within capacity."""

        rng = np.random.default_rng(rows * 100 + cols)
        mask = rng.random((rows, cols)) < density
        result = pack_and_split(mask, row_capacity=32)
        active = int(mask.sum())
        if active == 0:
            assert result.packed_rows == 0
        else:
            # Enough rows to hold all entries, never more rows than entries.
            assert result.packed_rows >= int(np.ceil(active / 32))
            assert result.packed_rows <= active
            assert 0.0 < result.load_balance_efficiency <= 1.0


class TestSangerSparseAttention:
    def test_threshold_zero_equals_softmax(self, qkv_tensors, qkv_small):
        q, k, v = qkv_small
        sparse = SangerSparseAttention(threshold=0.0)(*qkv_tensors).data
        np.testing.assert_allclose(sparse, softmax_attention(q, k, v), rtol=1e-6, atol=1e-8)

    def test_output_shape_and_stats(self, qkv_tensors):
        module = SangerSparseAttention(threshold=0.05)
        out = module(*qkv_tensors)
        assert out.shape == qkv_tensors[0].shape
        assert 0.0 < module.last_stats["mask_density"] <= 1.0

    def test_higher_threshold_lower_density(self, qkv_tensors):
        low = SangerSparseAttention(threshold=0.02)
        high = SangerSparseAttention(threshold=0.5)
        low(*qkv_tensors)
        high(*qkv_tensors)
        assert high.last_stats["mask_density"] <= low.last_stats["mask_density"]

    def test_rows_remain_normalised(self, qkv_tensors):
        """Masked softmax still produces a convex combination of the values."""

        q, k, v = qkv_tensors
        ones = Tensor(np.ones_like(v.data))
        out = SangerSparseAttention(threshold=0.2)(q, k, ones)
        np.testing.assert_allclose(out.data, 1.0, rtol=1e-6)

    def test_gradients_flow(self, qkv_small):
        q, k, v = qkv_small
        vt = Tensor(v, requires_grad=True)
        SangerSparseAttention(threshold=0.1)(Tensor(q), Tensor(k), vt).sum().backward()
        assert vt.grad is not None

    def test_invalid_threshold(self):
        with pytest.raises(ValueError):
            SangerSparseAttention(threshold=-0.1)


class TestViTALiTyAttention:
    def test_eval_mode_equals_pure_taylor(self, qkv_tensors):
        """At inference the sparse component is dropped: output == Taylor attention."""

        module = ViTALiTyAttention(threshold=0.5)
        module.eval()
        unified = module(*qkv_tensors).data
        taylor = TaylorAttention()(*qkv_tensors).data
        np.testing.assert_allclose(unified, taylor, rtol=1e-10)
        assert module.last_stats["uses_sparse_component"] == 0.0

    def test_training_mode_includes_sparse_residual(self, qkv_tensors):
        module = ViTALiTyAttention(threshold=0.02)
        module.train()
        unified = module(*qkv_tensors).data
        taylor = TaylorAttention()(*qkv_tensors).data
        assert np.max(np.abs(unified - taylor)) > 0.0
        assert module.last_stats["uses_sparse_component"] == 1.0

    def test_training_with_low_threshold_approaches_softmax(self, qkv_tensors, qkv_small):
        """Threshold ~ 0 keeps the whole residual: output ~= exact softmax attention."""

        q, k, v = qkv_small
        module = ViTALiTyAttention(threshold=0.0)
        module.train()
        unified = module(*qkv_tensors).data
        np.testing.assert_allclose(unified, softmax_attention(q, k, v), atol=1e-6)

    def test_use_sparse_in_eval_flag(self, qkv_tensors):
        module = ViTALiTyAttention(threshold=0.02, use_sparse_in_eval=True)
        module.eval()
        unified = module(*qkv_tensors).data
        taylor = TaylorAttention()(*qkv_tensors).data
        assert np.max(np.abs(unified - taylor)) > 0.0

    def test_occupancy_stats_reported(self, qkv_tensors):
        module = ViTALiTyAttention(threshold=0.2)
        module.train()
        module(*qkv_tensors)
        assert "sparse_residual_occupancy" in module.last_stats
        assert 0.0 <= module.last_stats["sparse_residual_occupancy"] <= 1.0

    def test_strong_connections_increase_residual(self, rng):
        """Sharper attention (larger logits) leaves a larger strong/sparse residual."""

        v = rng.normal(size=(1, 1, 16, 8))
        weak_q = rng.normal(size=(1, 1, 16, 8)) * 0.2
        weak_k = rng.normal(size=(1, 1, 16, 8)) * 0.2
        strong_q, strong_k = weak_q * 12, weak_k * 12
        module = ViTALiTyAttention(threshold=0.1)
        module.train()
        module(Tensor(weak_q), Tensor(weak_k), Tensor(v))
        weak_residual = module.last_stats["sparse_residual_magnitude"]
        module(Tensor(strong_q), Tensor(strong_k), Tensor(v))
        strong_residual = module.last_stats["sparse_residual_magnitude"]
        assert strong_residual > weak_residual

    def test_gradients_flow_in_training_mode(self, qkv_small):
        q, k, v = qkv_small
        qt, kt, vt = Tensor(q, requires_grad=True), Tensor(k, requires_grad=True), Tensor(v, requires_grad=True)
        module = ViTALiTyAttention(threshold=0.5)
        module.train()
        module(qt, kt, vt).sum().backward()
        assert qt.grad is not None
        assert vt.grad is not None
