"""Million-request serving: goldens, streaming error bounds, indexed routing.

Four guarantees of the scale work, pinned:

- **Bit-identity of the default path** — ``summary="exact"`` reports are
  byte-for-byte what the pre-streaming simulator produced
  (``tests/data/serve_goldens.json``, captured before lazy arrivals, the
  ``LoadIndex`` router and heapified event seeding landed);
- **Laziness is unobservable** — a pattern exposing only the materialised
  ``arrivals()`` list serves bit-identically to its generator-native self;
- **Streaming summaries honour the documented error bound** — running-sum
  figures (counts, means, max, violations, energy, windows' arrival and
  completion counts) are exact, quantiles are P² estimates within 15 %
  relative plus half a millisecond absolute;
- **The analytic-first planner simulates less than it enumerates**, and
  ``jobs=N`` validation returns the serial measurements.
"""

import json
import os
from pathlib import Path

import pytest

from golden_configs import build_golden_reports
from repro.plan import Autoscaler, plan_capacity
from repro.serve import (
    BurstyTraffic,
    DiurnalTraffic,
    LeastLoadedRouter,
    PoissonTraffic,
    TokenProfile,
    WorkloadMix,
    compare,
    serve,
    serve_llm,
)

GOLDENS = Path(__file__).parent / "data" / "serve_goldens.json"
MIX = WorkloadMix.of(["deit-tiny", "levit-128"], [2.0, 1.0])
LLM_MIX = WorkloadMix.of(["decoder"], tokens=TokenProfile.of("64:256", "16:64"))


def close(estimate: float, exact: float) -> bool:
    """The documented streaming-quantile envelope: 15% relative plus 0.5ms."""

    return abs(estimate - exact) <= 0.15 * abs(exact) + 5e-4


class TestExactBitIdentity:
    def test_reports_match_pre_streaming_goldens(self):
        expected = json.loads(GOLDENS.read_text())
        actual = build_golden_reports()
        assert set(actual) == set(expected)
        for name in expected:
            assert actual[name] == expected[name], name

    def test_materialised_pattern_serves_identically_to_lazy(self):
        """Event order must not depend on how arrivals are produced: a
        wrapper hiding ``iter_arrivals`` (so the simulator falls back to the
        materialised list) yields byte-identical reports."""

        class ListOnly:
            def __init__(self, inner):
                self._inner = inner

            def arrivals(self, duration, seed):
                return self._inner.arrivals(duration, seed)

            def to_dict(self):
                return self._inner.to_dict()

        traffic = PoissonTraffic(rate=80.0, mix=MIX)
        kwargs = dict(policy="timeout", router="least-loaded", duration=2.0,
                      seed=7, window_seconds=0.5)
        lazy = serve(traffic, "2xvitality,1xgpu:taylor", **kwargs)
        listed = serve(ListOnly(traffic), "2xvitality,1xgpu:taylor", **kwargs)
        assert lazy.to_json() == listed.to_json()

    def test_linear_scan_router_matches_load_index(self):
        """The indexed router is an implementation detail: forcing the
        O(fleet) reference scan changes nothing, autoscaling included."""

        class LinearLeastLoaded(LeastLoadedRouter):
            uses_load_index = False

        traffic = DiurnalTraffic(peak_rate=120.0, mix=MIX, period=3.0)

        def run(router):
            scaler = Autoscaler("queue-depth", "vitality", max_replicas=4,
                                interval=0.25, provision_seconds=0.1)
            return serve(traffic, "1xvitality", policy="timeout",
                         router=router, duration=2.0, seed=11,
                         autoscaler=scaler, window_seconds=0.5)

        assert run("least-loaded").to_json() == \
            run(LinearLeastLoaded()).to_json()


class TestStreamingBound:
    @pytest.mark.parametrize("traffic", [
        PoissonTraffic(rate=300.0, mix=MIX),
        BurstyTraffic(rate=250.0, mix=MIX),
        DiurnalTraffic(peak_rate=400.0, mix=MIX, period=2.0),
    ], ids=["poisson", "bursty", "diurnal"])
    def test_streaming_matches_exact_within_bound(self, traffic):
        kwargs = dict(policy="timeout", router="least-loaded", duration=2.0,
                      seed=3, window_seconds=0.5,
                      percentiles=(0.5, 0.95, 0.99, 0.999))
        exact = serve(traffic, "2xvitality", **kwargs)
        stream = serve(traffic, "2xvitality", **kwargs, summary="streaming")
        assert stream.offered == exact.offered
        assert stream.completed == exact.completed
        assert stream.slo_violation_rate == exact.slo_violation_rate
        assert stream.total_energy_joules == exact.total_energy_joules
        assert stream.makespan == exact.makespan
        assert stream.latency.count == exact.latency.count
        assert stream.latency.max == exact.latency.max
        assert stream.latency.mean == pytest.approx(exact.latency.mean)
        for field in ("p50", "p95", "p99"):
            assert close(getattr(stream.latency, field),
                         getattr(exact.latency, field)), field
        assert close(dict(stream.latency.extras)["p99.9"],
                     dict(exact.latency.extras)["p99.9"])
        for (model, sketch), (_, summary) in zip(stream.per_model,
                                                 exact.per_model):
            assert sketch.count == summary.count, model
            assert close(sketch.p99, summary.p99), model
        assert len(stream.windows) == len(exact.windows)
        for ours, theirs in zip(stream.windows, exact.windows):
            assert (ours.start, ours.end) == (theirs.start, theirs.end)
            assert ours.arrivals == theirs.arrivals
            assert ours.completed == theirs.completed
            assert close(ours.p99, theirs.p99)
        assert stream.config["summary"] == "streaming"
        assert "summary" not in exact.config

    @pytest.mark.parametrize("fleets", [
        dict(fleet="2xvitality"),
        dict(prefill_fleet="1xvitality", decode_fleet="1xvitality"),
    ], ids=["continuous", "disaggregated"])
    def test_llm_streaming_matches_exact(self, fleets):
        kwargs = dict(duration=2.0, seed=5, **fleets)
        exact = serve_llm(PoissonTraffic(rate=25.0, mix=LLM_MIX), **kwargs)
        stream = serve_llm(PoissonTraffic(rate=25.0, mix=LLM_MIX), **kwargs,
                           summary="streaming")
        assert stream.offered == exact.offered
        assert stream.completed == exact.completed
        assert stream.makespan == exact.makespan
        assert stream.total_energy_joules == exact.total_energy_joules
        # Attainments come from exact streaming counters, not sketches.
        for key in ("generated_tokens", "decode_steps", "ttft_attainment",
                    "tpot_attainment", "slo_attainment"):
            assert stream.llm[key] == exact.llm[key], key
        for field in ("p50", "p95", "p99"):
            assert close(getattr(stream.ttft, field),
                         getattr(exact.ttft, field)), field
            assert close(getattr(stream.tpot, field),
                         getattr(exact.tpot, field)), field

    def test_compare_threads_scale_knobs(self):
        traffic = PoissonTraffic(rate=120.0, mix=MIX)
        rows = compare(traffic, {"small": "1xvitality", "big": "2xvitality"},
                       duration=1.0, seed=2, window_seconds=0.5,
                       summary="streaming")
        for name, report in rows.items():
            assert report.config["summary"] == "streaming", name
            assert report.windows, name
        overload = PoissonTraffic(rate=1200.0, mix=MIX)
        scaled = compare(overload, {"dynamic": "1xvitality"}, duration=1.0,
                         seed=2,
                         autoscaler=Autoscaler("queue-depth", "vitality",
                                               max_replicas=3, interval=0.25,
                                               provision_seconds=0.1))
        assert scaled["dynamic"].scale_events


class TestAnalyticFirstPlanning:
    SCENARIO = dict(rate=1200.0, models=["deit-tiny"], slo_seconds=0.02,
                    duration=1.0, targets=("vitality",), max_replicas=4,
                    top_k=2, policy="fifo", seed=0)

    def test_simulates_strictly_fewer_than_it_enumerates(self):
        payload = plan_capacity(**self.SCENARIO)
        assert payload["simulated"] == len(payload["validated"])
        assert payload["simulated"] < payload["evaluated"]

    @pytest.mark.skipif((os.cpu_count() or 1) < 2,
                        reason="parallel validation needs >= 2 CPUs")
    def test_jobs_matches_serial_measurements(self):
        serial = plan_capacity(**self.SCENARIO)
        parallel = plan_capacity(**self.SCENARIO, jobs=2)
        for key in ("candidates", "validated", "chosen", "boundary",
                    "pareto_frontier", "simulated"):
            assert serial[key] == parallel[key], key
