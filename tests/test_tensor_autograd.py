"""Unit tests for the reverse-mode autograd engine."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.tensor import Tensor, no_grad, is_grad_enabled

from tests.conftest import numeric_gradient


def _check_gradient(build, array, atol=1e-5):
    """Compare the autograd gradient of ``build(Tensor)`` against finite differences."""

    tensor = Tensor(array.copy(), requires_grad=True)
    output = build(tensor)
    output.backward()
    numeric = numeric_gradient(lambda a: float(build(Tensor(a)).data), array.copy())
    np.testing.assert_allclose(tensor.grad, numeric, atol=atol, rtol=1e-4)


class TestBasicProperties:
    def test_tensor_wraps_numpy(self):
        t = Tensor([[1.0, 2.0], [3.0, 4.0]])
        assert t.shape == (2, 2)
        assert t.ndim == 2
        assert t.size == 4

    def test_requires_grad_default_false(self):
        assert not Tensor([1.0]).requires_grad

    def test_item_on_scalar(self):
        assert Tensor([[3.5]]).item() == pytest.approx(3.5)

    def test_detach_cuts_graph(self):
        t = Tensor([1.0, 2.0], requires_grad=True)
        d = (t * 2).detach()
        assert not d.requires_grad
        assert d._parents == ()

    def test_copy_is_independent(self):
        t = Tensor([1.0, 2.0])
        c = t.copy()
        c.data[0] = 99.0
        assert t.data[0] == 1.0

    def test_repr_mentions_requires_grad(self):
        assert "requires_grad=True" in repr(Tensor([1.0], requires_grad=True))

    def test_backward_requires_scalar(self):
        t = Tensor([1.0, 2.0], requires_grad=True)
        with pytest.raises(RuntimeError):
            (t * 2).backward()

    def test_backward_on_non_grad_tensor_raises(self):
        with pytest.raises(RuntimeError):
            Tensor([1.0]).backward()

    def test_no_grad_disables_graph(self):
        x = Tensor([1.0], requires_grad=True)
        with no_grad():
            assert not is_grad_enabled()
            y = x * 2.0
        assert not y.requires_grad
        assert is_grad_enabled()

    def test_grad_accumulates_across_uses(self):
        x = Tensor([2.0], requires_grad=True)
        y = x * 3.0 + x * 4.0
        y.backward()
        np.testing.assert_allclose(x.grad, [7.0])


class TestArithmeticGradients:
    def test_add_gradient(self, rng):
        a = rng.normal(size=(3, 4))
        _check_gradient(lambda t: (t + 2.0).sum(), a)

    def test_sub_gradient(self, rng):
        a = rng.normal(size=(3, 4))
        _check_gradient(lambda t: (5.0 - t).sum(), a)

    def test_mul_gradient(self, rng):
        a = rng.normal(size=(3, 4))
        b = rng.normal(size=(3, 4))
        _check_gradient(lambda t: (t * Tensor(b)).sum(), a)

    def test_div_gradient(self, rng):
        a = rng.normal(size=(3, 4)) + 3.0
        b = rng.normal(size=(3, 4)) + 3.0
        _check_gradient(lambda t: (Tensor(b) / t).sum(), a)

    def test_pow_gradient(self, rng):
        a = rng.normal(size=(3, 4)) + 2.0
        _check_gradient(lambda t: (t ** 3).sum(), a)

    def test_neg_gradient(self, rng):
        a = rng.normal(size=(3,))
        _check_gradient(lambda t: (-t).sum(), a)

    def test_broadcast_add_gradient(self, rng):
        a = rng.normal(size=(1, 4))
        other = rng.normal(size=(3, 4))
        _check_gradient(lambda t: (t + Tensor(other)).sum(), a)

    def test_broadcast_mul_reduces_grad_shape(self, rng):
        a = Tensor(rng.normal(size=(1, 4)), requires_grad=True)
        b = Tensor(rng.normal(size=(3, 4)))
        (a * b).sum().backward()
        assert a.grad.shape == (1, 4)

    def test_pow_rejects_tensor_exponent(self):
        with pytest.raises(TypeError):
            Tensor([2.0]) ** Tensor([2.0])

    def test_radd_and_rmul_with_scalars(self):
        t = Tensor([1.0, 2.0], requires_grad=True)
        out = (3.0 + t) * 2.0
        out.sum().backward()
        np.testing.assert_allclose(t.grad, [2.0, 2.0])


class TestMatmulGradients:
    def test_matmul_2d_gradient(self, rng):
        a = rng.normal(size=(3, 5))
        b = rng.normal(size=(5, 4))
        _check_gradient(lambda t: (t @ Tensor(b)).sum(), a)

    def test_matmul_gradient_wrt_second_operand(self, rng):
        a = rng.normal(size=(3, 5))
        b = rng.normal(size=(5, 4))
        _check_gradient(lambda t: (Tensor(a) @ t).sum(), b)

    def test_batched_matmul_gradient(self, rng):
        a = rng.normal(size=(2, 3, 4))
        b = rng.normal(size=(2, 4, 5))
        _check_gradient(lambda t: (t @ Tensor(b)).sum(), a)

    def test_broadcast_matmul_gradient(self, rng):
        a = rng.normal(size=(2, 3, 4))
        b = rng.normal(size=(4, 5))
        _check_gradient(lambda t: (Tensor(a) @ t).sum(), b)

    def test_matmul_value(self, rng):
        a = rng.normal(size=(3, 4))
        b = rng.normal(size=(4, 2))
        np.testing.assert_allclose((Tensor(a) @ Tensor(b)).data, a @ b)


class TestElementwiseGradients:
    def test_exp_gradient(self, rng):
        _check_gradient(lambda t: t.exp().sum(), rng.normal(size=(3, 3)))

    def test_log_gradient(self, rng):
        _check_gradient(lambda t: t.log().sum(), rng.uniform(0.5, 2.0, size=(3, 3)))

    def test_sqrt_gradient(self, rng):
        _check_gradient(lambda t: t.sqrt().sum(), rng.uniform(0.5, 2.0, size=(3, 3)))

    def test_tanh_gradient(self, rng):
        _check_gradient(lambda t: t.tanh().sum(), rng.normal(size=(3, 3)))

    def test_erf_gradient(self, rng):
        _check_gradient(lambda t: t.erf().sum(), rng.normal(size=(3, 3)))

    def test_abs_gradient(self, rng):
        _check_gradient(lambda t: t.abs().sum(), rng.normal(size=(3, 3)) + 0.5)

    def test_sigmoid_gradient(self, rng):
        _check_gradient(lambda t: t.sigmoid().sum(), rng.normal(size=(3, 3)))

    def test_relu_gradient(self, rng):
        _check_gradient(lambda t: t.relu().sum(), rng.normal(size=(3, 3)) + 0.1)

    def test_clip_gradient_masks_out_of_range(self):
        t = Tensor([-2.0, 0.0, 2.0], requires_grad=True)
        t.clip(-1.0, 1.0).sum().backward()
        np.testing.assert_allclose(t.grad, [0.0, 1.0, 0.0])

    def test_maximum_gradient_routes_to_larger(self):
        a = Tensor([1.0, 5.0], requires_grad=True)
        b = Tensor([3.0, 2.0], requires_grad=True)
        a.maximum(b).sum().backward()
        np.testing.assert_allclose(a.grad, [0.0, 1.0])
        np.testing.assert_allclose(b.grad, [1.0, 0.0])

    def test_where_gradient(self):
        a = Tensor([1.0, 2.0, 3.0], requires_grad=True)
        b = Tensor([10.0, 20.0, 30.0], requires_grad=True)
        condition = np.array([True, False, True])
        a.where(condition, b).sum().backward()
        np.testing.assert_allclose(a.grad, [1.0, 0.0, 1.0])
        np.testing.assert_allclose(b.grad, [0.0, 1.0, 0.0])


class TestReductionsAndShapes:
    def test_sum_axis_gradient(self, rng):
        a = rng.normal(size=(3, 4, 5))
        _check_gradient(lambda t: (t.sum(axis=1) ** 2).sum(), a)

    def test_sum_keepdims_shape(self):
        t = Tensor(np.ones((2, 3)))
        assert t.sum(axis=1, keepdims=True).shape == (2, 1)

    def test_mean_gradient(self, rng):
        a = rng.normal(size=(4, 6))
        _check_gradient(lambda t: (t.mean(axis=0) ** 2).sum(), a)

    def test_mean_multi_axis(self, rng):
        a = rng.normal(size=(2, 3, 4))
        value = Tensor(a).mean(axis=(0, 2))
        np.testing.assert_allclose(value.data, a.mean(axis=(0, 2)))

    def test_var_matches_numpy(self, rng):
        a = rng.normal(size=(5, 7))
        np.testing.assert_allclose(Tensor(a).var(axis=1).data, a.var(axis=1), rtol=1e-10)

    def test_max_gradient(self, rng):
        a = rng.normal(size=(4, 5))
        _check_gradient(lambda t: t.max(axis=1).sum(), a)

    def test_reshape_gradient(self, rng):
        a = rng.normal(size=(3, 4))
        _check_gradient(lambda t: (t.reshape(2, 6) ** 2).sum(), a)

    def test_transpose_default_swaps_last_two(self, rng):
        a = rng.normal(size=(2, 3, 4))
        assert Tensor(a).transpose().shape == (2, 4, 3)

    def test_transpose_gradient(self, rng):
        a = rng.normal(size=(3, 4))
        _check_gradient(lambda t: (t.transpose((1, 0)) @ Tensor(np.ones((3, 2)))).sum(), a)

    def test_getitem_gradient_is_scatter(self):
        t = Tensor(np.arange(6.0).reshape(2, 3), requires_grad=True)
        t[0].sum().backward()
        np.testing.assert_allclose(t.grad, [[1.0, 1.0, 1.0], [0.0, 0.0, 0.0]])

    def test_getitem_slice_gradient(self, rng):
        a = rng.normal(size=(4, 6))
        _check_gradient(lambda t: (t[:, 1:4] ** 2).sum(), a)

    def test_concat_gradient_splits(self):
        a = Tensor(np.ones((2, 2)), requires_grad=True)
        b = Tensor(np.ones((3, 2)), requires_grad=True)
        out = Tensor.concat([a, b], axis=0)
        (out * Tensor(np.arange(10.0).reshape(5, 2))).sum().backward()
        assert a.grad.shape == (2, 2)
        assert b.grad.shape == (3, 2)
        np.testing.assert_allclose(a.grad, [[0.0, 1.0], [2.0, 3.0]])

    def test_stack_shape(self):
        parts = [Tensor(np.ones((2, 3))) for _ in range(4)]
        assert Tensor.stack(parts, axis=0).shape == (4, 2, 3)

    def test_squeeze_and_expand_dims(self):
        t = Tensor(np.ones((2, 1, 3)))
        assert t.squeeze(1).shape == (2, 3)
        assert t.expand_dims(0).shape == (1, 2, 1, 3)
        with pytest.raises(ValueError):
            t.squeeze(0)

    def test_swapaxes(self):
        t = Tensor(np.ones((2, 3, 4)))
        assert t.swapaxes(0, 2).shape == (4, 3, 2)


class TestGraphMechanics:
    def test_diamond_graph_gradient(self):
        x = Tensor([3.0], requires_grad=True)
        a = x * 2.0
        b = x + 1.0
        y = (a * b).sum()
        y.backward()
        # d/dx (2x * (x+1)) = 4x + 2 = 14
        np.testing.assert_allclose(x.grad, [14.0])

    def test_deep_chain_gradient(self):
        x = Tensor([0.5], requires_grad=True)
        y = x
        for _ in range(50):
            y = y * 1.01
        y.sum().backward()
        np.testing.assert_allclose(x.grad, [1.01 ** 50], rtol=1e-10)

    def test_zero_grad_resets(self):
        x = Tensor([1.0], requires_grad=True)
        (x * 2).sum().backward()
        x.zero_grad()
        assert x.grad is None

    def test_explicit_grad_seed(self):
        x = Tensor([1.0, 2.0], requires_grad=True)
        y = x * 3.0
        y.backward(np.array([1.0, 10.0]))
        np.testing.assert_allclose(x.grad, [3.0, 30.0])


@settings(max_examples=25, deadline=None)
@given(rows=st.integers(1, 5), inner=st.integers(1, 5), cols=st.integers(1, 5))
def test_matmul_gradient_shapes_property(rows, inner, cols):
    """Gradient shapes always match operand shapes, whatever the dimensions."""

    rng = np.random.default_rng(0)
    a = Tensor(rng.normal(size=(rows, inner)), requires_grad=True)
    b = Tensor(rng.normal(size=(inner, cols)), requires_grad=True)
    (a @ b).sum().backward()
    assert a.grad.shape == (rows, inner)
    assert b.grad.shape == (inner, cols)


@settings(max_examples=25, deadline=None)
@given(st.lists(st.floats(-5, 5), min_size=1, max_size=20))
def test_sum_gradient_is_ones_property(values):
    """d(sum)/dx is exactly one for every element."""

    x = Tensor(np.array(values), requires_grad=True)
    x.sum().backward()
    np.testing.assert_allclose(x.grad, np.ones(len(values)))
