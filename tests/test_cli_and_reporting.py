"""Tests for the CLI and the markdown reporting helpers."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.experiments.reporting import (
    format_value,
    markdown_table,
    nested_dict_table,
    render_experiment,
)


class TestReporting:
    def test_format_value_floats(self):
        assert format_value(123.456) == "123"
        assert format_value(3.14159) == "3.14"
        assert format_value(0.01234) == "0.0123"
        assert format_value(0) == "0"

    def test_format_value_misc(self):
        assert format_value(True) == "yes"
        assert format_value([1.0, 2.0]) == "1.00, 2.00"
        assert format_value("text") == "text"

    def test_markdown_table_basic(self):
        table = markdown_table([{"a": 1, "b": 2.5}, {"a": 3, "b": 4.5}])
        lines = table.splitlines()
        assert lines[0] == "| a | b |"
        assert lines[1] == "|---|---|"
        assert len(lines) == 4

    def test_markdown_table_empty(self):
        assert markdown_table([]) == "(no rows)"

    def test_markdown_table_missing_cells(self):
        table = markdown_table([{"a": 1}, {"b": 2}], columns=["a", "b"])
        assert "|  | 2 |" in table.splitlines()[-1]

    def test_nested_dict_table(self):
        table = nested_dict_table({"deit-tiny": {"speedup": 3.0}, "levit-128": {"speedup": 5.0}})
        assert "deit-tiny" in table
        assert "speedup" in table.splitlines()[0]

    def test_render_experiment_mapping(self):
        assert "| name |" in render_experiment("x", {"row": {"col": 1.0}})

    def test_render_experiment_sequence(self):
        rendered = render_experiment("fig14", [0.1, 0.2])
        assert "index" in rendered

    def test_render_experiment_scalar(self):
        assert render_experiment("x", 3.0) == "3.00"


class TestCLI:
    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        output = capsys.readouterr().out
        assert "fig11" in output
        assert "deit-tiny" in output
        assert "vitality" in output

    def test_run_table1_markdown(self, capsys):
        assert main(["run", "tab1"]) == 0
        output = capsys.readouterr().out
        assert "Table I" in output
        assert "deit-tiny" in output

    def test_run_table6_json(self, capsys):
        assert main(["run", "tab6", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["vitality"]["processors"] == ["Acc.", "Div.", "Add."]

    def test_run_unknown_experiment(self, capsys):
        assert main(["run", "fig99"]) == 2

    def test_accelerate_command(self, capsys):
        assert main(["accelerate", "deit-tiny", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["latency_speedup"]["sanger"] > 1.0

    def test_accelerate_baseline_subset(self, capsys):
        assert main(["accelerate", "deit-tiny", "--baseline", "sanger", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert set(payload["latency_speedup"]) == {"sanger", "attention_sanger"}

    def test_accelerate_unknown_model_clean_error(self, capsys):
        assert main(["accelerate", "not-a-model"]) == 2
        error = capsys.readouterr().err
        assert "unknown workload" in error
        assert "families" in error        # the error lists the families

    def test_accelerate_unknown_baseline_clean_error(self, capsys):
        assert main(["accelerate", "deit-tiny", "--baseline", "tpu"]) == 2
        error = capsys.readouterr().err
        assert "unknown target" in error
        assert "vitality" in error    # the error lists what IS available

    def test_simulate_command_json(self, capsys):
        assert main(["simulate", "deit-tiny", "--target", "sanger", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["model"] == "deit-tiny"
        assert payload["target"] == "sanger"
        assert payload["end_to_end_latency"] > 0

    def test_simulate_unknown_target(self, capsys):
        assert main(["simulate", "deit-tiny", "--target", "abacus"]) == 2
        assert "unknown target" in capsys.readouterr().err

    def test_simulate_unknown_model(self, capsys):
        assert main(["simulate", "vgg16"]) == 2
        assert "unknown workload" in capsys.readouterr().err

    def test_simulate_markdown_output(self, capsys):
        assert main(["simulate", "deit-tiny", "--attention-only"]) == 0
        assert "end_to_end_latency_ms" in capsys.readouterr().out

    def test_sweep_command_json(self, capsys):
        assert main(["sweep", "--models", "deit-tiny", "--targets", "vitality,sanger",
                     "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert len(payload["runs"]) == 2
        assert {run["spec"]["target"] for run in payload["runs"]} == {"vitality", "sanger"}

    def test_sweep_command_markdown_reports_cache(self, capsys):
        assert main(["sweep", "--models", "deit-tiny", "--targets", "salo"]) == 0
        output = capsys.readouterr().out
        assert "| model |" in output
        assert "cache:" in output

    def test_sweep_unknown_target(self, capsys):
        assert main(["sweep", "--models", "deit-tiny", "--targets", "tpu"]) == 2
        assert "unknown target" in capsys.readouterr().err

    def test_sweep_unknown_model(self, capsys):
        assert main(["sweep", "--models", "resnet", "--targets", "vitality"]) == 2
        assert "unknown workload" in capsys.readouterr().err

    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            main([])
