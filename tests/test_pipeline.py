"""Tests for multi-stage pipeline serving and tandem-queue planning.

The acceptance assertions of the pipeline subsystem live here:

* the spec grammar parses and validates at construction time, with errors
  naming the offending stage;
* ``serve_pipeline`` is bit-reproducible under a fixed seed (exact and
  streaming summaries, with and without per-stage autoscaling) and leaves
  the classic single-model report shape untouched;
* the tandem M/M/c composition lands within 15% of the discrete-event
  simulator on 2-stage and 3-stage reference pipelines, and names the
  bottleneck stage when a pool saturates;
* ``plan_pipeline_capacity``'s chosen pools meet the end-to-end SLO in
  simulation while the bottleneck-stage-minus-one boundary misses it.
"""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.experiments import get_experiment, list_experiments
from repro.experiments.pipeline_exps import rag_pipeline_study
from repro.plan import Autoscaler, estimate_pipeline, plan_pipeline_capacity
from repro.serve import (
    PipelineSpec,
    PipelineStage,
    PoissonTraffic,
    StageRoute,
    WorkloadMix,
    serve,
    serve_pipeline,
)

#: Arrival stream for pipeline runs (the mix's model is ignored — each stage
#: serves its own workload).
TRAFFIC = lambda rate: PoissonTraffic(rate=rate, mix=WorkloadMix.of(["deit-tiny"]))

#: Reference pipelines at operating points where both the utilization and the
#: mean-latency predictions are expected to track simulation within 15%
#: (moderate load; the exponential-wait tail bias grows past ~70% utilization).
TWO_STAGE = "two = encoder[tokens=128] -> gen:encoder[tokens=256]"
TWO_POOLS = {"encoder": "1xvitality", "gen": "2xvitality"}
THREE_STAGE = "rag = encoder[tokens=256] -> rerank:encoder[tokens=64] -> deit-tiny"
THREE_POOLS = {"encoder": "2xvitality", "rerank": "1xvitality",
               "deit-tiny": "1xvitality"}


# ------------------------------------------------------------ spec grammar


class TestPipelineSpec:
    def test_parse_arrow_grammar(self):
        spec = PipelineSpec.parse(
            "rag = encoder[tokens=512] -> rerank:encoder[tokens=128] -> deit-tiny")
        assert spec.name == "rag"
        assert spec.entry == "encoder"
        assert [stage.name for stage in spec.stages] == \
            ["encoder", "rerank", "deit-tiny"]
        assert spec.stage("rerank").model == "encoder[tokens=128]"
        # Linear chains: each stage routes to the next with probability 1.
        assert spec.stage("encoder").routes == (StageRoute("rerank", 1.0),)
        assert spec.stage("deit-tiny").routes == ()
        assert spec.stage("deit-tiny").exit_probability() == 1.0

    def test_parse_defaults_name_and_labels(self):
        spec = PipelineSpec.parse("encoder[tokens=128] -> deit-tiny")
        assert spec.name == "pipeline"
        # Labels default to the model's family name (knobs stripped).
        assert spec.entry == "encoder"

    def test_single_stage_pipeline(self):
        spec = PipelineSpec.parse("solo = deit-tiny")
        assert len(spec.stages) == 1
        assert spec.expected_handoffs() == 0.0

    def test_cascade_visit_ratios(self):
        spec = PipelineSpec.cascade("spec", "encoder[tokens=32]",
                                    "encoder[tokens=512]", acceptance_rate=0.7)
        ratios = spec.visit_ratios()
        assert ratios["draft"] == pytest.approx(1.0)
        assert ratios["verify"] == pytest.approx(0.3)
        assert spec.expected_handoffs() == pytest.approx(0.3)
        assert spec.stage("draft").exit_probability() == pytest.approx(0.7)

    def test_to_dict_round_trips_through_constructor(self):
        spec = PipelineSpec.cascade("spec", "encoder[tokens=32]",
                                    "encoder[tokens=512]", acceptance_rate=0.7)
        payload = spec.to_dict()
        rebuilt = PipelineSpec(
            payload["name"],
            tuple(PipelineStage(row["name"], row["model"],
                                tuple(StageRoute(route["to"], route["probability"])
                                      for route in row["routes"]))
                  for row in payload["stages"]),
            entry=payload["entry"])
        assert rebuilt.to_dict() == payload

    def test_unknown_model_error_names_the_stage(self):
        with pytest.raises(Exception, match=r"stage 'rerank'"):
            PipelineSpec.parse("rag = deit-tiny -> rerank:no-such-model")

    def test_bad_knob_error_names_the_stage(self):
        with pytest.raises(Exception, match=r"stage 'encoder'"):
            PipelineSpec.parse("rag = encoder[tokens=-4] -> deit-tiny")

    def test_duplicate_labels_rejected_with_hint(self):
        with pytest.raises(ValueError, match="label stages explicitly"):
            PipelineSpec.parse("encoder[tokens=512] -> encoder[tokens=128]")

    def test_route_probabilities_must_sum_to_one(self):
        with pytest.raises(ValueError, match="sum to 1"):
            PipelineSpec("bad", (
                PipelineStage("a", "deit-tiny",
                              routes=(StageRoute("b", 0.5),
                                      StageRoute(None, 0.2))),
                PipelineStage("b", "deit-tiny")), entry="a")

    def test_route_probability_must_be_positive(self):
        with pytest.raises(ValueError, match="positive"):
            PipelineStage("a", "deit-tiny",
                          routes=(StageRoute("b", -0.5),
                                  StageRoute(None, 1.5)))
            PipelineSpec("bad", (
                PipelineStage("a", "deit-tiny",
                              routes=(StageRoute(None, -0.5),
                                      StageRoute(None, 1.5))),), entry="a")

    def test_unknown_route_target_rejected(self):
        with pytest.raises(ValueError, match="unknown stage 'nowhere'"):
            PipelineSpec("bad", (
                PipelineStage("a", "deit-tiny",
                              routes=(StageRoute("nowhere", 1.0),)),),
                entry="a")

    def test_cycles_rejected(self):
        with pytest.raises(ValueError, match="routing cycle"):
            PipelineSpec("loop", (
                PipelineStage("a", "deit-tiny",
                              routes=(StageRoute("b", 1.0),)),
                PipelineStage("b", "deit-tiny",
                              routes=(StageRoute("a", 1.0),))), entry="a")

    def test_unreachable_stage_rejected(self):
        with pytest.raises(ValueError, match="unreachable"):
            PipelineSpec("bad", (
                PipelineStage("a", "deit-tiny"),
                PipelineStage("orphan", "deit-tiny")), entry="a")

    def test_bad_entry_and_empty_stage_rejected(self):
        with pytest.raises(ValueError, match="names no stage"):
            PipelineSpec("bad", (PipelineStage("a", "deit-tiny"),), entry="z")
        with pytest.raises(ValueError, match="empty stage"):
            PipelineSpec.parse("deit-tiny -> -> deit-tiny")

    def test_cascade_acceptance_rate_validated(self):
        with pytest.raises(ValueError, match="acceptance_rate"):
            PipelineSpec.cascade("bad", "deit-tiny", "deit-tiny",
                                 acceptance_rate=1.0)


# --------------------------------------------------------------- simulator


class TestServePipeline:
    def run(self, **kwargs):
        defaults = dict(duration=1.0, seed=0)
        defaults.update(kwargs)
        return serve_pipeline(TRAFFIC(120.0), THREE_STAGE, THREE_POOLS,
                              **defaults)

    def test_linear_chain_serves_every_request_through_every_stage(self):
        report = self.run()
        assert report.completed == report.offered > 0
        block = report.pipeline
        assert block["name"] == "rag"
        assert block["entry"] == "encoder"
        rows = {row["name"]: row for row in block["stages"]}
        assert set(rows) == {"encoder", "rerank", "deit-tiny"}
        # Every request visits every stage of a linear chain, paying two hops.
        for row in rows.values():
            assert row["requests"] == report.completed
            assert row["utilization"] > 0
            assert row["latency"]["mean"] > 0
        assert block["handoffs"] == 2 * report.completed
        # End-to-end latency covers the full traversal: at least the summed
        # stage means plus both handoff delays.
        stage_mean = sum(row["latency"]["mean"] for row in rows.values())
        assert report.latency.mean >= stage_mean
        assert report.latency.mean == pytest.approx(
            stage_mean + 2 * block["handoff_seconds"], rel=1e-9)

    def test_replica_reports_carry_stage_and_prefixed_names(self):
        report = self.run()
        stages = {replica.stage for replica in report.per_replica}
        assert stages == {"encoder", "rerank", "deit-tiny"}
        for replica in report.per_replica:
            assert replica.name.startswith(f"{replica.stage}/")

    def test_bit_reproducible_under_fixed_seed(self):
        assert self.run().to_json() == self.run().to_json()

    def test_streaming_summary_matches_exact(self):
        exact = self.run()
        streaming = self.run(summary="streaming")
        assert streaming.completed == exact.completed
        assert streaming.latency.count == exact.latency.count
        assert streaming.latency.mean == pytest.approx(exact.latency.mean,
                                                       rel=1e-9)
        assert streaming.to_json() == self.run(summary="streaming").to_json()
        rows = {row["name"]: row for row in streaming.pipeline["stages"]}
        exact_rows = {row["name"]: row for row in exact.pipeline["stages"]}
        for name, row in rows.items():
            assert row["requests"] == exact_rows[name]["requests"]
            assert row["latency"]["mean"] == pytest.approx(
                exact_rows[name]["latency"]["mean"], rel=1e-9)

    def test_cascade_routing_matches_seeded_acceptance_rate(self):
        cascade = PipelineSpec.cascade("spec", "encoder[tokens=32]",
                                       "encoder[tokens=512]",
                                       acceptance_rate=0.7)
        report = serve_pipeline(
            TRAFFIC(200.0), cascade,
            {"draft": "1xvitality", "verify": "2xvitality"},
            duration=2.0, seed=0)
        rows = {row["name"]: row for row in report.pipeline["stages"]}
        assert rows["draft"]["requests"] == report.completed
        escalated = rows["verify"]["requests"] / rows["draft"]["requests"]
        assert escalated == pytest.approx(0.3, abs=0.08)
        assert report.pipeline["handoffs"] == rows["verify"]["requests"]

    def test_per_stage_slos_reported(self):
        report = self.run(stage_slo_seconds={"encoder": 0.05,
                                             "deit-tiny": 1e-6})
        rows = {row["name"]: row for row in report.pipeline["stages"]}
        assert rows["encoder"]["slo_seconds"] == 0.05
        assert rows["encoder"]["slo_attainment"] == pytest.approx(1.0)
        assert rows["deit-tiny"]["slo_attainment"] == 0.0  # impossible SLO
        assert rows["rerank"]["slo_seconds"] is None
        assert rows["rerank"]["slo_attainment"] is None

    def test_per_stage_autoscaling_is_deterministic(self):
        def run():
            scaler = Autoscaler("utilization", "vitality", min_replicas=1,
                                max_replicas=3, interval=0.1,
                                provision_seconds=0.1)
            return serve_pipeline(
                TRAFFIC(250.0), TWO_STAGE,
                {"encoder": "1xvitality", "gen": "2xvitality"},
                duration=2.0, seed=0, autoscalers={"encoder": scaler})

        first, second = run(), run()
        assert first.to_json() == second.to_json()
        assert first.scale_events        # the saturated entry stage scaled up
        scaled = [replica for replica in first.per_replica
                  if replica.stage == "encoder"]
        assert len(scaled) > 1
        assert "autoscalers" in first.config

    def test_classic_serve_report_shape_is_unchanged(self):
        traffic = PoissonTraffic(rate=100.0, mix=WorkloadMix.of(["deit-tiny"]))
        report = serve(traffic, "1xvitality", "fifo", duration=0.5, seed=0)
        payload = json.loads(report.to_json())
        assert "pipeline" not in payload
        assert all("stage" not in replica for replica in payload["per_replica"])

    def test_validation_errors(self):
        with pytest.raises(ValueError, match="missing stages 'rerank'"):
            serve_pipeline(TRAFFIC(10.0), THREE_STAGE,
                           {"encoder": "1xvitality", "deit-tiny": "1xvitality"},
                           duration=0.1)
        with pytest.raises(ValueError, match="unknown stages 'typo'"):
            serve_pipeline(TRAFFIC(10.0), THREE_STAGE,
                           dict(THREE_POOLS, typo="1xvitality"), duration=0.1)
        with pytest.raises(ValueError, match="unknown stage 'typo'"):
            serve_pipeline(TRAFFIC(10.0), THREE_STAGE, THREE_POOLS,
                           duration=0.1, stage_slo_seconds={"typo": 0.1})
        with pytest.raises(ValueError, match="unknown stage 'typo'"):
            serve_pipeline(TRAFFIC(10.0), THREE_STAGE, THREE_POOLS,
                           duration=0.1,
                           autoscalers={"typo": Autoscaler(
                               "utilization", "vitality")})
        shared = Autoscaler("utilization", "vitality")
        with pytest.raises(ValueError, match="its own Autoscaler"):
            serve_pipeline(TRAFFIC(10.0), THREE_STAGE, THREE_POOLS,
                           duration=0.1,
                           autoscalers={"encoder": shared, "rerank": shared})
        with pytest.raises(ValueError, match="handoff_seconds"):
            serve_pipeline(TRAFFIC(10.0), THREE_STAGE, THREE_POOLS,
                           duration=0.1, handoff_seconds=-1.0)


# ------------------------------------------------- tandem-queue estimator


class TestEstimatePipeline:
    def compare(self, pipeline, pools, rate):
        """(simulated report, analytic estimate) at one operating point."""

        report = serve_pipeline(TRAFFIC(rate), pipeline, pools, policy="fifo",
                                duration=4.0, seed=0)
        estimate = estimate_pipeline(pipeline, pools, rate, policy="fifo")
        return report, estimate

    def assert_within_15_percent(self, report, estimate):
        assert estimate.stable
        measured = {row["name"]: row for row in report.pipeline["stages"]}
        for name, _, stage_estimate in estimate.stages:
            assert stage_estimate.utilization == pytest.approx(
                measured[name]["utilization"], rel=0.15)
        assert estimate.mean_latency_seconds == pytest.approx(
            report.latency.mean, rel=0.15)

    def test_two_stage_within_15_percent_of_simulation(self):
        report, estimate = self.compare(TWO_STAGE, TWO_POOLS, 40.0)
        self.assert_within_15_percent(report, estimate)

    def test_three_stage_within_15_percent_of_simulation(self):
        report, estimate = self.compare(THREE_STAGE, THREE_POOLS, 40.0)
        self.assert_within_15_percent(report, estimate)

    def test_cascade_thins_downstream_rate(self):
        cascade = PipelineSpec.cascade("spec", "encoder[tokens=32]",
                                       "encoder[tokens=512]",
                                       acceptance_rate=0.7)
        estimate = estimate_pipeline(
            cascade, {"draft": "1xvitality", "verify": "1xvitality"}, 30.0)
        # The verify stage sees only the 30% of requests the draft escalates.
        draft = estimate.stage_estimate("draft")
        verify = estimate.stage_estimate("verify")
        assert verify.rate_rps == pytest.approx(0.3 * draft.rate_rps)
        assert estimate.expected_handoffs == pytest.approx(0.3)

    def test_unstable_stage_detected_and_named(self):
        estimate = estimate_pipeline(THREE_STAGE, THREE_POOLS, 400.0,
                                     policy="fifo")
        assert not estimate.stable
        assert "encoder" in estimate.unstable_stages
        assert estimate.bottleneck == "encoder"
        assert estimate.mean_latency_seconds is None
        assert estimate.predicted(0.99) is None

    def test_payload_round_trips_to_json(self):
        estimate = estimate_pipeline(TWO_STAGE, TWO_POOLS, 40.0)
        payload = json.loads(json.dumps(estimate.to_dict()))
        assert payload["pipeline"] == "two"
        assert [row["name"] for row in payload["stages"]] == ["encoder", "gen"]
        with pytest.raises(KeyError):
            estimate.stage_estimate("typo")

    def test_validation(self):
        with pytest.raises(ValueError, match="rate"):
            estimate_pipeline(TWO_STAGE, TWO_POOLS, 0.0)
        with pytest.raises(ValueError, match="missing stages"):
            estimate_pipeline(TWO_STAGE, {"encoder": "1xvitality"}, 10.0)


# ------------------------------------------------------- capacity planning


class TestPlanPipelineCapacity:
    #: A rate that saturates one encoder replica's tail (~144 req/s capacity)
    #: but sits comfortably on two; deit-tiny never binds.
    SCENARIO = dict(rate=120.0, pipeline="plan2 = encoder[tokens=128] -> deit-tiny",
                    slo_seconds=0.02, duration=2.0, slo_percentile=0.95,
                    targets="vitality", max_replicas_per_stage=2,
                    policy="fifo", seed=0)

    def test_chosen_pools_meet_slo_and_bottleneck_minus_one_does_not(self):
        payload = plan_pipeline_capacity(**self.SCENARIO)
        chosen = payload["chosen"]
        assert chosen is not None
        assert chosen["slo_attained"]
        assert chosen["p95_ms"] <= 20.0
        boundary = payload["boundary"]
        assert boundary is not None
        assert not boundary["slo_attained"]
        assert boundary["p95_ms"] > 20.0
        # The boundary removes one replica from the chosen bottleneck stage.
        shrunk = boundary["stage_shrunk"]
        assert boundary["counts"][shrunk] == chosen["counts"][shrunk] - 1

    def test_analytic_prune_keeps_simulated_below_evaluated(self):
        payload = plan_pipeline_capacity(**self.SCENARIO)
        assert payload["evaluated"] == 4      # 2 counts x 2 stages
        assert payload["simulated"] < payload["evaluated"]
        assert len(payload["validated"]) <= payload["simulated"]

    def test_payload_is_json_and_deterministic(self):
        first = plan_pipeline_capacity(**self.SCENARIO)
        second = plan_pipeline_capacity(**self.SCENARIO)
        assert json.dumps(first) == json.dumps(second)

    def test_chosen_is_cheapest_attained_and_frontier_sorted(self):
        payload = plan_pipeline_capacity(**self.SCENARIO)
        attained = [candidate for candidate in payload["validated"]
                    if candidate["slo_attained"]]
        assert payload["chosen"]["area_mm2"] == min(
            candidate["area_mm2"] for candidate in attained)
        frontier = payload["pareto_frontier"]
        assert frontier
        costs = [point["area_mm2"] for point in frontier]
        assert costs == sorted(costs)

    def test_per_stage_targets_accepted(self):
        payload = plan_pipeline_capacity(
            rate=60.0, pipeline="mix = encoder[tokens=128] -> deit-tiny",
            slo_seconds=0.05, duration=1.0, slo_percentile=0.95,
            targets={"encoder": "vitality", "deit-tiny": "vitality"},
            max_replicas_per_stage=2, policy="fifo", seed=0)
        assert payload["chosen"] is not None
        assert payload["config"]["targets"] == {"encoder": "vitality",
                                                "deit-tiny": "vitality"}

    def test_validation(self):
        with pytest.raises(ValueError, match="slo_seconds"):
            plan_pipeline_capacity(10.0, TWO_STAGE, slo_seconds=0.0,
                                   duration=0.5)
        with pytest.raises(ValueError, match="max_replicas_per_stage"):
            plan_pipeline_capacity(10.0, TWO_STAGE, slo_seconds=0.1,
                                   duration=0.5, max_replicas_per_stage=0)
        with pytest.raises(ValueError, match="targets"):
            plan_pipeline_capacity(10.0, TWO_STAGE, slo_seconds=0.1,
                                   duration=0.5, targets={"encoder": "vitality"})


# ------------------------------------------------------------- experiment


class TestRagExperiment:
    def test_registered(self):
        assert "rag" in list_experiments()
        assert get_experiment("rag").paper_reference == "beyond the paper"

    def test_claims_hold(self):
        payload = rag_pipeline_study(quick=True)
        joint = payload["joint_vs_proportional"]
        # Claim (a): both sizings attain the e2e SLO; the joint plan does it
        # on strictly fewer replicas than uniform per-stage growth.
        assert joint["joint"]["slo_attained"]
        assert joint["proportional"]["slo_attained"]
        assert joint["joint"]["replicas"] < joint["proportional"]["replicas"]
        assert joint["replicas_saved"] >= 1
        cascade = payload["cascade_vs_monolithic"]
        # Claim (b): on the same two replicas and matched accuracy proxy the
        # cascade's mean latency beats monolithic large-model serving.
        assert cascade["cascade"]["replicas"] == \
            cascade["monolithic"]["replicas"]
        assert cascade["cascade"]["accuracy_proxy"] == \
            cascade["monolithic"]["accuracy_proxy"]
        assert cascade["cascade"]["mean_ms"] < cascade["monolithic"]["mean_ms"]
        assert cascade["mean_latency_speedup"] > 1.0
        assert cascade["cascade"]["escalation_rate"] == \
            pytest.approx(1.0 - cascade["acceptance_rate"], abs=0.1)
        # The whole payload is JSON-serialisable for `repro run rag --json`.
        json.dumps(payload)


# -------------------------------------------------------------------- CLI


class TestPipelineCLI:
    SERVE_ARGS = ["serve", "--rate", "60", "--duration", "1", "--quiet",
                  "--pipeline", "rag = encoder[tokens=128] -> deit-tiny",
                  "--pools", "encoder=1xvitality;deit-tiny=1xvitality"]

    def test_serve_pipeline_json(self, capsys):
        assert main(self.SERVE_ARGS + ["--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["completed"] > 0
        assert [row["name"] for row in payload["pipeline"]["stages"]] == \
            ["encoder", "deit-tiny"]
        assert payload["config"]["pipeline"]["name"] == "rag"

    def test_serve_pipeline_human_tables(self, capsys):
        assert main(self.SERVE_ARGS) == 0
        out = capsys.readouterr().out
        assert "| stage |" in out
        assert "encoder/vitality#0" in out
        assert "handoffs" in out

    def test_serve_pipeline_deterministic(self, capsys):
        assert main(self.SERVE_ARGS + ["--json"]) == 0
        first = capsys.readouterr().out
        assert main(self.SERVE_ARGS + ["--json"]) == 0
        assert capsys.readouterr().out == first

    def test_plan_pipeline_json(self, capsys):
        assert main(["plan", "--rate", "120", "--slo-ms", "20",
                     "--duration", "1", "--percentile", "95",
                     "--policy", "fifo", "--quiet", "--json",
                     "--pipeline", "plan2 = encoder[tokens=128] -> deit-tiny",
                     "--targets", "vitality", "--max-replicas", "2"]) == 0
        payload = json.loads(capsys.readouterr().out)
        chosen = payload["chosen"]
        assert chosen is not None
        assert chosen["pools"] == {"encoder": "2xvitality",
                                   "deit-tiny": "1xvitality"}
        assert payload["simulated"] < payload["evaluated"]

    def test_serve_pipeline_errors(self, capsys):
        assert main(self.SERVE_ARGS[:-2]) == 2        # --pools missing
        assert "--pools" in capsys.readouterr().err
        assert main(self.SERVE_ARGS + ["--llm"]) == 2
        assert "mutually exclusive" in capsys.readouterr().err
        assert main(self.SERVE_ARGS[:-1] + ["garbage"]) == 2
        assert "stage=value" in capsys.readouterr().err
        bad_model = ["serve", "--rate", "10", "--duration", "0.2", "--quiet",
                     "--pipeline", "x = no-such -> deit-tiny",
                     "--pools", "a=1xvitality"]
        assert main(bad_model) == 2
        assert "stage 'no-such'" in capsys.readouterr().err
