"""Tests for the tile-level memory-hierarchy simulator (``repro.hardware.memsim``):
knob-grammar edge cases, activation gating and cache identity, stall/roofline
physics, golden pinning, JSON shapes and the bandwidth-aware DSE axis."""

from __future__ import annotations

import json
import math
from pathlib import Path

import pytest

from repro.engine import ResultCache, RunSpec, get_target, simulate
from repro.engine.results import RunResult
from repro.experiments import run_experiment
from repro.experiments.dse_exps import explore_design_space, roofline_experiment
from repro.hardware import KnobError, VITALITY_SCHEMA, matmul_cycles
from repro.hardware.memsim import (
    MemSimConfig,
    buffer_words,
    simulate_tiled_gemm,
)
from repro.hardware.memsim.config import TilePlan

GOLDEN_PATH = Path(__file__).parent / "data" / "memsim_golden.json"
SEED_GOLDEN_PATH = Path(__file__).parent / "data" / "seed_hardware_golden.json"

#: The JSON keys every default (analytic-path) result has — and no others.
DEFAULT_RESULT_KEYS = {
    "model", "target", "attention_latency", "linear_latency",
    "end_to_end_latency", "attention_energy", "linear_energy",
    "end_to_end_energy", "energy_breakdown", "config",
}


class TestMemsimKnobs:
    def test_unknown_tile_knob_lists_valid_knobs(self):
        with pytest.raises(KnobError) as excinfo:
            VITALITY_SCHEMA.parse("tile_q=4")
        message = str(excinfo.value)
        assert "unknown knob 'tile_q'" in message
        assert "tile_m" in message and "dram_gbps" in message

    @pytest.mark.parametrize("text,fragment", [
        ("dram_gbps=0", "positive"),
        ("dram_gbps=-5", "positive"),
        ("dram_gbps=nan", "GB/s"),
        ("dram_gbps=fast", "number"),
        ("tile_m=0", "positive integer"),
        ("tile_k=-2", "positive integer"),
        ("tile_n=big", "positive integer"),
    ])
    def test_invalid_memsim_knobs_raise_actionable_errors(self, text, fragment):
        with pytest.raises(KnobError) as excinfo:
            VITALITY_SCHEMA.parse(text)
        assert fragment in str(excinfo.value)

    def test_dram_gbps_inf_is_the_reference_value(self):
        config = VITALITY_SCHEMA.parse("dram_gbps=inf")
        assert config.is_reference
        assert VITALITY_SCHEMA.render(config) == ""

    @pytest.mark.parametrize("target,fragment", [
        ("vitality[tile_k=65]", "stationary rows"),
        ("vitality[tile_n=65]", "columns"),
        ("vitality[tile_k=64,tile_n=64,sram_kb=4]", "weight-buffer half"),
        ("vitality[tile_m=10000,tile_k=64]", "input-buffer half"),
        ("vitality[tile_m=10000,tile_n=64]", "output-buffer half"),
    ])
    def test_impossible_tilings_fail_at_target_construction(self, target, fragment):
        with pytest.raises(KnobError) as excinfo:
            get_target(target)
        assert fragment in str(excinfo.value)

    def test_ideal_bandwidth_spelling_resolves_to_base_target(self):
        assert get_target("vitality[dram_gbps=inf]") is get_target("vitality")

    def test_ideal_bandwidth_spelling_shares_cache_entry(self):
        cache = ResultCache()
        simulate(RunSpec("deit-tiny", target="vitality"), cache=cache)
        simulate(RunSpec("deit-tiny", target="vitality[dram_gbps=inf]"), cache=cache)
        stats = cache.stats()
        assert (stats.misses, stats.hits) == (1, 1)

    def test_from_design_is_inactive_without_memsim_knobs(self):
        assert MemSimConfig.from_design(None, 200, 64, 64) is None
        design = VITALITY_SCHEMA.parse("pe=32x32,freq=1ghz")
        assert MemSimConfig.from_design(design, 200, 32, 32) is None


class TestMemsimActivation:
    def test_default_result_has_no_roofline(self):
        result = simulate(RunSpec("deit-tiny", target="vitality"),
                          cache=ResultCache())
        assert result.roofline == ()
        assert set(result.to_dict()) == DEFAULT_RESULT_KEYS
        assert set(result.to_dict(include_layers=True)) == \
            DEFAULT_RESULT_KEYS | {"layers"}

    def test_memsim_result_carries_the_roofline_block(self):
        result = simulate(RunSpec("deit-tiny", target="vitality[dram_gbps=25]"),
                          cache=ResultCache())
        assert result.roofline
        assert set(result.to_dict()) == DEFAULT_RESULT_KEYS | {"roofline"}
        for record in result.roofline:
            assert record.bound in ("memory", "compute")
            assert record.peak_gbps == 25.0
            assert record.attained_gbps <= record.peak_gbps * 1.001

    def test_low_bandwidth_is_memory_bound_with_nonzero_stalls(self):
        cache = ResultCache()
        base = simulate(RunSpec("deit-tiny", target="vitality"), cache=cache)
        starved = simulate(RunSpec("deit-tiny", target="vitality[dram_gbps=8]"),
                           cache=cache)
        memory_bound = [record for record in starved.roofline
                        if record.bound == "memory"]
        assert memory_bound
        assert all(record.stall_cycles > 0 for record in memory_bound)
        assert starved.end_to_end_latency > base.end_to_end_latency

    def test_high_bandwidth_is_compute_bound(self):
        result = simulate(RunSpec("deit-tiny", target="vitality[dram_gbps=100]"),
                          cache=ResultCache())
        assert all(record.bound == "compute" for record in result.roofline)

    def test_round_trip_preserves_the_roofline(self):
        result = simulate(RunSpec("deit-tiny", target="vitality[dram_gbps=25]"),
                          cache=ResultCache())
        payload = json.loads(json.dumps(result.to_dict(include_layers=True)))
        assert RunResult.from_dict(payload) == result


class TestMemsimGolden:
    """The memsim outputs for two reference design points are pinned exactly,
    and activating the subsystem must not move any seed experiment."""

    @pytest.fixture(scope="class")
    def golden(self):
        return json.loads(GOLDEN_PATH.read_text())

    @pytest.mark.parametrize("target", [
        "vitality[dram_gbps=25]",
        "vitality[pe=128x128,dram_gbps=25]",
    ])
    def test_design_point_matches_golden_bit_identically(self, golden, target):
        result = simulate(RunSpec("deit-tiny", target=target), cache=ResultCache())
        assert json.loads(json.dumps(result.to_dict())) == golden[target]

    @pytest.fixture(scope="class")
    def seed_golden(self):
        return json.loads(SEED_GOLDEN_PATH.read_text())

    @pytest.mark.parametrize("experiment", ["fig11", "fig12", "tab5", "salo",
                                            "table2"])
    def test_seed_experiments_stay_bit_identical(self, seed_golden, experiment):
        current = run_experiment("tab2" if experiment == "table2" else experiment)
        assert json.loads(json.dumps(current)) == seed_golden[experiment]


class TestTilePipeline:
    def _config(self, dram_gbps=math.inf, sram_kb=200):
        words = buffer_words(sram_kb)
        return MemSimConfig(dram_gbps=dram_gbps, tile_m=None, tile_k=None,
                            tile_n=None, ibuf_words=words, wbuf_words=words,
                            obuf_words=words)

    def test_buffer_words_reference_budget(self):
        # 200 KB / 4 operand buffers / 2 bytes per word = 25600 words each.
        assert buffer_words(200) == 25600

    def test_plan_respects_array_and_buffer_capacities(self):
        config = self._config(sram_kb=4)
        plan = config.plan(197, 192, 576, rows=64, columns=64)
        half = max(1, config.wbuf_words // 2)
        assert plan.tile_k <= 64 and plan.tile_n <= 64
        assert plan.tile_k * plan.tile_n <= half
        assert plan.tile_m * plan.tile_k <= max(1, config.ibuf_words // 2)
        assert plan.tile_m * plan.tile_n <= max(1, config.obuf_words // 2)

    def test_infinite_bandwidth_single_chunk_matches_analytic_cycles(self):
        trace = simulate_tiled_gemm(
            100, 64, 64, rows=64, columns=64, utilization=0.85, batch=1,
            plan=TilePlan(tile_m=100, tile_k=64, tile_n=64),
            dram_words_per_cycle=math.inf, sram_words_per_cycle=128.0,
            drain_words_per_cycle=64.0, stationary_dram=True,
            streamed_dram=True)
        assert trace.compute_cycles == matmul_cycles(100, 64, 64, rows=64,
                                                     columns=64,
                                                     utilization=0.85)
        assert trace.load_stall_cycles == 0

    def test_stall_decomposition_is_exact(self):
        trace = simulate_tiled_gemm(
            197, 192, 576, rows=64, columns=64, utilization=0.85, batch=1,
            plan=TilePlan(tile_m=64, tile_k=64, tile_n=64),
            dram_words_per_cycle=2.5, sram_words_per_cycle=128.0,
            drain_words_per_cycle=64.0, stationary_dram=True,
            streamed_dram=True)
        assert trace.cycles == (trace.compute_cycles
                                + trace.load_stall_cycles
                                + trace.drain_stall_cycles)
        assert trace.load_stall_cycles > 0
        assert trace.tiles > 1

    def test_less_bandwidth_never_runs_faster(self):
        def cycles(words_per_cycle):
            return simulate_tiled_gemm(
                197, 192, 576, rows=64, columns=64, utilization=0.85, batch=1,
                plan=TilePlan(tile_m=64, tile_k=64, tile_n=64),
                dram_words_per_cycle=words_per_cycle,
                sram_words_per_cycle=128.0, drain_words_per_cycle=64.0,
                stationary_dram=True, streamed_dram=True).cycles
        assert cycles(2.5) >= cycles(25.0) >= cycles(math.inf)


class TestBandwidthAwareDSE:
    def test_dram_axis_adds_roofline_annotations(self):
        payload = explore_design_space(pe=("64x64",), freq=("500mhz",),
                                       sram_kb=(200,), dram_gbps=(25.0,),
                                       cache=ResultCache())
        assert payload["evaluated"] == 1
        assert payload["space"]["dram_gbps"] == [25.0]
        point = payload["points"][0]
        assert point["dram_gbps"] == 25.0
        assert point["memory_bound_layers"] > 0

    def test_without_dram_axis_the_point_schema_is_unchanged(self):
        payload = explore_design_space(pe=("64x64",), freq=("500mhz",),
                                       sram_kb=(200,), cache=ResultCache())
        assert "dram_gbps" not in payload["space"]
        assert set(payload["points"][0]) == {
            "target", "config", "latency_ms", "energy_mj", "area_mm2",
            "peak_gmacs", "pareto"}

    def test_roofline_demotes_the_bandwidth_starved_big_array(self):
        payload = roofline_experiment(pe=("64x64", "128x128"),
                                      dram_gbps=(25.0, 100.0),
                                      cache=ResultCache())
        by_target = {point["target"]: point for point in payload["points"]}
        starved_big = by_target["vitality[dram_gbps=25.0,pe=128x128]"]
        balanced = by_target["vitality[dram_gbps=100.0]"]
        assert not starved_big["pareto"]
        assert balanced["pareto"]
        assert starved_big["memory_bound_layers"] > 0
        demoted = {entry["demoted"]: entry for entry in payload["demotions"]}
        entry = demoted["vitality[dram_gbps=25.0,pe=128x128]"]
        assert entry["demoted_by"] == "vitality[dram_gbps=100.0]"
        assert entry["latency_ratio"] > 1.0

    def test_registered_as_experiment(self):
        payload = run_experiment("roofline", pe=("64x64",), dram_gbps=(25.0,),
                                 cache=ResultCache())
        assert payload["evaluated"] == 1
        assert payload["points"][0]["memory_bound_layers"] > 0
