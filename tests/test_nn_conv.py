"""Tests for convolutions (im2col lowering) against a naive reference."""

from __future__ import annotations

import numpy as np
import pytest

from repro import nn
from repro.nn.conv import conv2d
from repro.tensor import Tensor

from tests.conftest import numeric_gradient


def naive_conv2d(x, weight, bias, stride, padding, groups=1):
    """Direct loop reference convolution for validating the im2col implementation."""

    batch, in_channels, height, width = x.shape
    out_channels, in_per_group, kh, kw = weight.shape
    padded = np.pad(x, ((0, 0), (0, 0), (padding, padding), (padding, padding)))
    out_h = (height + 2 * padding - kh) // stride + 1
    out_w = (width + 2 * padding - kw) // stride + 1
    out = np.zeros((batch, out_channels, out_h, out_w))
    group_in = in_channels // groups
    group_out = out_channels // groups
    for b in range(batch):
        for oc in range(out_channels):
            g = oc // group_out
            for i in range(out_h):
                for j in range(out_w):
                    patch = padded[b, g * group_in:(g + 1) * group_in,
                                   i * stride:i * stride + kh, j * stride:j * stride + kw]
                    out[b, oc, i, j] = np.sum(patch * weight[oc])
            if bias is not None:
                out[b, oc] += bias[oc]
    return out


class TestConv2dForward:
    @pytest.mark.parametrize("stride,padding", [(1, 0), (1, 1), (2, 1), (2, 0)])
    def test_matches_naive(self, rng, stride, padding):
        x = rng.normal(size=(2, 3, 8, 8))
        conv = nn.Conv2d(3, 4, 3, stride=stride, padding=padding)
        expected = naive_conv2d(x, conv.weight.data, conv.bias.data, stride, padding)
        np.testing.assert_allclose(conv(Tensor(x)).data, expected, rtol=1e-9, atol=1e-9)

    def test_1x1_conv_is_channel_mix(self, rng):
        x = rng.normal(size=(1, 3, 4, 4))
        conv = nn.Conv2d(3, 2, 1, bias=False)
        expected = np.einsum("oc,bchw->bohw", conv.weight.data[:, :, 0, 0], x)
        np.testing.assert_allclose(conv(Tensor(x)).data, expected, rtol=1e-9)

    def test_depthwise_matches_naive(self, rng):
        x = rng.normal(size=(2, 4, 6, 6))
        conv = nn.DepthwiseConv2d(4, 3, padding=1)
        expected = naive_conv2d(x, conv.weight.data, conv.bias.data, 1, 1, groups=4)
        np.testing.assert_allclose(conv(Tensor(x)).data, expected, rtol=1e-9, atol=1e-9)

    def test_grouped_conv_matches_naive(self, rng):
        x = rng.normal(size=(1, 4, 5, 5))
        conv = nn.Conv2d(4, 6, 3, padding=1, groups=2)
        expected = naive_conv2d(x, conv.weight.data, conv.bias.data, 1, 1, groups=2)
        np.testing.assert_allclose(conv(Tensor(x)).data, expected, rtol=1e-9, atol=1e-9)

    def test_output_shape_formula(self, rng):
        conv = nn.Conv2d(3, 8, 3, stride=2, padding=1)
        out = conv(Tensor(rng.normal(size=(1, 3, 9, 9))))
        assert out.shape == (1, 8, 5, 5)

    def test_rejects_bad_groups(self):
        with pytest.raises(ValueError):
            conv2d(Tensor(np.ones((1, 3, 4, 4))), Tensor(np.ones((4, 2, 3, 3))), None, groups=2)

    def test_rejects_channel_mismatch(self):
        conv = nn.Conv2d(3, 4, 3)
        with pytest.raises(ValueError):
            conv(Tensor(np.ones((1, 5, 8, 8))))

    def test_no_bias(self, rng):
        conv = nn.Conv2d(2, 3, 3, bias=False)
        assert conv.bias is None
        assert conv(Tensor(rng.normal(size=(1, 2, 5, 5)))).shape == (1, 3, 3, 3)


class TestConv2dBackward:
    def test_input_gradient_matches_numeric(self, rng):
        x = rng.normal(size=(1, 2, 5, 5))
        conv = nn.Conv2d(2, 3, 3, padding=1)

        def forward(array):
            return float((conv(Tensor(array)) ** 2).sum().data)

        t = Tensor(x.copy(), requires_grad=True)
        (conv(t) ** 2).sum().backward()
        numeric = numeric_gradient(forward, x.copy())
        np.testing.assert_allclose(t.grad, numeric, atol=1e-5)

    def test_weight_gradient_matches_numeric(self, rng):
        x = Tensor(rng.normal(size=(1, 2, 4, 4)))
        conv = nn.Conv2d(2, 2, 3, padding=1)
        (conv(x) ** 2).sum().backward()
        autograd_grad = conv.weight.grad.copy()

        weights = conv.weight.data.copy()

        def forward(array):
            conv.weight.data = array
            return float((conv(x) ** 2).sum().data)

        numeric = numeric_gradient(forward, weights.copy())
        conv.weight.data = weights
        np.testing.assert_allclose(autograd_grad, numeric, atol=1e-5)

    def test_bias_gradient_is_output_sum(self, rng):
        x = Tensor(rng.normal(size=(2, 2, 4, 4)))
        conv = nn.Conv2d(2, 3, 3, padding=1)
        conv(x).sum().backward()
        np.testing.assert_allclose(conv.bias.grad, np.full(3, 2 * 4 * 4), rtol=1e-10)

    def test_depthwise_gradient_flows(self, rng):
        conv = nn.DepthwiseConv2d(3, 3, padding=1)
        x = Tensor(rng.normal(size=(1, 3, 4, 4)), requires_grad=True)
        conv(x).sum().backward()
        assert x.grad.shape == (1, 3, 4, 4)
        assert conv.weight.grad.shape == (3, 1, 3, 3)

    def test_stride2_gradient_matches_numeric(self, rng):
        x = rng.normal(size=(1, 1, 6, 6))
        conv = nn.Conv2d(1, 2, 3, stride=2, padding=1)
        t = Tensor(x.copy(), requires_grad=True)
        (conv(t) ** 2).sum().backward()
        numeric = numeric_gradient(
            lambda a: float((conv(Tensor(a)) ** 2).sum().data), x.copy())
        np.testing.assert_allclose(t.grad, numeric, atol=1e-5)
