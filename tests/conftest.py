"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.tensor import Tensor


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture
def qkv_small(rng):
    """Small (batch, heads, tokens, head_dim) Q/K/V arrays in the weak regime."""

    shape = (2, 3, 12, 8)
    q = rng.normal(size=shape) * 0.3
    k = rng.normal(size=shape) * 0.3
    v = rng.normal(size=shape)
    return q, k, v


@pytest.fixture
def qkv_tensors(qkv_small):
    q, k, v = qkv_small
    return Tensor(q), Tensor(k), Tensor(v)


def numeric_gradient(function, array: np.ndarray, epsilon: float = 1e-6) -> np.ndarray:
    """Central-difference gradient of a scalar-valued function of one array."""

    gradient = np.zeros_like(array, dtype=np.float64)
    flat = array.reshape(-1)
    grad_flat = gradient.reshape(-1)
    for index in range(flat.size):
        original = flat[index]
        flat[index] = original + epsilon
        upper = function(array)
        flat[index] = original - epsilon
        lower = function(array)
        flat[index] = original
        grad_flat[index] = (upper - lower) / (2.0 * epsilon)
    return gradient
