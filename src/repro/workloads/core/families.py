"""Per-family workload knob schemas and geometry builders.

Three kinds of family live here, all spelled with the same bracketed grammar
(:mod:`repro.knobs`) the hardware targets use:

* the paper's **uniform ViT families** (``deit-tiny`` / ``deit-small`` /
  ``deit-base``) — single-stage encoders whose knobs (``tokens``, ``dim``,
  ``heads``, ``layers``, ``mlp_ratio``) default to the Table I geometry;
* the paper's **multi-stage families** (``mobilevit-*``, ``levit-*``) —
  pyramid models exposing a ``tokens`` knob that rescales every stage by the
  same floored ratio, preserving the relative stage geometry;
* the **sequence families beyond the paper** (``encoder``, ``decoder``,
  ``transformer``) — BERT-style bidirectional, GPT-style causal and a
  generic transformer, with ``kv_tokens`` / ``causal`` / ``phase`` knobs
  that express long-sequence, cross-attention and KV-cached decode shapes
  (``decoder[tokens=1,kv_tokens=2048,phase=decode]`` is one autoregressive
  decode step against a 2048-entry cache).

Reference-valued configs short-circuit to the reference objects — for the
seven seed names, the exact ``specs.py`` instances — keeping default
geometries bit-identical to the paper's evaluation.
"""

from __future__ import annotations

from repro.knobs import (
    Knob,
    KnobConfig,
    KnobError,
    KnobSchema,
    choice_parser,
    parse_bool,
    parse_positive_int,
    render_bool,
    render_number,
)
from repro.workloads.core.schema import WorkloadFamily, scaled_to_tokens
from repro.workloads.specs import (
    AttentionLayerSpec,
    ModelWorkload,
    SEED_WORKLOADS,
    vit_linear_layers,
)

#: Inference phases accepted by the sequence families' ``phase`` knob.
PHASES = ("prefill", "decode")


def _int_knob(name: str, doc: str, default: int | None) -> Knob:
    return Knob(name, parse_positive_int, render_number, doc, default=default)


def _check_heads_divide_dim(dim: int, heads: int, family: str) -> None:
    if dim % heads:
        raise KnobError(f"{family!r} needs heads to divide dim evenly; "
                        f"got dim={dim}, heads={heads}")


# ---------------------------------------------------------------------------------
# Uniform single-stage transformers (DeiT and the sequence families).
# ---------------------------------------------------------------------------------

def _uniform_family(family: str, doc: str, *, tokens: int, dim: int, heads: int,
                    layers: int, mlp_ratio: int, causal: bool = False,
                    sequence: bool = False,
                    reference: ModelWorkload | None = None) -> WorkloadFamily:
    """A family of uniform transformers: one repeated attention geometry plus
    the standard QKV/projection/MLP GEMM stack.

    ``sequence=True`` adds the autoregressive knobs (``kv_tokens``,
    ``causal``, ``phase``); the image families keep the image-shaped knob set.
    """

    knobs = [
        _int_knob("tokens", "query tokens n", tokens),
        _int_knob("dim", "model embedding width", dim),
        _int_knob("heads", "attention heads (must divide dim)", heads),
        _int_knob("layers", "transformer layer count", layers),
        _int_knob("mlp_ratio", "MLP hidden width as a multiple of dim", mlp_ratio),
    ]
    if sequence:
        knobs += [
            _int_knob("kv_tokens", "key/value tokens — the KV-cache length "
                                   "(defaults to tokens)", None),
            Knob("causal", parse_bool, render_bool,
                 "autoregressive masking (queries attend to their prefix)",
                 default=causal),
            Knob("phase", choice_parser(*PHASES), str,
                 "prefill (parallel over tokens) or decode (one query against "
                 "a kv_tokens-long cache)", default="prefill"),
        ]
    schema = KnobSchema(family, {knob.name: knob for knob in knobs})

    def normalise(config: KnobConfig,
                  explicit: frozenset = frozenset()) -> KnobConfig:
        if config.get("phase", "prefill") == "decode":
            if "kv_tokens" not in config:
                raise KnobError(
                    f"{family}[phase=decode] needs kv_tokens=<KV-cache length> "
                    f"(the sequence length decoded so far)")
            # Default the query count to a single decode step — but only
            # when the spelling left tokens unsaid: an explicit tokens at
            # the family default is a deliberate chunk size, not an
            # invitation to rewrite it to 1.
            if "tokens" not in config and "tokens" not in explicit:
                config = config.with_knob("tokens", 1)
            # phase is a lowering macro, not geometry: once it has shaped
            # tokens/kv_tokens it is dropped, so decode spellings and their
            # explicit-geometry equivalents share one canonical name (and
            # the canonical name always re-parses).
            config = config.without_knob("phase")
        n = config.get("tokens", tokens)
        kv = config.get("kv_tokens")
        if kv == n:
            config = config.without_knob("kv_tokens")
            kv = None
        if config.get("causal", causal) and kv is not None and kv < n:
            raise KnobError(f"causal attention needs kv_tokens >= tokens, "
                            f"got tokens={n}, kv_tokens={kv}")
        _check_heads_divide_dim(config.get("dim", dim),
                                config.get("heads", heads), family)
        return config

    def build(name: str, config: KnobConfig) -> ModelWorkload:
        n = config.get("tokens", tokens)
        model_dim = config.get("dim", dim)
        head_count = config.get("heads", heads)
        layer_count = config.get("layers", layers)
        attention = AttentionLayerSpec(
            tokens=n,
            kv_tokens=config.get("kv_tokens", n),
            qk_dim=model_dim // head_count,
            heads=head_count,
            repeats=layer_count,
            causal=config.get("causal", causal),
        )
        return ModelWorkload(
            name=name,
            attention_layers=(attention,),
            linear_layers=vit_linear_layers(n, model_dim, layer_count,
                                            config.get("mlp_ratio", mlp_ratio)),
        )

    if reference is None:
        reference = build(family, KnobConfig(family))
    return WorkloadFamily(schema=schema, build=build, reference=reference,
                          doc=doc, normalise=normalise)


# ---------------------------------------------------------------------------------
# Multi-stage pyramids (MobileViT, LeViT): the tokens knob rescales every stage.
# ---------------------------------------------------------------------------------

def _staged_family(reference: ModelWorkload, doc: str) -> WorkloadFamily:
    family = reference.name
    base_tokens = max(spec.tokens for spec in reference.attention_layers)
    schema = KnobSchema(family, {"tokens": _int_knob(
        "tokens", "dominant-stage query tokens (every stage rescales "
                  "proportionally, floored)", base_tokens)})

    def build(name: str, config: KnobConfig) -> ModelWorkload:
        return scaled_to_tokens(reference, config.get("tokens", base_tokens),
                                name=name)

    return WorkloadFamily(schema=schema, build=build, reference=reference, doc=doc)


# ---------------------------------------------------------------------------------
# The family registry.
# ---------------------------------------------------------------------------------

def _deit_family(name: str, dim: int, heads: int) -> WorkloadFamily:
    return _uniform_family(
        name, f"DeiT ViT encoder: 12 layers over 197 tokens, dim {dim}",
        tokens=197, dim=dim, heads=heads, layers=12, mlp_ratio=4,
        reference=SEED_WORKLOADS[name])


#: Every workload family, keyed by family name — the grammar's lookup table.
FAMILIES: dict[str, WorkloadFamily] = {
    family.family: family
    for family in (
        _deit_family("deit-tiny", dim=192, heads=3),
        _deit_family("deit-small", dim=384, heads=6),
        _deit_family("deit-base", dim=768, heads=12),
        _staged_family(SEED_WORKLOADS["mobilevit-xxs"],
                       "MobileViT-xxs: 256/64/16-token stages, 4 heads"),
        _staged_family(SEED_WORKLOADS["mobilevit-xs"],
                       "MobileViT-xs: 256/64/16-token stages, 4 heads"),
        _staged_family(SEED_WORKLOADS["levit-128s"],
                       "LeViT-128s: 196/49/16-token stages with shrinking attention"),
        _staged_family(SEED_WORKLOADS["levit-128"],
                       "LeViT-128: 196/49/16-token stages with shrinking attention"),
        _uniform_family(
            "encoder", "BERT-style bidirectional text encoder (base geometry)",
            tokens=128, dim=768, heads=12, layers=12, mlp_ratio=4,
            sequence=True),
        _uniform_family(
            "decoder", "GPT-style causal decoder (GPT-2-small geometry); "
                       "phase=decode is one KV-cached autoregressive step",
            tokens=1024, dim=768, heads=12, layers=12, mlp_ratio=4,
            causal=True, sequence=True),
        _uniform_family(
            "transformer", "generic parametric transformer (DeiT-Tiny-shaped "
                           "by default) — every knob open",
            tokens=197, dim=192, heads=3, layers=12, mlp_ratio=4,
            sequence=True),
    )
}
