"""Configured-workload resolution: names in, canonical cached geometries out.

The workload mirror of :func:`repro.engine.get_target`: a configured name —
``deit-tiny[tokens=1024]``, ``decoder[tokens=1,kv_tokens=2048,phase=decode]``
— parses against its family's knob schema, canonicalises (knob order and
values normalised, reference values dropped, family-level identities like
``kv_tokens == tokens`` collapsed), and materialises one cached
:class:`~repro.workloads.ModelWorkload` per physical geometry.  Every
spelling of one geometry therefore resolves to one object, one canonical
name, and one set of result-cache entries; reference spellings resolve to
the seed objects themselves.
"""

from __future__ import annotations

from repro.knobs import KnobConfig
from repro.workloads.core.families import FAMILIES, WorkloadFamily
from repro.workloads.specs import ModelWorkload


class UnknownWorkloadError(KeyError):
    """Raised when a workload name names no known family."""


#: Workloads materialised from configured-name lookups, keyed by canonical name.
_CONFIGURED: dict[str, ModelWorkload] = {}


def list_families() -> list[str]:
    """Names of every workload family, seed models first."""

    return list(FAMILIES)


def get_family(name: str) -> WorkloadFamily:
    """Look up a workload family by its bare name (e.g. ``"decoder"``)."""

    try:
        return FAMILIES[name]
    except KeyError:
        raise _unknown(name) from None


def _unknown(name: str) -> UnknownWorkloadError:
    knob_names = sorted({knob for family in FAMILIES.values()
                         for knob in family.schema.knobs})
    return UnknownWorkloadError(
        f"unknown workload {name!r}; families: {', '.join(FAMILIES)} "
        f"(configure as 'family[knob=value,...]', e.g. "
        f"'deit-tiny[tokens=1024]' or "
        f"'decoder[tokens=1,kv_tokens=2048,phase=decode]'; knobs: "
        f"{', '.join(knob_names)} — see `repro workloads`)")


def _resolve(name: str, tokens: int | None = None
             ) -> tuple[WorkloadFamily, KnobConfig]:
    base, bracket, knob_text = name.partition("[")
    family = FAMILIES.get(base)
    if family is None or (bracket and not name.endswith("]")):
        raise _unknown(name)
    if bracket:
        config = family.resolve(knob_text[:-1])     # drop the trailing "]"
    else:
        config = KnobConfig(base)
    if tokens is not None:
        config = family.with_tokens(config, tokens)
    return family, config


def canonical_workload_name(name: str, tokens: int | None = None) -> str:
    """The canonical spelling of a (possibly configured) workload name.

    ``tokens`` applies a token-count override on top of the name — the
    lowering of the deprecated ``RunSpec.tokens`` field onto the grammar —
    so ``("deit-tiny", 197)``, ``("deit-tiny[tokens=197]", None)`` and
    ``("deit-tiny", None)`` all canonicalise to ``"deit-tiny"``.
    """

    family, config = _resolve(name, tokens)
    return family.canonical_name(config)


def get_workload(name: str, tokens: int | None = None) -> ModelWorkload:
    """Resolve a registered or configured workload name to its geometry.

    One :class:`ModelWorkload` is materialised per physical geometry:
    reference configurations short-circuit to the family's reference object
    (the seed instances for the paper's seven models), non-reference ones
    are built once and memoised under their canonical name.
    """

    family, config = _resolve(name, tokens)
    if config.is_reference:
        return family.reference
    canonical = family.canonical_name(config)
    workload = _CONFIGURED.get(canonical)
    if workload is None:
        workload = family.workload(config)
        _CONFIGURED[canonical] = workload
    return workload
