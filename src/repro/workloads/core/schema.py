"""The workload IR: families of parametric geometries behind one grammar.

A :class:`WorkloadFamily` is the workload-side mirror of a hardware target
family (:mod:`repro.hardware.core.families`): a :class:`~repro.knobs.KnobSchema`
declaring the family's knobs (``tokens``, ``kv_tokens``, ``layers`` ...), a
builder that materialises a parsed :class:`~repro.knobs.KnobConfig` into a
concrete :class:`~repro.workloads.ModelWorkload`, an optional semantic
normaliser (dropping ``kv_tokens`` equal to ``tokens``, lowering
``phase=decode`` onto single-query geometry), and the family's *reference*
workload — the exact frozen object every all-knobs-at-default spelling
resolves to, which is what keeps seed-name results bit-identical.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable

from repro.knobs import KnobConfig, KnobError, KnobSchema
from repro.workloads.specs import ModelWorkload


@dataclass(frozen=True)
class WorkloadFamily:
    """One parametric workload family: knob vocabulary + geometry builder."""

    schema: KnobSchema
    #: ``(canonical_name, config) -> ModelWorkload``; called only for
    #: non-reference configs (reference spellings short-circuit to
    #: :attr:`reference`).
    build: Callable[[str, KnobConfig], ModelWorkload]
    #: The geometry at every knob's reference value — for the paper's seven
    #: models, the seed ``specs.py`` object itself.
    reference: ModelWorkload
    doc: str
    #: Semantic canonicalisation/validation applied after knob parsing.
    #: Receives the parsed config plus the set of knob names the spelling
    #: made explicit (reference-valued knobs are dropped from the config at
    #: parse time, so the set is how the normaliser tells an explicit
    #: default apart from an absent knob).
    normalise: Callable[[KnobConfig, frozenset], KnobConfig] | None = None

    @property
    def family(self) -> str:
        return self.schema.family

    def knob_names(self) -> list[str]:
        return sorted(self.schema.knobs)

    def resolve(self, knob_text: str) -> KnobConfig:
        """Parse a bracket body (``"tokens=1024,phase=decode"``) canonically."""

        config, explicit = self.schema.parse_explicit(knob_text)
        return (self.normalise(config, explicit)
                if self.normalise is not None else config)

    def with_tokens(self, config: KnobConfig, tokens: int) -> KnobConfig:
        """``config`` with its ``tokens`` knob overridden (reference drops)."""

        if tokens < 1:
            raise KnobError(f"tokens must be >= 1, got {tokens}")
        knob = self.schema.knobs["tokens"]
        config = (config.without_knob("tokens") if tokens == knob.default
                  else config.with_knob("tokens", tokens))
        return (self.normalise(config, frozenset(("tokens",)))
                if self.normalise is not None else config)

    def canonical_name(self, config: KnobConfig) -> str:
        """The one spelling of this configuration: bare family name for the
        reference, sorted/canonical-valued knobs otherwise."""

        if config.is_reference:
            return self.family
        return f"{self.family}[{self.schema.render(config)}]"

    def workload(self, config: KnobConfig) -> ModelWorkload:
        if config.is_reference:
            return self.reference
        return self.build(self.canonical_name(config), config)


def scaled_to_tokens(workload: ModelWorkload, tokens: int,
                     name: str | None = None) -> ModelWorkload:
    """Rescale every layer's token dimensions so the dominant attention layer
    processes ``tokens`` query tokens.

    Multi-stage models (MobileViT, LeViT) keep their relative stage geometry;
    each layer's token counts scale by the same ratio, *floored* consistently
    (integer ``count * tokens // base``, clamped at 1) so one token count maps
    to one geometry regardless of float rounding.  ``tokens`` equal to the
    dominant count returns the workload unchanged — the reference spelling is
    the reference object.
    """

    if tokens < 1:
        raise KnobError(f"tokens must be >= 1, got {tokens}")
    base = max(spec.tokens for spec in workload.attention_layers)
    if tokens == base:
        return workload

    def _scaled(count: int) -> int:
        return max(1, count * tokens // base)

    attention = tuple(
        replace(spec, tokens=_scaled(spec.tokens), kv_tokens=_scaled(spec.kv_tokens))
        for spec in workload.attention_layers
    )
    linear = tuple(
        replace(spec, tokens=_scaled(spec.tokens)) for spec in workload.linear_layers
    )
    return replace(workload, name=name or f"{workload.name}[tokens={tokens}]",
                   attention_layers=attention, linear_layers=linear,
                   baseline_accuracy=None)
