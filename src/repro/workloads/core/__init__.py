"""The parametric workload core: families, knob schemas and the name grammar.

``workloads/core`` mirrors ``hardware/core``: where the hardware side turns
``vitality[pe=32x32,freq=1ghz]`` into a design point, this package turns
``decoder[tokens=1,kv_tokens=2048,phase=decode]`` into a workload geometry —
same bracketed grammar (:mod:`repro.knobs`), same canonicalisation rules,
same one-object-per-physical-configuration caching.

* :mod:`schema` — :class:`WorkloadFamily` (knob schema + builder + reference
  geometry) and the floor-consistent multi-stage token scaler;
* :mod:`families` — the per-family schemas/builders: the paper's seven ViT
  geometries plus the ``encoder`` / ``decoder`` / ``transformer`` sequence
  families;
* :mod:`registry` — :func:`get_workload` / :func:`canonical_workload_name`
  over configured names, with the per-geometry workload cache and
  :class:`UnknownWorkloadError`.
"""

from repro.workloads.core.families import FAMILIES, PHASES
from repro.workloads.core.registry import (
    UnknownWorkloadError,
    canonical_workload_name,
    get_family,
    get_workload,
    list_families,
)
from repro.workloads.core.schema import WorkloadFamily, scaled_to_tokens

__all__ = [
    "FAMILIES",
    "PHASES",
    "UnknownWorkloadError",
    "WorkloadFamily",
    "canonical_workload_name",
    "get_family",
    "get_workload",
    "list_families",
    "scaled_to_tokens",
]
