"""Model workload descriptions (attention geometry) for the evaluated ViTs.

Every hardware- and complexity-side experiment in the paper (Table I, Table
II, Fig. 11, Fig. 12, Table V) depends only on the *geometry* of the models'
attention layers — number of tokens ``n``, per-head query/key dimension,
per-head value dimension, head count and layer count — not on trained
weights.  This subpackage is the single source of truth for those geometries
so the op-counting code, the profiling models and the accelerator simulator
all agree.
"""

from repro.workloads.specs import (
    AttentionLayerSpec,
    LinearLayerSpec,
    ModelWorkload,
    get_workload,
    list_workloads,
    DEIT_TINY,
    DEIT_SMALL,
    DEIT_BASE,
    MOBILEVIT_XXS,
    MOBILEVIT_XS,
    LEVIT_128S,
    LEVIT_128,
)

__all__ = [
    "AttentionLayerSpec",
    "LinearLayerSpec",
    "ModelWorkload",
    "get_workload",
    "list_workloads",
    "DEIT_TINY",
    "DEIT_SMALL",
    "DEIT_BASE",
    "MOBILEVIT_XXS",
    "MOBILEVIT_XS",
    "LEVIT_128S",
    "LEVIT_128",
]
