"""Model workload descriptions (attention geometry) for the evaluated models.

Every hardware- and complexity-side experiment in the paper (Table I, Table
II, Fig. 11, Fig. 12, Table V) depends only on the *geometry* of the models'
attention layers — number of tokens ``n``, per-head query/key dimension,
per-head value dimension, head count and layer count — not on trained
weights.  This subpackage is the single source of truth for those geometries
so the op-counting code, the profiling models and the accelerator simulator
all agree.

Workloads are first-class and parametric: beyond the paper's seven fixed
geometries (:mod:`specs`), :mod:`core` defines per-family knob schemas —
including BERT-style ``encoder``, GPT-style causal ``decoder`` and a generic
``transformer`` family — and :func:`get_workload` resolves *configured
names* spelled with the same bracketed grammar as hardware targets::

    get_workload("deit-tiny")                                   # Table I geometry
    get_workload("deit-tiny[tokens=1024]")                      # longer sequence
    get_workload("decoder[tokens=1,kv_tokens=2048,phase=decode]")  # KV-cached step

Configured names canonicalise (knob order/values normalised, reference
values dropped) and cache one :class:`ModelWorkload` per physical geometry.
"""

from repro.workloads.specs import (
    AttentionLayerSpec,
    LinearLayerSpec,
    ModelWorkload,
    SEED_WORKLOADS,
    list_workloads,
    vit_linear_layers,
    DEIT_TINY,
    DEIT_SMALL,
    DEIT_BASE,
    MOBILEVIT_XXS,
    MOBILEVIT_XS,
    LEVIT_128S,
    LEVIT_128,
)
from repro.workloads.core import (
    FAMILIES,
    UnknownWorkloadError,
    WorkloadFamily,
    canonical_workload_name,
    get_family,
    get_workload,
    list_families,
    scaled_to_tokens,
)

__all__ = [
    "AttentionLayerSpec",
    "FAMILIES",
    "LinearLayerSpec",
    "ModelWorkload",
    "SEED_WORKLOADS",
    "UnknownWorkloadError",
    "WorkloadFamily",
    "canonical_workload_name",
    "get_family",
    "get_workload",
    "list_families",
    "list_workloads",
    "scaled_to_tokens",
    "vit_linear_layers",
    "DEIT_TINY",
    "DEIT_SMALL",
    "DEIT_BASE",
    "MOBILEVIT_XXS",
    "MOBILEVIT_XS",
    "LEVIT_128S",
    "LEVIT_128",
]
