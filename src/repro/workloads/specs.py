"""Attention/linear-layer geometry of the ViT models evaluated in the paper.

The geometries below reproduce the operation counts the paper reports in
Table I to within a few percent (see ``tests/test_op_counting.py``):

* **DeiT-Tiny/Small/Base** — 12 uniform layers over 197 tokens (196 patches
  plus the class token) with 64-dimensional heads.
* **MobileViT-xxs/xs** — three transformer blocks operating on progressively
  smaller unfolded token grids (256, 64, 16 tokens) with 4 heads.
* **LeViT-128s/128** — three stages over 196/49/16 tokens with 16-dimensional
  query/key heads and 32-dimensional value heads, plus the shrinking
  (downsampling) attention blocks between stages.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class AttentionLayerSpec:
    """Geometry of one multi-head attention layer (repeated ``repeats`` times).

    Attributes:
        tokens: number of query tokens ``n``.
        kv_tokens: number of key/value tokens (differs from ``tokens`` in
            LeViT's shrinking attention blocks and in KV-cached decoding).
        qk_dim: per-head query/key dimension ``d``.
        v_dim: per-head value dimension (equals ``qk_dim`` except in LeViT).
        heads: number of attention heads ``h``.
        repeats: how many identical layers of this geometry the model has.
        causal: autoregressive masking — each of the ``tokens`` queries (the
            last ``tokens`` positions of a ``kv_tokens``-long sequence)
            attends only to its prefix.
    """

    tokens: int
    qk_dim: int
    heads: int
    repeats: int = 1
    v_dim: int | None = None
    kv_tokens: int | None = None
    causal: bool = False

    def __post_init__(self):
        if self.tokens <= 0 or self.qk_dim <= 0 or self.heads <= 0 or self.repeats <= 0:
            raise ValueError("attention layer dimensions must be positive")
        if self.v_dim is None:
            object.__setattr__(self, "v_dim", self.qk_dim)
        if self.kv_tokens is None:
            object.__setattr__(self, "kv_tokens", self.tokens)
        if self.causal and self.kv_tokens < self.tokens:
            raise ValueError("causal attention needs kv_tokens >= tokens "
                             "(the queries are the sequence's last positions)")

    @property
    def embed_dim(self) -> int:
        """Model (full) embedding width feeding this attention layer."""

        return self.qk_dim * self.heads


@dataclass(frozen=True)
class LinearLayerSpec:
    """One dense layer's GEMM geometry (used for end-to-end latency/energy).

    ``tokens x in_features`` activations are multiplied by an
    ``in_features x out_features`` weight; ``repeats`` counts identical layers.
    """

    tokens: int
    in_features: int
    out_features: int
    repeats: int = 1

    def __post_init__(self):
        if min(self.tokens, self.in_features, self.out_features, self.repeats) <= 0:
            raise ValueError("linear layer dimensions must be positive")

    @property
    def macs(self) -> int:
        return self.tokens * self.in_features * self.out_features * self.repeats


@dataclass(frozen=True)
class ModelWorkload:
    """Full inference workload of one ViT model."""

    name: str
    attention_layers: tuple[AttentionLayerSpec, ...]
    linear_layers: tuple[LinearLayerSpec, ...] = field(default_factory=tuple)
    #: ImageNet top-1 accuracy of the pre-trained baseline, from the paper (Fig. 10).
    baseline_accuracy: float | None = None

    def total_attention_layers(self) -> int:
        return sum(layer.repeats for layer in self.attention_layers)

    def linear_macs(self) -> int:
        """Total multiply-accumulates of the non-attention (projection/MLP) GEMMs."""

        return sum(layer.macs for layer in self.linear_layers)


def vit_linear_layers(tokens: int, embed_dim: int, layers: int, mlp_ratio: int = 4) -> tuple[LinearLayerSpec, ...]:
    """Standard ViT per-layer dense work: QKV projection, output projection, MLP."""

    hidden = embed_dim * mlp_ratio
    return (
        LinearLayerSpec(tokens, embed_dim, 3 * embed_dim, repeats=layers),   # QKV
        LinearLayerSpec(tokens, embed_dim, embed_dim, repeats=layers),       # output proj
        LinearLayerSpec(tokens, embed_dim, hidden, repeats=layers),          # MLP up
        LinearLayerSpec(tokens, hidden, embed_dim, repeats=layers),          # MLP down
    )


def _deit(name: str, embed_dim: int, heads: int, accuracy: float) -> ModelWorkload:
    tokens, layers, head_dim = 197, 12, embed_dim // heads
    return ModelWorkload(
        name=name,
        attention_layers=(
            AttentionLayerSpec(tokens=tokens, qk_dim=head_dim, heads=heads, repeats=layers),
        ),
        linear_layers=vit_linear_layers(tokens, embed_dim, layers),
        baseline_accuracy=accuracy,
    )


DEIT_TINY = _deit("deit-tiny", embed_dim=192, heads=3, accuracy=72.2)
DEIT_SMALL = _deit("deit-small", embed_dim=384, heads=6, accuracy=79.9)
DEIT_BASE = _deit("deit-base", embed_dim=768, heads=12, accuracy=81.8)


def _mobilevit(name: str, dims: tuple[int, int, int], accuracy: float) -> ModelWorkload:
    """MobileViT blocks: unfolded token grids of 256/64/16 with 4 heads each."""

    heads = 4
    block_tokens = (256, 64, 16)
    block_layers = (2, 4, 3)
    attention = tuple(
        AttentionLayerSpec(tokens=tokens, qk_dim=dim // heads, heads=heads, repeats=layers)
        for tokens, dim, layers in zip(block_tokens, dims, block_layers)
    )
    linear = tuple(
        spec
        for tokens, dim, layers in zip(block_tokens, dims, block_layers)
        for spec in vit_linear_layers(tokens, dim, layers, mlp_ratio=2)
    )
    return ModelWorkload(name=name, attention_layers=attention, linear_layers=linear,
                         baseline_accuracy=accuracy)


MOBILEVIT_XXS = _mobilevit("mobilevit-xxs", dims=(64, 80, 96), accuracy=73.6)
MOBILEVIT_XS = _mobilevit("mobilevit-xs", dims=(96, 120, 144), accuracy=77.1)


def _levit(name: str, stage_layers: tuple[int, int, int], stage_heads: tuple[int, int, int],
           accuracy: float) -> ModelWorkload:
    """LeViT stages: 196/49/16 tokens, 16-dim QK heads, 32-dim value heads."""

    qk_dim, v_dim = 16, 32
    stage_tokens = (196, 49, 16)
    attention = [
        AttentionLayerSpec(tokens=tokens, qk_dim=qk_dim, v_dim=v_dim, heads=heads, repeats=layers)
        for tokens, heads, layers in zip(stage_tokens, stage_heads, stage_layers)
    ]
    # Shrinking attention between stages: queries on the subsampled grid,
    # keys/values on the full-resolution grid, with doubled head counts.
    attention.append(AttentionLayerSpec(tokens=49, kv_tokens=196, qk_dim=qk_dim, v_dim=v_dim,
                                        heads=stage_heads[0] * 2, repeats=1))
    attention.append(AttentionLayerSpec(tokens=16, kv_tokens=49, qk_dim=qk_dim, v_dim=v_dim,
                                        heads=stage_heads[1] * 2, repeats=1))
    embed_dims = (stage_heads[0] * 32, stage_heads[1] * 32, stage_heads[2] * 32)
    linear = tuple(
        spec
        for tokens, dim, layers in zip(stage_tokens, embed_dims, stage_layers)
        for spec in vit_linear_layers(tokens, dim, layers, mlp_ratio=2)
    )
    return ModelWorkload(name=name, attention_layers=tuple(attention), linear_layers=linear,
                         baseline_accuracy=accuracy)


LEVIT_128S = _levit("levit-128s", stage_layers=(2, 3, 4), stage_heads=(4, 6, 8), accuracy=76.6)
LEVIT_128 = _levit("levit-128", stage_layers=(4, 4, 4), stage_heads=(4, 8, 12), accuracy=78.6)


#: The paper's seven evaluated models (Table I), in reporting order.  These
#: frozen objects are the *reference geometries* of the workload families in
#: :mod:`repro.workloads.core.families`; configured names whose knobs all sit
#: at their reference values resolve to these exact objects.
SEED_WORKLOADS: dict[str, ModelWorkload] = {
    workload.name: workload
    for workload in (
        DEIT_TINY,
        DEIT_SMALL,
        DEIT_BASE,
        MOBILEVIT_XXS,
        MOBILEVIT_XS,
        LEVIT_128S,
        LEVIT_128,
    )
}


def list_workloads() -> list[str]:
    """Names of the paper's evaluated model workloads, in reporting order.

    This is the default fan-out set of model sweeps (``Sweep.all_models``,
    ``repro sweep``); the parametric families beyond the paper (``encoder``,
    ``decoder``, ``transformer``) are listed by
    :func:`repro.workloads.list_families` instead.
    """

    return list(SEED_WORKLOADS)
