"""repro — a from-scratch reproduction of ViTALiTy (HPCA 2023).

ViTALiTy unifies a low-rank **linear Taylor attention** with a Sanger-style
**sparse attention** during training, then drops the sparse component at
inference so that only the linear (low-rank) path runs on a dedicated
accelerator.  This package implements the full stack described in the paper:

* ``repro.tensor`` / ``repro.nn`` / ``repro.optim`` — a numpy autograd and
  neural-network substrate (stand-in for PyTorch).
* ``repro.attention`` — softmax, Taylor, Sanger-sparse, unified ViTALiTy and
  the linear-attention baselines, plus op-counting and distribution analysis.
* ``repro.models`` — DeiT, MobileViT and LeViT model families.
* ``repro.data`` / ``repro.training`` — synthetic dataset and the ViTALiTy
  fine-tuning scheme (low-rank + sparse + knowledge distillation).
* ``repro.hardware`` — cycle-level ViTALiTy accelerator, Sanger baseline,
  CPU/GPU/EdgeGPU platform models, energy/area model.
* ``repro.profiling`` / ``repro.experiments`` — runtime breakdowns, FLOPs,
  and one driver per table/figure in the paper's evaluation.
"""

from repro.version import __version__

__all__ = ["__version__"]
