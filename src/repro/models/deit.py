"""DeiT model family (Touvron et al.) — the vanilla ViTs evaluated in the paper.

DeiT models are plain ViT encoders trained with a distillation token.  Two
presets exist per variant:

* ``"paper"`` geometry: 224x224 inputs, 16x16 patches, 197 tokens — matches
  the workloads in :mod:`repro.workloads` and is used by the hardware and
  op-counting experiments.
* ``"trainable"`` geometry: 32x32 inputs, 8x8 patches, small widths — same
  structure, small enough to fine-tune on the synthetic dataset for the
  accuracy experiments (Figs. 10/13/14/15).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.models.vit import AttentionFactory, VisionTransformer


@dataclass(frozen=True)
class DeiTConfig:
    """Geometry of one DeiT variant."""

    name: str
    image_size: int
    patch_size: int
    in_channels: int
    embed_dim: int
    depth: int
    num_heads: int
    num_classes: int
    mlp_ratio: float = 4.0
    distillation: bool = True

    @property
    def num_patches(self) -> int:
        return (self.image_size // self.patch_size) ** 2


_PAPER_CONFIGS = {
    "deit-tiny": DeiTConfig("deit-tiny", 224, 16, 3, 192, 12, 3, 1000),
    "deit-small": DeiTConfig("deit-small", 224, 16, 3, 384, 12, 6, 1000),
    "deit-base": DeiTConfig("deit-base", 224, 16, 3, 768, 12, 12, 1000),
}

_TRAINABLE_CONFIGS = {
    "deit-tiny": DeiTConfig("deit-tiny", 32, 8, 3, 48, 4, 3, 10),
    "deit-small": DeiTConfig("deit-small", 32, 8, 3, 96, 4, 6, 10),
    "deit-base": DeiTConfig("deit-base", 32, 8, 3, 144, 4, 12, 10),
}

DEIT_CONFIGS = {"paper": _PAPER_CONFIGS, "trainable": _TRAINABLE_CONFIGS}


def create_deit(name: str, preset: str = "trainable",
                attention_factory: AttentionFactory | None = None,
                num_classes: int | None = None,
                distillation: bool | None = None,
                capture_qkv: bool = False) -> VisionTransformer:
    """Instantiate a DeiT model.

    Args:
        name: one of ``deit-tiny``, ``deit-small``, ``deit-base``.
        preset: ``"paper"`` or ``"trainable"`` geometry.
        attention_factory: produces the attention mechanism for each layer
            (defaults to vanilla softmax attention, i.e. the BASELINE method).
        num_classes / distillation: optional overrides of the preset.
    """

    try:
        config = DEIT_CONFIGS[preset][name]
    except KeyError:
        raise KeyError(
            f"unknown DeiT config ({name!r}, preset={preset!r}); "
            f"available: {sorted(_PAPER_CONFIGS)} with presets {sorted(DEIT_CONFIGS)}"
        ) from None
    if num_classes is not None:
        config = replace(config, num_classes=num_classes)
    if distillation is not None:
        config = replace(config, distillation=distillation)
    return VisionTransformer(
        image_size=config.image_size,
        patch_size=config.patch_size,
        in_channels=config.in_channels,
        embed_dim=config.embed_dim,
        depth=config.depth,
        num_heads=config.num_heads,
        num_classes=config.num_classes,
        mlp_ratio=config.mlp_ratio,
        attention_factory=attention_factory,
        distillation=config.distillation,
        capture_qkv=capture_qkv,
    )
