"""Model and attention-mode registry.

The experiments refer to method variants by name (BASELINE / SPARSE /
LOWRANK / VITALITY plus the linear-attention baselines); this module maps
those names onto attention factories and builds any model of the zoo with any
method, which is the cross product the paper's evaluation sweeps.
"""

from __future__ import annotations

from typing import Callable

from repro.attention import (
    EfficientAttention,
    LinearTransformerAttention,
    PerformerAttention,
    SangerSparseAttention,
    SoftmaxAttention,
    TaylorAttention,
    ViTALiTyAttention,
)
from repro.attention.base import AttentionModule
from repro.models.deit import DEIT_CONFIGS, create_deit
from repro.models.levit import LEVIT_CONFIGS, create_levit
from repro.models.mobilevit import MOBILEVIT_CONFIGS, create_mobilevit

#: Default Sanger sparsity thresholds from the paper: the SPARSE baseline uses
#: T = 0.02 (Sanger's default) while ViTALiTy fine-tunes with T = 0.5.
SPARSE_BASELINE_THRESHOLD = 0.02
VITALITY_THRESHOLD = 0.5


def make_attention(mode: str, *, head_dim: int | None = None,
                   num_tokens: int | None = None,
                   threshold: float | None = None) -> AttentionModule:
    """Build one attention mechanism by method name.

    Args:
        mode: one of ``softmax``/``baseline``, ``sparse``, ``taylor``/``lowrank``,
            ``vitality``, ``linear_transformer``, ``performer``, ``efficient``.
        head_dim: required by ``performer`` (random-feature dimensionality).
        num_tokens: required by ``linformer``.
        threshold: overrides the default Sanger threshold for sparse modes.
    """

    mode = mode.lower()
    if mode in ("softmax", "baseline", "vanilla"):
        return SoftmaxAttention()
    if mode in ("taylor", "lowrank", "low-rank"):
        return TaylorAttention()
    if mode in ("sparse", "sanger"):
        return SangerSparseAttention(threshold=threshold if threshold is not None
                                     else SPARSE_BASELINE_THRESHOLD)
    if mode in ("vitality", "unified", "lowrank+sparse"):
        return ViTALiTyAttention(threshold=threshold if threshold is not None
                                 else VITALITY_THRESHOLD)
    if mode in ("linear_transformer", "linear-transformer"):
        return LinearTransformerAttention()
    if mode == "performer":
        if head_dim is None:
            raise ValueError("performer attention requires head_dim")
        return PerformerAttention(head_dim=head_dim)
    if mode == "efficient":
        return EfficientAttention()
    if mode == "linformer":
        from repro.attention import LinformerAttention

        if num_tokens is None:
            raise ValueError("linformer attention requires num_tokens")
        return LinformerAttention(num_tokens=num_tokens, projection_dim=max(1, num_tokens // 4))
    raise ValueError(f"unknown attention mode {mode!r}")


def available_attention_modes() -> list[str]:
    """Attention-mode names accepted by :func:`make_attention`."""

    return [
        "softmax",
        "taylor",
        "sparse",
        "vitality",
        "linear_transformer",
        "performer",
        "efficient",
        "linformer",
    ]


def available_models() -> list[str]:
    """Model names accepted by :func:`create_model`, in the paper's order."""

    return [
        "deit-tiny",
        "deit-small",
        "deit-base",
        "mobilevit-xxs",
        "mobilevit-xs",
        "levit-128s",
        "levit-128",
    ]


def _attention_factory(mode: str, head_dim: int, num_tokens: int,
                       threshold: float | None) -> Callable[[], AttentionModule]:
    def factory() -> AttentionModule:
        return make_attention(mode, head_dim=head_dim, num_tokens=num_tokens,
                              threshold=threshold)

    return factory


def create_model(name: str, attention_mode: str = "softmax", preset: str = "trainable",
                 num_classes: int | None = None, threshold: float | None = None,
                 capture_qkv: bool = False):
    """Build any model of the zoo with any attention method.

    Args:
        name: a model name from :func:`available_models`.
        attention_mode: a method name from :func:`available_attention_modes`.
        preset: ``"paper"`` (full geometry) or ``"trainable"`` (reduced).
        num_classes: optional override of the head width.
        threshold: optional Sanger threshold override for sparse modes.
    """

    name = name.lower()
    if name in DEIT_CONFIGS[preset]:
        config = DEIT_CONFIGS[preset][name]
        head_dim = config.embed_dim // config.num_heads
        tokens = config.num_patches + (2 if config.distillation else 1)
        factory = _attention_factory(attention_mode, head_dim, tokens, threshold)
        return create_deit(name, preset=preset, attention_factory=factory,
                           num_classes=num_classes, capture_qkv=capture_qkv)
    if name in MOBILEVIT_CONFIGS[preset]:
        config = MOBILEVIT_CONFIGS[preset][name]
        head_dim = config.transformer_dims[0] // config.num_heads
        tokens = (config.image_size // 8 // 2) ** 2
        factory = _attention_factory(attention_mode, head_dim, tokens, threshold)
        return create_mobilevit(name, preset=preset, attention_factory=factory,
                                num_classes=num_classes, capture_qkv=capture_qkv)
    if name in LEVIT_CONFIGS[preset]:
        config = LEVIT_CONFIGS[preset][name]
        grid = config.image_size // (2 ** len(config.stem_channels))
        factory = _attention_factory(attention_mode, config.qk_dim, grid * grid, threshold)
        return create_levit(name, preset=preset, attention_factory=factory,
                            num_classes=num_classes, capture_qkv=capture_qkv)
    raise KeyError(f"unknown model {name!r}; available: {available_models()}")
