"""LeViT model family (Graham et al.) — the hybrid multi-stage ViTs.

LeViT uses a convolutional stem that aggressively downsamples the image, then
three Transformer stages over progressively fewer tokens (196 / 49 / 16 at
224x224), with *asymmetric* attention heads: query/key dimension 16 and value
dimension 32 per head.  Stages are connected by shrinking attention blocks
whose queries live on the subsampled grid while keys/values come from the
full-resolution grid.

The reproduction keeps those structural properties — multi-stage token
reduction, asymmetric QK/V head dims, shrinking attention — and swaps LeViT's
BatchNorm-over-tokens for LayerNorm (a documented simplification that does
not affect the attention workload the hardware experiments consume).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import nn
from repro.attention.base import AttentionModule
from repro.attention.softmax_attention import SoftmaxAttention
from repro.models.vit import AttentionFactory, FeedForward
from repro.tensor import Tensor


class LeViTAttention(nn.Module):
    """LeViT attention with asymmetric per-head QK and V dimensions.

    Optionally performs the *shrinking* variant: queries are computed from a
    2x-subsampled token grid while keys/values cover the full grid, halving
    the token count between stages.
    """

    def __init__(self, embed_dim: int, out_dim: int, num_heads: int,
                 qk_dim: int = 16, v_dim: int = 32,
                 attention: AttentionModule | None = None,
                 shrink: bool = False, grid_size: int | None = None):
        super().__init__()
        self.embed_dim = embed_dim
        self.out_dim = out_dim
        self.num_heads = num_heads
        self.qk_dim = qk_dim
        self.v_dim = v_dim
        self.shrink = shrink
        self.grid_size = grid_size
        self.attention = attention if attention is not None else SoftmaxAttention()
        self.query = nn.Linear(embed_dim, num_heads * qk_dim, bias=False)
        self.key = nn.Linear(embed_dim, num_heads * qk_dim, bias=False)
        self.value = nn.Linear(embed_dim, num_heads * v_dim, bias=False)
        self.projection = nn.Linear(num_heads * v_dim, out_dim)
        self.activation = nn.Hardswish()

    def _split(self, x: Tensor, dim: int) -> Tensor:
        batch, tokens, _ = x.shape
        return x.reshape(batch, tokens, self.num_heads, dim).transpose((0, 2, 1, 3))

    def _subsample(self, x: Tensor) -> Tensor:
        """Keep every other token along both grid axes (stride-2 subsampling)."""

        if self.grid_size is None:
            raise RuntimeError("shrinking attention requires grid_size")
        batch, tokens, channels = x.shape
        grid = self.grid_size
        if tokens != grid * grid:
            raise ValueError(f"expected {grid * grid} tokens for a {grid}x{grid} grid, got {tokens}")
        x = x.reshape(batch, grid, grid, channels)
        x = x[:, ::2, ::2, :]
        new_grid = (grid + 1) // 2
        return x.reshape(batch, new_grid * new_grid, channels)

    def forward(self, x: Tensor) -> Tensor:
        x = Tensor._ensure(x)
        batch, tokens, _ = x.shape
        query_input = self._subsample(x) if self.shrink else x
        q = self._split(self.query(query_input), self.qk_dim)
        k = self._split(self.key(x), self.qk_dim)
        v = self._split(self.value(x), self.v_dim)
        scores = self.attention(q, k, v)
        q_tokens = scores.shape[2]
        merged = scores.transpose((0, 2, 1, 3)).reshape(batch, q_tokens, self.num_heads * self.v_dim)
        return self.projection(self.activation(merged))


class LeViTBlock(nn.Module):
    """One LeViT stage layer: attention + MLP, both with residuals."""

    def __init__(self, embed_dim: int, num_heads: int, mlp_ratio: float = 2.0,
                 qk_dim: int = 16, v_dim: int = 32,
                 attention: AttentionModule | None = None):
        super().__init__()
        self.norm1 = nn.LayerNorm(embed_dim)
        self.attention = LeViTAttention(embed_dim, embed_dim, num_heads,
                                        qk_dim=qk_dim, v_dim=v_dim, attention=attention)
        self.norm2 = nn.LayerNorm(embed_dim)
        self.mlp = FeedForward(embed_dim, int(embed_dim * mlp_ratio))

    def forward(self, x: Tensor) -> Tensor:
        x = x + self.attention(self.norm1(x))
        x = x + self.mlp(self.norm2(x))
        return x


class LeViTDownsample(nn.Module):
    """Shrinking attention block between stages (halves the token grid)."""

    def __init__(self, in_dim: int, out_dim: int, num_heads: int, grid_size: int,
                 qk_dim: int = 16, v_dim: int = 32,
                 attention: AttentionModule | None = None):
        super().__init__()
        self.norm = nn.LayerNorm(in_dim)
        self.attention = LeViTAttention(in_dim, out_dim, num_heads, shrink=True,
                                        qk_dim=qk_dim, v_dim=v_dim,
                                        grid_size=grid_size, attention=attention)
        self.out_grid = (grid_size + 1) // 2

    def forward(self, x: Tensor) -> Tensor:
        return self.attention(self.norm(x))


@dataclass(frozen=True)
class LeViTConfig:
    """Geometry of one LeViT variant."""

    name: str
    image_size: int
    stem_channels: tuple[int, ...]
    stage_dims: tuple[int, int, int]
    stage_depths: tuple[int, int, int]
    stage_heads: tuple[int, int, int]
    downsample_heads: tuple[int, int]
    num_classes: int
    qk_dim: int = 16
    v_dim: int = 32


_PAPER_CONFIGS = {
    "levit-128s": LeViTConfig("levit-128s", 224, (16, 32, 64, 128), (128, 256, 384),
                              (2, 3, 4), (4, 6, 8), (8, 16), 1000),
    "levit-128": LeViTConfig("levit-128", 224, (16, 32, 64, 128), (128, 256, 384),
                             (4, 4, 4), (4, 8, 12), (8, 16), 1000),
}

_TRAINABLE_CONFIGS = {
    "levit-128s": LeViTConfig("levit-128s", 32, (8, 16), (32, 48, 64),
                              (1, 1, 1), (2, 3, 4), (4, 8), 10, qk_dim=8, v_dim=16),
    "levit-128": LeViTConfig("levit-128", 32, (8, 16), (32, 48, 64),
                             (2, 2, 2), (2, 4, 6), (4, 8), 10, qk_dim=8, v_dim=16),
}

LEVIT_CONFIGS = {"paper": _PAPER_CONFIGS, "trainable": _TRAINABLE_CONFIGS}


class LeViT(nn.Module):
    """LeViT backbone + classification head."""

    def __init__(self, config: LeViTConfig,
                 attention_factory: AttentionFactory | None = None,
                 capture_qkv: bool = False):
        super().__init__()
        del capture_qkv  # LeViT attention handles its own projections; capture unsupported.
        self.config = config
        factory = attention_factory or SoftmaxAttention

        # Convolutional stem: one stride-2 conv per listed channel width.
        stem_layers: list[nn.Module] = []
        in_channels = 3
        for channels in config.stem_channels:
            stem_layers.append(nn.Conv2d(in_channels, channels, 3, stride=2, padding=1, bias=False))
            stem_layers.append(nn.BatchNorm2d(channels))
            stem_layers.append(nn.Hardswish())
            in_channels = channels
        self.stem = nn.Sequential(*stem_layers)
        self.stem_out_channels = in_channels
        self.grid_size = config.image_size // (2 ** len(config.stem_channels))
        self.embed = nn.Linear(in_channels, config.stage_dims[0])

        def _stage(dim: int, depth: int, heads: int) -> nn.ModuleList:
            return nn.ModuleList([
                LeViTBlock(dim, heads, qk_dim=config.qk_dim, v_dim=config.v_dim,
                           attention=factory())
                for _ in range(depth)
            ])

        self.stage1 = _stage(config.stage_dims[0], config.stage_depths[0], config.stage_heads[0])
        self.downsample1 = LeViTDownsample(config.stage_dims[0], config.stage_dims[1],
                                           config.downsample_heads[0], self.grid_size,
                                           qk_dim=config.qk_dim, v_dim=config.v_dim,
                                           attention=factory())
        self.stage2 = _stage(config.stage_dims[1], config.stage_depths[1], config.stage_heads[1])
        self.downsample2 = LeViTDownsample(config.stage_dims[1], config.stage_dims[2],
                                           config.downsample_heads[1], self.downsample1.out_grid,
                                           qk_dim=config.qk_dim, v_dim=config.v_dim,
                                           attention=factory())
        self.stage3 = _stage(config.stage_dims[2], config.stage_depths[2], config.stage_heads[2])

        self.head = nn.Linear(config.stage_dims[2], config.num_classes)
        self.num_classes = config.num_classes
        self.distillation = False

    def forward(self, images: Tensor) -> Tensor:
        x = self.stem(images)
        batch, channels, height, width = x.shape
        tokens = x.reshape(batch, channels, height * width).transpose((0, 2, 1))
        tokens = self.embed(tokens)
        for block in self.stage1:
            tokens = block(tokens)
        tokens = self.downsample1(tokens)
        for block in self.stage2:
            tokens = block(tokens)
        tokens = self.downsample2(tokens)
        for block in self.stage3:
            tokens = block(tokens)
        pooled = tokens.mean(axis=1)
        return self.head(pooled)

    def attention_modules(self):
        """All pluggable attention mechanisms across stages and downsamplers."""

        modules = []
        for stage in (self.stage1, self.stage2, self.stage3):
            for block in stage:
                modules.append(block.attention.attention)
        modules.append(self.downsample1.attention.attention)
        modules.append(self.downsample2.attention.attention)
        return modules


def create_levit(name: str, preset: str = "trainable",
                 attention_factory: AttentionFactory | None = None,
                 num_classes: int | None = None,
                 capture_qkv: bool = False) -> LeViT:
    """Instantiate a LeViT model (``levit-128s`` or ``levit-128``)."""

    try:
        config = LEVIT_CONFIGS[preset][name]
    except KeyError:
        raise KeyError(
            f"unknown LeViT config ({name!r}, preset={preset!r}); "
            f"available: {sorted(_PAPER_CONFIGS)} with presets {sorted(LEVIT_CONFIGS)}"
        ) from None
    if num_classes is not None:
        from dataclasses import replace
        config = replace(config, num_classes=num_classes)
    return LeViT(config, attention_factory=attention_factory, capture_qkv=capture_qkv)
