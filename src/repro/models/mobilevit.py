"""MobileViT model family (Mehta & Rastegari) — the lightweight hybrid ViTs.

MobileViT interleaves MobileNetV2-style inverted-residual convolutions with
MobileViT blocks that unfold the feature map into patch tokens, run a small
Transformer over them, fold back, and fuse with the convolutional features.
The Transformer inside each MobileViT block uses the same pluggable attention
interface as the rest of the model zoo, so the BASELINE / LOWRANK / SPARSE /
ViTALiTy method variants apply to MobileViT unchanged.

The reproduction keeps the block structure faithful (stem, MV2 stages, three
MobileViT blocks with 2/4/3 transformer layers) while exposing a reduced
"trainable" preset whose channel widths and input resolution fit the numpy
training budget.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import nn
from repro.models.vit import AttentionFactory, TransformerBlock
from repro.tensor import Tensor


class InvertedResidual(nn.Module):
    """MobileNetV2 inverted-residual block: expand -> depthwise -> project."""

    def __init__(self, in_channels: int, out_channels: int, stride: int = 1,
                 expansion: int = 2):
        super().__init__()
        hidden = in_channels * expansion
        self.use_residual = stride == 1 and in_channels == out_channels
        self.expand = nn.Conv2d(in_channels, hidden, 1, bias=False)
        self.expand_norm = nn.BatchNorm2d(hidden)
        self.depthwise = nn.DepthwiseConv2d(hidden, 3, stride=stride, padding=1, bias=False)
        self.depthwise_norm = nn.BatchNorm2d(hidden)
        self.project = nn.Conv2d(hidden, out_channels, 1, bias=False)
        self.project_norm = nn.BatchNorm2d(out_channels)
        self.activation = nn.SiLU()

    def forward(self, x: Tensor) -> Tensor:
        out = self.activation(self.expand_norm(self.expand(x)))
        out = self.activation(self.depthwise_norm(self.depthwise(out)))
        out = self.project_norm(self.project(out))
        if self.use_residual:
            out = out + x
        return out


class MobileViTBlock(nn.Module):
    """Local conv + unfold -> Transformer -> fold + fuse (the MobileViT block)."""

    def __init__(self, channels: int, transformer_dim: int, depth: int, num_heads: int,
                 patch_size: int = 2, mlp_ratio: float = 2.0,
                 attention_factory: AttentionFactory | None = None,
                 capture_qkv: bool = False):
        super().__init__()
        self.patch_size = patch_size
        self.transformer_dim = transformer_dim
        self.local_conv = nn.Conv2d(channels, channels, 3, padding=1, bias=False)
        self.local_norm = nn.BatchNorm2d(channels)
        self.local_proj = nn.Conv2d(channels, transformer_dim, 1, bias=False)
        self.transformer = nn.ModuleList([
            TransformerBlock(transformer_dim, num_heads, mlp_ratio=mlp_ratio,
                             attention=attention_factory() if attention_factory else None,
                             capture_qkv=capture_qkv)
            for _ in range(depth)
        ])
        self.transformer_norm = nn.LayerNorm(transformer_dim)
        self.out_proj = nn.Conv2d(transformer_dim, channels, 1, bias=False)
        self.fuse = nn.Conv2d(2 * channels, channels, 3, padding=1, bias=False)
        self.fuse_norm = nn.BatchNorm2d(channels)
        self.activation = nn.SiLU()

    def _unfold(self, x: Tensor) -> tuple[Tensor, tuple[int, int, int, int]]:
        """Rearrange (N, C, H, W) into (N * p^2, H*W / p^2, C) token sequences.

        Each of the ``p^2`` intra-patch pixel positions becomes an independent
        sequence (folded into the batch dimension), exactly as MobileViT's
        unfold does.
        """

        batch, channels, height, width = x.shape
        p = self.patch_size
        if height % p or width % p:
            raise ValueError(f"spatial dims {(height, width)} not divisible by patch size {p}")
        grid_h, grid_w = height // p, width // p
        tokens = x.reshape(batch, channels, grid_h, p, grid_w, p)
        tokens = tokens.transpose((0, 3, 5, 2, 4, 1))          # (N, p, p, gh, gw, C)
        tokens = tokens.reshape(batch * p * p, grid_h * grid_w, channels)
        return tokens, (batch, channels, grid_h, grid_w)

    def _fold(self, tokens: Tensor, info: tuple[int, int, int, int]) -> Tensor:
        batch, channels, grid_h, grid_w = info
        p = self.patch_size
        x = tokens.reshape(batch, p, p, grid_h, grid_w, channels)
        x = x.transpose((0, 5, 3, 1, 4, 2))                    # (N, C, gh, p, gw, p)
        return x.reshape(batch, channels, grid_h * p, grid_w * p)

    def forward(self, x: Tensor) -> Tensor:
        residual = x
        local = self.activation(self.local_norm(self.local_conv(x)))
        local = self.local_proj(local)
        tokens, info = self._unfold(local)
        for block in self.transformer:
            tokens = block(tokens)
        tokens = self.transformer_norm(tokens)
        folded = self._fold(tokens, (info[0], self.transformer_dim, info[2], info[3]))
        folded = self.out_proj(folded)
        fused = Tensor.concat([residual, folded], axis=1)
        return self.activation(self.fuse_norm(self.fuse(fused)))


@dataclass(frozen=True)
class MobileViTConfig:
    """Geometry of one MobileViT variant."""

    name: str
    image_size: int
    stem_channels: int
    stage_channels: tuple[int, int, int]
    transformer_dims: tuple[int, int, int]
    transformer_depths: tuple[int, int, int]
    num_heads: int
    num_classes: int
    expansion: int = 2


_PAPER_CONFIGS = {
    "mobilevit-xxs": MobileViTConfig("mobilevit-xxs", 256, 16, (24, 48, 64),
                                     (64, 80, 96), (2, 4, 3), 4, 1000),
    "mobilevit-xs": MobileViTConfig("mobilevit-xs", 256, 16, (48, 64, 80),
                                    (96, 120, 144), (2, 4, 3), 4, 1000),
}

_TRAINABLE_CONFIGS = {
    "mobilevit-xxs": MobileViTConfig("mobilevit-xxs", 32, 8, (8, 16, 24),
                                     (32, 40, 48), (2, 2, 2), 4, 10),
    "mobilevit-xs": MobileViTConfig("mobilevit-xs", 32, 8, (16, 24, 32),
                                    (48, 64, 80), (2, 2, 2), 4, 10),
}

MOBILEVIT_CONFIGS = {"paper": _PAPER_CONFIGS, "trainable": _TRAINABLE_CONFIGS}


class MobileViT(nn.Module):
    """MobileViT backbone + classification head."""

    def __init__(self, config: MobileViTConfig,
                 attention_factory: AttentionFactory | None = None,
                 capture_qkv: bool = False):
        super().__init__()
        self.config = config
        channels = config.stage_channels
        self.stem = nn.Conv2d(3, config.stem_channels, 3, stride=2, padding=1, bias=False)
        self.stem_norm = nn.BatchNorm2d(config.stem_channels)
        self.activation = nn.SiLU()

        # Three stages, each: an inverted-residual downsampling block followed
        # by a MobileViT block running the Transformer on the unfolded tokens.
        self.downsample1 = InvertedResidual(config.stem_channels, channels[0], stride=2,
                                            expansion=config.expansion)
        self.block1 = MobileViTBlock(channels[0], config.transformer_dims[0],
                                     config.transformer_depths[0], config.num_heads,
                                     attention_factory=attention_factory,
                                     capture_qkv=capture_qkv)
        self.downsample2 = InvertedResidual(channels[0], channels[1], stride=2,
                                            expansion=config.expansion)
        self.block2 = MobileViTBlock(channels[1], config.transformer_dims[1],
                                     config.transformer_depths[1], config.num_heads,
                                     attention_factory=attention_factory,
                                     capture_qkv=capture_qkv)
        self.downsample3 = InvertedResidual(channels[1], channels[2], stride=2,
                                            expansion=config.expansion)
        self.block3 = MobileViTBlock(channels[2], config.transformer_dims[2],
                                     config.transformer_depths[2], config.num_heads,
                                     attention_factory=attention_factory,
                                     capture_qkv=capture_qkv)

        self.pool = nn.GlobalAvgPool2d()
        self.head = nn.Linear(channels[2], config.num_classes)
        self.num_classes = config.num_classes
        self.distillation = False

    def forward(self, images: Tensor) -> Tensor:
        x = self.activation(self.stem_norm(self.stem(images)))
        x = self.block1(self.downsample1(x))
        x = self.block2(self.downsample2(x))
        x = self.block3(self.downsample3(x))
        return self.head(self.pool(x))

    def attention_modules(self):
        """All attention mechanisms across the three MobileViT blocks."""

        modules = []
        for block in (self.block1, self.block2, self.block3):
            for transformer_block in block.transformer:
                modules.append(transformer_block.mha.attention)
        return modules


def create_mobilevit(name: str, preset: str = "trainable",
                     attention_factory: AttentionFactory | None = None,
                     num_classes: int | None = None,
                     capture_qkv: bool = False) -> MobileViT:
    """Instantiate a MobileViT model (``mobilevit-xxs`` or ``mobilevit-xs``)."""

    try:
        config = MOBILEVIT_CONFIGS[preset][name]
    except KeyError:
        raise KeyError(
            f"unknown MobileViT config ({name!r}, preset={preset!r}); "
            f"available: {sorted(_PAPER_CONFIGS)} with presets {sorted(MOBILEVIT_CONFIGS)}"
        ) from None
    if num_classes is not None:
        from dataclasses import replace
        config = replace(config, num_classes=num_classes)
    return MobileViT(config, attention_factory=attention_factory, capture_qkv=capture_qkv)
