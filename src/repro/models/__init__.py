"""ViT model zoo: DeiT, MobileViT and LeViT families.

Each model can be instantiated with any attention mechanism from
``repro.attention`` (softmax baseline, Taylor/LOWRANK, Sanger sparse, the
unified ViTALiTy attention, or one of the linear baselines), which is how the
paper's BASELINE / SPARSE / LOWRANK / ViTALiTy method variants are realised.

Two size presets exist per architecture:

* ``"paper"`` — the geometry used in the paper (224x224 inputs, full widths);
  used for op counting, profiling and hardware experiments.
* ``"trainable"`` — a reduced-width, reduced-resolution configuration with the
  same structure, small enough to fine-tune on the synthetic dataset within
  the accuracy experiments (Figs. 10, 13, 14, 15).
"""

from repro.models.vit import (
    MultiHeadAttention,
    FeedForward,
    TransformerBlock,
    VisionTransformer,
)
from repro.models.deit import DeiTConfig, create_deit, DEIT_CONFIGS
from repro.models.mobilevit import MobileViTConfig, create_mobilevit, MOBILEVIT_CONFIGS
from repro.models.levit import LeViTConfig, create_levit, LEVIT_CONFIGS
from repro.models.registry import (
    available_models,
    available_attention_modes,
    create_model,
    make_attention,
)

__all__ = [
    "MultiHeadAttention",
    "FeedForward",
    "TransformerBlock",
    "VisionTransformer",
    "DeiTConfig",
    "create_deit",
    "DEIT_CONFIGS",
    "MobileViTConfig",
    "create_mobilevit",
    "MOBILEVIT_CONFIGS",
    "LeViTConfig",
    "create_levit",
    "LEVIT_CONFIGS",
    "available_models",
    "available_attention_modes",
    "create_model",
    "make_attention",
]
