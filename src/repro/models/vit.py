"""Generic Vision Transformer building blocks.

The blocks follow the standard pre-norm ViT layout (Fig. 2 of the paper):
each Transformer layer is a multi-head attention (MHA) module followed by an
MLP module, both wrapped with layer norm and residual connections.  The MHA
module is parameterised by an :class:`~repro.attention.base.AttentionModule`
so that the same model skeleton realises the BASELINE, LOWRANK, SPARSE and
ViTALiTy method variants.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro import nn
from repro.attention.base import AttentionModule
from repro.attention.softmax_attention import SoftmaxAttention
from repro.tensor import Tensor

AttentionFactory = Callable[[], AttentionModule]


class MultiHeadAttention(nn.Module):
    """Multi-head attention with a pluggable attention mechanism.

    Computes the Step-1 projections (Q, K, V), reshapes the tokens into
    ``(batch, heads, tokens, head_dim)``, delegates Steps 2–3 to the attached
    attention mechanism, and applies the output projection.

    When ``capture_qkv`` is enabled the most recent per-head query/key/value
    arrays are stored on the module (as plain numpy arrays), which is how the
    Fig. 3 distribution analysis extracts layer-wise similarity inputs.
    """

    def __init__(self, embed_dim: int, num_heads: int,
                 attention: AttentionModule | None = None,
                 qkv_bias: bool = True, dropout: float = 0.0,
                 capture_qkv: bool = False):
        super().__init__()
        if embed_dim % num_heads:
            raise ValueError(f"embed_dim {embed_dim} not divisible by num_heads {num_heads}")
        self.embed_dim = embed_dim
        self.num_heads = num_heads
        self.head_dim = embed_dim // num_heads
        self.attention = attention if attention is not None else SoftmaxAttention()
        self.qkv = nn.Linear(embed_dim, 3 * embed_dim, bias=qkv_bias)
        self.projection = nn.Linear(embed_dim, embed_dim)
        self.dropout = nn.Dropout(dropout)
        self.capture_qkv = capture_qkv
        self.captured_q: np.ndarray | None = None
        self.captured_k: np.ndarray | None = None
        self.captured_v: np.ndarray | None = None

    def _split_heads(self, x: Tensor, batch: int, tokens: int) -> Tensor:
        return x.reshape(batch, tokens, self.num_heads, self.head_dim).transpose((0, 2, 1, 3))

    def _merge_heads(self, x: Tensor, batch: int, tokens: int) -> Tensor:
        return x.transpose((0, 2, 1, 3)).reshape(batch, tokens, self.embed_dim)

    def forward(self, x: Tensor) -> Tensor:
        x = Tensor._ensure(x)
        batch, tokens, _ = x.shape
        qkv = self.qkv(x)
        q = self._split_heads(qkv[:, :, : self.embed_dim], batch, tokens)
        k = self._split_heads(qkv[:, :, self.embed_dim: 2 * self.embed_dim], batch, tokens)
        v = self._split_heads(qkv[:, :, 2 * self.embed_dim:], batch, tokens)
        if self.capture_qkv:
            self.captured_q = q.data.copy()
            self.captured_k = k.data.copy()
            self.captured_v = v.data.copy()
        scores = self.attention(q, k, v)
        merged = self._merge_heads(scores, batch, tokens)
        return self.dropout(self.projection(merged))


class FeedForward(nn.Module):
    """The Transformer MLP module: Linear -> GELU -> Linear with dropout."""

    def __init__(self, embed_dim: int, hidden_dim: int, dropout: float = 0.0):
        super().__init__()
        self.fc1 = nn.Linear(embed_dim, hidden_dim)
        self.activation = nn.GELU()
        self.fc2 = nn.Linear(hidden_dim, embed_dim)
        self.dropout = nn.Dropout(dropout)

    def forward(self, x: Tensor) -> Tensor:
        return self.dropout(self.fc2(self.activation(self.fc1(x))))


class TransformerBlock(nn.Module):
    """Pre-norm Transformer encoder layer: MHA module + MLP module."""

    def __init__(self, embed_dim: int, num_heads: int, mlp_ratio: float = 4.0,
                 attention: AttentionModule | None = None, dropout: float = 0.0,
                 capture_qkv: bool = False):
        super().__init__()
        self.norm1 = nn.LayerNorm(embed_dim)
        self.mha = MultiHeadAttention(embed_dim, num_heads, attention=attention,
                                      dropout=dropout, capture_qkv=capture_qkv)
        self.norm2 = nn.LayerNorm(embed_dim)
        self.mlp = FeedForward(embed_dim, int(embed_dim * mlp_ratio), dropout=dropout)

    def forward(self, x: Tensor) -> Tensor:
        x = x + self.mha(self.norm1(x))
        x = x + self.mlp(self.norm2(x))
        return x


class VisionTransformer(nn.Module):
    """A plain ViT/DeiT encoder over image patches.

    Args:
        image_size / patch_size / in_channels: patchification geometry.
        embed_dim / depth / num_heads / mlp_ratio: encoder geometry.
        num_classes: classification head width.
        attention_factory: callable producing one attention mechanism per
            layer (each layer owns its instance so per-layer statistics such
            as sparse-mask density remain separable).
        distillation: if ``True`` a DeiT-style distillation token and a second
            head are added; :meth:`forward` then returns the averaged logits
            while :meth:`forward_with_distillation` exposes both heads.
    """

    def __init__(self, image_size: int, patch_size: int, in_channels: int,
                 embed_dim: int, depth: int, num_heads: int, num_classes: int,
                 mlp_ratio: float = 4.0, dropout: float = 0.0,
                 attention_factory: AttentionFactory | None = None,
                 distillation: bool = False, capture_qkv: bool = False):
        super().__init__()
        attention_factory = attention_factory or SoftmaxAttention
        self.patch_embed = nn.PatchEmbedding(image_size, patch_size, in_channels, embed_dim)
        self.class_token = nn.ClassToken(embed_dim, with_distillation_token=distillation)
        num_tokens = self.patch_embed.num_patches + self.class_token.num_extra_tokens
        self.positional = nn.PositionalEmbedding(num_tokens, embed_dim)
        self.dropout = nn.Dropout(dropout)
        self.blocks = nn.ModuleList([
            TransformerBlock(embed_dim, num_heads, mlp_ratio=mlp_ratio,
                             attention=attention_factory(), dropout=dropout,
                             capture_qkv=capture_qkv)
            for _ in range(depth)
        ])
        self.norm = nn.LayerNorm(embed_dim)
        self.head = nn.Linear(embed_dim, num_classes)
        self.head_distillation = nn.Linear(embed_dim, num_classes) if distillation else None
        self.embed_dim = embed_dim
        self.depth = depth
        self.num_heads = num_heads
        self.num_classes = num_classes
        self.distillation = distillation

    # -- helpers -----------------------------------------------------------------

    def encode(self, images: Tensor) -> Tensor:
        """Run the encoder and return the normalised token sequence."""

        tokens = self.patch_embed(images)
        tokens = self.class_token(tokens)
        tokens = self.dropout(self.positional(tokens))
        for block in self.blocks:
            tokens = block(tokens)
        return self.norm(tokens)

    def forward_with_distillation(self, images: Tensor) -> tuple[Tensor, Tensor]:
        """Return (class-head logits, distillation-head logits)."""

        if not self.distillation:
            raise RuntimeError("model was not built with a distillation token")
        tokens = self.encode(images)
        class_logits = self.head(tokens[:, 0])
        distillation_logits = self.head_distillation(tokens[:, 1])
        return class_logits, distillation_logits

    def forward(self, images: Tensor) -> Tensor:
        tokens = self.encode(images)
        class_logits = self.head(tokens[:, 0])
        if not self.distillation:
            return class_logits
        distillation_logits = self.head_distillation(tokens[:, 1])
        return (class_logits + distillation_logits) * 0.5

    # -- introspection ---------------------------------------------------------------

    def attention_modules(self) -> list[AttentionModule]:
        """The per-layer attention mechanisms, in depth order."""

        return [block.mha.attention for block in self.blocks]

    def set_capture_qkv(self, enabled: bool) -> None:
        for block in self.blocks:
            block.mha.capture_qkv = enabled

    def captured_qkv(self) -> tuple[list[np.ndarray], list[np.ndarray], list[np.ndarray]]:
        """Per-layer captured (Q, K, V) arrays from the most recent forward pass."""

        queries, keys, values = [], [], []
        for block in self.blocks:
            if block.mha.captured_q is None:
                raise RuntimeError("no captured Q/K/V; enable capture_qkv and run a forward pass")
            queries.append(block.mha.captured_q)
            keys.append(block.mha.captured_k)
            values.append(block.mha.captured_v)
        return queries, keys, values
