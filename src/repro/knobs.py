"""The configured-name grammar: knob strings parsed into hashable configs.

Both sides of a simulation are spelled the same way — a base name plus a
bracketed, comma-separated list of ``knob=value`` pairs::

    vitality[pe=32x32,freq=1ghz]          # a hardware design point
    decoder[tokens=1,kv_tokens=2048,phase=decode]   # a workload geometry

Each family (a hardware target family or a workload family) publishes a
:class:`KnobSchema` declaring which knobs exist, how their values parse and
render, and what the family's reference value is.  Parsing produces a
:class:`KnobConfig` — a frozen, hashable record of ``(family, sorted knob
items)`` used as the identity of a configured point: knob order is
normalised, values are canonicalised, and knobs set to their reference value
are dropped, so every spelling of the same physical configuration resolves
to one config (and one cache entry).

Errors raise :class:`KnobError` (a ``ValueError``) with messages that name
the offending knob, the expected format and the valid alternatives.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping

#: Frequency suffixes accepted by ``freq=`` values, largest unit first so the
#: ``hz`` suffix of ``mhz``/``ghz``/``khz`` cannot shadow them.
_FREQUENCY_UNITS = (("ghz", 1e9), ("mhz", 1e6), ("khz", 1e3), ("hz", 1.0))


class KnobError(ValueError):
    """A malformed or unknown configured-name knob."""


# ---------------------------------------------------------------------------------
# Value parsers/renderers.  Renderers must round-trip: parse(render(v)) == v.
# ---------------------------------------------------------------------------------

def parse_geometry(text: str) -> tuple[int, int]:
    """``"32x32"`` -> ``(32, 32)``."""

    rows, separator, columns = text.lower().partition("x")
    if not separator or not rows.isdigit() or not columns.isdigit():
        raise KnobError(f"expected ROWSxCOLS (e.g. '32x32'), got {text!r}")
    geometry = (int(rows), int(columns))
    if min(geometry) < 1:
        raise KnobError(f"array dimensions must be >= 1, got {text!r}")
    return geometry


def render_geometry(value: tuple[int, int]) -> str:
    return f"{value[0]}x{value[1]}"


def parse_frequency(text: str) -> float:
    """``"500mhz"`` / ``"1ghz"`` / ``"2.5e8"`` -> hertz."""

    lowered = text.lower().strip()
    number, multiplier = lowered, 1.0
    for unit, unit_multiplier in _FREQUENCY_UNITS:
        if lowered.endswith(unit):
            number, multiplier = lowered[:-len(unit)], unit_multiplier
            break
    try:
        value = float(number) * multiplier
    except ValueError:
        raise KnobError(f"expected a frequency such as '500mhz', '1ghz' or a "
                        f"number in Hz, got {text!r}") from None
    if value <= 0:
        raise KnobError(f"frequency must be positive, got {text!r}")
    return value


def render_frequency(hertz: float) -> str:
    """Hertz -> the shortest exact spelling (``1ghz``, ``433mhz``, raw Hz)."""

    megahertz = hertz / 1e6
    if megahertz == int(megahertz):
        gigahertz = hertz / 1e9
        if gigahertz == int(gigahertz):
            return f"{int(gigahertz)}ghz"
        return f"{int(megahertz)}mhz"
    return repr(hertz)


def parse_positive_int(text: str) -> int:
    if not text.isdigit() or int(text) < 1:
        raise KnobError(f"expected a positive integer, got {text!r}")
    return int(text)


def parse_non_negative_int(text: str) -> int:
    if not text.isdigit():
        raise KnobError(f"expected a non-negative integer, got {text!r}")
    return int(text)


def parse_positive_float(text: str) -> float:
    try:
        value = float(text)
    except ValueError:
        raise KnobError(f"expected a number, got {text!r}") from None
    if value <= 0:
        raise KnobError(f"expected a positive number, got {text!r}")
    return value


def parse_fraction(text: str) -> float:
    value = parse_positive_float(text)
    if value > 1.0:
        raise KnobError(f"expected a fraction in (0, 1], got {text!r}")
    return value


def parse_bool(text: str) -> bool:
    """``"true"`` / ``"false"`` (or ``"1"`` / ``"0"``) -> bool."""

    lowered = text.lower()
    if lowered in ("true", "1"):
        return True
    if lowered in ("false", "0"):
        return False
    raise KnobError(f"expected 'true' or 'false', got {text!r}")


def render_bool(value: bool) -> str:
    return "true" if value else "false"


def choice_parser(*choices: str) -> Callable[[str], str]:
    """A parser accepting exactly the given spellings (case-normalised)."""

    def parse(text: str) -> str:
        lowered = text.lower()
        if lowered not in choices:
            raise KnobError(f"expected one of {', '.join(choices)}, got {text!r}")
        return lowered

    return parse


def render_number(value: object) -> str:
    """Exact, re-parseable rendering for int/float knob values."""

    if isinstance(value, int):
        return str(value)
    return repr(value)


@dataclass(frozen=True)
class Knob:
    """One named dimension of a family's configuration space."""

    name: str
    parse: Callable[[str], object]
    render: Callable[[object], str]
    doc: str
    #: Reference value; parsing drops knobs set to it, so the
    #: explicit-default spelling resolves to the reference configuration.
    #: ``None`` means "keep the base family's value" (no drop possible).
    default: object = None


@dataclass(frozen=True)
class KnobConfig:
    """A configured point: a family plus its non-default knob settings.

    ``knobs`` is a name-sorted tuple of ``(name, value)`` pairs, which makes
    the config hashable, order-insensitive and directly usable as a cache
    key.  The empty tuple is the family's reference configuration.
    """

    family: str
    knobs: tuple[tuple[str, object], ...] = ()

    @property
    def is_reference(self) -> bool:
        """True when every knob sits at the family's reference value."""

        return not self.knobs

    def get(self, name: str, default: object = None) -> object:
        for knob_name, value in self.knobs:
            if knob_name == name:
                return value
        return default

    def __contains__(self, name: str) -> bool:
        return any(knob_name == name for knob_name, _ in self.knobs)

    def with_knob(self, name: str, value: object) -> "KnobConfig":
        """A copy with ``name`` set to ``value`` (replacing any prior setting)."""

        items = dict(self.knobs)
        items[name] = value
        return KnobConfig(self.family, tuple(sorted(items.items())))

    def without_knob(self, name: str) -> "KnobConfig":
        """A copy with ``name`` unset (back at the family's reference value)."""

        return KnobConfig(self.family, tuple(
            item for item in self.knobs if item[0] != name))


@dataclass(frozen=True)
class KnobSchema:
    """The knob vocabulary of one family."""

    family: str
    knobs: Mapping[str, Knob] = field(default_factory=dict)

    def parse(self, text: str) -> KnobConfig:
        """Parse ``"pe=32x32,freq=1ghz"`` (brackets already stripped)."""

        return self.parse_explicit(text)[0]

    def parse_explicit(self, text: str) -> tuple[KnobConfig, frozenset[str]]:
        """Like :meth:`parse`, also returning which knobs were spelled out.

        Reference-valued knobs are dropped from the config (they identify
        the base configuration), so the explicit-name set is the only way a
        semantic normaliser can tell ``family[knob=<default>]`` apart from
        the knob being absent — e.g. an explicit ``tokens`` at its default
        must not be re-defaulted by the ``phase=decode`` lowering.
        """

        items: dict[str, object] = {}
        seen: set[str] = set()
        for part in text.split(","):
            part = part.strip()
            if not part:
                continue
            name, separator, raw_value = part.partition("=")
            name, raw_value = name.strip(), raw_value.strip()
            if not separator or not name or not raw_value:
                raise KnobError(
                    f"malformed knob {part!r} for {self.family!r}: expected "
                    f"knob=value, e.g. {self.example()!r}")
            knob = self.knobs.get(name)
            if knob is None:
                raise KnobError(
                    f"unknown knob {name!r} for {self.family!r}; "
                    f"valid knobs: {self.describe()}")
            if name in seen:
                raise KnobError(f"duplicate knob {name!r} in {text!r}")
            seen.add(name)
            try:
                value = knob.parse(raw_value)
            except KnobError as error:
                raise KnobError(f"invalid value for knob {name!r}: {error}") from None
            if value != knob.default:     # reference values identify the base config
                items[name] = value
        return KnobConfig(self.family, tuple(sorted(items.items()))), frozenset(seen)

    def render(self, config: KnobConfig) -> str:
        """The canonical knob string (sorted names, canonical values)."""

        return ",".join(f"{name}={self.knobs[name].render(value)}"
                        for name, value in config.knobs)

    def describe(self) -> str:
        """Human-readable knob inventory for error messages and ``--help``."""

        return "; ".join(f"{name} ({knob.doc})"
                         for name, knob in sorted(self.knobs.items()))

    def example(self) -> str:
        name, knob = next(iter(sorted(self.knobs.items())))
        rendered = knob.render(knob.default) if knob.default is not None else "..."
        return f"{name}={rendered}"
