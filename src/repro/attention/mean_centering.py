"""Row-wise mean-centering of attention inputs (Section III-A of the paper).

Property 1 (mean-centering): subtracting a per-row scalar from the softmax
input does not change the softmax output.  ViTALiTy exploits this by
mean-centering the *keys* instead of the attention matrix, which costs
``O(nd)`` instead of the ``O(n^2 d)`` it would take to centre the attention
matrix directly:

    Q K^T / sqrt(d) - mean(Q K^T / sqrt(d)) = Q (K - 1_n K_bar)^T / sqrt(d)

so the mean-centred key matrix ``K_hat = K - 1_n K_bar`` produces exactly the
same softmax attention while concentrating the similarity values around zero
(the motivating observation behind the first-order Taylor expansion).
"""

from __future__ import annotations

import numpy as np

from repro.tensor import Tensor, softmax


def mean_center_keys(k: Tensor) -> Tensor:
    """Return the mean-centred key matrix ``K_hat`` (differentiable).

    ``k`` may have any number of leading batch/head dimensions; the centering
    is performed over the token dimension (second to last).
    """

    k = Tensor._ensure(k)
    k_bar = k.mean(axis=-2, keepdims=True)
    return k - k_bar


def mean_center_keys_array(k: np.ndarray) -> np.ndarray:
    """Numpy fast-path of :func:`mean_center_keys` for inference/profiling."""

    k = np.asarray(k, dtype=np.float64)
    return k - k.mean(axis=-2, keepdims=True)


def softmax_shift_invariance_gap(q: np.ndarray, k: np.ndarray) -> float:
    """Empirically verify Property 1.

    Computes ``max |softmax(Q K^T / sqrt(d)) - softmax(Q K_hat^T / sqrt(d))|``
    which should be zero up to floating-point error.  Used by the tests and by
    the Fig. 3 analysis to validate that mean-centering keys does not change
    the softmax attention.
    """

    q = np.asarray(q, dtype=np.float64)
    k = np.asarray(k, dtype=np.float64)
    head_dim = q.shape[-1]
    scale = 1.0 / np.sqrt(head_dim)

    k_hat = mean_center_keys_array(k)
    original = softmax(Tensor(q @ np.swapaxes(k, -1, -2) * scale), axis=-1).data
    centred = softmax(Tensor(q @ np.swapaxes(k_hat, -1, -2) * scale), axis=-1).data
    return float(np.max(np.abs(original - centred)))


def similarity_matrix(q: np.ndarray, k: np.ndarray, centre: bool = True) -> np.ndarray:
    """Return the scaled dot-product similarity ``Q K^T / sqrt(d)``.

    With ``centre=True`` the keys are mean-centred first, which is the input
    whose distribution Fig. 3 of the paper visualises.
    """

    q = np.asarray(q, dtype=np.float64)
    k = np.asarray(k, dtype=np.float64)
    if centre:
        k = mean_center_keys_array(k)
    head_dim = q.shape[-1]
    return q @ np.swapaxes(k, -1, -2) / np.sqrt(head_dim)
