"""ViTALiTy's unified low-rank + sparse attention (Section III-D, Fig. 4).

The vanilla softmax attention is decoupled into

    softmax(Q K_hat^T / sqrt(d))  ~=  Taylor|m=1  ("weak", low-rank, linear)
                                    + Taylor|m>1 ("strong", sparse residual)

During **training** the strong component is approximated by a Sanger-style
sparse mask applied to the residual between the exact softmax attention map
and the first-order Taylor map; the masked residual is added back so the
model sees (approximately) the full softmax attention while the gradient
shapes the weights to work well with the linear part.  The paper's key
empirical findings, which the reproduction exposes as statistics:

* the sparse component's occupancy shrinks over training (Fig. 14), because
  the low-rank term renders the residual increasingly sparse, and
* at **inference** the sparse component can be dropped entirely
  (``inference_mode=True`` or ``module.eval()``), leaving only the linear
  Taylor attention and hence no runtime sparsity overhead.
"""

from __future__ import annotations

import numpy as np

from repro.attention.base import AttentionModule
from repro.attention.sparse_attention import predict_sparsity_mask
from repro.attention.softmax_attention import softmax_attention
from repro.attention.taylor_attention import TaylorAttention, taylor_attention_map
from repro.tensor import Tensor, softmax


class ViTALiTyAttention(AttentionModule):
    """Unified low-rank (Taylor) + sparse (Sanger residual) attention.

    Args:
        threshold: Sanger sparsity threshold ``T`` used to predict the mask
            for the strong/residual component.  The paper's optimum for
            fine-tuning is ``T = 0.5``.
        bits: quantisation bit-width of the mask predictor.
        residual_epsilon: residual entries with magnitude below this value are
            treated as zero when reporting the sparse-component occupancy
            (the Fig. 14 metric).
        use_sparse_in_eval: if ``True`` the sparse component is also applied
            in eval mode (this reproduces the LOWRANK+SPARSE rows of the
            ablation); the default ViTALiTy behaviour drops it.
    """

    name = "vitality"

    def __init__(self, threshold: float = 0.5, bits: int = 4,
                 residual_epsilon: float = 1e-3,
                 use_sparse_in_eval: bool = False):
        super().__init__()
        self.threshold = threshold
        self.bits = bits
        self.residual_epsilon = residual_epsilon
        self.use_sparse_in_eval = use_sparse_in_eval
        self.taylor = TaylorAttention()

    # -- components -------------------------------------------------------------

    def _low_rank_component(self, q: Tensor, k: Tensor, v: Tensor) -> Tensor:
        return self.taylor(q, k, v)

    def _sparse_residual_component(self, q: Tensor, k: Tensor, v: Tensor) -> Tensor:
        """Masked residual between softmax and first-order Taylor attention maps.

        The residual map (softmax minus Taylor) stands in for the higher-order
        Taylor terms; the Sanger mask keeps only the "strong" connections.
        The residual weights are treated as constants (mask prediction and
        map difference are not back-propagated through), so gradients flow to
        the model through the values and through the low-rank path — the
        sparse term acts as the regulariser described in the paper.
        """

        geometry = self._check_shapes(q, k, v)
        scale = 1.0 / np.sqrt(geometry.head_dim)

        mask = predict_sparsity_mask(q.data, k.data, self.threshold, bits=self.bits)

        # Exact softmax map and first-order Taylor map, both as constants.
        logits = q.data @ np.swapaxes(k.data, -1, -2) * scale
        logits = logits - logits.max(axis=-1, keepdims=True)
        softmax_map = np.exp(logits)
        softmax_map = softmax_map / softmax_map.sum(axis=-1, keepdims=True)
        taylor_map = taylor_attention_map(q.data, k.data, normalise=True)

        residual = (softmax_map - taylor_map) * mask
        occupancy = float(np.mean(np.abs(residual) > self.residual_epsilon))
        self.last_stats["sparse_mask_density"] = float(mask.mean())
        self.last_stats["sparse_residual_occupancy"] = occupancy
        self.last_stats["sparse_residual_magnitude"] = float(np.mean(np.abs(residual)))
        return Tensor(residual) @ v

    # -- forward ------------------------------------------------------------------

    def forward(self, q: Tensor, k: Tensor, v: Tensor) -> Tensor:
        q, k, v = Tensor._ensure(q), Tensor._ensure(k), Tensor._ensure(v)
        self.last_stats = {}
        low_rank = self._low_rank_component(q, k, v)
        include_sparse = self.training or self.use_sparse_in_eval
        if include_sparse:
            sparse = self._sparse_residual_component(q, k, v)
            output = low_rank + sparse
        else:
            self.last_stats["sparse_mask_density"] = 0.0
            self.last_stats["sparse_residual_occupancy"] = 0.0
            self.last_stats["sparse_residual_magnitude"] = 0.0
            output = low_rank
        self.last_stats["uses_sparse_component"] = float(include_sparse)
        return output
