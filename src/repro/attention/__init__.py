"""Attention algorithms evaluated in the ViTALiTy paper.

The subpackage contains:

* :class:`SoftmaxAttention` — the vanilla quadratic baseline (BASELINE).
* :class:`TaylorAttention` — the paper's linear, low-rank first-order Taylor
  attention with row-mean-centred keys (Algorithm 1, LOWRANK).
* :class:`SangerSparseAttention` — the Sanger-style dynamic sparse attention
  used both as the SPARSE baseline and as ViTALiTy's training-time sparse
  component.
* :class:`ViTALiTyAttention` — the unified low-rank + sparse attention used
  while fine-tuning; at inference it degenerates to the pure Taylor path.
* Linear-attention baselines (Performer, Linear Transformer, Efficient
  Attention, Linformer) for the Table IV / Table VI comparisons.
* Analysis utilities: operation counting (Table I, Eqs. 1–3), attention
  value distributions under mean-centering (Fig. 3).
"""

from repro.attention.base import AttentionModule, attention_geometry
from repro.attention.mean_centering import (
    mean_center_keys,
    mean_center_keys_array,
    softmax_shift_invariance_gap,
)
from repro.attention.softmax_attention import SoftmaxAttention, softmax_attention
from repro.attention.taylor_attention import (
    TaylorAttention,
    taylor_attention,
    taylor_attention_map,
    global_context_matrix,
)
from repro.attention.sparse_attention import (
    SangerSparseAttention,
    quantize_symmetric,
    predict_sparsity_mask,
    pack_and_split,
)
from repro.attention.unified_attention import ViTALiTyAttention
from repro.attention.linear_baselines import (
    LinearTransformerAttention,
    PerformerAttention,
    EfficientAttention,
    LinformerAttention,
)
from repro.attention.op_counting import (
    OperationCounts,
    count_vanilla_attention_ops,
    count_taylor_attention_ops,
    operation_ratio_multiplications,
    operation_ratio_additions,
    operation_ratio_divisions,
)
from repro.attention.distribution import attention_distribution_stats, DistributionStats

__all__ = [
    "AttentionModule",
    "attention_geometry",
    "mean_center_keys",
    "mean_center_keys_array",
    "softmax_shift_invariance_gap",
    "SoftmaxAttention",
    "softmax_attention",
    "TaylorAttention",
    "taylor_attention",
    "taylor_attention_map",
    "global_context_matrix",
    "SangerSparseAttention",
    "quantize_symmetric",
    "predict_sparsity_mask",
    "pack_and_split",
    "ViTALiTyAttention",
    "LinearTransformerAttention",
    "PerformerAttention",
    "EfficientAttention",
    "LinformerAttention",
    "OperationCounts",
    "count_vanilla_attention_ops",
    "count_taylor_attention_ops",
    "operation_ratio_multiplications",
    "operation_ratio_additions",
    "operation_ratio_divisions",
    "attention_distribution_stats",
    "DistributionStats",
]
