"""Common interface and geometry helpers for attention mechanisms."""

from __future__ import annotations

from dataclasses import dataclass

from repro.nn.module import Module
from repro.tensor import Tensor


@dataclass(frozen=True)
class AttentionGeometry:
    """Shape of one attention call: batch, heads, tokens and head dimension."""

    batch: int
    heads: int
    tokens: int
    head_dim: int


def attention_geometry(q: Tensor) -> AttentionGeometry:
    """Extract the (batch, heads, tokens, head_dim) geometry from a query tensor."""

    q = Tensor._ensure(q)
    if q.ndim != 4:
        raise ValueError(
            f"attention inputs must have shape (batch, heads, tokens, head_dim), got {q.shape}"
        )
    batch, heads, tokens, head_dim = q.shape
    return AttentionGeometry(batch=batch, heads=heads, tokens=tokens, head_dim=head_dim)


class AttentionModule(Module):
    """Base class for all attention mechanisms.

    Every mechanism consumes query/key/value tensors of shape
    ``(batch, heads, tokens, head_dim)`` and produces an attention score of
    the same shape.  Mechanisms may populate :attr:`last_stats` with run-time
    diagnostics (e.g. sparse-mask density), which the training loop and the
    experiment drivers read out after each forward pass.
    """

    #: Human-readable identifier used by the model registry and experiments.
    name: str = "attention"

    def __init__(self):
        super().__init__()
        self.last_stats: dict[str, float] = {}

    def forward(self, q: Tensor, k: Tensor, v: Tensor) -> Tensor:  # pragma: no cover - interface
        raise NotImplementedError

    def _check_shapes(self, q: Tensor, k: Tensor, v: Tensor) -> AttentionGeometry:
        """Validate shapes, allowing asymmetric geometries.

        Queries may attend over a different number of key/value tokens (as in
        LeViT's shrinking attention), and the value head dimension may differ
        from the query/key dimension.  Required layout:

        * ``q``: (batch, heads, q_tokens, qk_dim)
        * ``k``: (batch, heads, kv_tokens, qk_dim)
        * ``v``: (batch, heads, kv_tokens, v_dim)
        """

        geometry = attention_geometry(q)
        k = Tensor._ensure(k)
        v = Tensor._ensure(v)
        if k.ndim != 4 or v.ndim != 4:
            raise ValueError("k and v must have shape (batch, heads, tokens, dim)")
        if k.shape[:2] != q.shape[:2] or v.shape[:2] != q.shape[:2]:
            raise ValueError(
                f"batch/head dims must match: q {q.shape}, k {k.shape}, v {v.shape}"
            )
        if k.shape[-1] != q.shape[-1]:
            raise ValueError(f"q and k feature dims differ: {q.shape[-1]} vs {k.shape[-1]}")
        if k.shape[2] != v.shape[2]:
            raise ValueError(f"k and v token counts differ: {k.shape[2]} vs {v.shape[2]}")
        return geometry
