"""Operation counting for vanilla vs Taylor attention (Table I, Eqs. 1–3).

The counts are exact enumerations of the scalar multiplications, additions,
divisions and exponentiations performed by the two attention formulations on
a given layer geometry.  Aggregated over a model's attention layers they
reproduce Table I of the paper; the closed-form ratios of Eqs. (1)–(3) are
provided as separate helpers so the tests can check the approximation
``R ~= n / d`` claimed in the text.

The counts honor the full layer geometry, including autoregressive shapes:
``kv_tokens`` decouples the key/value length from the query count (LeViT's
shrinking blocks, KV-cached decoding) and ``causal`` masks the score
matrix's upper triangle, so the vanilla-vs-Taylor comparison extends from
the paper's ViT encoders to GPT-style decoder workloads.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.workloads import AttentionLayerSpec, ModelWorkload


@dataclass(frozen=True)
class OperationCounts:
    """Scalar operation counts of an attention computation."""

    multiplications: int = 0
    additions: int = 0
    divisions: int = 0
    exponentiations: int = 0

    def __add__(self, other: "OperationCounts") -> "OperationCounts":
        return OperationCounts(
            multiplications=self.multiplications + other.multiplications,
            additions=self.additions + other.additions,
            divisions=self.divisions + other.divisions,
            exponentiations=self.exponentiations + other.exponentiations,
        )

    def scaled(self, factor: int) -> "OperationCounts":
        return OperationCounts(
            multiplications=self.multiplications * factor,
            additions=self.additions * factor,
            divisions=self.divisions * factor,
            exponentiations=self.exponentiations * factor,
        )

    @property
    def total(self) -> int:
        return self.multiplications + self.additions + self.divisions + self.exponentiations

    def in_millions(self) -> dict[str, float]:
        """Counts expressed in millions, the unit Table I uses."""

        return {
            "Mul": self.multiplications / 1e6,
            "Add": self.additions / 1e6,
            "Div": self.divisions / 1e6,
            "Exp": self.exponentiations / 1e6,
        }


def _attention_entries(layer: AttentionLayerSpec) -> int:
    """Computed entries of the n x m score matrix.

    Causal layers skip the masked upper triangle: the ``n`` queries are the
    last positions of an ``m``-token sequence, so query ``i`` attends to its
    ``m - n + i + 1``-long prefix.  For square causal prefill that is the
    familiar ``n(n+1)/2``; for a KV-cached decode step (``n=1``) it is ``m``.
    """

    n, m = layer.tokens, layer.kv_tokens
    if layer.causal:
        return n * m - n * (n - 1) // 2
    return n * m


def _vanilla_layer_counts(layer: AttentionLayerSpec) -> OperationCounts:
    """Per-layer counts for softmax attention: QK^T, softmax, SV."""

    d, dv, h = layer.qk_dim, layer.v_dim, layer.heads
    attention_entries = _attention_entries(layer)
    multiplications = h * (attention_entries * d + attention_entries * dv)
    # Matmul accumulations plus the softmax denominator reduction (n*m adds),
    # matching the (2 n^2 d + n^2) numerator of Eq. (2) for the square case.
    additions = h * (attention_entries * d + attention_entries * dv + attention_entries)
    divisions = h * attention_entries
    exponentiations = h * attention_entries
    return OperationCounts(multiplications, additions, divisions, exponentiations)


def _taylor_layer_counts(layer: AttentionLayerSpec) -> OperationCounts:
    """Per-layer counts for the linear Taylor attention (Algorithm 1).

    The counts depend only on ``n`` and ``m``, never on their product —
    that is the linear-attention claim.  A causal layer streams the keys
    once, updating the running context ``G`` (a prefix sum) between
    queries, so its counts match the bidirectional ones; every key is
    still touched exactly once.  This is also why a KV-cached decode step
    (``n=1``) costs Taylor attention a full ``m * d * dv`` context
    rebuild unless ``G`` itself is carried as the cache — the asymmetry
    the ``seqscale`` experiment quantifies.
    """

    n, m = layer.tokens, layer.kv_tokens
    d, dv, h = layer.qk_dim, layer.v_dim, layer.heads

    # Step 2 (G = K_hat^T V) and Step 5 (Q G) dominate; Step 4 adds Q k_hat_sum^T.
    multiplications = h * (m * d * dv + n * d * dv + n * d)
    # Matmul accumulations for the three products above, plus the pre/post
    # processing element-wise work: column mean of K (m*d), mean-centering
    # subtraction (m*d), column sums k_hat_sum / v_sum (m*d + m*dv), the
    # denominator constant addition (n) and the numerator addition (n*dv).
    additions = h * (
        m * d * dv + n * d * dv + n * d
        + 2 * m * d + m * d + m * dv + n + n * dv
    )
    # Step 1 divides the key column sum by n (d divisions) and Step 6 divides
    # every numerator entry by its row denominator (n*dv divisions).
    divisions = h * (d + n * dv)
    return OperationCounts(multiplications, additions, divisions, exponentiations=0)


def count_vanilla_attention_ops(workload: ModelWorkload | AttentionLayerSpec) -> OperationCounts:
    """Total softmax-attention operation counts for a model (or a single layer)."""

    if isinstance(workload, AttentionLayerSpec):
        return _vanilla_layer_counts(workload).scaled(workload.repeats)
    total = OperationCounts()
    for layer in workload.attention_layers:
        total = total + _vanilla_layer_counts(layer).scaled(layer.repeats)
    return total


def count_taylor_attention_ops(workload: ModelWorkload | AttentionLayerSpec) -> OperationCounts:
    """Total Taylor-attention operation counts for a model (or a single layer)."""

    if isinstance(workload, AttentionLayerSpec):
        return _taylor_layer_counts(workload).scaled(workload.repeats)
    total = OperationCounts()
    for layer in workload.attention_layers:
        total = total + _taylor_layer_counts(layer).scaled(layer.repeats)
    return total


# -- closed-form ratios of Eqs. (1)-(3) -----------------------------------------


def operation_ratio_multiplications(tokens: int, head_dim: int) -> float:
    """Eq. (1): ratio of multiplication counts, ``2n / (2d + 1) ~= n/d``."""

    return 2.0 * tokens * tokens * head_dim / (2.0 * tokens * head_dim * head_dim + tokens * head_dim)


def operation_ratio_additions(tokens: int, head_dim: int) -> float:
    """Eq. (2): ratio of addition counts, ``(2d+1) n / ((2d+7) d) < n/d``."""

    numerator = 2.0 * tokens * tokens * head_dim + tokens * tokens
    denominator = 2.0 * tokens * head_dim * head_dim + 7.0 * tokens * head_dim
    return numerator / denominator


def operation_ratio_divisions(tokens: int, head_dim: int) -> float:
    """Eq. (3): ratio of division counts, ``n^2 / ((n+1) d) ~= n/d``."""

    return tokens * tokens / ((tokens + 1.0) * head_dim)


def table1_rows(workloads: list[ModelWorkload]) -> list[dict[str, object]]:
    """Build Table I: per-model op counts (millions) and reduction ratios."""

    rows = []
    for workload in workloads:
        vitality = count_taylor_attention_ops(workload)
        baseline = count_vanilla_attention_ops(workload)
        rows.append({
            "model": workload.name,
            "vitality": vitality.in_millions(),
            "baseline": baseline.in_millions(),
            "ratio_mul": baseline.multiplications / vitality.multiplications,
            "ratio_add": baseline.additions / vitality.additions,
            "ratio_div": baseline.divisions / vitality.divisions,
        })
    return rows
