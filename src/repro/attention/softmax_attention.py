"""Vanilla scaled dot-product softmax attention (the BASELINE method).

This is the quadratic-cost attention of the original Transformer/ViT:

    Step 2:  S = softmax(Q K^T / sqrt(d))
    Step 3:  Z = S V

Both a differentiable module (used when training baseline models) and a
plain-numpy functional version (used by the profiling and hardware workload
code) are provided.
"""

from __future__ import annotations

import numpy as np

from repro.attention.base import AttentionModule
from repro.tensor import Tensor, softmax


def softmax_attention(q: np.ndarray, k: np.ndarray, v: np.ndarray,
                      return_map: bool = False):
    """Numpy softmax attention over (..., tokens, head_dim) arrays."""

    q = np.asarray(q, dtype=np.float64)
    k = np.asarray(k, dtype=np.float64)
    v = np.asarray(v, dtype=np.float64)
    head_dim = q.shape[-1]
    logits = q @ np.swapaxes(k, -1, -2) / np.sqrt(head_dim)
    logits = logits - logits.max(axis=-1, keepdims=True)
    weights = np.exp(logits)
    weights = weights / weights.sum(axis=-1, keepdims=True)
    scores = weights @ v
    if return_map:
        return scores, weights
    return scores


class SoftmaxAttention(AttentionModule):
    """Differentiable vanilla softmax attention."""

    name = "softmax"

    def __init__(self, attention_dropout: float = 0.0):
        super().__init__()
        self.attention_dropout = attention_dropout
        self._rng = np.random.default_rng(0)

    def forward(self, q: Tensor, k: Tensor, v: Tensor) -> Tensor:
        geometry = self._check_shapes(q, k, v)
        q, k, v = Tensor._ensure(q), Tensor._ensure(k), Tensor._ensure(v)
        scale = 1.0 / np.sqrt(geometry.head_dim)
        logits = (q @ k.transpose()) * scale
        weights = softmax(logits, axis=-1)
        if self.training and self.attention_dropout > 0.0:
            mask = (self._rng.random(weights.shape) >= self.attention_dropout)
            weights = weights * Tensor(mask / (1.0 - self.attention_dropout))
        self.last_stats = {"attention_entries": float(np.prod(weights.shape))}
        return weights @ v
