"""Sanger-style dynamic sparse attention (the SPARSE method).

Sanger (Lu et al., MICRO 2021) predicts which attention entries matter by
computing a *quantised* low-precision attention map, thresholding it to get a
binary sparsity mask, and then evaluating the full-precision attention only at
the surviving positions.  The resulting irregular mask is rearranged into
hardware-friendly structured blocks with a "pack and split" step.

ViTALiTy uses this mechanism in two roles:

* as the standalone SPARSE baseline (threshold ``T = 0.02``), and
* as the sparse component that approximates the higher-order Taylor terms
  while fine-tuning ViTALiTy models (threshold ``T = 0.5``), see
  :mod:`repro.attention.unified_attention`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.attention.base import AttentionModule
from repro.tensor import Tensor, softmax


_MASKED_LOGIT = -1e9


def quantize_symmetric(values: np.ndarray, bits: int = 4) -> np.ndarray:
    """Symmetric uniform quantisation (dequantised back to float).

    Sanger predicts the sparsity mask from a low-precision (4-bit) rendition
    of Q and K; this helper returns the dequantised values so the prediction
    path stays in ordinary float arithmetic while carrying quantisation error.
    """

    if bits < 1:
        raise ValueError("bits must be >= 1")
    values = np.asarray(values, dtype=np.float64)
    max_abs = np.max(np.abs(values), axis=-1, keepdims=True)
    max_abs = np.where(max_abs == 0.0, 1.0, max_abs)
    levels = 2 ** (bits - 1) - 1
    scale = max_abs / levels
    return np.round(values / scale) * scale


def predict_sparsity_mask(q: np.ndarray, k: np.ndarray, threshold: float,
                          bits: int = 4) -> np.ndarray:
    """Predict the binary attention mask from quantised queries and keys.

    Returns a boolean array of shape ``(..., n, n)`` where ``True`` marks the
    (query, key) pairs whose predicted softmax probability reaches the
    threshold.  Every row is guaranteed at least one active entry (its argmax)
    so the subsequent masked softmax is always well defined.
    """

    if not 0.0 <= threshold <= 1.0:
        raise ValueError(f"threshold must be in [0, 1], got {threshold}")
    q = np.asarray(q, dtype=np.float64)
    k = np.asarray(k, dtype=np.float64)
    head_dim = q.shape[-1]
    q_quant = quantize_symmetric(q, bits=bits)
    k_quant = quantize_symmetric(k, bits=bits)
    logits = q_quant @ np.swapaxes(k_quant, -1, -2) / np.sqrt(head_dim)
    logits = logits - logits.max(axis=-1, keepdims=True)
    probabilities = np.exp(logits)
    probabilities = probabilities / probabilities.sum(axis=-1, keepdims=True)
    mask = probabilities >= threshold

    # Keep at least the strongest key for every query row.
    argmax = probabilities.argmax(axis=-1)
    rows = np.indices(argmax.shape)
    full_index = tuple(rows) + (argmax,)
    mask[full_index] = True
    return mask


@dataclass(frozen=True)
class PackAndSplitResult:
    """Outcome of Sanger's pack-and-split load balancing.

    Attributes:
        packed_rows: number of hardware rows after splitting long rows and
            packing short ones, per attention head.
        density: fraction of active entries in the mask.
        load_balance_efficiency: ratio of average to maximum per-packed-row
            occupancy — 1.0 means perfectly balanced PE rows.
    """

    packed_rows: int
    density: float
    load_balance_efficiency: float


def pack_and_split(mask: np.ndarray, row_capacity: int = 64) -> PackAndSplitResult:
    """Rearrange an irregular sparse mask into structured rows of fixed capacity.

    Long mask rows are *split* into chunks of at most ``row_capacity`` active
    entries and short chunks are *packed* together first-fit, mirroring the
    "pack and split" strategy Sanger uses to feed its reconfigurable PE array.
    """

    if row_capacity <= 0:
        raise ValueError("row_capacity must be positive")
    mask = np.asarray(mask, dtype=bool)
    flat_rows = mask.reshape(-1, mask.shape[-1])
    nonzeros_per_row = flat_rows.sum(axis=1)

    # Split: each row becomes ceil(nnz / capacity) chunks (rows with zero
    # active entries contribute nothing to the packed workload).
    chunks: list[int] = []
    for count in nonzeros_per_row:
        count = int(count)
        while count > row_capacity:
            chunks.append(row_capacity)
            count -= row_capacity
        if count > 0:
            chunks.append(count)

    # Pack: first-fit the chunks into hardware rows of ``row_capacity`` slots.
    packed: list[int] = []
    for chunk in sorted(chunks, reverse=True):
        for index, occupancy in enumerate(packed):
            if occupancy + chunk <= row_capacity:
                packed[index] = occupancy + chunk
                break
        else:
            packed.append(chunk)

    total = mask.size
    active = int(mask.sum())
    density = active / total if total else 0.0
    if packed:
        load_balance = float(np.mean(packed) / np.max(packed))
    else:
        load_balance = 1.0
    return PackAndSplitResult(
        packed_rows=len(packed),
        density=density,
        load_balance_efficiency=load_balance,
    )


class SangerSparseAttention(AttentionModule):
    """Differentiable Sanger sparse attention.

    The sparsity mask is predicted from quantised Q/K (no gradient through the
    prediction), applied to the full-precision attention logits, and the
    masked softmax re-normalises over the surviving entries only.
    """

    name = "sparse"

    def __init__(self, threshold: float = 0.02, bits: int = 4):
        super().__init__()
        if not 0.0 <= threshold <= 1.0:
            raise ValueError(f"threshold must be in [0, 1], got {threshold}")
        self.threshold = threshold
        self.bits = bits

    def forward(self, q: Tensor, k: Tensor, v: Tensor) -> Tensor:
        geometry = self._check_shapes(q, k, v)
        q, k, v = Tensor._ensure(q), Tensor._ensure(k), Tensor._ensure(v)
        scale = 1.0 / np.sqrt(geometry.head_dim)

        mask = predict_sparsity_mask(q.data, k.data, self.threshold, bits=self.bits)
        logits = (q @ k.transpose()) * scale
        masked_logits = logits.where(mask, Tensor(np.full(logits.shape, _MASKED_LOGIT)))
        weights = softmax(masked_logits, axis=-1)
        # Zero out any numerically negligible leakage into masked positions.
        weights = weights * Tensor(mask.astype(np.float64))
        weights = weights / weights.sum(axis=-1, keepdims=True)

        self.last_stats = {
            "mask_density": float(mask.mean()),
            "attention_entries": float(mask.sum()),
        }
        return weights @ v
