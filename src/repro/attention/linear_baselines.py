"""Linear-attention baselines used in the paper's comparisons.

Table IV compares ViTALiTy against other linear attentions (Linformer,
Performer) and Table VI categorises linear-attention families by the
pre/post-processors their kernels require.  All four comparators are
implemented here on the same ``(batch, heads, tokens, head_dim)`` interface
as the rest of the attention library:

* **Linear Transformer** (Katharopoulos et al.): kernel ``phi(x) = elu(x)+1``
  applied to queries and keys, followed by the associative-order product.
* **Performer** (Choromanski et al.): positive orthogonal random features
  (PORF) approximating the softmax kernel.
* **Efficient Attention** (Shen et al.): softmax applied separately to the
  queries (over features) and keys (over tokens).
* **Linformer** (Wang et al.): low-rank projection of keys and values along
  the token dimension before an ordinary softmax attention.
"""

from __future__ import annotations

import numpy as np

from repro.attention.base import AttentionModule
from repro.nn import init
from repro.nn.module import Parameter
from repro.tensor import Tensor, softmax
from repro.tensor.functional import elu


class LinearTransformerAttention(AttentionModule):
    """Linear attention with the ``elu(x) + 1`` feature map."""

    name = "linear_transformer"

    def __init__(self, eps: float = 1e-6):
        super().__init__()
        self.eps = eps

    def forward(self, q: Tensor, k: Tensor, v: Tensor) -> Tensor:
        self._check_shapes(q, k, v)
        q, k, v = Tensor._ensure(q), Tensor._ensure(k), Tensor._ensure(v)
        q_prime = elu(q) + 1.0
        k_prime = elu(k) + 1.0
        context = k_prime.transpose() @ v                    # (.., d, d)
        k_sum = k_prime.sum(axis=-2, keepdims=True)           # (.., 1, d)
        numerator = q_prime @ context
        denominator = q_prime @ k_sum.transpose() + self.eps  # (.., n, 1)
        self.last_stats = {"attention_entries": 0.0}
        return numerator / denominator


class PerformerAttention(AttentionModule):
    """FAVOR+ softmax-kernel approximation via positive orthogonal random features."""

    name = "performer"

    def __init__(self, head_dim: int, num_features: int | None = None,
                 seed: int = 0, eps: float = 1e-6):
        super().__init__()
        self.head_dim = head_dim
        self.num_features = num_features or head_dim
        self.eps = eps
        projection = self._orthogonal_gaussian(self.num_features, head_dim, seed)
        self.register_buffer("projection", projection)

    @staticmethod
    def _orthogonal_gaussian(rows: int, columns: int, seed: int) -> np.ndarray:
        """Draw a block-orthogonal Gaussian random feature matrix."""

        rng = np.random.default_rng(seed)
        blocks = []
        remaining = rows
        while remaining > 0:
            gaussian = rng.normal(size=(columns, columns))
            q_factor, _ = np.linalg.qr(gaussian)
            take = min(remaining, columns)
            blocks.append(q_factor[:take])
            remaining -= take
        matrix = np.concatenate(blocks, axis=0)
        # Re-scale rows to match the norm distribution of unstructured Gaussians.
        norms = np.sqrt(rng.chisquare(columns, size=(rows, 1)))
        return matrix * norms

    def _feature_map(self, x: Tensor) -> Tensor:
        """Positive random features: h(x) * exp(w^T x) with h(x) = exp(-|x|^2/2)."""

        scale = self.head_dim ** -0.25
        x = x * scale
        projected = x @ Tensor(self.projection.T)             # (.., n, m)
        squared_norm = (x * x).sum(axis=-1, keepdims=True) * 0.5
        stabiliser = Tensor(projected.data.max(axis=-1, keepdims=True))
        features = (projected - squared_norm - stabiliser).exp()
        return features * (1.0 / np.sqrt(self.num_features))

    def forward(self, q: Tensor, k: Tensor, v: Tensor) -> Tensor:
        self._check_shapes(q, k, v)
        q, k, v = Tensor._ensure(q), Tensor._ensure(k), Tensor._ensure(v)
        q_prime = self._feature_map(q)
        k_prime = self._feature_map(k)
        context = k_prime.transpose() @ v
        k_sum = k_prime.sum(axis=-2, keepdims=True)
        numerator = q_prime @ context
        denominator = q_prime @ k_sum.transpose() + self.eps
        self.last_stats = {"attention_entries": 0.0}
        return numerator / denominator


class EfficientAttention(AttentionModule):
    """Efficient Attention: softmax over query features and key tokens separately."""

    name = "efficient"

    def forward(self, q: Tensor, k: Tensor, v: Tensor) -> Tensor:
        self._check_shapes(q, k, v)
        q, k, v = Tensor._ensure(q), Tensor._ensure(k), Tensor._ensure(v)
        q_prime = softmax(q, axis=-1)      # normalise each query over features
        k_prime = softmax(k, axis=-2)      # normalise each key feature over tokens
        context = k_prime.transpose() @ v
        self.last_stats = {"attention_entries": 0.0}
        return q_prime @ context


class LinformerAttention(AttentionModule):
    """Linformer: project keys/values from ``n`` tokens down to ``k`` before attention."""

    name = "linformer"

    def __init__(self, num_tokens: int, projection_dim: int):
        super().__init__()
        if projection_dim <= 0 or projection_dim > num_tokens:
            raise ValueError(
                f"projection_dim must be in (0, num_tokens], got {projection_dim} for "
                f"{num_tokens} tokens"
            )
        self.num_tokens = num_tokens
        self.projection_dim = projection_dim
        self.key_projection = Parameter(init.truncated_normal((num_tokens, projection_dim)))
        self.value_projection = Parameter(init.truncated_normal((num_tokens, projection_dim)))

    def forward(self, q: Tensor, k: Tensor, v: Tensor) -> Tensor:
        geometry = self._check_shapes(q, k, v)
        if geometry.tokens != self.num_tokens:
            raise ValueError(
                f"LinformerAttention was built for {self.num_tokens} tokens, got {geometry.tokens}"
            )
        q, k, v = Tensor._ensure(q), Tensor._ensure(k), Tensor._ensure(v)
        scale = 1.0 / np.sqrt(geometry.head_dim)
        k_low = self.key_projection.transpose() @ k       # (k_proj, n) @ (.., n, d)
        v_low = self.value_projection.transpose() @ v
        logits = (q @ k_low.transpose()) * scale           # (.., n, k_proj)
        weights = softmax(logits, axis=-1)
        self.last_stats = {"attention_entries": float(np.prod(weights.shape))}
        return weights @ v_low
