"""ViTALiTy's linear first-order Taylor attention (Algorithm 1, Section III).

The vanilla softmax attention is rewritten with mean-centred keys (Property 1)
and then approximated by the first-order Taylor expansion of ``exp`` around
zero, ``exp(x) ~= 1 + x``, which is accurate for the "weak" (query, key)
connections whose similarity lies in ``[-1, 1)``:

    numerator    T_N = sqrt(d) * 1_n v_sum + Q G        with  G = K_hat^T V
    denominator  t_D = n sqrt(d) * 1_n + Q k_hat_sum^T  with  k_hat_sum = 1_n^T K_hat
    score        Z   = diag(t_D)^-1  T_N

Because the attention is never materialised as an ``n x n`` matrix — only the
``d x d`` global context matrix ``G`` is formed — the computational and memory
cost is linear in the number of tokens ``n``.

Note a structural property the paper's Algorithm 1 keeps implicit: with exact
row-mean-centering the column sum of the centred keys ``k_hat_sum`` is exactly
zero, so the Taylor denominator reduces to the constant ``n sqrt(d)``.  The
implementation still computes the general form (Steps 3–4 of Algorithm 1) so
that the same code also covers non-centred keys, and so that the hardware
model's SA-Diag / accumulator chunks have the exact workload the paper maps
onto them.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.attention.base import AttentionModule
from repro.attention.mean_centering import mean_center_keys, mean_center_keys_array
from repro.tensor import Tensor


@dataclass
class TaylorAttentionIntermediates:
    """All intermediate arrays of Algorithm 1, exposed for hardware modelling.

    The accelerator pipeline (Section IV-C) schedules each of these
    computations onto a dedicated chunk; having them as named fields lets the
    cycle-level simulator and the tests refer to exactly the same quantities.
    """

    k_hat: np.ndarray          # Step 1: mean-centred keys, (.., n, d)
    global_context: np.ndarray  # Step 2: G = K_hat^T V, (.., d, d)
    k_hat_sum: np.ndarray       # Step 3: column sum of K_hat, (.., 1, d)
    v_sum: np.ndarray           # Step 3: column sum of V, (.., 1, d)
    denominator: np.ndarray     # Step 4: t_D, (.., n, 1)
    numerator: np.ndarray       # Step 5: T_N, (.., n, d)
    score: np.ndarray           # Step 6: Z, (.., n, d)


def global_context_matrix(k: np.ndarray, v: np.ndarray, centre: bool = True) -> np.ndarray:
    """Compute the global context matrix ``G = K_hat^T V`` (numpy)."""

    k = np.asarray(k, dtype=np.float64)
    v = np.asarray(v, dtype=np.float64)
    if centre:
        k = mean_center_keys_array(k)
    return np.swapaxes(k, -1, -2) @ v


def taylor_attention(q: np.ndarray, k: np.ndarray, v: np.ndarray,
                     return_intermediates: bool = False):
    """Numpy implementation of Algorithm 1 (inference fast-path).

    Returns the Taylor attention score of shape ``(..., n, d)``; with
    ``return_intermediates=True`` it instead returns a
    :class:`TaylorAttentionIntermediates` carrying every step's output.
    """

    q = np.asarray(q, dtype=np.float64)
    k = np.asarray(k, dtype=np.float64)
    v = np.asarray(v, dtype=np.float64)
    # ``n`` in Algorithm 1 is the number of key/value tokens attended over
    # (it equals the query count except in LeViT's shrinking attention).
    tokens, head_dim = k.shape[-2], q.shape[-1]
    sqrt_d = np.sqrt(head_dim)

    # Step 1: mean-centre the keys.
    k_hat = mean_center_keys_array(k)
    # Step 2: global context matrix.
    global_context = np.swapaxes(k_hat, -1, -2) @ v
    # Step 3: column sums of keys and values.
    k_hat_sum = k_hat.sum(axis=-2, keepdims=True)
    v_sum = v.sum(axis=-2, keepdims=True)
    # Step 4: Taylor denominator.
    denominator = tokens * sqrt_d + q @ np.swapaxes(k_hat_sum, -1, -2)
    # Step 5: Taylor numerator.
    numerator = sqrt_d * v_sum + q @ global_context
    # Step 6: Taylor attention score.
    score = numerator / denominator

    if return_intermediates:
        return TaylorAttentionIntermediates(
            k_hat=k_hat,
            global_context=global_context,
            k_hat_sum=k_hat_sum,
            v_sum=v_sum,
            denominator=denominator,
            numerator=numerator,
            score=score,
        )
    return score


def taylor_attention_map(q: np.ndarray, k: np.ndarray, normalise: bool = True) -> np.ndarray:
    """Materialise the (normally implicit) first-order Taylor attention map.

    Used only for analysis (residual computation in the unified training
    attention, Fig. 3/ablation plots); the production inference path never
    forms this ``n x n`` matrix.
    """

    q = np.asarray(q, dtype=np.float64)
    k = np.asarray(k, dtype=np.float64)
    tokens, head_dim = k.shape[-2], q.shape[-1]
    sqrt_d = np.sqrt(head_dim)
    k_hat = mean_center_keys_array(k)
    unnormalised = sqrt_d + q @ np.swapaxes(k_hat, -1, -2)
    if not normalise:
        return unnormalised
    k_hat_sum = k_hat.sum(axis=-2, keepdims=True)
    denominator = tokens * sqrt_d + q @ np.swapaxes(k_hat_sum, -1, -2)
    return unnormalised / denominator


class TaylorAttention(AttentionModule):
    """Differentiable linear Taylor attention (the LOWRANK component).

    The forward pass follows Algorithm 1 with Tensor operations so that the
    same code path is used when fine-tuning ViTALiTy models; the associative
    ordering ``Q (K_hat^T V)`` is preserved, so the computational cost of the
    forward (and backward) pass is linear in the number of tokens.
    """

    name = "taylor"

    def __init__(self, eps: float = 1e-9):
        super().__init__()
        self.eps = eps

    def forward(self, q: Tensor, k: Tensor, v: Tensor) -> Tensor:
        geometry = self._check_shapes(q, k, v)
        q, k, v = Tensor._ensure(q), Tensor._ensure(k), Tensor._ensure(v)
        tokens, head_dim = k.shape[2], geometry.head_dim
        sqrt_d = float(np.sqrt(head_dim))

        k_hat = mean_center_keys(k)                       # Step 1
        global_context = k_hat.transpose() @ v            # Step 2
        k_hat_sum = k_hat.sum(axis=-2, keepdims=True)      # Step 3
        v_sum = v.sum(axis=-2, keepdims=True)              # Step 3
        denominator = (q @ k_hat_sum.transpose()) + tokens * sqrt_d   # Step 4
        numerator = (q @ global_context) + v_sum * sqrt_d             # Step 5
        score = numerator / (denominator + self.eps)                   # Step 6

        self.last_stats = {
            "global_context_entries": float(np.prod(global_context.shape)),
            "attention_entries": 0.0,  # the n x n map is never materialised
        }
        return score
