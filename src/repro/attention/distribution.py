"""Attention-value distribution analysis under mean-centering (Fig. 3).

The paper motivates the first-order Taylor expansion by showing that, after
row-wise mean-centering, the majority (up to ~67%) of the similarity values
``q_i k_hat_j^T / sqrt(d)`` fall inside ``[-1, 1)`` — the region where
``exp(x) ~= 1 + x`` is accurate — versus ~46% without centering.  This module
computes those statistics per layer for any model that exposes per-layer
query/key tensors.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.attention.mean_centering import similarity_matrix


@dataclass(frozen=True)
class DistributionStats:
    """Share of similarity values inside [-1, 1) with and without centering."""

    layer: int
    fraction_weak_vanilla: float
    fraction_weak_centred: float
    histogram_vanilla: np.ndarray
    histogram_centred: np.ndarray
    bin_edges: np.ndarray

    @property
    def weak_fraction_gain(self) -> float:
        """Increase in the weak-connection share due to mean-centering."""

        return self.fraction_weak_centred - self.fraction_weak_vanilla


def _fraction_in_unit_interval(values: np.ndarray) -> float:
    return float(np.mean((values >= -1.0) & (values < 1.0)))


def attention_distribution_stats(queries_per_layer: list[np.ndarray],
                                 keys_per_layer: list[np.ndarray],
                                 bins: int = 81,
                                 value_range: tuple[float, float] = (-8.0, 8.0)
                                 ) -> list[DistributionStats]:
    """Per-layer similarity distributions before and after mean-centering.

    Args:
        queries_per_layer / keys_per_layer: per-layer arrays of shape
            ``(batch, heads, tokens, head_dim)`` (or any leading dims).
        bins / value_range: histogram resolution for the Fig. 3 plot data.
    """

    if len(queries_per_layer) != len(keys_per_layer):
        raise ValueError("queries and keys must have the same number of layers")
    edges = np.linspace(value_range[0], value_range[1], bins + 1)
    stats: list[DistributionStats] = []
    for layer, (q, k) in enumerate(zip(queries_per_layer, keys_per_layer)):
        vanilla = similarity_matrix(q, k, centre=False)
        centred = similarity_matrix(q, k, centre=True)
        hist_vanilla, _ = np.histogram(vanilla, bins=edges)
        hist_centred, _ = np.histogram(centred, bins=edges)
        stats.append(DistributionStats(
            layer=layer,
            fraction_weak_vanilla=_fraction_in_unit_interval(vanilla),
            fraction_weak_centred=_fraction_in_unit_interval(centred),
            histogram_vanilla=hist_vanilla,
            histogram_centred=hist_centred,
            bin_edges=edges,
        ))
    return stats


def generate_calibrated_qk(num_layers: int = 12, tokens: int = 197, head_dim: int = 64,
                           heads: int = 3, seed: int = 0
                           ) -> tuple[list[np.ndarray], list[np.ndarray]]:
    """Generate per-layer Q/K whose similarity statistics mimic pre-trained DeiT-Tiny.

    ImageNet-pre-trained ViTs produce attention logits with a substantial
    per-row offset (keys share a strong common component), which drifts with
    depth — the "distribution shifts left" behaviour in Fig. 3(a).  Row-wise
    mean-centering removes exactly that offset.  This generator reproduces the
    statistic without ImageNet weights: keys are a layer-dependent shared
    direction plus noise, so that roughly half the raw similarities fall
    outside [-1, 1) while about two-thirds fall inside after centering.

    Returns per-layer arrays shaped ``(1, heads, tokens, head_dim)``.
    """

    rng = np.random.default_rng(seed)
    queries: list[np.ndarray] = []
    keys: list[np.ndarray] = []
    sqrt_d = np.sqrt(head_dim)
    # Per-component key noise of unit variance makes the *centred* similarity
    # q k_hat^T / sqrt(d) roughly standard normal (≈68% of values in [-1, 1)).
    noise_scale = 1.0
    for layer in range(num_layers):
        depth = layer / max(num_layers - 1, 1)
        # Row-offset magnitude (in similarity units) grows with depth, which is
        # what makes the raw distribution drift away from zero (Fig. 3a).
        offset_sigma = 0.5 + 1.5 * depth
        q = rng.normal(0.0, 1.0, size=(1, heads, tokens, head_dim))
        shared = rng.normal(0.0, 1.0, size=(1, heads, 1, head_dim))
        shared = shared / np.linalg.norm(shared, axis=-1, keepdims=True)
        k = (-offset_sigma * sqrt_d * shared
             + rng.normal(0.0, noise_scale, size=(1, heads, tokens, head_dim)))
        queries.append(q)
        keys.append(k)
    return queries, keys


def summarize_weak_fraction(stats: list[DistributionStats]) -> dict[str, float]:
    """Aggregate the Fig. 3 headline numbers across layers."""

    vanilla = float(np.mean([s.fraction_weak_vanilla for s in stats]))
    centred = float(np.mean([s.fraction_weak_centred for s in stats]))
    return {
        "mean_fraction_weak_vanilla": vanilla,
        "mean_fraction_weak_centred": centred,
        "mean_gain": centred - vanilla,
        "max_fraction_weak_centred": float(max(s.fraction_weak_centred for s in stats)),
    }
