"""Continuous batching and prefill/decode disaggregation for LLM serving.

Classic :func:`repro.serve.serve` treats a request as one monolithic batch
job.  Autoregressive workloads are different: a request *prefills* its
prompt once (parallel over tokens, compute-bound) and then *decodes* one
token at a time against its growing KV cache (bandwidth-bound, hundreds of
tiny steps).  :func:`serve_llm` models the two serving disciplines built
around that split:

* **Continuous (iteration-level) batching** — every decode replica runs a
  rolling batch; requests join the moment their prefill hands over and leave
  the moment their last token is generated, at iteration granularity.  Each
  step lowers the current batch to one engine run of
  ``decoder[tokens=1,kv_tokens=K,phase=decode]`` (``K`` bucketed so the
  result cache stays small) at ``batch_size = len(batch)``; prefill runs as
  chunked ``phase=prefill`` calls through the same engine.
* **Monolithic (request-level) batching** — the classic baseline: a gang of
  up to ``max_batch`` requests is admitted together, prefilled sequentially
  and decoded in lockstep at the *initial* gang size until the longest
  member finishes.  Early finishers pad the batch and their KV stays
  resident, which is exactly the waste continuous batching removes.

Replicas carry **KV-cache accounting**: capacity derives from the hardware
core's SRAM knob (``target_sram_kb`` times a DRAM-backing ratio, divided by
the model's bytes-per-token) and admission is reservation-based — a request
reserves ``prompt + output`` tokens when its prefill is admitted and frees
them on completion, so admission blocks (queues) when KV is full and a
completion unblocks the queue head.

Fleets come in two shapes.  A **colocated** fleet (``fleet=...``) serves
both phases on every replica — prefill chunks interleave with decode steps,
so a long prompt stalls every in-flight decode on that replica (TPOT
interference).  A **disaggregated** deployment (``prefill_fleet=`` +
``decode_fleet=``) dedicates one pool per phase, with a ``handoff_seconds``
KV-transfer event between them: decode steps never wait behind prefill, at
the cost of the handoff latency and a statically split fleet.

TTFT (time-to-first-token: arrival to prefill completion) and TPOT
(time-per-output-token over the decode phase) are threaded through
:class:`~repro.serve.metrics.ServeReport` as additive ``ttft`` / ``tpot``
latency summaries plus an ``llm`` token-accounting block.  Determinism
matches the classic simulator: one event heap with a monotone tie-break and
every random draw inside the traffic pattern, so a fixed (traffic, fleets,
scheduler, duration, seed) tuple maps to one bit-exact report.
"""

from __future__ import annotations

import heapq
import itertools
import logging
import math
from collections import deque
from dataclasses import dataclass
from typing import Sequence

from repro.engine import ResultCache, RunSpec, simulate, target_sram_kb
from repro.serve.cluster import Fleet, ReplicaSpec
from repro.serve.metrics import (
    DEFAULT_PERCENTILES,
    ReportAccumulator,
    RequestRecord,
    ServeReport,
    build_report,
)
from repro.serve.simulator import (
    DEFAULT_CACHE_ENTRIES,
    RUNTIME_SEQUENCE_BASE,
    check_summary,
)
from repro.serve.traffic import Request, TrafficPattern
from repro.serve.traffic import iter_arrivals as _iter_arrivals
from repro.serve.traffic import traffic_models
from repro.workloads import get_family

logger = logging.getLogger(__name__)

#: Scheduler names accepted by :func:`serve_llm` and the CLI.
SCHEDULERS = ("continuous", "monolithic")

#: Replica roles an LLM run reports (``role`` in each replica report).
ROLE_UNIFIED = "unified"
ROLE_PREFILL = "prefill"
ROLE_DECODE = "decode"

#: Token defaults for requests whose traffic carries no per-request counts.
DEFAULT_PROMPT_TOKENS = 512
DEFAULT_OUTPUT_TOKENS = 64

#: Default prompt-chunk size for prefill (one engine call per chunk).
DEFAULT_PREFILL_CHUNK = 256

#: Default cap on a decode batch (and a monolithic gang).
DEFAULT_MAX_BATCH = 8

#: Host-side cost of launching one iteration (chunk or decode step) — the
#: per-step overhead continuous batching amortises across the batch.
DEFAULT_STEP_OVERHEAD = 2e-4

#: KV-cache transfer delay from a prefill replica to a decode replica.
DEFAULT_HANDOFF_SECONDS = 2e-3

#: KV lengths are rounded up to this granularity when lowered to the engine,
#: so a run touches O(tens) of distinct decode shapes instead of one per step.
DEFAULT_KV_BUCKET = 256

#: Default per-phase SLOs (seconds): time-to-first-token, time-per-output-token.
DEFAULT_TTFT_SLO = 0.2
DEFAULT_TPOT_SLO = 0.01

#: Default end-to-end latency SLO for LLM runs (a full prefill+decode pass is
#: orders slower than one classic batch job, so the classic 50 ms is wrong).
DEFAULT_LLM_SLO = 1.0


@dataclass(frozen=True)
class KVCacheConfig:
    """How replica KV-cache capacity is derived and accounted.

    Capacity per replica is ``sram_kb * 1024 * dram_ratio`` bytes — the
    accelerator's SRAM knob scaled by the off-chip pool backing it — divided
    by the model's KV bytes per token (``(qk_dim + v_dim) * heads`` summed
    over layers, at ``bytes_per_value`` precision).  Platform targets (no
    SRAM model) fall back to ``platform_sram_kb``; ``capacity_tokens`` pins
    the capacity directly, bypassing the derivation (the tests' knob).
    Multi-model runs convert conservatively at the largest bytes-per-token.
    """

    capacity_tokens: int | None = None
    bytes_per_value: int = 2
    dram_ratio: float = 1024.0
    platform_sram_kb: float = 512.0

    def __post_init__(self):
        if self.capacity_tokens is not None and self.capacity_tokens < 1:
            raise ValueError(f"capacity_tokens must be >= 1, "
                             f"got {self.capacity_tokens}")
        if self.bytes_per_value < 1:
            raise ValueError(f"bytes_per_value must be >= 1, "
                             f"got {self.bytes_per_value}")
        if self.dram_ratio <= 0 or self.platform_sram_kb <= 0:
            raise ValueError("dram_ratio and platform_sram_kb must be positive")

    def bytes_per_token(self, workload) -> int:
        """KV bytes one cached token costs for ``workload``'s geometry."""

        values = sum((layer.qk_dim + layer.v_dim) * layer.heads * layer.repeats
                     for layer in workload.attention_layers)
        return values * self.bytes_per_value

    def capacity_for(self, spec: ReplicaSpec, bytes_per_token: int) -> int:
        """KV capacity (tokens) of one ``spec`` replica."""

        if self.capacity_tokens is not None:
            return self.capacity_tokens
        sram_kb = target_sram_kb(spec.target)
        if sram_kb is None:
            sram_kb = self.platform_sram_kb
        return max(1, int(sram_kb * 1024 * self.dram_ratio // bytes_per_token))

    def to_dict(self) -> dict[str, object]:
        return {"capacity_tokens": self.capacity_tokens,
                "bytes_per_value": self.bytes_per_value,
                "dram_ratio": self.dram_ratio,
                "platform_sram_kb": self.platform_sram_kb}


class LLMRequest:
    """Mutable in-flight state of one autoregressive request."""

    __slots__ = ("index", "model", "arrival", "prompt_tokens", "output_tokens",
                 "prefilled", "decoded", "prefill_start", "first_token_time",
                 "completion", "decode_batch")

    def __init__(self, request: Request, prompt_tokens: int, output_tokens: int):
        if prompt_tokens < 1 or output_tokens < 1:
            raise ValueError(f"request {request.index} needs prompt_tokens and "
                             f"output_tokens >= 1, got {prompt_tokens}/"
                             f"{output_tokens}")
        self.index = request.index
        self.model = request.model
        self.arrival = request.arrival
        self.prompt_tokens = prompt_tokens
        self.output_tokens = output_tokens
        self.prefilled = 0                      # prompt tokens cached so far
        self.decoded = 0                        # tokens generated after the first
        self.prefill_start: float | None = None
        self.first_token_time: float | None = None
        self.completion: float | None = None
        self.decode_batch = 1                   # batch size when decode admitted

    @property
    def decode_target(self) -> int:
        """Decode steps still owed after prefill emits the first token."""

        return self.output_tokens - 1

    @property
    def reserved_tokens(self) -> int:
        """KV tokens a reservation-based admission holds for this request."""

        return self.prompt_tokens + self.output_tokens


class LLMReplica:
    """One LLM-serving instance: an engine target with KV-cache accounting.

    Duck-types the attributes :func:`~repro.serve.metrics.build_report`
    reads (name/spec/served/batches/busy_seconds/energy_joules/lifetimes)
    plus the LLM extras (role, KV capacity/peak, decode steps).
    """

    def __init__(self, index: int, ordinal: int, spec: ReplicaSpec, role: str,
                 kv_capacity: int):
        self.index = index
        self.spec = spec
        self.role = role
        prefix = "" if role == ROLE_UNIFIED else f"{role}/"
        self.name = f"{prefix}{spec.label}#{ordinal}"
        self.started_at = 0.0
        self.retired_at: float | None = None
        self.kv_capacity = kv_capacity
        self.kv_used = 0
        self.kv_peak = 0
        self.busy_until = 0.0
        self.busy_seconds = 0.0
        self.energy_joules = 0.0
        self.batches = 0                        # engine dispatches (chunks + steps)
        self.decode_steps = 0
        self.served = 0
        self.prefill_queue: deque[LLMRequest] = deque()
        self.current_prefill: LLMRequest | None = None
        self.decode_ready: list[LLMRequest] = []   # KV-admitted, awaiting a slot
        self.batch: list[LLMRequest] = []          # running decode batch
        self.gang: list[LLMRequest] = []           # monolithic request-level gang
        self.gang_steps_left = 0

    def idle(self, now: float) -> bool:
        return self.busy_until <= now

    def lifetime_seconds(self, makespan: float) -> float:
        return makespan

    @property
    def kv_free(self) -> int:
        return self.kv_capacity - self.kv_used

    def reserve(self, tokens: int) -> None:
        self.kv_used += tokens
        self.kv_peak = max(self.kv_peak, self.kv_used)

    def release(self, tokens: int) -> None:
        self.kv_used -= tokens

    @property
    def slots_used(self) -> int:
        return len(self.batch) + len(self.decode_ready) + len(self.gang)

    @property
    def pending_load(self) -> int:
        """Requests routed here and not yet finished (routing tie-break)."""

        return (len(self.prefill_queue) + self.slots_used
                + (1 if self.current_prefill is not None else 0))

    @property
    def pending_prefill_tokens(self) -> int:
        tokens = sum(request.prompt_tokens for request in self.prefill_queue)
        if self.current_prefill is not None:
            tokens += self.current_prefill.prompt_tokens - self.current_prefill.prefilled
        return tokens


def _configured(model: str, **overrides) -> str:
    """Merge knob overrides into a configured workload name (text level)."""

    base, _, bracket = model.partition("[")
    knobs: dict[str, str] = {}
    if bracket:
        for part in bracket[:-1].split(","):
            key, _, value = part.partition("=")
            knobs[key.strip()] = value.strip()
    for key, value in overrides.items():
        knobs[key] = str(value)
    text = ",".join(f"{key}={value}" for key, value in sorted(knobs.items()))
    return f"{base}[{text}]"


def _check_sequence_model(model: str) -> None:
    """LLM serving needs a family with the autoregressive knob set."""

    base = model.partition("[")[0]
    family = get_family(base)        # unknown names raise here with the usual hint
    if "phase" not in family.schema.knobs:
        raise ValueError(
            f"LLM serving needs a sequence-family workload with "
            f"kv_tokens/phase knobs (encoder, decoder, transformer); "
            f"got {model!r} from family {base!r}")


def _bucket(kv_tokens: int, granularity: int) -> int:
    return max(granularity, math.ceil(kv_tokens / granularity) * granularity)


def serve_llm(traffic: TrafficPattern, fleet: Fleet | str | None = None, *,
              prefill_fleet: Fleet | str | None = None,
              decode_fleet: Fleet | str | None = None,
              scheduler: str = "continuous",
              duration: float, seed: int = 0,
              prompt_tokens: int = DEFAULT_PROMPT_TOKENS,
              output_tokens: int = DEFAULT_OUTPUT_TOKENS,
              prefill_chunk: int = DEFAULT_PREFILL_CHUNK,
              max_batch: int = DEFAULT_MAX_BATCH,
              kv: KVCacheConfig | None = None,
              step_overhead_seconds: float = DEFAULT_STEP_OVERHEAD,
              handoff_seconds: float = DEFAULT_HANDOFF_SECONDS,
              kv_bucket: int = DEFAULT_KV_BUCKET,
              ttft_slo_seconds: float = DEFAULT_TTFT_SLO,
              tpot_slo_seconds: float = DEFAULT_TPOT_SLO,
              slo_seconds: float = DEFAULT_LLM_SLO,
              percentiles: Sequence[float] = DEFAULT_PERCENTILES,
              cache: ResultCache | None = None,
              summary: str = "exact",
              obs=None) -> ServeReport:
    """Run one LLM-serving simulation and return its :class:`ServeReport`.

    Pass ``fleet`` for a colocated deployment (every replica serves both
    phases) or ``prefill_fleet`` + ``decode_fleet`` for a disaggregated one
    (mutually exclusive; spec strings like ``"2xvitality"`` are accepted
    everywhere).  ``scheduler`` is ``"continuous"`` (iteration-level) or
    ``"monolithic"`` (request-level gangs, colocated fleets only — it is the
    baseline continuous batching is measured against).

    Requests take their prompt/output token counts from the traffic (token
    profiles or token-carrying traces), falling back to ``prompt_tokens`` /
    ``output_tokens``.  A request whose KV reservation cannot fit the
    largest relevant replica raises ``ValueError`` up front; one that fits
    only when capacity frees simply queues.  The report's ``ttft`` / ``tpot``
    summaries and ``llm`` block carry the phase-level results.

    ``summary`` mirrors :func:`repro.serve.serve`: ``"exact"`` (default)
    keeps per-request records and exact order statistics, bit-identical to
    historical reports; ``"streaming"`` pulls arrivals lazily and folds each
    completion into P² accumulators, bounding memory for arbitrarily long
    runs.  Streaming mode sizes KV capacity from the models the *traffic
    declares* (mix entries or trace models) rather than the models that
    happened to arrive, and checks each request's KV feasibility when it is
    generated instead of all up front — same ``ValueError``, raised at the
    offending arrival.

    ``obs`` (a :class:`repro.obs.Observability`) attaches tracing, streaming
    metrics and/or progress reporting; hooks are pure observers and
    ``obs=None`` skips them all, so reports stay bit-identical either way.
    """

    disaggregated = prefill_fleet is not None or decode_fleet is not None
    if scheduler not in SCHEDULERS:
        raise ValueError(f"unknown scheduler {scheduler!r}; "
                         f"available: {', '.join(SCHEDULERS)}")
    if disaggregated:
        if fleet is not None:
            raise ValueError("pass either fleet= (colocated) or "
                             "prefill_fleet=+decode_fleet= (disaggregated), not both")
        if prefill_fleet is None or decode_fleet is None:
            raise ValueError("disaggregated serving needs both prefill_fleet "
                             "and decode_fleet")
        if scheduler == "monolithic":
            raise ValueError("monolithic batching is the colocated baseline; "
                             "disaggregated pools imply continuous scheduling")
    elif fleet is None:
        raise ValueError("serve_llm needs a fleet (colocated) or "
                         "prefill_fleet+decode_fleet (disaggregated)")
    if prefill_chunk < 1:
        raise ValueError(f"prefill_chunk must be >= 1, got {prefill_chunk}")
    if max_batch < 1:
        raise ValueError(f"max_batch must be >= 1, got {max_batch}")
    if kv_bucket < 1:
        raise ValueError(f"kv_bucket must be >= 1, got {kv_bucket}")
    if step_overhead_seconds < 0 or handoff_seconds < 0:
        raise ValueError("step_overhead_seconds and handoff_seconds must be >= 0")
    if min(ttft_slo_seconds, tpot_slo_seconds, slo_seconds) <= 0:
        raise ValueError("SLOs must be positive")
    check_summary(summary)
    kv = KVCacheConfig() if kv is None else kv
    cache = ResultCache(max_entries=DEFAULT_CACHE_ENTRIES) if cache is None else cache

    def _parse(spec: Fleet | str) -> Fleet:
        return Fleet.parse(spec) if isinstance(spec, str) else spec

    # Exact summaries need the full request list at the end (per-request
    # records joined back to phase timings), so they materialise as before;
    # streaming summaries pull arrivals lazily and take the model set from
    # what the traffic declares.  Patterns that cannot declare their models
    # fall back to materialising even when streaming.
    requests: list[LLMRequest] | None = None
    raw_stream = None
    if summary == "streaming":
        models = traffic_models(traffic)
        if models is None:
            raw_arrivals = traffic.arrivals(duration, seed)
            models = sorted({request.model for request in raw_arrivals})
            raw_stream = iter(raw_arrivals)
        else:
            raw_stream = _iter_arrivals(traffic, duration, seed)
    else:
        arrivals = traffic.arrivals(duration, seed)
        requests = [LLMRequest(request,
                               request.prompt_tokens or prompt_tokens,
                               request.output_tokens or output_tokens)
                    for request in arrivals]
        models = sorted({request.model for request in requests})
    for model in models:
        _check_sequence_model(model)
    from repro.workloads import get_workload
    bytes_per_token = max((kv.bytes_per_token(get_workload(model))
                           for model in models), default=1)

    def _pool(fleet_spec: Fleet | str, role: str, start_index: int
              ) -> list[LLMReplica]:
        ordinals: dict[str, int] = {}
        replicas = []
        for offset, spec in enumerate(_parse(fleet_spec).replica_specs):
            ordinal = ordinals.get(spec.label, 0)
            ordinals[spec.label] = ordinal + 1
            capacity = kv.capacity_for(spec, bytes_per_token)
            replicas.append(LLMReplica(start_index + offset, ordinal, spec,
                                       role, capacity))
        return replicas

    if disaggregated:
        prefill_pool = _pool(prefill_fleet, ROLE_PREFILL, 0)
        decode_pool = _pool(decode_fleet, ROLE_DECODE, len(prefill_pool))
        all_replicas = prefill_pool + decode_pool
    else:
        prefill_pool = decode_pool = all_replicas = _pool(fleet, ROLE_UNIFIED, 0)

    # Admission feasibility is checked per request so an impossible request is
    # a clean ValueError, not an event loop that never drains.  Exact mode
    # checks the whole trace up front (construction-time error); streaming
    # mode checks each arrival as it is pulled from the generator.
    prefill_cap = max(replica.kv_capacity for replica in prefill_pool)
    decode_cap = max(replica.kv_capacity for replica in decode_pool)

    def check_admissible(request: LLMRequest) -> LLMRequest:
        need = request.prompt_tokens if disaggregated else request.reserved_tokens
        if need > prefill_cap:
            raise ValueError(
                f"request {request.index} ({request.model!r}) needs {need} KV "
                f"tokens for prefill admission but the largest "
                f"{'prefill ' if disaggregated else ''}replica holds "
                f"{prefill_cap}")
        if disaggregated and request.reserved_tokens > decode_cap:
            raise ValueError(
                f"request {request.index} ({request.model!r}) needs "
                f"{request.reserved_tokens} KV tokens for decode admission "
                f"but the largest decode replica holds {decode_cap}")
        return request

    if requests is not None:
        for request in requests:
            check_admissible(request)

    if obs is not None:
        obs.begin_run(all_replicas, "serve-llm")
    logger.info("serve_llm: %s arrivals over %.3fs, scheduler=%s, "
                "%d replica(s)%s",
                "streaming" if requests is None else len(requests), duration,
                scheduler, len(all_replicas),
                " (disaggregated)" if disaggregated else "")

    # Arrival events take the request index as their tie-break sequence;
    # runtime events (chunks, steps, gangs, handoffs) count from a disjoint
    # range far above any realistic request count.  This reproduces the
    # historical order (all arrivals pushed before any runtime event) without
    # materialising the arrivals.
    sequence = itertools.count(RUNTIME_SEQUENCE_BASE)
    offered = 0
    events: list[tuple[float, int, str, object]] = []
    if requests is not None:
        offered = len(requests)
        events = [(request.arrival, request.index, "arrival", request)
                  for request in requests]
        heapq.heapify(events)
        next_llm_arrival = None
    else:
        def next_llm_arrival() -> LLMRequest | None:
            raw = next(raw_stream, None)
            if raw is None:
                return None
            return check_admissible(
                LLMRequest(raw, raw.prompt_tokens or prompt_tokens,
                           raw.output_tokens or output_tokens))
        first = next_llm_arrival()
        if first is not None:
            events.append((first.arrival, first.index, "arrival", first))
    records: list[RequestRecord] = []
    accumulator: ReportAccumulator | None = None
    ttft_ok = tpot_ok = tpot_count = joint_ok = 0
    if summary == "streaming":
        accumulator = ReportAccumulator(slo_seconds=slo_seconds,
                                        percentiles=percentiles,
                                        track_ttft=True, track_tpot=True)
    pending_decode: deque[LLMRequest] = deque()     # disaggregated pool queue
    total_prefill_tokens = 0
    total_generated = 0

    def run_prefill_chunk(replica: LLMReplica, now: float) -> None:
        request = replica.current_prefill
        chunk = min(prefill_chunk, request.prompt_tokens - request.prefilled)
        name = _configured(request.model, tokens=chunk,
                           kv_tokens=request.prefilled + chunk, phase="prefill")
        result = simulate(RunSpec(name, target=replica.spec.target,
                                  attention=replica.spec.attention), cache=cache)
        service = step_overhead_seconds + result.end_to_end_latency
        finish = now + service
        replica.busy_until = finish
        replica.busy_seconds += service
        replica.energy_joules += result.end_to_end_energy
        replica.batches += 1
        heapq.heappush(events, (finish, next(sequence), "chunk",
                                (replica, request, chunk)))
        if obs is not None:
            obs.prefill_chunk(replica, request, now, finish, chunk)
        logger.debug("t=%.6f %s: prefill chunk of %d tokens for request %d",
                     now, replica.name, chunk, request.index)

    def run_decode_step(replica: LLMReplica, now: float) -> None:
        batch = tuple(replica.batch)
        kv_tokens = max(request.prompt_tokens + request.decoded
                        for request in batch)
        name = _configured(batch[0].model, tokens=1,
                           kv_tokens=_bucket(kv_tokens, kv_bucket),
                           phase="decode")
        result = simulate(RunSpec(name, target=replica.spec.target,
                                  attention=replica.spec.attention,
                                  batch_size=len(batch)), cache=cache)
        service = step_overhead_seconds + result.end_to_end_latency
        finish = now + service
        replica.busy_until = finish
        replica.busy_seconds += service
        replica.energy_joules += result.end_to_end_energy
        replica.batches += 1
        replica.decode_steps += 1
        heapq.heappush(events, (finish, next(sequence), "step", (replica, batch)))
        if obs is not None:
            obs.decode_step(replica, batch, now, finish)

    def run_gang_step(replica: LLMReplica, now: float) -> None:
        gang = tuple(replica.gang)
        kv_tokens = max(request.prompt_tokens + request.decoded
                        for request in gang)
        name = _configured(gang[0].model, tokens=1,
                           kv_tokens=_bucket(kv_tokens, kv_bucket),
                           phase="decode")
        # Monolithic semantics: every step is charged at the full gang size —
        # members that already finished pad the batch until the gang drains.
        result = simulate(RunSpec(name, target=replica.spec.target,
                                  attention=replica.spec.attention,
                                  batch_size=len(gang)), cache=cache)
        service = step_overhead_seconds + result.end_to_end_latency
        finish = now + service
        replica.busy_until = finish
        replica.busy_seconds += service
        replica.energy_joules += result.end_to_end_energy
        replica.batches += 1
        replica.decode_steps += 1
        heapq.heappush(events, (finish, next(sequence), "gang", (replica, gang)))
        if obs is not None:
            obs.decode_step(replica, gang, now, finish)

    def record_completion(request: LLMRequest, replica: LLMReplica,
                          now: float, batch_size: int) -> None:
        nonlocal ttft_ok, tpot_ok, tpot_count, joint_ok
        request.completion = now
        replica.served += 1
        if accumulator is not None:
            accumulator.observe(request.model, request.arrival,
                                request.prefill_start, now)
            ttft = request.first_token_time - request.arrival
            accumulator.ttft.add(ttft)
            tpot = None
            if request.decode_target:
                tpot = (now - request.first_token_time) / request.decode_target
                accumulator.tpot.add(tpot)
                tpot_count += 1
                if tpot <= tpot_slo_seconds:
                    tpot_ok += 1
            if ttft <= ttft_slo_seconds:
                ttft_ok += 1
                if tpot is None or tpot <= tpot_slo_seconds:
                    joint_ok += 1
        else:
            records.append(RequestRecord(
                index=request.index, model=request.model,
                arrival=request.arrival, replica=replica.name,
                batch_size=batch_size, dispatch=request.prefill_start,
                completion=now))
        if obs is not None:
            obs.request_completed(request, replica, now, batch_size)

    def admit_ready(replica: LLMReplica, now: float) -> None:
        """Fold KV-admitted requests into the running batch (same model only —
        a decode step lowers to one engine shape)."""

        if not replica.decode_ready:
            return
        model = replica.batch[0].model if replica.batch \
            else replica.decode_ready[0].model
        kept = []
        for request in replica.decode_ready:
            if len(replica.batch) < max_batch and request.model == model:
                request.decode_batch = len(replica.batch) + 1
                replica.batch.append(request)
                if obs is not None:
                    obs.decode_joined(request, replica, now)
            else:
                kept.append(request)
        replica.decode_ready = kept

    def admit_decode_pool(now: float) -> None:
        """Strict-FIFO admission from the disaggregated pool queue."""

        while pending_decode:
            head = pending_decode[0]
            candidates = [replica for replica in decode_pool
                          if replica.slots_used < max_batch
                          and head.reserved_tokens <= replica.kv_free]
            if not candidates:
                return
            replica = max(candidates,
                          key=lambda r: (r.kv_free, -r.index))
            pending_decode.popleft()
            replica.reserve(head.reserved_tokens)
            replica.decode_ready.append(head)
            if obs is not None:
                obs.decode_admitted(head, replica, now)
            kick(replica, now)

    def finish_prefill(replica: LLMReplica, request: LLMRequest,
                       now: float) -> None:
        request.first_token_time = now
        replica.current_prefill = None
        if obs is not None:
            obs.prefill_finished(request, replica, now)
        if disaggregated:
            replica.release(request.prompt_tokens)   # KV ships to the decode pool
            if request.decode_target == 0:
                record_completion(request, replica, now, batch_size=1)
            else:
                heapq.heappush(events, (now + handoff_seconds, next(sequence),
                                        "handoff", request))
                if obs is not None:
                    obs.handoff(request, replica, now, now + handoff_seconds)
        elif request.decode_target == 0:
            replica.release(request.reserved_tokens)
            record_completion(request, replica, now, batch_size=1)
        else:
            replica.decode_ready.append(request)
            if obs is not None:
                obs.decode_pending(request, now)

    def form_gang(replica: LLMReplica, now: float) -> None:
        while (replica.prefill_queue and len(replica.gang) < max_batch
               and replica.prefill_queue[0].reserved_tokens <= replica.kv_free):
            request = replica.prefill_queue.popleft()
            replica.reserve(request.reserved_tokens)
            request.prefill_start = now
            replica.gang.append(request)
            if obs is not None:
                obs.prefill_admitted(request, replica, now)
        replica.gang_steps_left = -1        # set once every prefill completes

    def kick_monolithic(replica: LLMReplica, now: float) -> None:
        if not replica.gang:
            form_gang(replica, now)
            if not replica.gang:
                return
        if replica.current_prefill is None:
            for member in replica.gang:
                if member.prefilled < member.prompt_tokens:
                    replica.current_prefill = member
                    break
        if replica.current_prefill is not None:
            run_prefill_chunk(replica, now)
            return
        if replica.gang_steps_left < 0:     # prefills just drained: arm decode
            replica.gang_steps_left = max(member.decode_target
                                          for member in replica.gang)
            if replica.gang_steps_left == 0:
                retire_gang(replica, now)
                kick_monolithic(replica, now)
                return
        if replica.gang_steps_left > 0:
            run_gang_step(replica, now)

    def retire_gang(replica: LLMReplica, now: float) -> None:
        size = len(replica.gang)
        for member in replica.gang:
            replica.release(member.reserved_tokens)
            record_completion(member, replica,
                              member.completion if member.completion is not None
                              else now, batch_size=size)
        replica.gang = []

    def kick(replica: LLMReplica, now: float) -> None:
        if not replica.idle(now):
            return
        if scheduler == "monolithic":
            kick_monolithic(replica, now)
            return
        admit_ready(replica, now)
        if replica.role != ROLE_DECODE:
            if replica.current_prefill is None and replica.prefill_queue:
                head = replica.prefill_queue[0]
                need = (head.prompt_tokens if disaggregated
                        else head.reserved_tokens)
                if need <= replica.kv_free:
                    replica.prefill_queue.popleft()
                    replica.reserve(need)
                    head.prefill_start = now
                    replica.current_prefill = head
                    if obs is not None:
                        obs.prefill_admitted(head, replica, now)
            # Prefill-priority: new prompts preempt the decode batch at the
            # iteration boundary — colocated TPOT pays for it, which is the
            # interference disaggregation exists to remove.
            if replica.current_prefill is not None:
                run_prefill_chunk(replica, now)
                return
        if replica.batch:
            run_decode_step(replica, now)

    def route_arrival(request: LLMRequest, now: float) -> None:
        if disaggregated:
            replica = min(prefill_pool,
                          key=lambda r: (r.pending_prefill_tokens, r.index))
        else:
            replica = min(prefill_pool,
                          key=lambda r: (r.pending_load, r.index))
        replica.prefill_queue.append(request)
        if obs is not None:
            obs.request_routed(request, replica, now,
                               len(replica.prefill_queue))
        kick(replica, now)

    tick = obs.event_tick if obs is not None else None
    while events:
        now, _, kind, payload = heapq.heappop(events)
        if tick is not None:
            tick(now)
        if kind == "arrival":
            if requests is None:
                offered += 1
                upcoming = next_llm_arrival()
                if upcoming is not None:
                    heapq.heappush(events, (upcoming.arrival, upcoming.index,
                                            "arrival", upcoming))
            route_arrival(payload, now)
        elif kind == "chunk":
            replica, request, chunk = payload
            request.prefilled += chunk
            total_prefill_tokens += chunk
            if request.prefilled >= request.prompt_tokens:
                if scheduler == "monolithic":
                    request.first_token_time = now
                    replica.current_prefill = None
                    if obs is not None:
                        obs.prefill_finished(request, replica, now)
                    if request.decode_target == 0:
                        request.completion = now    # recorded at gang retirement
                else:
                    finish_prefill(replica, request, now)
            kick(replica, now)
        elif kind == "step":
            replica, batch = payload
            for request in batch:
                request.decoded += 1
                total_generated += 1
                if request.decoded >= request.decode_target:
                    replica.batch.remove(request)
                    replica.release(request.reserved_tokens)
                    record_completion(request, replica, now,
                                      batch_size=request.decode_batch)
            if disaggregated:
                admit_decode_pool(now)
            kick(replica, now)
        elif kind == "gang":
            replica, gang = payload
            replica.gang_steps_left -= 1
            for member in gang:
                if member.decoded < member.decode_target:
                    member.decoded += 1
                    total_generated += 1
                    if (member.decoded >= member.decode_target
                            and member.completion is None):
                        member.completion = now
            if replica.gang_steps_left == 0:
                retire_gang(replica, now)
            kick(replica, now)
        else:                                       # "handoff"
            pending_decode.append(payload)
            admit_decode_pool(now)

    if requests is not None:
        records.sort(key=lambda record: record.index)
        by_index = {request.index: request for request in requests}
        ttft_values = [by_index[record.index].first_token_time
                       - by_index[record.index].arrival for record in records]
        tpot_values = [(record.completion
                        - by_index[record.index].first_token_time)
                       / by_index[record.index].decode_target
                       for record in records
                       if by_index[record.index].decode_target]
        makespan = max([duration] + [record.completion for record in records])
        joint = [1 for record in records
                 if by_index[record.index].first_token_time
                 - by_index[record.index].arrival <= ttft_slo_seconds
                 and (not by_index[record.index].decode_target
                      or (record.completion
                          - by_index[record.index].first_token_time)
                      / by_index[record.index].decode_target
                      <= tpot_slo_seconds)]
    else:
        makespan = max(duration, accumulator.last_completion)
    total_steps = sum(replica.decode_steps for replica in all_replicas)

    def attainment(values: Sequence[float], slo: float) -> float:
        if not values:
            return 1.0
        return sum(1 for value in values if value <= slo) / len(values)

    config: dict[str, object] = {
        "traffic": traffic.to_dict(),
        "scheduler": scheduler,
        "duration": duration,
        "seed": seed,
        "slo_seconds": slo_seconds,
        "prompt_tokens": prompt_tokens,
        "output_tokens": output_tokens,
        "prefill_chunk": prefill_chunk,
        "max_batch": max_batch,
        "step_overhead_seconds": step_overhead_seconds,
        "kv_bucket": kv_bucket,
        "ttft_slo_seconds": ttft_slo_seconds,
        "tpot_slo_seconds": tpot_slo_seconds,
        "kv": kv.to_dict(),
    }
    if disaggregated:
        config["prefill_fleet"] = _parse(prefill_fleet).describe()
        config["decode_fleet"] = _parse(decode_fleet).describe()
        config["handoff_seconds"] = handoff_seconds
    else:
        config["fleet"] = _parse(fleet).describe()
    if summary != "exact":
        config["summary"] = summary

    if accumulator is not None:
        completed = accumulator.latency.count
        ttft_attainment = ttft_ok / completed if completed else 1.0
        tpot_attainment = tpot_ok / tpot_count if tpot_count else 1.0
        slo_attainment = joint_ok / completed if completed else 1.0
    else:
        ttft_attainment = attainment(ttft_values, ttft_slo_seconds)
        tpot_attainment = attainment(tpot_values, tpot_slo_seconds)
        slo_attainment = len(joint) / len(records) if records else 1.0

    llm_block: dict[str, object] = {
        "scheduler": scheduler,
        "disaggregated": disaggregated,
        "prefill_tokens": total_prefill_tokens,
        "generated_tokens": total_generated,
        "decode_steps": total_steps,
        "mean_decode_batch": (total_generated / total_steps
                              if total_steps else 0.0),
        "decode_tokens_per_second": total_generated / makespan,
        "ttft_slo_seconds": ttft_slo_seconds,
        "tpot_slo_seconds": tpot_slo_seconds,
        "ttft_attainment": ttft_attainment,
        "tpot_attainment": tpot_attainment,
        "slo_attainment": slo_attainment,
        "kv_bytes_per_token": bytes_per_token,
    }
    if accumulator is not None:
        report = accumulator.finalize(config, offered=offered,
                                      duration=duration, replicas=all_replicas,
                                      cache_stats=cache.stats(), llm=llm_block)
    else:
        report = build_report(config, records, offered=offered,
                              duration=duration, slo_seconds=slo_seconds,
                              replicas=all_replicas, cache_stats=cache.stats(),
                              percentiles=percentiles,
                              ttft_values=ttft_values,
                              tpot_values=tpot_values,
                              llm=llm_block)
    logger.info("serve_llm: completed %d/%d requests, %d tokens generated, "
                "ttft p95 %.4fs", report.completed, report.offered,
                total_generated,
                report.ttft.p95 if report.ttft is not None else 0.0)
    if obs is not None:
        obs.end_run(report)
    return report
