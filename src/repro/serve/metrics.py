"""Per-request accounting and the JSON-serialisable ``ServeReport``.

The simulator records one :class:`RequestRecord` per served request; this
module folds those into a :class:`ServeReport`: latency percentiles
(nearest-rank, so they are exact order statistics, not interpolations),
throughput, SLO attainment, energy per request, per-model and per-replica
summaries, and the engine result-cache traffic of the run.  Everything is a
plain float/int/str structure, so ``to_json()`` of two identical runs is
bit-identical — the determinism contract the tests pin down.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from typing import Sequence

from repro.engine import CacheStats

#: Latency quantiles every report carries (the pre-configurable-percentile
#: default — the JSON shape with exactly these is the backward-compatible one).
DEFAULT_PERCENTILES = (0.5, 0.95, 0.99)


def percentile_label(fraction: float) -> str:
    """The JSON key for one latency quantile (``0.999`` -> ``"p99.9"``)."""

    return f"p{fraction * 100:g}"


@dataclass(frozen=True)
class RequestRecord:
    """Lifecycle of one served request."""

    index: int
    model: str
    arrival: float
    replica: str
    batch_size: int
    dispatch: float
    completion: float

    @property
    def queue_wait(self) -> float:
        return self.dispatch - self.arrival

    @property
    def service(self) -> float:
        return self.completion - self.dispatch

    @property
    def latency(self) -> float:
        return self.completion - self.arrival


def percentile(values: Sequence[float], fraction: float) -> float:
    """Nearest-rank percentile (``fraction`` in [0, 1]) of a non-empty sample."""

    if not values:
        raise ValueError("percentile of an empty sample")
    if not 0 <= fraction <= 1:
        raise ValueError(f"fraction must be in [0, 1], got {fraction}")
    ordered = sorted(values)
    rank = max(math.ceil(fraction * len(ordered)), 1)
    return ordered[rank - 1]


@dataclass(frozen=True)
class LatencySummary:
    """Order statistics of one latency-like sample (seconds).

    p50/p95/p99 are always present (the backward-compatible JSON shape);
    any further quantiles requested through ``percentiles`` — p99.9 for tail
    SLOs, say — ride along in ``extras`` and serialise as additional
    ``"p99.9"``-style keys.
    """

    count: int
    mean: float
    p50: float
    p95: float
    p99: float
    max: float
    extras: tuple[tuple[str, float], ...] = field(default_factory=tuple)

    @classmethod
    def of(cls, values: Sequence[float],
           percentiles: Sequence[float] = DEFAULT_PERCENTILES) -> "LatencySummary":
        extra_fractions = tuple(sorted(fraction for fraction in set(percentiles)
                                       if fraction not in DEFAULT_PERCENTILES))
        if not values:
            return cls(count=0, mean=0.0, p50=0.0, p95=0.0, p99=0.0, max=0.0,
                       extras=tuple((percentile_label(fraction), 0.0)
                                    for fraction in extra_fractions))
        return cls(count=len(values), mean=sum(values) / len(values),
                   p50=percentile(values, 0.50), p95=percentile(values, 0.95),
                   p99=percentile(values, 0.99), max=max(values),
                   extras=tuple((percentile_label(fraction),
                                 percentile(values, fraction))
                                for fraction in extra_fractions))

    def quantile(self, fraction: float) -> float:
        """Look up one reported quantile (base or extra) by its fraction."""

        base = {0.5: self.p50, 0.95: self.p95, 0.99: self.p99}
        if fraction in base:
            return base[fraction]
        label = percentile_label(fraction)
        for key, value in self.extras:
            if key == label:
                return value
        raise KeyError(f"percentile {label} was not computed for this summary; "
                       f"request it via the percentiles knob")

    def to_dict(self) -> dict[str, object]:
        payload: dict[str, object] = {
            "count": self.count, "mean": self.mean, "p50": self.p50,
            "p95": self.p95, "p99": self.p99, "max": self.max}
        payload.update(self.extras)
        return payload


@dataclass(frozen=True)
class ScaleEvent:
    """One autoscaling action, timestamped for the report.

    ``action`` is one of ``"scale-up"`` (capacity requested), ``"online"``
    (provisioned replica joined the routing set), ``"drain"`` (replica marked
    inactive, queue still emptying) and ``"retired"`` (drained replica went
    idle with an empty queue).
    """

    time: float
    action: str
    replica: str = ""
    detail: str = ""

    def to_dict(self) -> dict[str, object]:
        return {"time": self.time, "action": self.action,
                "replica": self.replica, "detail": self.detail}


@dataclass(frozen=True)
class WindowReport:
    """One fixed-width time slice of the run — the resolution scale events
    become visible at (replica counts and tails move window to window)."""

    start: float
    end: float
    arrivals: int
    completed: int
    throughput_rps: float
    p99: float                          # of latencies completing in-window
    mean_active_replicas: float         # provisioned-lifetime overlap / width

    def to_dict(self) -> dict[str, object]:
        return {"start": self.start, "end": self.end, "arrivals": self.arrivals,
                "completed": self.completed, "throughput_rps": self.throughput_rps,
                "p99": self.p99, "mean_active_replicas": self.mean_active_replicas}


@dataclass(frozen=True)
class ReplicaReport:
    """One replica's share of the run."""

    name: str
    target: str
    attention: str | None
    requests: int
    batches: int
    busy_seconds: float
    utilization: float
    energy_joules: float
    started_at: float = 0.0
    retired_at: float | None = None
    #: LLM-serving extras (set only by :mod:`repro.serve.llm` runs, so classic
    #: ``serve`` reports keep their exact pre-existing JSON shape).
    role: str | None = None
    kv_capacity_tokens: int | None = None
    kv_peak_tokens: int | None = None
    decode_steps: int | None = None
    #: Pipeline stage this replica's pool serves (set only by
    #: :mod:`repro.serve.pipeline` runs; None keeps the classic JSON shape).
    stage: str | None = None

    def to_dict(self) -> dict[str, object]:
        payload: dict[str, object] = {
            "name": self.name, "target": self.target, "attention": self.attention,
            "requests": self.requests, "batches": self.batches,
            "busy_seconds": self.busy_seconds, "utilization": self.utilization,
            "energy_joules": self.energy_joules,
            "started_at": self.started_at, "retired_at": self.retired_at}
        if self.role is not None:
            payload.update({
                "role": self.role,
                "kv_capacity_tokens": self.kv_capacity_tokens,
                "kv_peak_tokens": self.kv_peak_tokens,
                "decode_steps": self.decode_steps})
        if self.stage is not None:
            payload["stage"] = self.stage
        return payload


@dataclass(frozen=True)
class ServeReport:
    """Everything one serving run produced, ready for JSON."""

    config: dict[str, object]
    offered: int
    completed: int
    duration: float
    makespan: float                     # max(duration, last completion time)
    throughput_rps: float               # completed / makespan
    latency: LatencySummary             # queue wait + service, per request
    queue_wait: LatencySummary
    mean_batch_size: float
    slo_seconds: float
    slo_violation_rate: float
    total_energy_joules: float
    energy_per_request_joules: float
    per_model: tuple[tuple[str, LatencySummary], ...]
    per_replica: tuple[ReplicaReport, ...]
    cache: CacheStats
    #: Provisioned capacity consumed: sum over replicas of their lifetime
    #: (static fleet: replicas x makespan; autoscaling exists to shrink it).
    replica_seconds: float = 0.0
    scale_events: tuple[ScaleEvent, ...] = field(default_factory=tuple)
    windows: tuple[WindowReport, ...] | None = None
    #: Autoregressive-serving phase latencies (set only by LLM runs —
    #: time-to-first-token and time-per-output-token; JSON shape is additive).
    ttft: LatencySummary | None = None
    tpot: LatencySummary | None = None
    #: Token/KV accounting block of an LLM run (scheduler, generated tokens,
    #: decode throughput, per-phase SLO attainment), None for classic runs.
    llm: dict[str, object] | None = None
    #: Multi-stage pipeline block (per-stage latency/SLO breakdown, handoff
    #: accounting), set only by :mod:`repro.serve.pipeline` runs.
    pipeline: dict[str, object] | None = None

    def to_dict(self) -> dict[str, object]:
        payload: dict[str, object] = {
            "config": self.config,
            "offered": self.offered,
            "completed": self.completed,
            "duration": self.duration,
            "makespan": self.makespan,
            "throughput_rps": self.throughput_rps,
            "latency": self.latency.to_dict(),
            "queue_wait": self.queue_wait.to_dict(),
            "mean_batch_size": self.mean_batch_size,
            "slo_seconds": self.slo_seconds,
            "slo_violation_rate": self.slo_violation_rate,
            "total_energy_joules": self.total_energy_joules,
            "energy_per_request_joules": self.energy_per_request_joules,
            "per_model": {model: summary.to_dict() for model, summary in self.per_model},
            "per_replica": [replica.to_dict() for replica in self.per_replica],
            "cache": self.cache.to_dict(),
            "replica_seconds": self.replica_seconds,
            "scale_events": [event.to_dict() for event in self.scale_events],
        }
        if self.windows is not None:
            payload["windows"] = [window.to_dict() for window in self.windows]
        if self.ttft is not None:
            payload["ttft"] = self.ttft.to_dict()
        if self.tpot is not None:
            payload["tpot"] = self.tpot.to_dict()
        if self.llm is not None:
            payload["llm"] = self.llm
        if self.pipeline is not None:
            payload["pipeline"] = self.pipeline
        return payload

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    def summary_row(self) -> dict[str, object]:
        """One flat row for markdown tables (CLI and experiment reports)."""

        row: dict[str, object] = {
            "requests": self.completed,
            "throughput_rps": self.throughput_rps,
            "p50_ms": self.latency.p50 * 1e3,
            "p95_ms": self.latency.p95 * 1e3,
            "p99_ms": self.latency.p99 * 1e3,
        }
        for label, value in self.latency.extras:
            row[f"{label}_ms"] = value * 1e3
        if self.ttft is not None and self.tpot is not None:
            row["ttft_p95_ms"] = self.ttft.p95 * 1e3
            row["tpot_p95_ms"] = self.tpot.p95 * 1e3
        row.update({
            "mean_batch": self.mean_batch_size,
            "slo_violation_rate": self.slo_violation_rate,
            "energy_per_request_mj": self.energy_per_request_joules * 1e3,
        })
        return row


def _window_count(makespan: float, window_seconds: float) -> int:
    """Number of fixed-width windows covering ``[0, makespan]``."""

    count = max(1, math.ceil(makespan / window_seconds))
    while (count - 1) * window_seconds >= makespan:
        count -= 1                 # float drift: never emit a zero-width sliver
    return count


def _replica_window_overlap(replicas, makespan: float, start: float,
                            end: float) -> float:
    """Provisioned replica-seconds overlapping one ``[start, end)`` window."""

    return sum(
        max(0.0, min(replica.retired_at if replica.retired_at is not None
                     else makespan, end) - max(replica.started_at, start))
        for replica in replicas)


class ReportAccumulator:
    """Bounded-memory fold of a serving run — ``summary="streaming"``.

    The exact path keeps one :class:`RequestRecord` per request and computes
    nearest-rank order statistics at the end; this accumulator folds each
    completion as it happens into P² quantile sketches
    (:class:`repro.obs.sketch.StreamingLatency`) plus exact running
    count/mean/max, per-model sketches and per-window counters, so memory is
    O(replicas + models + windows + percentiles) — independent of the number
    of requests.

    Error bound: counts, means, maxima, throughput, SLO violation and energy
    figures stay *exact* (they are running sums); only the reported quantiles
    (``p50``/``p95``/``p99``/extras, per-model, per-window ``p99``) become P²
    estimates.  P² carries no worst-case guarantee, but on the smooth latency
    distributions the simulator produces the estimates track the nearest-rank
    statistics to within a few percent; the test suite pins a 15 % relative
    (plus half-millisecond absolute) envelope across Poisson, bursty, diurnal
    and LLM traffic (``tests/test_serve_scale.py``).
    """

    def __init__(self, *, slo_seconds: float,
                 percentiles: Sequence[float] = DEFAULT_PERCENTILES,
                 window_seconds: float | None = None,
                 track_ttft: bool = False, track_tpot: bool = False):
        # Imported lazily: the obs layer builds on serve.metrics, so the
        # module-level dependency must keep pointing obs -> serve.
        from repro.obs.sketch import P2Quantile, StreamingLatency

        self._sketch = lambda: StreamingLatency(percentiles)
        self._window_p2 = P2Quantile
        self.slo_seconds = slo_seconds
        self.window_seconds = window_seconds
        self.latency = self._sketch()
        self.queue_wait = self._sketch()
        self.per_model: dict[str, object] = {}
        self.ttft = self._sketch() if track_ttft else None
        self.tpot = self._sketch() if track_tpot else None
        self.violations = 0
        self.last_completion = 0.0
        self._window_arrivals: list[int] = []
        self._window_completed: list[int] = []
        self._window_tails: list[object] = []

    def _window(self, time: float) -> int | None:
        if self.window_seconds is None:
            return None
        bucket = int(time / self.window_seconds)
        while len(self._window_arrivals) <= bucket:
            self._window_arrivals.append(0)
            self._window_completed.append(0)
            self._window_tails.append(self._window_p2(0.99))
        return bucket

    def observe(self, model: str, arrival: float, dispatch: float,
                completion: float) -> None:
        """Fold one completed request into every running summary."""

        latency = completion - arrival
        self.latency.add(latency)
        self.queue_wait.add(dispatch - arrival)
        if latency > self.slo_seconds:
            self.violations += 1
        if completion > self.last_completion:
            self.last_completion = completion
        by_model = self.per_model.get(model)
        if by_model is None:
            by_model = self.per_model[model] = self._sketch()
        by_model.add(latency)
        if self.window_seconds is not None:
            self._window_arrivals[self._window(arrival)] += 1
            bucket = self._window(completion)
            self._window_completed[bucket] += 1
            self._window_tails[bucket].add(latency)

    def _windows(self, replicas, makespan: float) -> tuple[WindowReport, ...]:
        window_seconds = self.window_seconds
        count = _window_count(makespan, window_seconds)
        arrivals = self._window_arrivals[:count]
        completed = self._window_completed[:count]
        tails = self._window_tails[:count]
        arrivals += [0] * (count - len(arrivals))
        completed += [0] * (count - len(completed))
        tails += [self._window_p2(0.99) for _ in range(count - len(tails))]
        # A completion exactly at makespan landed one bucket past the last
        # (partial) window; fold any overflow back, mirroring the exact path.
        for bucket in range(count, len(self._window_completed)):
            arrivals[-1] += self._window_arrivals[bucket]
            completed[-1] += self._window_completed[bucket]
            overflow = self._window_tails[bucket]
            if overflow.count:
                tails[-1] = overflow if not tails[-1].count else tails[-1]
        windows = []
        for index in range(count):
            start = index * window_seconds
            end = min(start + window_seconds, makespan)
            width = end - start
            overlap = _replica_window_overlap(replicas, makespan, start, end)
            windows.append(WindowReport(
                start=start, end=end, arrivals=arrivals[index],
                completed=completed[index],
                throughput_rps=completed[index] / width if width else 0.0,
                p99=tails[index].value if completed[index] else 0.0,
                mean_active_replicas=overlap / width if width else 0.0))
        return tuple(windows)

    def finalize(self, config: dict[str, object], offered: int,
                 duration: float, replicas, cache_stats: CacheStats,
                 scale_events: Sequence[ScaleEvent] = (),
                 llm: dict[str, object] | None = None,
                 pipeline: dict[str, object] | None = None) -> ServeReport:
        """Render the same :class:`ServeReport` shape :func:`build_report`
        produces, from the streamed state."""

        completed = self.latency.count
        makespan = max(duration, self.last_completion)
        total_energy = sum(replica.energy_joules for replica in replicas)
        total_batches = sum(replica.batches for replica in replicas)
        per_replica = tuple(
            ReplicaReport(
                name=replica.name, target=replica.spec.target,
                attention=replica.spec.attention, requests=replica.served,
                batches=replica.batches, busy_seconds=replica.busy_seconds,
                utilization=replica.busy_seconds / makespan,
                energy_joules=replica.energy_joules,
                started_at=replica.started_at, retired_at=replica.retired_at,
                role=getattr(replica, "role", None),
                kv_capacity_tokens=getattr(replica, "kv_capacity", None),
                kv_peak_tokens=getattr(replica, "kv_peak", None),
                decode_steps=getattr(replica, "decode_steps", None),
                stage=getattr(replica, "stage", None))
            for replica in replicas
        )
        return ServeReport(
            config=config,
            offered=offered,
            completed=completed,
            duration=duration,
            makespan=makespan,
            throughput_rps=completed / makespan,
            latency=self.latency.summary(),
            queue_wait=self.queue_wait.summary(),
            mean_batch_size=completed / total_batches if total_batches else 0.0,
            slo_seconds=self.slo_seconds,
            slo_violation_rate=self.violations / completed if completed else 0.0,
            total_energy_joules=total_energy,
            energy_per_request_joules=(total_energy / completed
                                       if completed else 0.0),
            per_model=tuple(sorted(((model, sketch.summary())
                                    for model, sketch in self.per_model.items()),
                                   key=lambda entry: entry[0])),
            per_replica=per_replica,
            cache=cache_stats,
            replica_seconds=sum(replica.lifetime_seconds(makespan)
                                for replica in replicas),
            scale_events=tuple(scale_events),
            windows=(None if self.window_seconds is None
                     else self._windows(replicas, makespan)),
            ttft=None if self.ttft is None else self.ttft.summary(),
            tpot=None if self.tpot is None else self.tpot.summary(),
            llm=llm,
            pipeline=pipeline,
        )


def _build_windows(records: Sequence[RequestRecord], replicas, makespan: float,
                   window_seconds: float) -> tuple[WindowReport, ...]:
    """Slice the run into fixed-width windows (the last one may be partial)."""

    count = _window_count(makespan, window_seconds)

    def bucket(time: float) -> int:
        # A completion exactly at makespan belongs to the (partial) last
        # window, not a nonexistent one past it.
        return min(int(time / window_seconds), count - 1)

    arrivals = [0] * count
    latencies: list[list[float]] = [[] for _ in range(count)]
    for record in records:         # one pass, not one scan per window
        arrivals[bucket(record.arrival)] += 1
        latencies[bucket(record.completion)].append(record.latency)

    windows = []
    for index in range(count):
        # Boundaries multiply rather than accumulate: repeated float addition
        # drifts below an exact multiple.
        start = index * window_seconds
        end = min(start + window_seconds, makespan)
        width = end - start
        overlap = _replica_window_overlap(replicas, makespan, start, end)
        completed = latencies[index]
        windows.append(WindowReport(
            start=start, end=end, arrivals=arrivals[index],
            completed=len(completed),
            throughput_rps=len(completed) / width if width else 0.0,
            p99=percentile(completed, 0.99) if completed else 0.0,
            mean_active_replicas=overlap / width if width else 0.0))
    return tuple(windows)


def build_report(config: dict[str, object], records: Sequence[RequestRecord],
                 offered: int, duration: float, slo_seconds: float,
                 replicas, cache_stats: CacheStats,
                 percentiles: Sequence[float] = DEFAULT_PERCENTILES,
                 scale_events: Sequence[ScaleEvent] = (),
                 window_seconds: float | None = None,
                 ttft_values: Sequence[float] | None = None,
                 tpot_values: Sequence[float] | None = None,
                 llm: dict[str, object] | None = None,
                 pipeline: dict[str, object] | None = None) -> ServeReport:
    """Fold raw request records and replica accounting into a report.

    ``ttft_values`` / ``tpot_values`` / ``llm`` are the LLM-serving extras
    (:mod:`repro.serve.llm` passes them); left at ``None`` the report's JSON
    shape is exactly the classic one.
    """

    latencies = [record.latency for record in records]
    waits = [record.queue_wait for record in records]
    makespan = max([duration] + [record.completion for record in records])
    completed = len(records)
    violations = sum(1 for latency in latencies if latency > slo_seconds)
    total_energy = sum(replica.energy_joules for replica in replicas)
    total_batches = sum(replica.batches for replica in replicas)

    by_model: dict[str, list[float]] = {}
    for record in records:
        by_model.setdefault(record.model, []).append(record.latency)

    per_replica = tuple(
        ReplicaReport(
            name=replica.name, target=replica.spec.target,
            attention=replica.spec.attention, requests=replica.served,
            batches=replica.batches, busy_seconds=replica.busy_seconds,
            utilization=replica.busy_seconds / makespan,
            energy_joules=replica.energy_joules,
            started_at=replica.started_at, retired_at=replica.retired_at,
            role=getattr(replica, "role", None),
            kv_capacity_tokens=getattr(replica, "kv_capacity", None),
            kv_peak_tokens=getattr(replica, "kv_peak", None),
            decode_steps=getattr(replica, "decode_steps", None),
            stage=getattr(replica, "stage", None))
        for replica in replicas
    )
    return ServeReport(
        config=config,
        offered=offered,
        completed=completed,
        duration=duration,
        makespan=makespan,
        throughput_rps=completed / makespan,
        latency=LatencySummary.of(latencies, percentiles),
        queue_wait=LatencySummary.of(waits, percentiles),
        mean_batch_size=completed / total_batches if total_batches else 0.0,
        slo_seconds=slo_seconds,
        slo_violation_rate=violations / completed if completed else 0.0,
        total_energy_joules=total_energy,
        energy_per_request_joules=total_energy / completed if completed else 0.0,
        per_model=tuple(sorted(((model, LatencySummary.of(values, percentiles))
                                for model, values in by_model.items()),
                               key=lambda entry: entry[0])),
        per_replica=per_replica,
        cache=cache_stats,
        replica_seconds=sum(replica.lifetime_seconds(makespan)
                            for replica in replicas),
        scale_events=tuple(scale_events),
        windows=(None if window_seconds is None
                 else _build_windows(records, replicas, makespan, window_seconds)),
        ttft=(None if ttft_values is None
              else LatencySummary.of(ttft_values, percentiles)),
        tpot=(None if tpot_values is None
              else LatencySummary.of(tpot_values, percentiles)),
        llm=llm,
        pipeline=pipeline,
    )
