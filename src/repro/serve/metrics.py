"""Per-request accounting and the JSON-serialisable ``ServeReport``.

The simulator records one :class:`RequestRecord` per served request; this
module folds those into a :class:`ServeReport`: latency percentiles
(nearest-rank, so they are exact order statistics, not interpolations),
throughput, SLO attainment, energy per request, per-model and per-replica
summaries, and the engine result-cache traffic of the run.  Everything is a
plain float/int/str structure, so ``to_json()`` of two identical runs is
bit-identical — the determinism contract the tests pin down.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass
from typing import Sequence

from repro.engine import CacheStats


@dataclass(frozen=True)
class RequestRecord:
    """Lifecycle of one served request."""

    index: int
    model: str
    arrival: float
    replica: str
    batch_size: int
    dispatch: float
    completion: float

    @property
    def queue_wait(self) -> float:
        return self.dispatch - self.arrival

    @property
    def service(self) -> float:
        return self.completion - self.dispatch

    @property
    def latency(self) -> float:
        return self.completion - self.arrival


def percentile(values: Sequence[float], fraction: float) -> float:
    """Nearest-rank percentile (``fraction`` in [0, 1]) of a non-empty sample."""

    if not values:
        raise ValueError("percentile of an empty sample")
    if not 0 <= fraction <= 1:
        raise ValueError(f"fraction must be in [0, 1], got {fraction}")
    ordered = sorted(values)
    rank = max(math.ceil(fraction * len(ordered)), 1)
    return ordered[rank - 1]


@dataclass(frozen=True)
class LatencySummary:
    """Order statistics of one latency-like sample (seconds)."""

    count: int
    mean: float
    p50: float
    p95: float
    p99: float
    max: float

    @classmethod
    def of(cls, values: Sequence[float]) -> "LatencySummary":
        if not values:
            return cls(count=0, mean=0.0, p50=0.0, p95=0.0, p99=0.0, max=0.0)
        return cls(count=len(values), mean=sum(values) / len(values),
                   p50=percentile(values, 0.50), p95=percentile(values, 0.95),
                   p99=percentile(values, 0.99), max=max(values))

    def to_dict(self) -> dict[str, object]:
        return {"count": self.count, "mean": self.mean, "p50": self.p50,
                "p95": self.p95, "p99": self.p99, "max": self.max}


@dataclass(frozen=True)
class ReplicaReport:
    """One replica's share of the run."""

    name: str
    target: str
    attention: str | None
    requests: int
    batches: int
    busy_seconds: float
    utilization: float
    energy_joules: float

    def to_dict(self) -> dict[str, object]:
        return {"name": self.name, "target": self.target, "attention": self.attention,
                "requests": self.requests, "batches": self.batches,
                "busy_seconds": self.busy_seconds, "utilization": self.utilization,
                "energy_joules": self.energy_joules}


@dataclass(frozen=True)
class ServeReport:
    """Everything one serving run produced, ready for JSON."""

    config: dict[str, object]
    offered: int
    completed: int
    duration: float
    makespan: float                     # max(duration, last completion time)
    throughput_rps: float               # completed / makespan
    latency: LatencySummary             # queue wait + service, per request
    queue_wait: LatencySummary
    mean_batch_size: float
    slo_seconds: float
    slo_violation_rate: float
    total_energy_joules: float
    energy_per_request_joules: float
    per_model: tuple[tuple[str, LatencySummary], ...]
    per_replica: tuple[ReplicaReport, ...]
    cache: CacheStats

    def to_dict(self) -> dict[str, object]:
        return {
            "config": self.config,
            "offered": self.offered,
            "completed": self.completed,
            "duration": self.duration,
            "makespan": self.makespan,
            "throughput_rps": self.throughput_rps,
            "latency": self.latency.to_dict(),
            "queue_wait": self.queue_wait.to_dict(),
            "mean_batch_size": self.mean_batch_size,
            "slo_seconds": self.slo_seconds,
            "slo_violation_rate": self.slo_violation_rate,
            "total_energy_joules": self.total_energy_joules,
            "energy_per_request_joules": self.energy_per_request_joules,
            "per_model": {model: summary.to_dict() for model, summary in self.per_model},
            "per_replica": [replica.to_dict() for replica in self.per_replica],
            "cache": self.cache.to_dict(),
        }

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    def summary_row(self) -> dict[str, object]:
        """One flat row for markdown tables (CLI and experiment reports)."""

        return {
            "requests": self.completed,
            "throughput_rps": self.throughput_rps,
            "p50_ms": self.latency.p50 * 1e3,
            "p95_ms": self.latency.p95 * 1e3,
            "p99_ms": self.latency.p99 * 1e3,
            "mean_batch": self.mean_batch_size,
            "slo_violation_rate": self.slo_violation_rate,
            "energy_per_request_mj": self.energy_per_request_joules * 1e3,
        }


def build_report(config: dict[str, object], records: Sequence[RequestRecord],
                 offered: int, duration: float, slo_seconds: float,
                 replicas, cache_stats: CacheStats) -> ServeReport:
    """Fold raw request records and replica accounting into a report."""

    latencies = [record.latency for record in records]
    waits = [record.queue_wait for record in records]
    makespan = max([duration] + [record.completion for record in records])
    completed = len(records)
    violations = sum(1 for latency in latencies if latency > slo_seconds)
    total_energy = sum(replica.energy_joules for replica in replicas)
    total_batches = sum(replica.batches for replica in replicas)

    by_model: dict[str, list[float]] = {}
    for record in records:
        by_model.setdefault(record.model, []).append(record.latency)

    per_replica = tuple(
        ReplicaReport(
            name=replica.name, target=replica.spec.target,
            attention=replica.spec.attention, requests=replica.served,
            batches=replica.batches, busy_seconds=replica.busy_seconds,
            utilization=replica.busy_seconds / makespan,
            energy_joules=replica.energy_joules)
        for replica in replicas
    )
    return ServeReport(
        config=config,
        offered=offered,
        completed=completed,
        duration=duration,
        makespan=makespan,
        throughput_rps=completed / makespan,
        latency=LatencySummary.of(latencies),
        queue_wait=LatencySummary.of(waits),
        mean_batch_size=completed / total_batches if total_batches else 0.0,
        slo_seconds=slo_seconds,
        slo_violation_rate=violations / completed if completed else 0.0,
        total_energy_joules=total_energy,
        energy_per_request_joules=total_energy / completed if completed else 0.0,
        per_model=tuple(sorted(((model, LatencySummary.of(values))
                                for model, values in by_model.items()),
                               key=lambda entry: entry[0])),
        per_replica=per_replica,
        cache=cache_stats,
    )
