"""Pluggable batch-formation policies for the serving simulator.

Each replica owns a FIFO queue of waiting requests; its batching policy
decides, whenever the replica is idle, whether to dispatch now and with how
many requests.  Batches are always single-model (a batched ``RunSpec`` names
one workload), so policies gather requests matching the head-of-line model in
FIFO order, leaving other models queued.

Policies:

* :class:`FIFOPolicy` — no batching: one request per dispatch;
* :class:`SizeBatchPolicy` — size-triggered: wait until ``batch_size``
  same-model requests are queued, then dispatch them as one batch;
* :class:`TimeoutBatchPolicy` — timeout-based: dispatch when the oldest
  queued request has waited ``timeout`` seconds or ``max_batch`` same-model
  requests have accumulated, whichever comes first.

Every policy flushes partial batches once the simulator signals ``draining``
(no arrivals remain), so runs terminate with every request served.
"""

from __future__ import annotations

from collections import deque
from typing import Protocol, runtime_checkable

from repro.serve.traffic import Request

#: Policy names accepted by :func:`make_policy` and the CLI.
BATCH_POLICIES = ("fifo", "size", "timeout")


@runtime_checkable
class BatchPolicy(Protocol):
    """What the simulator asks of a batch-formation policy."""

    name: str

    def take(self, queue: deque[Request], now: float,
             draining: bool) -> list[Request] | None:
        """Remove and return the batch to dispatch now, or ``None`` to wait.

        Only called with a non-empty queue on an idle replica.
        """
        ...

    def deadline(self, queue: deque[Request]) -> float | None:
        """Next time ``take`` should be re-evaluated absent new arrivals."""
        ...

    def to_dict(self) -> dict[str, object]:
        """JSON-stable description echoed into the :class:`ServeReport`."""
        ...


def _take_head_model(queue: deque[Request], limit: int) -> list[Request]:
    """Remove up to ``limit`` requests matching the head-of-line model,
    preserving FIFO order; requests for other models stay queued."""

    model = queue[0].model
    batch, kept = [], []
    while queue:
        request = queue.popleft()
        if request.model == model and len(batch) < limit:
            batch.append(request)
        else:
            kept.append(request)
    queue.extend(kept)
    return batch


def _count_head_model(queue: deque[Request]) -> int:
    model = queue[0].model
    return sum(1 for request in queue if request.model == model)


class FIFOPolicy:
    """No batching: serve queued requests one at a time, strictly in order."""

    name = "fifo"

    def take(self, queue: deque[Request], now: float,
             draining: bool) -> list[Request] | None:
        return [queue.popleft()]

    def deadline(self, queue: deque[Request]) -> float | None:
        return None

    def to_dict(self) -> dict[str, object]:
        return {"name": self.name}


class SizeBatchPolicy:
    """Size-triggered dynamic batching: dispatch once ``batch_size``
    same-model requests are queued (partial batches flush on drain).

    Strict size triggers are deliberately unforgiving: below saturation a
    partially-filled queue waits indefinitely for stragglers, so tail latency
    explodes while throughput looks fine — the failure mode
    :class:`TimeoutBatchPolicy` exists to bound.
    """

    name = "size"

    def __init__(self, batch_size: int = 8):
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        self.batch_size = batch_size

    def take(self, queue: deque[Request], now: float,
             draining: bool) -> list[Request] | None:
        if draining or _count_head_model(queue) >= self.batch_size:
            return _take_head_model(queue, self.batch_size)
        return None

    def deadline(self, queue: deque[Request]) -> float | None:
        return None

    def to_dict(self) -> dict[str, object]:
        return {"name": self.name, "batch_size": self.batch_size}


class TimeoutBatchPolicy:
    """Timeout-based batching: dispatch whatever has accumulated once the
    oldest queued request has waited ``timeout`` seconds, or earlier if
    ``max_batch`` same-model requests are already available."""

    name = "timeout"

    def __init__(self, timeout: float = 2e-3, max_batch: int = 8):
        if timeout < 0:
            raise ValueError(f"timeout must be >= 0, got {timeout}")
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        self.timeout = timeout
        self.max_batch = max_batch

    def take(self, queue: deque[Request], now: float,
             draining: bool) -> list[Request] | None:
        if (draining or now >= queue[0].arrival + self.timeout
                or _count_head_model(queue) >= self.max_batch):
            return _take_head_model(queue, self.max_batch)
        return None

    def deadline(self, queue: deque[Request]) -> float | None:
        return queue[0].arrival + self.timeout

    def to_dict(self) -> dict[str, object]:
        return {"name": self.name, "timeout": self.timeout, "max_batch": self.max_batch}


def make_policy(name: str, *, batch_size: int = 8,
                timeout: float = 2e-3) -> BatchPolicy:
    """Build a batching policy by name (the CLI entry point)."""

    if name == "fifo":
        return FIFOPolicy()
    if name == "size":
        return SizeBatchPolicy(batch_size=batch_size)
    if name == "timeout":
        return TimeoutBatchPolicy(timeout=timeout, max_batch=batch_size)
    raise ValueError(f"unknown batching policy {name!r}; "
                     f"available: {', '.join(BATCH_POLICIES)}")
