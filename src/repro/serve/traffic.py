"""Seeded request-arrival generators for the serving simulator.

Every pattern turns ``(duration, seed)`` into a sorted stream of
:class:`Request` instances, each naming the workload it wants served
(``deit-tiny``, ``levit-128``, ...).  Generation is pure: the same pattern,
duration and seed always produce the identical arrival sequence, which is
what makes whole serving runs bit-reproducible.

Patterns generate *lazily*: :meth:`TrafficPattern.iter_arrivals` yields
requests one at a time and the list-returning :meth:`TrafficPattern.arrivals`
is a thin ``list(...)`` wrapper, so the event loop in
:func:`repro.serve.serve` holds only in-flight work rather than the whole
trace.  Laziness never changes the sequence: when the workload mix consumes
per-request randomness (a multi-model mix or token profiles), the historical
draw order was "every arrival time first, then the per-request draws", so
``iter_arrivals`` materialises the times internally for those mixes and is
O(1)-memory only for mixes that draw nothing per request — exactly the
single-model traffic used for scale runs.

Patterns:

* :class:`PoissonTraffic` — memoryless arrivals at a constant rate;
* :class:`BurstyTraffic` — a two-state Markov-modulated Poisson process
  alternating quiet and burst phases;
* :class:`DiurnalTraffic` — a raised-cosine rate profile (the day/night cycle
  compressed to ``period`` seconds), sampled by thinning;
* :class:`ReplayTraffic` — replay of an explicit ``(time, model)`` trace.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Iterable, Iterator, Protocol, Sequence, runtime_checkable

from repro.knobs import KnobError
from repro.workloads import UnknownWorkloadError, get_workload

#: Traffic pattern names accepted by :func:`make_traffic` and the CLI.
TRAFFIC_PATTERNS = ("poisson", "bursty", "diurnal", "replay")


def _check_workload_name(model: str, where: str) -> None:
    """Resolve a (possibly configured) workload name, failing as ValueError.

    Configured names — ``"deit-tiny[tokens=1024]"`` — are first-class request
    models: the grammar validates families *and* knobs here, at mix/trace
    construction, so the error names the construction site rather than
    surfacing mid-run.
    """

    try:
        get_workload(model)
    except (UnknownWorkloadError, KnobError) as error:
        raise ValueError(f"in {where}: {error.args[0]}") from None


@dataclass(frozen=True)
class TokenDistribution:
    """A seeded integer token-count distribution: fixed or uniform over a range.

    Spelled ``"512"`` (every draw is 512) or ``"64:256"`` (uniform integers,
    both ends inclusive) — the grammar the CLI's ``--prompt-tokens`` /
    ``--output-tokens`` flags use.
    """

    low: int
    high: int

    def __post_init__(self):
        if self.low < 1:
            raise ValueError(f"token counts must be >= 1, got {self.low}")
        if self.high < self.low:
            raise ValueError(f"token range needs low <= high, "
                             f"got {self.low}:{self.high}")

    @classmethod
    def parse(cls, text: "str | int | TokenDistribution") -> "TokenDistribution":
        if isinstance(text, TokenDistribution):
            return text
        if isinstance(text, int):
            return cls(text, text)
        low, sep, high = str(text).partition(":")
        try:
            return cls(int(low), int(high) if sep else int(low))
        except ValueError:
            raise ValueError(f"token distribution must be 'N' or 'LO:HI', "
                             f"got {text!r}") from None

    def sample(self, rng: random.Random) -> int:
        if self.high == self.low:
            return self.low
        return rng.randint(self.low, self.high)

    @property
    def mean(self) -> float:
        return (self.low + self.high) / 2.0

    def describe(self) -> str:
        return str(self.low) if self.high == self.low else f"{self.low}:{self.high}"


@dataclass(frozen=True)
class TokenProfile:
    """Per-request prompt/output token distributions for one workload."""

    prompt: TokenDistribution
    output: TokenDistribution

    @classmethod
    def of(cls, prompt: "str | int | TokenDistribution",
           output: "str | int | TokenDistribution") -> "TokenProfile":
        return cls(TokenDistribution.parse(prompt), TokenDistribution.parse(output))

    def to_dict(self) -> dict[str, str]:
        return {"prompt": self.prompt.describe(), "output": self.output.describe()}


@dataclass(frozen=True)
class Request:
    """One inference request: which workload, and when it arrived.

    ``prompt_tokens`` / ``output_tokens`` are the autoregressive-serving
    geometry (set by token-profiled mixes and token-carrying traces); ``None``
    means "use the server's defaults", and classic (non-LLM) serving ignores
    them entirely.
    """

    index: int
    model: str
    arrival: float
    prompt_tokens: int | None = None
    output_tokens: int | None = None

    def to_dict(self) -> dict[str, object]:
        payload: dict[str, object] = {
            "index": self.index, "model": self.model, "arrival": self.arrival}
        if self.prompt_tokens is not None:
            payload["prompt_tokens"] = self.prompt_tokens
        if self.output_tokens is not None:
            payload["output_tokens"] = self.output_tokens
        return payload


@dataclass(frozen=True)
class WorkloadMix:
    """A weighted mixture of workload names requests are drawn from.

    ``token_profiles`` optionally attaches a per-model
    :class:`TokenProfile`; requests for a profiled model then carry sampled
    ``prompt_tokens`` / ``output_tokens`` (drawn from the same seeded
    generator as the model choice, so arrival lists stay bit-reproducible).
    """

    entries: tuple[tuple[str, float], ...]
    token_profiles: tuple[tuple[str, TokenProfile], ...] = ()

    def __post_init__(self):
        if not self.entries:
            raise ValueError("WorkloadMix needs at least one workload")
        merged: dict[str, float] = {}
        for model, weight in self.entries:
            _check_workload_name(model, "mix")
            if weight <= 0:
                raise ValueError(f"mix weight for {model!r} must be positive, got {weight}")
            merged[model] = merged.get(model, 0.0) + weight
        # Duplicate names collapse to one summed entry, so the config echo
        # (to_dict) describes exactly the distribution sample() draws from.
        object.__setattr__(self, "entries", tuple(merged.items()))
        models = {model for model, _ in self.entries}
        for model, _profile in self.token_profiles:
            if model not in models:
                raise ValueError(f"token profile for {model!r} matches no mix entry")

    @classmethod
    def of(cls, models: Sequence[str],
           weights: Sequence[float] | None = None,
           tokens: "TokenProfile | dict[str, TokenProfile] | None" = None
           ) -> "WorkloadMix":
        if weights is None:
            weights = [1.0] * len(models)
        if len(weights) != len(models):
            raise ValueError(f"{len(models)} models but {len(weights)} weights")
        if tokens is None:
            profiles: tuple[tuple[str, TokenProfile], ...] = ()
        elif isinstance(tokens, TokenProfile):
            profiles = tuple((model, tokens) for model in dict.fromkeys(models))
        else:
            profiles = tuple(sorted(tokens.items()))
        return cls(tuple(zip(models, weights)), profiles)

    def profile_for(self, model: str) -> TokenProfile | None:
        for name, profile in self.token_profiles:
            if name == model:
                return profile
        return None

    @property
    def draws_per_request(self) -> bool:
        """True when :meth:`sample`/:meth:`sample_tokens` consume randomness.

        Single-model unprofiled mixes draw nothing per request, which is what
        lets ``iter_arrivals`` stream them in O(1) memory without disturbing
        the historical "all times first, then per-request draws" order.
        """

        return len(self.entries) > 1 or bool(self.token_profiles)

    def sample(self, rng: random.Random) -> str:
        if len(self.entries) == 1:
            return self.entries[0][0]
        total = sum(weight for _, weight in self.entries)
        pick = rng.random() * total
        cumulative = 0.0
        for model, weight in self.entries:
            cumulative += weight
            if pick < cumulative:
                return model
        return self.entries[-1][0]

    def sample_tokens(self, model: str,
                      rng: random.Random) -> tuple[int | None, int | None]:
        """Draw (prompt, output) token counts, (None, None) when unprofiled.

        Unprofiled models consume no randomness, so mixes without token
        profiles reproduce the exact pre-profile arrival sequences.
        """

        profile = self.profile_for(model)
        if profile is None:
            return None, None
        return profile.prompt.sample(rng), profile.output.sample(rng)

    def to_dict(self) -> dict:
        if not self.token_profiles:
            return dict(self.entries)
        return {"weights": dict(self.entries),
                "tokens": {model: profile.to_dict()
                           for model, profile in self.token_profiles}}


@runtime_checkable
class TrafficPattern(Protocol):
    """What every arrival generator provides."""

    name: str

    def arrivals(self, duration: float, seed: int) -> list[Request]:
        """The sorted request list for one run of ``duration`` seconds."""
        ...

    def iter_arrivals(self, duration: float, seed: int) -> Iterator[Request]:
        """The same sequence as :meth:`arrivals`, yielded lazily."""
        ...

    def to_dict(self) -> dict[str, object]:
        """JSON-stable description echoed into the :class:`ServeReport`."""
        ...


def iter_arrivals(traffic: TrafficPattern, duration: float,
                  seed: int) -> Iterator[Request]:
    """Stream ``traffic``'s arrivals, tolerating list-only patterns.

    The simulator consumes arrivals through this helper so third-party
    patterns that predate :meth:`TrafficPattern.iter_arrivals` (or test
    doubles that only implement ``arrivals``) keep working — they are simply
    materialised first, as before.
    """

    lazy = getattr(traffic, "iter_arrivals", None)
    if lazy is not None:
        return lazy(duration, seed)
    return iter(traffic.arrivals(duration, seed))


def traffic_models(traffic: TrafficPattern) -> list[str] | None:
    """Every model ``traffic`` can emit, without generating arrivals.

    Mix-backed patterns declare their models up front and replay traces carry
    them; ``None`` means the pattern's models are only knowable by generating
    (callers then fall back to materialising).  Streaming LLM runs use this
    to size KV capacity without holding the arrival list.
    """

    mix = getattr(traffic, "mix", None)
    if mix is not None:
        return sorted(model for model, _ in mix.entries)
    trace = getattr(traffic, "trace", None)
    if trace is not None:
        return sorted({entry[1] for entry in trace})
    return None


def _check_duration(duration: float) -> None:
    if duration <= 0:
        raise ValueError(f"duration must be positive, got {duration}")


def _lazy_requests(times: Iterator[float], mix: WorkloadMix,
                   rng: random.Random) -> Iterator[Request]:
    """Attach mix draws to a time stream without changing the draw order.

    Historically every pattern drew *all* arrival times before any model or
    token choice; a mix that consumes per-request randomness therefore forces
    the time stream to materialise here so the interleaving (and with it the
    bit-exact arrival sequence) is preserved.  Mixes that draw nothing per
    request stream straight through in O(1) memory.
    """

    if mix.draws_per_request:
        times = iter(list(times))
    for index, time in enumerate(times):
        model = mix.sample(rng)
        prompt, output = mix.sample_tokens(model, rng)
        yield Request(index=index, model=model, arrival=time,
                      prompt_tokens=prompt, output_tokens=output)


@dataclass(frozen=True)
class PoissonTraffic:
    """Memoryless arrivals: exponential inter-arrival times at ``rate`` req/s."""

    rate: float
    mix: WorkloadMix
    name: str = "poisson"

    def __post_init__(self):
        if self.rate <= 0:
            raise ValueError(f"rate must be positive, got {self.rate}")

    def _times(self, duration: float, rng: random.Random) -> Iterator[float]:
        now = rng.expovariate(self.rate)
        while now < duration:
            yield now
            now += rng.expovariate(self.rate)

    def iter_arrivals(self, duration: float, seed: int) -> Iterator[Request]:
        _check_duration(duration)
        rng = random.Random(seed)
        return _lazy_requests(self._times(duration, rng), self.mix, rng)

    def arrivals(self, duration: float, seed: int) -> list[Request]:
        return list(self.iter_arrivals(duration, seed))

    def to_dict(self) -> dict[str, object]:
        return {"name": self.name, "rate": self.rate, "mix": self.mix.to_dict()}


@dataclass(frozen=True)
class BurstyTraffic:
    """Two-state MMPP: quiet phases at ``rate * quiet_factor`` alternating with
    bursts at ``rate * burst_factor``; phase dwell times are exponential.

    The default factors are dwell-weighted to make :attr:`mean_rate` equal
    ``rate``, so Poisson and bursty runs at the same ``rate`` are load-matched
    and differ only in arrival variance.
    """

    rate: float
    mix: WorkloadMix
    burst_factor: float = 3.0
    quiet_factor: float = 0.5
    mean_quiet: float = 1.0
    mean_burst: float = 0.25
    name: str = "bursty"

    @property
    def mean_rate(self) -> float:
        """Time-averaged arrival rate over the quiet/burst cycle."""

        weighted = (self.quiet_factor * self.mean_quiet
                    + self.burst_factor * self.mean_burst)
        return self.rate * weighted / (self.mean_quiet + self.mean_burst)

    def __post_init__(self):
        if self.rate <= 0:
            raise ValueError(f"rate must be positive, got {self.rate}")
        if self.burst_factor <= self.quiet_factor:
            raise ValueError("burst_factor must exceed quiet_factor")
        if min(self.quiet_factor, self.mean_quiet, self.mean_burst) <= 0:
            raise ValueError("bursty traffic parameters must be positive")

    def _times(self, duration: float, rng: random.Random) -> Iterator[float]:
        now, burst = 0.0, False
        while now < duration:
            mean_dwell = self.mean_burst if burst else self.mean_quiet
            phase_rate = self.rate * (self.burst_factor if burst else self.quiet_factor)
            phase_end = min(now + rng.expovariate(1.0 / mean_dwell), duration)
            tick = now + rng.expovariate(phase_rate)
            while tick < phase_end:
                yield tick
                tick += rng.expovariate(phase_rate)
            now, burst = phase_end, not burst

    def iter_arrivals(self, duration: float, seed: int) -> Iterator[Request]:
        _check_duration(duration)
        rng = random.Random(seed)
        return _lazy_requests(self._times(duration, rng), self.mix, rng)

    def arrivals(self, duration: float, seed: int) -> list[Request]:
        return list(self.iter_arrivals(duration, seed))

    def to_dict(self) -> dict[str, object]:
        return {"name": self.name, "rate": self.rate,
                "burst_factor": self.burst_factor, "quiet_factor": self.quiet_factor,
                "mean_quiet": self.mean_quiet, "mean_burst": self.mean_burst,
                "mix": self.mix.to_dict()}


@dataclass(frozen=True)
class DiurnalTraffic:
    """A raised-cosine day/night profile compressed into ``period`` seconds.

    The instantaneous rate swings between ``peak_rate * floor`` (the trough,
    at t = 0) and ``peak_rate`` (the peak, at t = period / 2); arrivals are
    drawn by thinning a Poisson process running at the peak rate.
    """

    peak_rate: float
    mix: WorkloadMix
    period: float = 10.0
    floor: float = 0.05
    name: str = "diurnal"

    def __post_init__(self):
        if self.peak_rate <= 0:
            raise ValueError(f"peak_rate must be positive, got {self.peak_rate}")
        if self.period <= 0:
            raise ValueError(f"period must be positive, got {self.period}")
        if not 0 <= self.floor < 1:
            raise ValueError(f"floor must be in [0, 1), got {self.floor}")

    def rate_at(self, time: float) -> float:
        phase = 0.5 * (1.0 - math.cos(2.0 * math.pi * time / self.period))
        return self.peak_rate * (self.floor + (1.0 - self.floor) * phase)

    def _times(self, duration: float, rng: random.Random) -> Iterator[float]:
        now = rng.expovariate(self.peak_rate)
        while now < duration:
            if rng.random() < self.rate_at(now) / self.peak_rate:
                yield now
            now += rng.expovariate(self.peak_rate)

    def iter_arrivals(self, duration: float, seed: int) -> Iterator[Request]:
        _check_duration(duration)
        rng = random.Random(seed)
        return _lazy_requests(self._times(duration, rng), self.mix, rng)

    def arrivals(self, duration: float, seed: int) -> list[Request]:
        return list(self.iter_arrivals(duration, seed))

    def to_dict(self) -> dict[str, object]:
        return {"name": self.name, "peak_rate": self.peak_rate,
                "period": self.period, "floor": self.floor, "mix": self.mix.to_dict()}


@dataclass(frozen=True)
class ReplayTraffic:
    """Replay of an explicit trace (seed is ignored).

    Entries are ``(time, model)`` or ``(time, model, prompt_tokens,
    output_tokens)`` — token-carrying records make traces first-class LLM
    workloads (each replayed request keeps its own prompt/output geometry).
    """

    trace: tuple[tuple, ...]
    name: str = "replay"

    def __post_init__(self):
        for entry in self.trace:
            time, model = entry[0], entry[1]
            if time < 0:
                raise ValueError(f"trace times must be non-negative, got {time}")
            _check_workload_name(model, "trace")
            for tokens in entry[2:]:
                if tokens < 1:
                    raise ValueError(f"trace token counts must be >= 1, "
                                     f"got {tokens} for {model!r}")

    @classmethod
    def from_records(cls, records: Iterable[Sequence[object]]) -> "ReplayTraffic":
        """Build from ``[[time, model], ...]`` or ``[[time, model,
        prompt_tokens, output_tokens], ...]`` records (e.g. parsed JSON)."""

        trace = []
        for record in records:
            if len(record) == 2:
                time, model = record
                trace.append((float(time), str(model)))
            elif len(record) == 4:
                time, model, prompt, output = record
                trace.append((float(time), str(model), int(prompt), int(output)))
            else:
                raise ValueError(f"trace records must be [time, model] or "
                                 f"[time, model, prompt_tokens, output_tokens], "
                                 f"got {record!r}")
        return cls(tuple(trace))

    def iter_arrivals(self, duration: float, seed: int) -> Iterator[Request]:
        _check_duration(duration)
        # Replay still sorts its trace up front (a trace is in memory anyway);
        # laziness here is about matching the streaming protocol.
        ordered = sorted(entry for entry in self.trace if entry[0] < duration)
        for index, entry in enumerate(ordered):
            yield Request(index=index, model=entry[1], arrival=entry[0],
                          prompt_tokens=entry[2] if len(entry) > 2 else None,
                          output_tokens=entry[3] if len(entry) > 2 else None)

    def arrivals(self, duration: float, seed: int) -> list[Request]:
        return list(self.iter_arrivals(duration, seed))

    def to_dict(self) -> dict[str, object]:
        return {"name": self.name, "trace_length": len(self.trace)}


def make_traffic(pattern: str, rate: float, models: Sequence[str],
                 weights: Sequence[float] | None = None, *,
                 period: float = 10.0,
                 trace: Iterable[Sequence[object]] | None = None,
                 tokens: "TokenProfile | None" = None) -> TrafficPattern:
    """Build a traffic pattern by name (the CLI entry point).

    ``rate`` is the mean (Poisson/bursty) or peak (diurnal) arrival rate in
    requests per second; ``replay`` requires ``trace`` and ignores the rest
    (including ``tokens`` — replay records carry their own token counts).
    ``tokens`` attaches one prompt/output :class:`TokenProfile` to every
    model in the mix.
    """

    if pattern == "replay":
        if trace is None:
            raise ValueError("replay traffic requires a trace")
        return ReplayTraffic.from_records(trace)
    mix = WorkloadMix.of(tuple(models), weights, tokens=tokens)
    if pattern == "poisson":
        return PoissonTraffic(rate, mix)
    if pattern == "bursty":
        return BurstyTraffic(rate, mix)
    if pattern == "diurnal":
        return DiurnalTraffic(rate, mix, period=period)
    raise ValueError(f"unknown traffic pattern {pattern!r}; "
                     f"available: {', '.join(TRAFFIC_PATTERNS)}")
