"""Heterogeneous fleets of engine targets and request-routing policies.

A :class:`Fleet` is parsed from a compact spec string — ``"2xvitality,1xgpu"``
means two ViTALiTy replicas plus one GPU replica; a ``:vanilla`` / ``:taylor``
suffix pins the attention formulation on platform targets
(``"2xgpu:taylor"``).  Each :class:`Replica` wraps one engine target with a
request queue and running busy/energy accounting; routers place every arriving
request on one replica:

* :class:`LeastLoadedRouter` — minimise the replica's backlog (remaining busy
  time plus the estimated service time of everything it has queued);
* :class:`EnergyAwareRouter` — among replicas within ``slack_seconds`` of the
  lightest backlog, pick the one that serves this request's model for the
  least energy (it spills to faster, hungrier replicas only when the
  efficient ones fall behind).

Single-request service-time/energy estimates come from the engine through the
run's shared :class:`~repro.engine.ResultCache`, so routing costs one
simulation per (model, replica-kind) for the whole run.
"""

from __future__ import annotations

import heapq
from collections import deque
from dataclasses import dataclass
from typing import Callable, NamedTuple, Protocol, Sequence, runtime_checkable

from repro.engine import Sweep, get_target, split_configured_names
from repro.engine.spec import ATTENTION_MODES
from repro.serve.traffic import Request

#: Router names accepted by :func:`make_router` and the CLI.
ROUTERS = ("least-loaded", "energy-aware")


class Estimate(NamedTuple):
    """Single-request service estimate used by routing decisions."""

    latency_seconds: float
    energy_joules: float


#: Signature of the estimator the simulator hands to routers.
Estimator = Callable[[str, "Replica"], Estimate]


@dataclass(frozen=True)
class ReplicaSpec:
    """One replica kind: an engine target plus an optional attention pin."""

    target: str
    attention: str | None = None

    def __post_init__(self):
        get_target(self.target)   # unknown names fail here, not mid-run
        if self.attention is not None and self.attention not in ATTENTION_MODES:
            raise ValueError(f"attention must be one of {ATTENTION_MODES}, "
                             f"got {self.attention!r}")

    @classmethod
    def parse(cls, text: str) -> "ReplicaSpec":
        """Parse one replica-kind label (``"gpu:taylor"``, ``"vitality"``)."""

        target, _, attention = text.partition(":")
        return cls(target, attention or None)

    @property
    def label(self) -> str:
        return self.target if self.attention is None else f"{self.target}:{self.attention}"


class Replica:
    """One serving instance: an engine target with a queue and accounting.

    ``started_at`` / ``retired_at`` bound the replica's provisioned lifetime
    (autoscaled runs add replicas mid-run and retire drained ones); ``active``
    is False while the replica drains — routers skip it, but its queue keeps
    dispatching until empty.
    """

    def __init__(self, index: int, ordinal: int, spec: ReplicaSpec,
                 started_at: float = 0.0, name_prefix: str = ""):
        self.index = index                       # fleet-wide position (tie-breaks)
        self.spec = spec
        self.name = f"{name_prefix}{spec.label}#{ordinal}"
        self.started_at = started_at
        self.queue: deque[Request] = deque()
        self.queued_seconds = 0.0                # estimated service time queued
        self._fleet: "Fleet | None" = None       # owner, for active-set caching
        self._active = True                      # accepting routed requests
        self.retired_at: float | None = None     # set once drained and idle
        self.busy_until = 0.0
        self.busy_seconds = 0.0
        self.energy_joules = 0.0
        self.batches = 0
        self.served = 0

    @property
    def active(self) -> bool:
        """Whether routers may place new requests here."""

        return self._active

    @active.setter
    def active(self, value: bool) -> None:
        # The autoscaler (and tests) toggle this attribute directly, so the
        # setter is where the owning fleet learns its cached active set is
        # stale — keeping ``fleet.active_replicas`` O(1) per arrival.
        self._active = value
        if self._fleet is not None:
            self._fleet._invalidate_active()

    def reset(self) -> None:
        """Return to the pristine pre-run state (serve() calls this, so one
        Fleet can back any number of independent runs)."""

        self.queue.clear()
        self.queued_seconds = 0.0
        self.active = True
        self.retired_at = None
        self.busy_until = 0.0
        self.busy_seconds = 0.0
        self.energy_joules = 0.0
        self.batches = 0
        self.served = 0

    def idle(self, now: float) -> bool:
        return self.busy_until <= now

    def lifetime_seconds(self, makespan: float) -> float:
        """Provisioned replica-seconds this replica contributed to the run."""

        end = self.retired_at if self.retired_at is not None else makespan
        return max(end - self.started_at, 0.0)

    def backlog_seconds(self, now: float) -> float:
        """Remaining busy time plus the estimated service time of the queue.

        ``queued_seconds`` is maintained incrementally by the simulator
        (added on enqueue, removed on dispatch), so a routing decision costs
        O(fleet) rather than O(total queued requests).
        """

        return max(self.busy_until - now, 0.0) + self.queued_seconds


class Fleet:
    """An ordered collection of replicas built from :class:`ReplicaSpec`s.

    The constructed replicas are the fleet's *static* composition; autoscaled
    runs grow it with :meth:`add_replica` and :meth:`reset` restores the
    static composition, so one Fleet can back any number of independent runs.
    """

    def __init__(self, specs: Sequence[ReplicaSpec], *, index_base: int = 0,
                 name_prefix: str = ""):
        if not specs:
            raise ValueError("a fleet needs at least one replica")
        self.replica_specs = tuple(specs)
        # ``index_base`` / ``name_prefix`` keep replica indices and names
        # unique when several fleets share one run (pipeline stage pools):
        # observability tracks and LoadIndex entries key on them.
        self.index_base = index_base
        self.name_prefix = name_prefix
        self._ordinals: dict[str, int] = {}
        self._active_cache: tuple[Replica, ...] | None = None
        replicas = []
        for index, spec in enumerate(self.replica_specs):
            ordinal = self._ordinals.get(spec.label, 0)
            self._ordinals[spec.label] = ordinal + 1
            replica = Replica(index_base + index, ordinal, spec,
                              name_prefix=name_prefix)
            replica._fleet = self
            replicas.append(replica)
        self.replicas = tuple(replicas)
        self._static_count = len(replicas)

    @classmethod
    def parse(cls, text: str, *, index_base: int = 0,
              name_prefix: str = "") -> "Fleet":
        """Parse ``"2xvitality,1xgpu:taylor"`` (count defaults to 1).

        Replica targets may be configured design points —
        ``"2xvitality[pe=32x32,freq=1ghz],1xvitality"`` mixes a scaled-down
        variant with the Table III reference in one heterogeneous fleet.
        Commas inside the knob brackets do not split replicas.
        """

        specs: list[ReplicaSpec] = []
        for part in split_configured_names(text):
            count_text, _, rest = part.partition("x")
            if rest and count_text.isdigit():
                count, body = int(count_text), rest
            else:
                count, body = 1, part
            if count < 1:
                raise ValueError(f"replica count must be >= 1 in {part!r}")
            specs.extend(ReplicaSpec.parse(body) for _ in range(count))
        if not specs:
            raise ValueError(f"empty fleet spec {text!r}")
        return cls(specs, index_base=index_base, name_prefix=name_prefix)

    @property
    def active_replicas(self) -> tuple[Replica, ...]:
        """The replicas currently accepting routed requests.

        Cached between activation changes (replica added, drained or reset),
        so the per-arrival hot path costs one attribute read instead of an
        O(fleet) tuple rebuild.
        """

        cached = self._active_cache
        if cached is None:
            cached = tuple(replica for replica in self.replicas if replica.active)
            self._active_cache = cached
        return cached

    def _invalidate_active(self) -> None:
        self._active_cache = None

    def add_replica(self, spec: ReplicaSpec, now: float) -> Replica:
        """Bring one more replica of ``spec`` online at time ``now``.

        The autoscaler's scale-up hook: the new replica joins the routing set
        immediately (provisioning delay is the *caller's* concern — the
        simulator schedules this call ``provision_seconds`` after the scale
        decision) and is dropped again by :meth:`reset`.
        """

        ordinal = self._ordinals.get(spec.label, 0)
        self._ordinals[spec.label] = ordinal + 1
        replica = Replica(self.index_base + len(self.replicas), ordinal, spec,
                         started_at=now, name_prefix=self.name_prefix)
        replica._fleet = self
        self.replicas = self.replicas + (replica,)
        self._invalidate_active()
        return replica

    def reset(self) -> None:
        """Restore the static composition and pristine per-replica state."""

        self.replicas = self.replicas[:self._static_count]
        self._ordinals = {}
        self._invalidate_active()
        for replica in self.replicas:
            self._ordinals[replica.spec.label] = \
                self._ordinals.get(replica.spec.label, 0) + 1
            replica.reset()

    def describe(self) -> str:
        """The canonical spec string (``"2xvitality,1xgpu:taylor"``)."""

        counts: dict[str, int] = {}
        for spec in self.replica_specs:
            counts[spec.label] = counts.get(spec.label, 0) + 1
        return ",".join(f"{count}x{label}" for label, count in counts.items())

    def warmup_sweeps(self, models: Sequence[str],
                      batch_sizes: Sequence[int] = (1,)) -> list[Sweep]:
        """Engine sweeps covering every (model, replica kind, batch) shape.

        One :class:`~repro.engine.Sweep` per distinct attention pin, built
        through the same ``over_models`` / ``over_targets`` path the
        experiment sweeps use — no hand-rolled cross-products.
        """

        groups: dict[str | None, list[str]] = {}
        for spec in self.replica_specs:
            groups.setdefault(spec.attention, []).append(spec.target)
        return [
            Sweep().over_models(models).over_targets(targets)
                   .attentions(attention).batch_sizes(*batch_sizes)
            for attention, targets in groups.items()
        ]

    def warmup(self, models: Sequence[str], batch_sizes: Sequence[int] = (1,),
               cache=None) -> None:
        """Pre-simulate every shape the fleet can dispatch, through ``cache``."""

        for builder in self.warmup_sweeps(models, batch_sizes):
            builder.run(cache=cache)


@runtime_checkable
class Router(Protocol):
    """Places one arriving request on a replica."""

    name: str

    def choose(self, replicas: Sequence[Replica], model: str, now: float,
               estimate: Estimator) -> Replica:
        ...


class LeastLoadedRouter:
    """Route to the replica with the smallest backlog (ties: fleet order).

    ``choose`` is the O(fleet) reference scan; the simulator routes through a
    :class:`LoadIndex` instead (``uses_load_index``), which maintains the same
    argmin incrementally in O(log fleet) per routing/dispatch event.
    """

    name = "least-loaded"
    uses_load_index = True

    def choose(self, replicas: Sequence[Replica], model: str, now: float,
               estimate: Estimator) -> Replica:
        return min(replicas, key=lambda r: (r.backlog_seconds(now), r.index))


class LoadIndex:
    """Incremental argmin over replica backlogs for least-loaded routing.

    ``backlog_seconds(now) = max(busy_until - now, 0) + queued_seconds`` is
    time-dependent, but it only *changes shape* at events the simulator
    already handles: route/dispatch/free mutate ``queued_seconds`` /
    ``busy_until`` (and every future ``busy_until`` has a ``free`` event
    scheduled at exactly that time), and scale events add or drain replicas.
    Between events, busy replicas' backlogs all decay at the same unit rate
    and idle replicas' backlogs are constant — so two lazy-deletion min-heaps
    capture the order:

    * *idle* replicas keyed by ``(queued_seconds, index)`` — their exact
      backlog;
    * *busy* replicas keyed by ``(busy_until + queued_seconds, index)`` — a
      time-shifted proxy whose order matches the backlog order while every
      entry's ``busy_until`` is in the future (guaranteed by the ``free``
      events).

    :meth:`argmin` compares the two heap tops with the *same* float
    expression the reference linear scan uses, so the routed replica (and its
    index tie-break) matches the scan bit-for-bit; within the busy heap the
    proxy key can in principle reorder backlogs that agree to within a few
    ulps, which the equivalence tests bound empirically.  Entries are
    invalidated by stamp and re-pushed on update, the classic lazy-deletion
    heap, so each event costs O(log live + stale).
    """

    def __init__(self, replicas: Sequence[Replica] = (), now: float = 0.0):
        self._idle: list[tuple[float, int, int, Replica]] = []
        self._busy: list[tuple[float, int, int, Replica]] = []
        self._stamps: dict[int, int] = {}
        self._members: set[int] = set()
        for replica in replicas:
            self.update(replica, now)

    def __len__(self) -> int:
        return len(self._members)

    def update(self, replica: Replica, now: float) -> None:
        """(Re-)index ``replica`` after its queue or busy window changed."""

        stamp = self._stamps.get(replica.index, 0) + 1
        self._stamps[replica.index] = stamp
        self._members.add(replica.index)
        if replica.busy_until > now:
            heapq.heappush(self._busy, (replica.busy_until + replica.queued_seconds,
                                        replica.index, stamp, replica))
        else:
            heapq.heappush(self._idle, (replica.queued_seconds,
                                        replica.index, stamp, replica))

    def remove(self, replica: Replica) -> None:
        """Drop ``replica`` from routing (drained or retired)."""

        if replica.index in self._members:
            self._members.discard(replica.index)
            self._stamps[replica.index] = self._stamps.get(replica.index, 0) + 1

    def _peek(self, heap: list[tuple[float, int, int, Replica]]) -> Replica | None:
        while heap:
            _, index, stamp, replica = heap[0]
            if index in self._members and self._stamps.get(index) == stamp:
                return replica
            heapq.heappop(heap)
        return None

    def argmin(self, now: float) -> Replica | None:
        """The indexed replica minimising ``(backlog_seconds(now), index)``."""

        idle = self._peek(self._idle)
        busy = self._peek(self._busy)
        if idle is None:
            return busy
        if busy is None:
            return idle
        return min((idle, busy),
                   key=lambda r: (r.backlog_seconds(now), r.index))


class EnergyAwareRouter:
    """Prefer the most energy-efficient replica for this model, spilling to
    others only when the efficient one falls ``slack_seconds`` behind the
    lightest-loaded replica."""

    name = "energy-aware"

    def __init__(self, slack_seconds: float = 0.01):
        if slack_seconds < 0:
            raise ValueError(f"slack_seconds must be >= 0, got {slack_seconds}")
        self.slack_seconds = slack_seconds

    def choose(self, replicas: Sequence[Replica], model: str, now: float,
               estimate: Estimator) -> Replica:
        backlogs = [replica.backlog_seconds(now) for replica in replicas]
        floor = min(backlogs)
        eligible = [(replica, backlog)
                    for replica, backlog in zip(replicas, backlogs)
                    if backlog <= floor + self.slack_seconds]
        return min(eligible,
                   key=lambda pair: (estimate(model, pair[0]).energy_joules,
                                     pair[1], pair[0].index))[0]


def make_router(name: str, *, slack_seconds: float = 0.01) -> Router:
    """Build a routing policy by name (the CLI entry point)."""

    if name == "least-loaded":
        return LeastLoadedRouter()
    if name == "energy-aware":
        return EnergyAwareRouter(slack_seconds=slack_seconds)
    raise ValueError(f"unknown router {name!r}; available: {', '.join(ROUTERS)}")
