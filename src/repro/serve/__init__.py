"""Discrete-event inference-serving simulation on top of :mod:`repro.engine`.

Where the engine answers "how fast is one run of model M on target T", this
package answers the fleet-level questions the ROADMAP's serving north-star
needs: tail latency, SLO attainment, sustained throughput and energy per
request under load.  The pieces:

* :mod:`traffic` — seeded arrival generators (Poisson, bursty/MMPP, diurnal,
  trace replay), each request naming a workload;
* :mod:`batching` — pluggable batch formation (FIFO no-batching,
  size-triggered, timeout-based), folding queued requests into batched
  ``RunSpec`` dispatches;
* :mod:`cluster` — heterogeneous fleets of engine targets with least-loaded
  and energy-aware routing;
* :mod:`simulator` — the deterministic event loop, :func:`serve` and
  :func:`compare`;
* :mod:`llm` — autoregressive serving: continuous (iteration-level) batching
  vs monolithic gangs, chunked prefill, KV-cache admission and
  prefill/decode-disaggregated fleets via :func:`serve_llm`;
* :mod:`pipeline` — multi-stage request DAGs (RAG chains, cascade
  draft→verify) traversing per-stage replica pools via
  :func:`serve_pipeline`;
* :mod:`metrics` — per-request records folded into the JSON-serialisable
  :class:`ServeReport` (p50/p95/p99, throughput, utilisation, SLO violations,
  energy/request, cache traffic).

Typical use::

    from repro.serve import Fleet, PoissonTraffic, WorkloadMix, serve

    traffic = PoissonTraffic(rate=200.0, mix=WorkloadMix.of(["deit-tiny"]))
    report = serve(traffic, Fleet.parse("2xvitality"), policy="size",
                   duration=5.0, seed=0)
    print(report.throughput_rps, report.latency.p99, report.to_json())
"""

from repro.serve.batching import (
    BATCH_POLICIES,
    BatchPolicy,
    FIFOPolicy,
    SizeBatchPolicy,
    TimeoutBatchPolicy,
    make_policy,
)
from repro.serve.cluster import (
    ROUTERS,
    EnergyAwareRouter,
    Estimate,
    Fleet,
    LeastLoadedRouter,
    LoadIndex,
    Replica,
    ReplicaSpec,
    Router,
    make_router,
)
from repro.serve.llm import (
    DEFAULT_HANDOFF_SECONDS,
    DEFAULT_MAX_BATCH,
    DEFAULT_OUTPUT_TOKENS,
    DEFAULT_PREFILL_CHUNK,
    DEFAULT_PROMPT_TOKENS,
    DEFAULT_TPOT_SLO,
    DEFAULT_TTFT_SLO,
    KVCacheConfig,
    LLMReplica,
    LLMRequest,
    SCHEDULERS,
    serve_llm,
)
from repro.serve.pipeline import (
    DEFAULT_STAGE_HANDOFF,
    PipelineSpec,
    PipelineStage,
    StageRoute,
    serve_pipeline,
)
from repro.serve.metrics import (
    DEFAULT_PERCENTILES,
    LatencySummary,
    ReplicaReport,
    ReportAccumulator,
    RequestRecord,
    ScaleEvent,
    ServeReport,
    WindowReport,
    build_report,
    percentile,
    percentile_label,
)
from repro.serve.simulator import (
    DEFAULT_CACHE_ENTRIES,
    DEFAULT_DISPATCH_OVERHEAD,
    DEFAULT_SLO,
    SUMMARY_MODES,
    compare,
    serve,
)
from repro.serve.traffic import (
    TRAFFIC_PATTERNS,
    BurstyTraffic,
    DiurnalTraffic,
    PoissonTraffic,
    ReplayTraffic,
    Request,
    TokenDistribution,
    TokenProfile,
    TrafficPattern,
    WorkloadMix,
    iter_arrivals,
    make_traffic,
)

__all__ = [
    "BATCH_POLICIES",
    "BatchPolicy",
    "BurstyTraffic",
    "DEFAULT_CACHE_ENTRIES",
    "DEFAULT_DISPATCH_OVERHEAD",
    "DEFAULT_HANDOFF_SECONDS",
    "DEFAULT_MAX_BATCH",
    "DEFAULT_OUTPUT_TOKENS",
    "DEFAULT_PERCENTILES",
    "DEFAULT_PREFILL_CHUNK",
    "DEFAULT_PROMPT_TOKENS",
    "DEFAULT_SLO",
    "DEFAULT_STAGE_HANDOFF",
    "DEFAULT_TPOT_SLO",
    "DEFAULT_TTFT_SLO",
    "DiurnalTraffic",
    "EnergyAwareRouter",
    "Estimate",
    "FIFOPolicy",
    "Fleet",
    "KVCacheConfig",
    "LLMReplica",
    "LLMRequest",
    "LatencySummary",
    "LeastLoadedRouter",
    "LoadIndex",
    "PipelineSpec",
    "PipelineStage",
    "PoissonTraffic",
    "ROUTERS",
    "Replica",
    "ReplicaReport",
    "ReportAccumulator",
    "ReplicaSpec",
    "ReplayTraffic",
    "Request",
    "RequestRecord",
    "Router",
    "SCHEDULERS",
    "SUMMARY_MODES",
    "ScaleEvent",
    "ServeReport",
    "SizeBatchPolicy",
    "StageRoute",
    "TRAFFIC_PATTERNS",
    "TimeoutBatchPolicy",
    "TokenDistribution",
    "TokenProfile",
    "TrafficPattern",
    "WindowReport",
    "WorkloadMix",
    "build_report",
    "iter_arrivals",
    "compare",
    "make_policy",
    "make_router",
    "make_traffic",
    "percentile",
    "percentile_label",
    "serve",
    "serve_llm",
    "serve_pipeline",
]
