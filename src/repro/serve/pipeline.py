"""Multi-stage request DAGs: RAG-style pipeline serving.

A :class:`PipelineSpec` names a DAG of stages, each serving one (possibly
configured) workload on its own replica pool — retrieval→generation chains,
encoder/reranker mixes, cascade draft→verify.  :func:`serve_pipeline` runs
the discrete-event simulation: every request enters at the entry stage,
queues and batches on that stage's pool exactly like classic :func:`serve`,
then *hops* — after a fixed handoff delay — to a successor stage drawn from
the stage's routing table, until it exits.  Probabilistic routes model
cascades (a draft stage exits with the seeded acceptance probability and
escalates to the verifier otherwise); deterministic routes model linear
chains, spelled with the arrow grammar::

    rag = encoder[tokens=512] -> rerank:encoder[tokens=128] -> deit-tiny

Each stage keeps its own queues, batching and routing over its own pool
(pools may be different hardware kinds), so the whole run is a tandem
queueing network; :mod:`repro.plan.queueing` carries the matching analytic
composition and ``plan_pipeline_capacity`` sizes all pools jointly.

Determinism contract: arrivals come from the traffic pattern's seeded
stream, route draws come from one dedicated generator seeded from the run
seed and consumed in event order — identical under ``summary="exact"`` and
``"streaming"`` — so a (traffic, pipeline, pools, policy, router, duration,
seed) tuple maps to one bit-exact :class:`ServeReport`.  The report is the
classic shape plus an additive ``pipeline`` block (per-stage latency/SLO
breakdown, handoff accounting); per-request end-to-end latency spans
arrival at the entry stage to completion at the exit stage, and the report's
``queue_wait`` is the *sum* of the request's per-stage queue waits.
"""

from __future__ import annotations

import heapq
import itertools
import logging
import random
from dataclasses import dataclass
from typing import NamedTuple, Sequence

from repro.engine import ResultCache, RunSpec, simulate
from repro.serve.batching import BatchPolicy, make_policy
from repro.serve.cluster import (
    Estimate,
    Fleet,
    LoadIndex,
    Replica,
    ReplicaSpec,
    Router,
    make_router,
)
from repro.serve.metrics import (
    DEFAULT_PERCENTILES,
    LatencySummary,
    ReportAccumulator,
    RequestRecord,
    ScaleEvent,
    ServeReport,
    build_report,
)
from repro.serve.simulator import (
    DEFAULT_CACHE_ENTRIES,
    DEFAULT_DISPATCH_OVERHEAD,
    DEFAULT_SLO,
    RUNTIME_SEQUENCE_BASE,
    check_summary,
)
from repro.serve.traffic import Request, TrafficPattern, _check_workload_name
from repro.serve.traffic import iter_arrivals as _iter_arrivals

logger = logging.getLogger(__name__)

#: Default stage-to-stage handoff delay (seconds): the host-side cost of
#: shipping one request's intermediate state to the next stage's pool.
DEFAULT_STAGE_HANDOFF = 1e-3

#: Replica-index stride between stage pools: keeps ``replica.index`` globally
#: unique across one run's pools (observability thread ids and LoadIndex
#: entries key on it) with plenty of headroom for autoscaled additions.
_STAGE_INDEX_STRIDE = 1024


class StageRoute(NamedTuple):
    """One outgoing edge of a stage: successor name (``None`` = exit the
    pipeline) and the probability this request takes it."""

    to: str | None
    probability: float


@dataclass(frozen=True)
class PipelineStage:
    """One pipeline stage: a name, the workload it serves, and its routes.

    ``routes`` empty means the stage is terminal (every request exits with
    probability 1); otherwise the probabilities must sum to 1.
    """

    name: str
    model: str
    routes: tuple[StageRoute, ...] = ()

    def exit_probability(self) -> float:
        """Probability a request leaving this stage exits the pipeline."""

        if not self.routes:
            return 1.0
        return sum(route.probability for route in self.routes if route.to is None)

    def to_dict(self) -> dict[str, object]:
        return {"name": self.name, "model": self.model,
                "routes": [{"to": route.to, "probability": route.probability}
                           for route in (self.routes or
                                         (StageRoute(None, 1.0),))]}


@dataclass(frozen=True)
class PipelineSpec:
    """A validated DAG of :class:`PipelineStage`s with one entry point.

    Construction validates everything the simulator would otherwise trip
    over mid-run: stage names are unique, every stage's workload resolves
    through the knob grammar (errors name the offending stage), route
    targets exist, per-stage route probabilities are positive and sum to 1,
    the graph is acyclic, and every stage is reachable from ``entry``.
    """

    name: str
    stages: tuple[PipelineStage, ...]
    entry: str

    def __post_init__(self):
        object.__setattr__(self, "stages", tuple(self.stages))
        if not self.stages:
            raise ValueError(f"pipeline {self.name!r} needs at least one stage")
        names = [stage.name for stage in self.stages]
        seen: set[str] = set()
        for stage_name in names:
            if stage_name in seen:
                raise ValueError(f"pipeline {self.name!r} has duplicate stage "
                                 f"name {stage_name!r}; label stages "
                                 f"explicitly ('rerank:encoder[tokens=128]')")
            seen.add(stage_name)
        if self.entry not in seen:
            raise ValueError(f"pipeline {self.name!r} entry {self.entry!r} "
                             f"names no stage (stages: {', '.join(names)})")
        for stage in self.stages:
            _check_workload_name(
                stage.model, f"pipeline {self.name!r} stage {stage.name!r}")
            if stage.routes:
                total = 0.0
                for route in stage.routes:
                    if route.to is not None and route.to not in seen:
                        raise ValueError(
                            f"pipeline {self.name!r} stage {stage.name!r} "
                            f"routes to unknown stage {route.to!r}")
                    if route.probability <= 0:
                        raise ValueError(
                            f"pipeline {self.name!r} stage {stage.name!r} "
                            f"route probability must be positive, "
                            f"got {route.probability}")
                    total += route.probability
                if abs(total - 1.0) > 1e-9:
                    raise ValueError(
                        f"pipeline {self.name!r} stage {stage.name!r} route "
                        f"probabilities must sum to 1, got {total}")
        self.topological()                   # raises on cycles
        reachable = self._reachable()
        unreachable = [n for n in names if n not in reachable]
        if unreachable:
            raise ValueError(f"pipeline {self.name!r} stages "
                             f"{', '.join(repr(n) for n in unreachable)} are "
                             f"unreachable from entry {self.entry!r}")

    # -------------------------------------------------------------- grammar

    @classmethod
    def parse(cls, text: str) -> "PipelineSpec":
        """Parse the arrow grammar: ``"rag = encoder[tokens=512] ->
        rerank:encoder[tokens=128] -> deit-tiny"``.

        The leading ``name =`` is optional (default ``"pipeline"``); each
        stage is ``[label:]model`` where the model may carry knobs and the
        label defaults to the model's family name.  Arrow chains are linear;
        build branching DAGs (cascades) via :meth:`cascade` or the
        constructor.
        """

        eq, bracket = text.find("="), text.find("[")
        if eq != -1 and (bracket == -1 or eq < bracket):
            name, body = text[:eq].strip(), text[eq + 1:]
        else:
            name, body = "pipeline", text
        if not name:
            raise ValueError(f"empty pipeline name in {text!r}")
        parts = [part.strip() for part in body.split("->")]
        if not all(parts):
            raise ValueError(f"empty stage in pipeline spec {text!r}")
        labelled: list[tuple[str, str]] = []
        for part in parts:
            bracket, colon = part.find("["), part.find(":")
            if colon != -1 and (bracket == -1 or colon < bracket):
                label, model = part[:colon].strip(), part[colon + 1:].strip()
            else:
                model = part
                label = (part[:bracket] if bracket != -1 else part).strip()
            if not label or not model:
                raise ValueError(f"malformed stage {part!r} in pipeline "
                                 f"spec {text!r}")
            labelled.append((label, model))
        labels = [label for label, _ in labelled]
        stages = tuple(
            PipelineStage(label, model,
                          routes=(() if position == len(labelled) - 1
                                  else (StageRoute(labels[position + 1], 1.0),)))
            for position, (label, model) in enumerate(labelled))
        return cls(name, stages, entry=labels[0])

    @classmethod
    def cascade(cls, name: str, draft: str, verify: str,
                acceptance_rate: float, *, draft_name: str = "draft",
                verify_name: str = "verify") -> "PipelineSpec":
        """A two-stage draft→verify cascade: requests exit at the draft
        stage with probability ``acceptance_rate`` and escalate to the
        verify stage otherwise."""

        if not 0.0 < acceptance_rate < 1.0:
            raise ValueError(f"acceptance_rate must be in (0, 1), "
                             f"got {acceptance_rate}")
        stages = (
            PipelineStage(draft_name, draft, routes=(
                StageRoute(None, acceptance_rate),
                StageRoute(verify_name, 1.0 - acceptance_rate))),
            PipelineStage(verify_name, verify),
        )
        return cls(name, stages, entry=draft_name)

    # ------------------------------------------------------------- topology

    def stage(self, name: str) -> PipelineStage:
        for stage in self.stages:
            if stage.name == name:
                return stage
        raise KeyError(f"pipeline {self.name!r} has no stage {name!r}")

    def topological(self) -> tuple[PipelineStage, ...]:
        """The stages in topological order (definition order breaks ties);
        raises ``ValueError`` on a routing cycle."""

        indegree = {stage.name: 0 for stage in self.stages}
        for stage in self.stages:
            for route in stage.routes:
                if route.to is not None:
                    indegree[route.to] += 1
        ready = [stage for stage in self.stages if indegree[stage.name] == 0]
        order: list[PipelineStage] = []
        while ready:
            stage = ready.pop(0)
            order.append(stage)
            for route in stage.routes:
                if route.to is None:
                    continue
                indegree[route.to] -= 1
                if indegree[route.to] == 0:
                    ready.append(self.stage(route.to))
        if len(order) != len(self.stages):
            cyclic = sorted(name for name, degree in indegree.items()
                            if degree > 0)
            raise ValueError(f"pipeline {self.name!r} has a routing cycle "
                             f"through {', '.join(repr(n) for n in cyclic)}")
        return tuple(order)

    def _reachable(self) -> set[str]:
        frontier, reachable = [self.entry], {self.entry}
        while frontier:
            stage = self.stage(frontier.pop())
            for route in stage.routes:
                if route.to is not None and route.to not in reachable:
                    reachable.add(route.to)
                    frontier.append(route.to)
        return reachable

    def visit_ratios(self) -> dict[str, float]:
        """Expected visits per entering request, stage by stage.

        The tandem-queue composition: the entry stage sees every request;
        downstream stages see the sum over predecessors of (predecessor
        visits × branch probability).  Acyclicity makes one topological
        pass exact.
        """

        visits = {stage.name: 0.0 for stage in self.stages}
        visits[self.entry] = 1.0
        for stage in self.topological():
            for route in stage.routes:
                if route.to is not None:
                    visits[route.to] += visits[stage.name] * route.probability
        return visits

    def expected_handoffs(self) -> float:
        """Expected stage-to-stage hops per request (each pays the handoff
        delay once)."""

        visits = self.visit_ratios()
        return sum(visits[stage.name] * (1.0 - stage.exit_probability())
                   for stage in self.stages)

    def to_dict(self) -> dict[str, object]:
        return {"name": self.name, "entry": self.entry,
                "stages": [stage.to_dict() for stage in self.stages]}


class _Flight:
    """Mutable per-request traversal state (index → flight while in flight)."""

    __slots__ = ("arrival", "queue_wait", "hops")

    def __init__(self, arrival: float):
        self.arrival = arrival
        self.queue_wait = 0.0
        self.hops = 0


class _StageStats:
    """Per-stage request accounting, exact (lists) or streaming (P² sketches)
    — same output shape either way, and the SLO counter is exact in both."""

    def __init__(self, streaming: bool, percentiles: Sequence[float],
                 slo_seconds: float | None):
        self.slo_seconds = slo_seconds
        self.count = 0
        self.violations = 0
        self.percentiles = tuple(percentiles)
        if streaming:
            from repro.obs.sketch import StreamingLatency

            self._latency = StreamingLatency(percentiles)
            self._wait = StreamingLatency(percentiles)
            self._service = StreamingLatency(percentiles)
            self._exact = None
        else:
            self._exact = ([], [], [])        # latency, wait, service

    def observe(self, wait: float, service: float) -> None:
        latency = wait + service
        self.count += 1
        if self.slo_seconds is not None and latency > self.slo_seconds:
            self.violations += 1
        if self._exact is not None:
            self._exact[0].append(latency)
            self._exact[1].append(wait)
            self._exact[2].append(service)
        else:
            self._latency.add(latency)
            self._wait.add(wait)
            self._service.add(service)

    def summaries(self) -> tuple[LatencySummary, LatencySummary, LatencySummary]:
        if self._exact is not None:
            return tuple(LatencySummary.of(values, self.percentiles)
                         for values in self._exact)
        return (self._latency.summary(), self._wait.summary(),
                self._service.summary())


class _StageState:
    """One stage's runtime bundle: spec, pool, routing index, autoscaler."""

    __slots__ = ("stage", "pool", "index", "autoscaler", "stats", "successors")

    def __init__(self, stage: PipelineStage, pool: Fleet,
                 index: LoadIndex | None, autoscaler, stats: _StageStats):
        self.stage = stage
        self.pool = pool
        self.index = index
        self.autoscaler = autoscaler
        self.stats = stats
        self.successors = stage.routes or (StageRoute(None, 1.0),)


def _stage_pool(pool: "Fleet | str", ordinal: int, stage_name: str) -> Fleet:
    """Build a stage's pool with globally unique replica indices/names."""

    base = ordinal * _STAGE_INDEX_STRIDE
    prefix = f"{stage_name}/"
    if isinstance(pool, Fleet):
        return Fleet(pool.replica_specs, index_base=base, name_prefix=prefix)
    return Fleet.parse(pool, index_base=base, name_prefix=prefix)


def serve_pipeline(traffic: TrafficPattern, pipeline: "PipelineSpec | str",
                   pools: "dict[str, Fleet | str]",
                   policy: BatchPolicy | str = "timeout",
                   router: Router | str = "least-loaded", *,
                   duration: float, seed: int = 0,
                   slo_seconds: float = DEFAULT_SLO,
                   stage_slo_seconds: "dict[str, float] | None" = None,
                   handoff_seconds: float = DEFAULT_STAGE_HANDOFF,
                   dispatch_overhead_seconds: float = DEFAULT_DISPATCH_OVERHEAD,
                   cache: ResultCache | None = None,
                   autoscalers: "dict[str, object] | None" = None,
                   percentiles: Sequence[float] = DEFAULT_PERCENTILES,
                   window_seconds: float | None = None,
                   summary: str = "exact",
                   obs=None) -> ServeReport:
    """Serve a multi-stage pipeline and return its :class:`ServeReport`.

    ``traffic`` supplies arrival times (and request indices) only — each
    stage serves its *own* workload, so the mix's model names are ignored.
    ``pools`` maps every stage name to its replica pool (a :class:`Fleet` or
    a ``"2xvitality"``-style spec string); stages may run different hardware
    kinds.  ``stage_slo_seconds`` optionally attaches per-stage latency SLOs
    (reported in the ``pipeline`` block); ``slo_seconds`` stays the
    end-to-end SLO.  ``autoscalers`` maps stage names to per-stage
    :class:`repro.plan.Autoscaler` instances (one instance per stage — they
    carry per-fleet state).

    The report is the classic :class:`ServeReport` shape — latency is
    end-to-end (entry arrival to exit completion), ``queue_wait`` sums the
    per-stage waits, ``model`` is the pipeline name — plus the additive
    ``pipeline`` block with per-stage breakdowns and handoff accounting.
    """

    if isinstance(pipeline, str):
        pipeline = PipelineSpec.parse(pipeline)
    if isinstance(policy, str):
        policy = make_policy(policy)
    if isinstance(router, str):
        router = make_router(router)
    if dispatch_overhead_seconds < 0:
        raise ValueError(f"dispatch_overhead_seconds must be >= 0, "
                         f"got {dispatch_overhead_seconds}")
    if handoff_seconds < 0:
        raise ValueError(f"handoff_seconds must be >= 0, got {handoff_seconds}")
    if slo_seconds <= 0:
        raise ValueError(f"slo_seconds must be positive, got {slo_seconds}")
    if window_seconds is not None and window_seconds <= 0:
        raise ValueError(f"window_seconds must be positive, got {window_seconds}")
    check_summary(summary)
    stage_names = [stage.name for stage in pipeline.stages]
    missing = [name for name in stage_names if name not in pools]
    if missing:
        raise ValueError(f"pools is missing stages "
                         f"{', '.join(repr(n) for n in missing)} of "
                         f"pipeline {pipeline.name!r}")
    unknown = [name for name in pools if name not in stage_names]
    if unknown:
        raise ValueError(f"pools names unknown stages "
                         f"{', '.join(repr(n) for n in unknown)} "
                         f"(pipeline {pipeline.name!r} has: "
                         f"{', '.join(stage_names)})")
    stage_slo_seconds = dict(stage_slo_seconds or {})
    for name, slo in stage_slo_seconds.items():
        if name not in stage_names:
            raise ValueError(f"stage_slo_seconds names unknown stage {name!r}")
        if slo <= 0:
            raise ValueError(f"stage SLO for {name!r} must be positive, got {slo}")
    autoscalers = dict(autoscalers or {})
    for name in autoscalers:
        if name not in stage_names:
            raise ValueError(f"autoscalers names unknown stage {name!r}")
    if len({id(scaler) for scaler in autoscalers.values()}) != len(autoscalers):
        raise ValueError("each stage needs its own Autoscaler instance "
                         "(they carry per-fleet state)")
    cache = ResultCache(max_entries=DEFAULT_CACHE_ENTRIES) if cache is None else cache

    uses_index = getattr(router, "uses_load_index", False)
    streaming = summary == "streaming"
    states: dict[str, _StageState] = {}
    for ordinal, stage in enumerate(pipeline.stages):
        pool = _stage_pool(pools[stage.name], ordinal, stage.name)
        pool.reset()
        for replica in pool.replicas:
            replica.stage = stage.name
        states[stage.name] = _StageState(
            stage, pool,
            LoadIndex(pool.replicas) if uses_index else None,
            autoscalers.get(stage.name),
            _StageStats(streaming, percentiles,
                        stage_slo_seconds.get(stage.name)))
    all_replicas = [replica for name in stage_names
                    for replica in states[name].pool.replicas]
    if obs is not None:
        obs.begin_run(all_replicas, "serve-pipeline")

    logger.info("serve_pipeline: %s over %.3fs, %d stages "
                "(policy=%s router=%s summary=%s)",
                pipeline.name, duration, len(pipeline.stages), policy.name,
                router.name, summary)

    records: list[RequestRecord] = []
    accumulator = None
    if streaming:
        accumulator = ReportAccumulator(
            slo_seconds=slo_seconds, percentiles=percentiles,
            window_seconds=window_seconds)

    estimates: dict[tuple[str, ReplicaSpec], Estimate] = {}

    def estimate(model: str, replica: Replica) -> Estimate:
        key = (model, replica.spec)
        cached = estimates.get(key)
        if cached is None:
            result = simulate(RunSpec(model, target=replica.spec.target,
                                      attention=replica.spec.attention),
                              cache=cache)
            cached = Estimate(dispatch_overhead_seconds + result.end_to_end_latency,
                              result.end_to_end_energy)
            estimates[key] = cached
        return cached

    # One dedicated generator for route draws, consumed in event order —
    # string seeding hashes deterministically, so the draw sequence is part
    # of the run's bit-reproducibility contract.
    route_rng = random.Random(f"pipeline-routes:{pipeline.name}:{seed}")

    sequence = itertools.count(RUNTIME_SEQUENCE_BASE)
    arrival_stream = _iter_arrivals(traffic, duration, seed)
    offered = 0
    handoffs = 0
    first = next(arrival_stream, None)
    exhausted = first is None
    events: list[tuple[float, int, str, object]] = []
    if first is not None:
        events.append((first.arrival, first.index, "arrival", first))
    for name in stage_names:
        scaler = states[name].autoscaler
        if scaler is not None:
            scaler.begin(states[name].pool, observer=obs)
            if scaler.interval <= duration:
                events.append((scaler.interval, next(sequence), "scale", name))
    heapq.heapify(events)

    flights: dict[int, _Flight] = {}
    entry_state = states[pipeline.entry]

    def choose_route(state: _StageState) -> str | None:
        routes = state.successors
        if len(routes) == 1:
            return routes[0].to
        pick = route_rng.random()
        cumulative = 0.0
        for route in routes:
            cumulative += route.probability
            if pick < cumulative:
                return route.to
        return routes[-1].to

    def finish_request(state: _StageState, request: Request, replica: Replica,
                       now: float, finish: float, batch_size: int) -> None:
        flight = flights[request.index]
        wait = now - request.arrival
        flight.queue_wait += wait
        state.stats.observe(wait, finish - now)
        target = choose_route(state)
        if target is None:
            del flights[request.index]
            # The report's dispatch is synthetic — arrival plus the summed
            # per-stage waits — so RequestRecord.queue_wait is the total
            # time spent queued across every stage the request visited.
            synthetic_dispatch = flight.arrival + flight.queue_wait
            if accumulator is not None:
                accumulator.observe(pipeline.name, flight.arrival,
                                    synthetic_dispatch, finish)
            else:
                records.append(RequestRecord(
                    index=request.index, model=pipeline.name,
                    arrival=flight.arrival, replica=replica.name,
                    batch_size=batch_size, dispatch=synthetic_dispatch,
                    completion=finish))
            if obs is not None:
                obs.pipeline_completed(request.index, pipeline.name,
                                       flight.arrival, flight.queue_wait, finish)
            return
        nonlocal handoffs
        handoffs += 1
        flight.hops += 1
        next_state = states[target]
        next_arrival = finish + handoff_seconds
        hop = Request(index=request.index, model=next_state.stage.model,
                      arrival=next_arrival)
        heapq.heappush(events, (next_arrival, next(sequence), "hop",
                                (next_state, hop)))
        if obs is not None:
            obs.stage_handoff(request.index, request.model, replica.name,
                              finish, next_arrival, state.stage.name)

    def dispatch(state: _StageState, replica: Replica, now: float) -> None:
        while replica.idle(now) and replica.queue:
            batch = policy.take(replica.queue, now,
                                draining=(exhausted or not replica.active))
            if batch is None:
                deadline = policy.deadline(replica.queue)
                if deadline is not None and deadline > now:
                    heapq.heappush(events, (deadline, next(sequence), "poll",
                                            (state, replica)))
                break
            for request in batch:
                replica.queued_seconds -= estimate(request.model,
                                                   replica).latency_seconds
            if not replica.queue:
                replica.queued_seconds = 0.0    # shed float residue when empty
            spec = RunSpec(batch[0].model, target=replica.spec.target,
                           attention=replica.spec.attention,
                           batch_size=len(batch))
            result = simulate(spec, cache=cache)
            service = dispatch_overhead_seconds + result.end_to_end_latency
            finish = now + service
            replica.busy_until = finish
            replica.busy_seconds += service
            replica.energy_joules += result.end_to_end_energy
            replica.batches += 1
            replica.served += len(batch)
            if obs is not None:
                obs.stage_dispatched(replica, batch, now, finish,
                                     state.stage.name)
            for request in batch:
                finish_request(state, request, replica, now, finish, len(batch))
            heapq.heappush(events, (finish, next(sequence), "free",
                                    (state, replica)))
            logger.debug("t=%.6f dispatch %s[%s]: %s x%d (service %.6fs)",
                         now, replica.name, state.stage.name, batch[0].model,
                         len(batch), service)
        if (not replica.active and replica.retired_at is None
                and not replica.queue and replica.idle(now)):
            replica.retired_at = now
            if obs is not None:
                obs.replica_retired(replica, now)
        if state.index is not None and replica.active:
            state.index.update(replica, now)

    def enqueue(state: _StageState, request: Request, now: float) -> None:
        if state.index is not None:
            replica = state.index.argmin(now)
            if replica is None:              # every replica is draining
                replica = router.choose(state.pool.replicas, request.model,
                                        now, estimate)
        else:
            candidates = state.pool.active_replicas or state.pool.replicas
            replica = router.choose(candidates, request.model, now, estimate)
        replica.queue.append(request)
        replica.queued_seconds += estimate(request.model, replica).latency_seconds
        if state.index is not None and replica.active:
            state.index.update(replica, now)
        if obs is not None:
            obs.pipeline_routed(request, replica, now, len(replica.queue),
                                entry=(state is entry_state))
        dispatch(state, replica, now)

    tick = obs.event_tick if obs is not None else None
    while events:
        now, _, kind, payload = heapq.heappop(events)
        if tick is not None:
            tick(now)
        if kind == "arrival":
            offered += 1
            upcoming = next(arrival_stream, None)
            if upcoming is None:
                exhausted = True
            else:
                heapq.heappush(events, (upcoming.arrival, upcoming.index,
                                        "arrival", upcoming))
            flights[payload.index] = _Flight(payload.arrival)
            entry_request = Request(index=payload.index,
                                    model=entry_state.stage.model,
                                    arrival=payload.arrival)
            enqueue(entry_state, entry_request, now)
            if exhausted:
                # Last entry arrival processed: flush every pool so policies
                # holding out for bigger batches drain (hops arriving later
                # dispatch immediately in draining mode).
                for name in stage_names:
                    state = states[name]
                    for other in state.pool.replicas:
                        dispatch(state, other, now)
        elif kind == "hop":
            state, request = payload
            enqueue(state, request, now)
        elif kind == "scale":
            state = states[payload]
            scaler = state.autoscaler
            additions, drained = scaler.check(now, state.pool)
            for _ in range(additions):
                heapq.heappush(events, (now + scaler.provision_seconds,
                                        next(sequence), "provision", payload))
            for replica in drained:
                if state.index is not None:
                    state.index.remove(replica)
                dispatch(state, replica, now)
            next_check = now + scaler.interval
            if next_check <= duration:
                heapq.heappush(events, (next_check, next(sequence), "scale",
                                        payload))
        elif kind == "provision":
            state = states[payload]
            replica = state.autoscaler.provision(now, state.pool)
            replica.stage = state.stage.name
            if state.index is not None:
                state.index.update(replica, now)
        else:                                # "free" and "poll" re-evaluate
            state, replica = payload
            dispatch(state, replica, now)

    all_replicas = [replica for name in stage_names
                    for replica in states[name].pool.replicas]
    makespan = duration
    if accumulator is not None:
        makespan = max(duration, accumulator.last_completion)
    elif records:
        makespan = max(duration, max(record.completion for record in records))

    stage_rows = []
    for name in stage_names:
        state = states[name]
        latency, wait, service = state.stats.summaries()
        pool_replicas = state.pool.replicas
        utilization = (sum(replica.busy_seconds for replica in pool_replicas)
                       / (len(pool_replicas) * makespan)
                       if pool_replicas and makespan else 0.0)
        slo = state.stats.slo_seconds
        stage_rows.append({
            "name": name,
            "model": state.stage.model,
            "pool": state.pool.describe(),
            "requests": state.stats.count,
            "latency": latency.to_dict(),
            "queue_wait": wait.to_dict(),
            "service": service.to_dict(),
            "utilization": utilization,
            "slo_seconds": slo,
            "slo_attainment": (1.0 - state.stats.violations / state.stats.count
                               if slo is not None and state.stats.count
                               else None),
        })
    pipeline_block: dict[str, object] = {
        "name": pipeline.name,
        "entry": pipeline.entry,
        "handoff_seconds": handoff_seconds,
        "handoffs": handoffs,
        "stages": stage_rows,
    }

    config: dict[str, object] = {
        "traffic": traffic.to_dict(),
        "pipeline": pipeline.to_dict(),
        "pools": {name: states[name].pool.describe() for name in stage_names},
        "policy": policy.to_dict(),
        "router": router.name,
        "duration": duration,
        "seed": seed,
        "slo_seconds": slo_seconds,
        "handoff_seconds": handoff_seconds,
        "dispatch_overhead_seconds": dispatch_overhead_seconds,
    }
    if stage_slo_seconds:
        config["stage_slo_seconds"] = dict(sorted(stage_slo_seconds.items()))
    scale_events: tuple[ScaleEvent, ...] = ()
    if autoscalers:
        config["autoscalers"] = {name: autoscalers[name].to_dict()
                                 for name in sorted(autoscalers)}
        merged: list[ScaleEvent] = []
        for name in stage_names:
            scaler = states[name].autoscaler
            if scaler is not None:
                merged.extend(scaler.collect_events(states[name].pool))
        scale_events = tuple(sorted(
            merged, key=lambda event: (event.time, event.action, event.replica)))
    if tuple(percentiles) != DEFAULT_PERCENTILES:
        config["percentiles"] = sorted(set(percentiles))
    if window_seconds is not None:
        config["window_seconds"] = window_seconds
    if accumulator is not None:
        config["summary"] = summary
        report = accumulator.finalize(config, offered=offered,
                                      duration=duration, replicas=all_replicas,
                                      cache_stats=cache.stats(),
                                      scale_events=scale_events,
                                      pipeline=pipeline_block)
    else:
        records.sort(key=lambda record: record.index)
        report = build_report(config, records, offered=offered,
                              duration=duration, slo_seconds=slo_seconds,
                              replicas=all_replicas, cache_stats=cache.stats(),
                              percentiles=percentiles,
                              scale_events=scale_events,
                              window_seconds=window_seconds,
                              pipeline=pipeline_block)
    logger.info("serve_pipeline: completed %d/%d requests (%d handoffs), "
                "p99 %.4fs", report.completed, report.offered, handoffs,
                report.latency.p99)
    if obs is not None:
        obs.end_run(report)
    return report
