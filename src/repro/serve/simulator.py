"""The discrete-event core of the serving simulator.

:func:`serve` runs one online-serving experiment: a traffic pattern emits
requests, a router places each on a fleet replica, the replica's batching
policy folds its queue into single-model batches, and every batch's service
time/energy comes from the engine (``simulate`` of a batched ``RunSpec``
through the run's own LRU-bounded :class:`~repro.engine.ResultCache`, so
repeated (model, batch-size) shapes simulate exactly once per run).

Each dispatch additionally pays ``dispatch_overhead_seconds`` — the host-side
launch/weight-staging cost a real deployment amortises by batching.  Without
it the engine's linear batch scaling would make batching a no-op; with it,
larger batches trade queueing delay for sustained throughput, which is the
trade-off the schedulers exist to navigate.

The event loop is a single heap of ``(time, sequence, kind, payload)``
entries with a monotone tie-breaking sequence, and every random draw comes
from the traffic pattern's seeded generator — so a (traffic, fleet, policy,
router, duration, seed) tuple maps to one bit-exact :class:`ServeReport`.

The loop *streams*: arrivals are pulled lazily from
:meth:`~repro.serve.traffic.TrafficPattern.iter_arrivals` (the heap holds
in-flight work plus exactly one future arrival, never the whole trace), and
``summary="streaming"`` additionally folds completions into bounded-memory
P² accumulators (:class:`~repro.serve.metrics.ReportAccumulator`) instead of
keeping a record per request — making memory independent of request count.
The default ``summary="exact"`` keeps the per-request records and
nearest-rank order statistics, bit-identical to the pre-streaming reports.
Arrival events are sequenced by request index and all runtime events from a
disjoint higher range, so event ordering (ties included) is identical
whether arrivals are prefetched lazily or were all pushed up front.

Fleets may be *dynamic*: pass an ``autoscaler`` (see
:mod:`repro.plan.autoscaler`) and the loop adds periodic ``"scale"`` control
events — the policy decides a desired replica count, scale-ups come online
``provision_seconds`` later (a ``"provision"`` event), and scale-downs drain:
the replica leaves the routing set at once but its queue keeps dispatching
(with the policy's drain flush) until it empties, at which point it retires.
Everything stays on the one event heap, so autoscaled runs are exactly as
deterministic as static ones.
"""

from __future__ import annotations

import heapq
import itertools
import logging
from typing import Sequence

from repro.engine import ResultCache, RunSpec, simulate
from repro.serve.batching import BatchPolicy, make_policy
from repro.serve.cluster import (
    Estimate,
    Fleet,
    LoadIndex,
    Replica,
    ReplicaSpec,
    Router,
    make_router,
)
from repro.serve.metrics import (
    DEFAULT_PERCENTILES,
    ReportAccumulator,
    RequestRecord,
    ServeReport,
    build_report,
)
from repro.serve.traffic import TrafficPattern
from repro.serve.traffic import iter_arrivals as _iter_arrivals

logger = logging.getLogger(__name__)

#: Default host-side cost of dispatching one batch to a replica (seconds).
DEFAULT_DISPATCH_OVERHEAD = 5e-4

#: Default latency SLO (seconds).
DEFAULT_SLO = 0.05

#: Default LRU bound of the per-run engine result cache.
DEFAULT_CACHE_ENTRIES = 1024

#: Report summary modes: ``"exact"`` keeps per-request records (nearest-rank
#: percentiles, O(requests) memory); ``"streaming"`` folds completions into
#: P² sketches (bounded memory, estimated quantiles).
SUMMARY_MODES = ("exact", "streaming")

#: Runtime (non-arrival) events sequence from this base, far above any
#: realistic arrival index — arrival ties thus always beat runtime ties, the
#: exact ordering the historical push-everything-up-front loop produced.
RUNTIME_SEQUENCE_BASE = 2 ** 62


def check_summary(summary: str) -> None:
    """Reject unknown summary modes up front (shared with :func:`serve_llm`)."""

    if summary not in SUMMARY_MODES:
        raise ValueError(f"summary must be one of {SUMMARY_MODES}, "
                         f"got {summary!r}")


def serve(traffic: TrafficPattern, fleet: Fleet | str,
          policy: BatchPolicy | str = "timeout", router: Router | str = "least-loaded",
          *, duration: float, seed: int = 0,
          slo_seconds: float = DEFAULT_SLO,
          dispatch_overhead_seconds: float = DEFAULT_DISPATCH_OVERHEAD,
          cache: ResultCache | None = None,
          autoscaler=None,
          percentiles: Sequence[float] = DEFAULT_PERCENTILES,
          window_seconds: float | None = None,
          summary: str = "exact",
          obs=None) -> ServeReport:
    """Run one serving simulation and return its :class:`ServeReport`.

    ``fleet`` accepts a :class:`Fleet` or a spec string (``"2xvitality,1xgpu"``);
    ``policy`` and ``router`` accept built instances or registry names
    (``"fifo"`` / ``"size"`` / ``"timeout"``, ``"least-loaded"`` /
    ``"energy-aware"``).  A fresh LRU-bounded result cache is created unless
    one is passed in (pass one to share simulations across runs).

    ``autoscaler`` (a :class:`repro.plan.Autoscaler`) makes the fleet dynamic
    — its policy is consulted every ``interval`` seconds of simulated time and
    may add replicas (online after ``provision_seconds``) or drain them; the
    report then carries the scale events and per-replica lifetimes.
    ``percentiles`` adds latency quantiles beyond p50/p95/p99 (``0.999`` for
    p99.9); ``window_seconds`` adds per-window throughput/tail/replica-count
    rows so scale events are visible over time.

    ``summary`` selects the reporting fold: ``"exact"`` (default) keeps one
    record per request and reports exact nearest-rank percentiles —
    bit-identical to historical reports; ``"streaming"`` folds completions
    into P² sketches as they happen, bounding memory at
    O(replicas + models + windows + percentiles) for arbitrarily long runs
    (quantiles become estimates — see
    :class:`~repro.serve.metrics.ReportAccumulator` for the error envelope).

    ``obs`` (a :class:`repro.obs.Observability`) attaches tracing, streaming
    metrics and/or progress reporting.  The hooks are pure observers: an
    instrumented run returns a bit-identical report, and ``obs=None`` (the
    default) skips every hook.
    """

    if isinstance(fleet, str):
        fleet = Fleet.parse(fleet)
    if isinstance(policy, str):
        policy = make_policy(policy)
    if isinstance(router, str):
        router = make_router(router)
    if dispatch_overhead_seconds < 0:
        raise ValueError(f"dispatch_overhead_seconds must be >= 0, "
                         f"got {dispatch_overhead_seconds}")
    if slo_seconds <= 0:
        raise ValueError(f"slo_seconds must be positive, got {slo_seconds}")
    if window_seconds is not None and window_seconds <= 0:
        raise ValueError(f"window_seconds must be positive, got {window_seconds}")
    check_summary(summary)
    cache = ResultCache(max_entries=DEFAULT_CACHE_ENTRIES) if cache is None else cache
    fleet.reset()
    if obs is not None:
        obs.begin_run(fleet.replicas, "serve")

    logger.info("serve: streaming arrivals over %.3fs on %s "
                "(policy=%s router=%s summary=%s)",
                duration, fleet.describe(), policy.name, router.name, summary)
    records: list[RequestRecord] = []
    accumulator = None
    if summary == "streaming":
        accumulator = ReportAccumulator(
            slo_seconds=slo_seconds, percentiles=percentiles,
            window_seconds=window_seconds)

    # Routing estimates are memoised outside the result cache: one engine
    # simulation per (model, replica kind) for the whole run, and the
    # reported cache counters keep describing batch-dispatch reuse instead
    # of being swamped by per-arrival estimate lookups.
    estimates: dict[tuple[str, ReplicaSpec], Estimate] = {}

    def estimate(model: str, replica: Replica) -> Estimate:
        key = (model, replica.spec)
        cached = estimates.get(key)
        if cached is None:
            result = simulate(RunSpec(model, target=replica.spec.target,
                                      attention=replica.spec.attention), cache=cache)
            cached = Estimate(dispatch_overhead_seconds + result.end_to_end_latency,
                              result.end_to_end_energy)
            estimates[key] = cached
        return cached

    # Arrival events are sequenced by request index, runtime events from a
    # disjoint higher range: the merged order (ties included) matches the
    # historical loop that pushed every arrival before any runtime event.
    sequence = itertools.count(RUNTIME_SEQUENCE_BASE)
    arrival_stream = _iter_arrivals(traffic, duration, seed)
    offered = 0
    first = next(arrival_stream, None)
    exhausted = first is None
    events: list[tuple[float, int, str, object]] = []
    if first is not None:
        events.append((first.arrival, first.index, "arrival", first))
    if autoscaler is not None:
        autoscaler.begin(fleet, observer=obs)
        if autoscaler.interval <= duration:
            events.append((autoscaler.interval, next(sequence), "scale", None))
    heapq.heapify(events)

    # Least-loaded routing goes through an incrementally maintained backlog
    # index instead of a per-arrival scan over the fleet.
    index = LoadIndex(fleet.replicas) if getattr(router, "uses_load_index",
                                                 False) else None

    def dispatch(replica: Replica, now: float) -> None:
        # A draining replica flushes like a run-end drain: it will never see
        # another arrival, so holding out for a fuller batch only delays its
        # retirement (and the requests already queued on it).
        while replica.idle(now) and replica.queue:
            batch = policy.take(replica.queue, now,
                                draining=(exhausted or not replica.active))
            if batch is None:
                deadline = policy.deadline(replica.queue)
                if deadline is not None and deadline > now:
                    heapq.heappush(events, (deadline, next(sequence), "poll", replica))
                break
            for request in batch:
                replica.queued_seconds -= estimate(request.model, replica).latency_seconds
            if not replica.queue:
                replica.queued_seconds = 0.0    # shed float residue when empty
            spec = RunSpec(batch[0].model, target=replica.spec.target,
                           attention=replica.spec.attention, batch_size=len(batch))
            result = simulate(spec, cache=cache)
            service = dispatch_overhead_seconds + result.end_to_end_latency
            finish = now + service
            replica.busy_until = finish
            replica.busy_seconds += service
            replica.energy_joules += result.end_to_end_energy
            replica.batches += 1
            replica.served += len(batch)
            if accumulator is not None:
                for request in batch:
                    accumulator.observe(request.model, request.arrival, now, finish)
            else:
                records.extend(
                    RequestRecord(index=request.index, model=request.model,
                                  arrival=request.arrival, replica=replica.name,
                                  batch_size=len(batch), dispatch=now, completion=finish)
                    for request in batch)
            heapq.heappush(events, (finish, next(sequence), "free", replica))
            if obs is not None:
                obs.batch_dispatched(replica, batch, now, finish)
            logger.debug("t=%.6f dispatch %s: %s x%d (service %.6fs, %d queued)",
                         now, replica.name, batch[0].model, len(batch), service,
                         len(replica.queue))
        if (not replica.active and replica.retired_at is None
                and not replica.queue and replica.idle(now)):
            replica.retired_at = now
            if obs is not None:
                obs.replica_retired(replica, now)
            logger.debug("t=%.6f retired %s", now, replica.name)
        if index is not None and replica.active:
            index.update(replica, now)

    tick = obs.event_tick if obs is not None else None
    while events:
        now, _, kind, payload = heapq.heappop(events)
        if tick is not None:
            tick(now)
        if kind == "arrival":
            offered += 1
            upcoming = next(arrival_stream, None)
            if upcoming is None:
                exhausted = True
            else:
                heapq.heappush(events, (upcoming.arrival, upcoming.index,
                                        "arrival", upcoming))
            if index is not None:
                replica = index.argmin(now)
                if replica is None:              # every replica is draining
                    replica = router.choose(fleet.replicas, payload.model, now,
                                            estimate)
            else:
                candidates = fleet.active_replicas or fleet.replicas
                replica = router.choose(candidates, payload.model, now, estimate)
            replica.queue.append(payload)
            replica.queued_seconds += estimate(payload.model, replica).latency_seconds
            if index is not None and replica.active:
                index.update(replica, now)
            if obs is not None:
                obs.request_routed(payload, replica, now, len(replica.queue))
            dispatch(replica, now)
            if exhausted:
                # Last arrival processed: policies holding out for bigger
                # batches will never see another trigger, so flush everyone.
                for other in fleet.replicas:
                    dispatch(other, now)
        elif kind == "scale":
            additions, drained = autoscaler.check(now, fleet)
            for _ in range(additions):
                heapq.heappush(events, (now + autoscaler.provision_seconds,
                                        next(sequence), "provision", None))
            for replica in drained:
                if index is not None:
                    index.remove(replica)
                dispatch(replica, now)           # flush or retire immediately
            next_check = now + autoscaler.interval
            if next_check <= duration:
                heapq.heappush(events, (next_check, next(sequence), "scale", None))
        elif kind == "provision":
            replica = autoscaler.provision(now, fleet)
            if index is not None:
                index.update(replica, now)
        else:                                    # "free" and "poll" re-evaluate
            dispatch(payload, now)

    config = {
        "traffic": traffic.to_dict(),
        "fleet": fleet.describe(),
        "policy": policy.to_dict(),
        "router": router.name,
        "duration": duration,
        "seed": seed,
        "slo_seconds": slo_seconds,
        "dispatch_overhead_seconds": dispatch_overhead_seconds,
    }
    scale_events = ()
    if autoscaler is not None:
        config["autoscaler"] = autoscaler.to_dict()
        scale_events = autoscaler.collect_events(fleet)
    if tuple(percentiles) != DEFAULT_PERCENTILES:
        config["percentiles"] = sorted(set(percentiles))
    if window_seconds is not None:
        config["window_seconds"] = window_seconds
    if accumulator is not None:
        config["summary"] = summary
        report = accumulator.finalize(config, offered=offered, duration=duration,
                                      replicas=fleet.replicas,
                                      cache_stats=cache.stats(),
                                      scale_events=scale_events)
    else:
        records.sort(key=lambda record: record.index)
        report = build_report(config, records, offered=offered, duration=duration,
                              slo_seconds=slo_seconds, replicas=fleet.replicas,
                              cache_stats=cache.stats(), percentiles=percentiles,
                              scale_events=scale_events, window_seconds=window_seconds)
    logger.info("serve: completed %d/%d requests, p99 %.4fs, throughput %.1f rps",
                report.completed, report.offered, report.latency.p99,
                report.throughput_rps)
    if obs is not None:
        obs.end_run(report)
    return report


def compare(traffic: TrafficPattern, fleets: dict[str, Fleet | str],
            policy: BatchPolicy | str = "timeout",
            router: Router | str = "least-loaded", *, duration: float,
            seed: int = 0, slo_seconds: float = DEFAULT_SLO,
            dispatch_overhead_seconds: float = DEFAULT_DISPATCH_OVERHEAD,
            models: Sequence[str] | None = None,
            percentiles: Sequence[float] = DEFAULT_PERCENTILES,
            window_seconds: float | None = None,
            autoscaler=None,
            summary: str = "exact",
            obs=None) -> dict[str, ServeReport]:
    """Serve identical traffic on several fleets; one report per fleet.

    Every fleet sees the same arrival sequence (same traffic, duration and
    seed) and its own fresh replicas and cache, so reports differ only by the
    fleet under test — the setup behind the vanilla-vs-taylor serving tables.
    ``models``, when given, pre-warms each fleet's cache for those workloads.

    ``window_seconds``, ``autoscaler``, ``summary`` and ``obs`` thread
    straight through to each :func:`serve` run, so comparisons get windowed
    reports, dynamic fleets, streaming summaries and observability exactly
    like single runs do (one shared ``autoscaler``/``obs`` instance is reset
    by each run in turn, so per-fleet reports stay independent).
    """

    reports: dict[str, ServeReport] = {}
    for name, fleet_spec in fleets.items():
        fleet = Fleet.parse(fleet_spec) if isinstance(fleet_spec, str) else fleet_spec
        cache = ResultCache(max_entries=DEFAULT_CACHE_ENTRIES)
        if models is not None:
            fleet.warmup(models, cache=cache)
        reports[name] = serve(
            traffic, fleet, policy, router, duration=duration, seed=seed,
            slo_seconds=slo_seconds,
            dispatch_overhead_seconds=dispatch_overhead_seconds, cache=cache,
            autoscaler=autoscaler, percentiles=percentiles,
            window_seconds=window_seconds, summary=summary, obs=obs)
    return reports
