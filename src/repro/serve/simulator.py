"""The discrete-event core of the serving simulator.

:func:`serve` runs one online-serving experiment: a traffic pattern emits
requests, a router places each on a fleet replica, the replica's batching
policy folds its queue into single-model batches, and every batch's service
time/energy comes from the engine (``simulate`` of a batched ``RunSpec``
through the run's own LRU-bounded :class:`~repro.engine.ResultCache`, so
repeated (model, batch-size) shapes simulate exactly once per run).

Each dispatch additionally pays ``dispatch_overhead_seconds`` — the host-side
launch/weight-staging cost a real deployment amortises by batching.  Without
it the engine's linear batch scaling would make batching a no-op; with it,
larger batches trade queueing delay for sustained throughput, which is the
trade-off the schedulers exist to navigate.

The event loop is a single heap of ``(time, sequence, kind, payload)``
entries with a monotone tie-breaking sequence, and every random draw comes
from the traffic pattern's seeded generator — so a (traffic, fleet, policy,
router, duration, seed) tuple maps to one bit-exact :class:`ServeReport`.

Fleets may be *dynamic*: pass an ``autoscaler`` (see
:mod:`repro.plan.autoscaler`) and the loop adds periodic ``"scale"`` control
events — the policy decides a desired replica count, scale-ups come online
``provision_seconds`` later (a ``"provision"`` event), and scale-downs drain:
the replica leaves the routing set at once but its queue keeps dispatching
(with the policy's drain flush) until it empties, at which point it retires.
Everything stays on the one event heap, so autoscaled runs are exactly as
deterministic as static ones.
"""

from __future__ import annotations

import heapq
import itertools
import logging
from typing import Sequence

from repro.engine import ResultCache, RunSpec, simulate
from repro.serve.batching import BatchPolicy, make_policy
from repro.serve.cluster import (
    Estimate,
    Fleet,
    Replica,
    ReplicaSpec,
    Router,
    make_router,
)
from repro.serve.metrics import (
    DEFAULT_PERCENTILES,
    RequestRecord,
    ServeReport,
    build_report,
)
from repro.serve.traffic import TrafficPattern

logger = logging.getLogger(__name__)

#: Default host-side cost of dispatching one batch to a replica (seconds).
DEFAULT_DISPATCH_OVERHEAD = 5e-4

#: Default latency SLO (seconds).
DEFAULT_SLO = 0.05

#: Default LRU bound of the per-run engine result cache.
DEFAULT_CACHE_ENTRIES = 1024


def serve(traffic: TrafficPattern, fleet: Fleet | str,
          policy: BatchPolicy | str = "timeout", router: Router | str = "least-loaded",
          *, duration: float, seed: int = 0,
          slo_seconds: float = DEFAULT_SLO,
          dispatch_overhead_seconds: float = DEFAULT_DISPATCH_OVERHEAD,
          cache: ResultCache | None = None,
          autoscaler=None,
          percentiles: Sequence[float] = DEFAULT_PERCENTILES,
          window_seconds: float | None = None,
          obs=None) -> ServeReport:
    """Run one serving simulation and return its :class:`ServeReport`.

    ``fleet`` accepts a :class:`Fleet` or a spec string (``"2xvitality,1xgpu"``);
    ``policy`` and ``router`` accept built instances or registry names
    (``"fifo"`` / ``"size"`` / ``"timeout"``, ``"least-loaded"`` /
    ``"energy-aware"``).  A fresh LRU-bounded result cache is created unless
    one is passed in (pass one to share simulations across runs).

    ``autoscaler`` (a :class:`repro.plan.Autoscaler`) makes the fleet dynamic
    — its policy is consulted every ``interval`` seconds of simulated time and
    may add replicas (online after ``provision_seconds``) or drain them; the
    report then carries the scale events and per-replica lifetimes.
    ``percentiles`` adds latency quantiles beyond p50/p95/p99 (``0.999`` for
    p99.9); ``window_seconds`` adds per-window throughput/tail/replica-count
    rows so scale events are visible over time.

    ``obs`` (a :class:`repro.obs.Observability`) attaches tracing, streaming
    metrics and/or progress reporting.  The hooks are pure observers: an
    instrumented run returns a bit-identical report, and ``obs=None`` (the
    default) skips every hook.
    """

    if isinstance(fleet, str):
        fleet = Fleet.parse(fleet)
    if isinstance(policy, str):
        policy = make_policy(policy)
    if isinstance(router, str):
        router = make_router(router)
    if dispatch_overhead_seconds < 0:
        raise ValueError(f"dispatch_overhead_seconds must be >= 0, "
                         f"got {dispatch_overhead_seconds}")
    if slo_seconds <= 0:
        raise ValueError(f"slo_seconds must be positive, got {slo_seconds}")
    if window_seconds is not None and window_seconds <= 0:
        raise ValueError(f"window_seconds must be positive, got {window_seconds}")
    cache = ResultCache(max_entries=DEFAULT_CACHE_ENTRIES) if cache is None else cache
    fleet.reset()
    if obs is not None:
        obs.begin_run(fleet.replicas, "serve")

    arrivals = traffic.arrivals(duration, seed)
    logger.info("serve: %d arrivals over %.3fs on %s (policy=%s router=%s)",
                len(arrivals), duration, fleet.describe(), policy.name,
                router.name)
    records: list[RequestRecord] = []

    # Routing estimates are memoised outside the result cache: one engine
    # simulation per (model, replica kind) for the whole run, and the
    # reported cache counters keep describing batch-dispatch reuse instead
    # of being swamped by per-arrival estimate lookups.
    estimates: dict[tuple[str, ReplicaSpec], Estimate] = {}

    def estimate(model: str, replica: Replica) -> Estimate:
        key = (model, replica.spec)
        cached = estimates.get(key)
        if cached is None:
            result = simulate(RunSpec(model, target=replica.spec.target,
                                      attention=replica.spec.attention), cache=cache)
            cached = Estimate(dispatch_overhead_seconds + result.end_to_end_latency,
                              result.end_to_end_energy)
            estimates[key] = cached
        return cached

    sequence = itertools.count()
    events: list[tuple[float, int, str, object]] = []
    for request in arrivals:
        heapq.heappush(events, (request.arrival, next(sequence), "arrival", request))
    remaining = len(arrivals)
    if autoscaler is not None:
        autoscaler.begin(fleet, observer=obs)
        if autoscaler.interval <= duration:
            heapq.heappush(events, (autoscaler.interval, next(sequence), "scale", None))

    def dispatch(replica: Replica, now: float) -> None:
        # A draining replica flushes like a run-end drain: it will never see
        # another arrival, so holding out for a fuller batch only delays its
        # retirement (and the requests already queued on it).
        while replica.idle(now) and replica.queue:
            batch = policy.take(replica.queue, now,
                                draining=(remaining == 0 or not replica.active))
            if batch is None:
                deadline = policy.deadline(replica.queue)
                if deadline is not None and deadline > now:
                    heapq.heappush(events, (deadline, next(sequence), "poll", replica))
                return
            for request in batch:
                replica.queued_seconds -= estimate(request.model, replica).latency_seconds
            if not replica.queue:
                replica.queued_seconds = 0.0    # shed float residue when empty
            spec = RunSpec(batch[0].model, target=replica.spec.target,
                           attention=replica.spec.attention, batch_size=len(batch))
            result = simulate(spec, cache=cache)
            service = dispatch_overhead_seconds + result.end_to_end_latency
            finish = now + service
            replica.busy_until = finish
            replica.busy_seconds += service
            replica.energy_joules += result.end_to_end_energy
            replica.batches += 1
            replica.served += len(batch)
            records.extend(
                RequestRecord(index=request.index, model=request.model,
                              arrival=request.arrival, replica=replica.name,
                              batch_size=len(batch), dispatch=now, completion=finish)
                for request in batch)
            heapq.heappush(events, (finish, next(sequence), "free", replica))
            if obs is not None:
                obs.batch_dispatched(replica, batch, now, finish)
            logger.debug("t=%.6f dispatch %s: %s x%d (service %.6fs, %d queued)",
                         now, replica.name, batch[0].model, len(batch), service,
                         len(replica.queue))
        if (not replica.active and replica.retired_at is None
                and not replica.queue and replica.idle(now)):
            replica.retired_at = now
            if obs is not None:
                obs.replica_retired(replica, now)
            logger.debug("t=%.6f retired %s", now, replica.name)

    tick = obs.event_tick if obs is not None else None
    while events:
        now, _, kind, payload = heapq.heappop(events)
        if tick is not None:
            tick(now)
        if kind == "arrival":
            remaining -= 1
            candidates = fleet.active_replicas or fleet.replicas
            replica = router.choose(candidates, payload.model, now, estimate)
            replica.queue.append(payload)
            replica.queued_seconds += estimate(payload.model, replica).latency_seconds
            if obs is not None:
                obs.request_routed(payload, replica, now, len(replica.queue))
            dispatch(replica, now)
            if remaining == 0:
                # Last arrival processed: policies holding out for bigger
                # batches will never see another trigger, so flush everyone.
                for other in fleet.replicas:
                    dispatch(other, now)
        elif kind == "scale":
            additions, drained = autoscaler.check(now, fleet)
            for _ in range(additions):
                heapq.heappush(events, (now + autoscaler.provision_seconds,
                                        next(sequence), "provision", None))
            for replica in drained:
                dispatch(replica, now)           # flush or retire immediately
            next_check = now + autoscaler.interval
            if next_check <= duration:
                heapq.heappush(events, (next_check, next(sequence), "scale", None))
        elif kind == "provision":
            autoscaler.provision(now, fleet)
        else:                                    # "free" and "poll" re-evaluate
            dispatch(payload, now)

    config = {
        "traffic": traffic.to_dict(),
        "fleet": fleet.describe(),
        "policy": policy.to_dict(),
        "router": router.name,
        "duration": duration,
        "seed": seed,
        "slo_seconds": slo_seconds,
        "dispatch_overhead_seconds": dispatch_overhead_seconds,
    }
    scale_events = ()
    if autoscaler is not None:
        config["autoscaler"] = autoscaler.to_dict()
        scale_events = autoscaler.collect_events(fleet)
    if tuple(percentiles) != DEFAULT_PERCENTILES:
        config["percentiles"] = sorted(set(percentiles))
    if window_seconds is not None:
        config["window_seconds"] = window_seconds
    records.sort(key=lambda record: record.index)
    report = build_report(config, records, offered=len(arrivals), duration=duration,
                          slo_seconds=slo_seconds, replicas=fleet.replicas,
                          cache_stats=cache.stats(), percentiles=percentiles,
                          scale_events=scale_events, window_seconds=window_seconds)
    logger.info("serve: completed %d/%d requests, p99 %.4fs, throughput %.1f rps",
                report.completed, report.offered, report.latency.p99,
                report.throughput_rps)
    if obs is not None:
        obs.end_run(report)
    return report


def compare(traffic: TrafficPattern, fleets: dict[str, Fleet | str],
            policy: BatchPolicy | str = "timeout",
            router: Router | str = "least-loaded", *, duration: float,
            seed: int = 0, slo_seconds: float = DEFAULT_SLO,
            dispatch_overhead_seconds: float = DEFAULT_DISPATCH_OVERHEAD,
            models: Sequence[str] | None = None,
            percentiles: Sequence[float] = DEFAULT_PERCENTILES) -> dict[str, ServeReport]:
    """Serve identical traffic on several fleets; one report per fleet.

    Every fleet sees the same arrival sequence (same traffic, duration and
    seed) and its own fresh replicas and cache, so reports differ only by the
    fleet under test — the setup behind the vanilla-vs-taylor serving tables.
    ``models``, when given, pre-warms each fleet's cache for those workloads.
    """

    reports: dict[str, ServeReport] = {}
    for name, fleet_spec in fleets.items():
        fleet = Fleet.parse(fleet_spec) if isinstance(fleet_spec, str) else fleet_spec
        cache = ResultCache(max_entries=DEFAULT_CACHE_ENTRIES)
        if models is not None:
            fleet.warmup(models, cache=cache)
        reports[name] = serve(
            traffic, fleet, policy, router, duration=duration, seed=seed,
            slo_seconds=slo_seconds,
            dispatch_overhead_seconds=dispatch_overhead_seconds, cache=cache,
            percentiles=percentiles)
    return reports
