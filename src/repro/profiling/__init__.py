"""Profiling utilities: runtime breakdowns (Fig. 1, Table II) and FLOPs (Table IV)."""

from repro.profiling.breakdown import (
    mha_runtime_breakdown_table,
    attention_step_profile,
    StepProfile,
)
from repro.profiling.flops import attention_flops, attention_flops_table, METHOD_FLOPS

__all__ = [
    "mha_runtime_breakdown_table",
    "attention_step_profile",
    "StepProfile",
    "attention_flops",
    "attention_flops_table",
    "METHOD_FLOPS",
]
