"""Runtime breakdowns of the MHA module and of the attention steps.

* :func:`mha_runtime_breakdown_table` reproduces Fig. 1: the share of MHA
  runtime spent in Step 1 (Q/K/V projection), Step 2 (softmax attention map)
  and Step 3 (attention score) on each profiled platform.
* :func:`attention_step_profile` reproduces Table II: per-step latencies of
  the vanilla softmax attention and of ViTALiTy's Taylor attention on the
  edge GPU (or any other platform model).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hardware.platforms import Platform, get_platform
from repro.workloads import ModelWorkload, get_workload


@dataclass(frozen=True)
class StepProfile:
    """Per-step latency profile of one attention formulation on one platform."""

    model: str
    platform: str
    formulation: str                  # "vanilla" or "taylor"
    step_latencies: dict[str, float]  # seconds per step

    @property
    def total_latency(self) -> float:
        return sum(self.step_latencies.values())

    def ratios(self) -> dict[str, float]:
        """Each step's share of the total latency (the Ratio column of Table II)."""

        total = self.total_latency
        return {step: latency / total for step, latency in self.step_latencies.items()}


def mha_runtime_breakdown_table(model: str = "deit-tiny",
                                platforms: tuple[str, ...] = ("gpu", "edge_gpu", "pixel3"),
                                ) -> dict[str, dict[str, float]]:
    """Fig. 1: MHA runtime breakdown of a model across platforms.

    Returns ``{platform: {step1_qkv, step2_softmax_map, step3_attention_score}}``
    with fractions summing to one per platform.
    """

    workload = get_workload(model)
    return {name: get_platform(name).mha_runtime_breakdown(workload) for name in platforms}


def attention_step_profile(model: str = "deit-tiny", platform: str = "edge_gpu",
                           formulation: str = "taylor") -> StepProfile:
    """Table II: per-step latency of one attention formulation on one platform."""

    workload = get_workload(model)
    device = get_platform(platform)
    if formulation == "taylor":
        steps = device.taylor_attention_profile(workload)
    elif formulation == "vanilla":
        steps = device.vanilla_attention_profile(workload)
    else:
        raise ValueError(f"formulation must be 'taylor' or 'vanilla', got {formulation!r}")
    return StepProfile(model=model, platform=platform, formulation=formulation,
                       step_latencies=steps)


def table2_rows(models: tuple[str, ...] = ("deit-tiny", "mobilevit-xs", "levit-128"),
                platform: str = "edge_gpu") -> list[dict[str, object]]:
    """Build the full Table II structure for several models."""

    rows = []
    for model in models:
        taylor = attention_step_profile(model, platform, "taylor")
        vanilla = attention_step_profile(model, platform, "vanilla")
        rows.append({
            "model": model,
            "platform": platform,
            "taylor_ms": {k: v * 1e3 for k, v in taylor.step_latencies.items()},
            "taylor_total_ms": taylor.total_latency * 1e3,
            "taylor_ratios": taylor.ratios(),
            "vanilla_ms": {k: v * 1e3 for k, v in vanilla.step_latencies.items()},
            "vanilla_total_ms": vanilla.total_latency * 1e3,
            "vanilla_ratios": vanilla.ratios(),
        })
    return rows
