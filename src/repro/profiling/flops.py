"""Attention FLOPs accounting for the Table IV comparison.

Table IV compares the accuracy-vs-FLOPs trade-off of ViTALiTy's linear Taylor
attention against other linear attentions (Linformer, Performer) and sparse
methods (Sanger, SViTE, UVC) on DeiT-Tiny.  Following the paper's accounting,
"FLOPs (Attention)" covers the Q/K/V projections plus the attention-proper
work (multiply-accumulates counted once), excluding the output projection and
the MLP module which are identical across methods.
"""

from __future__ import annotations

from repro.workloads import ModelWorkload, get_workload

#: Methods reported in Table IV with their attention type and the sparsity /
#: low-rank parameters used by the FLOPs model below.
METHOD_FLOPS = {
    "baseline": {"type": "Quadratic"},
    "vitality": {"type": "Linear"},
    "linformer": {"type": "Linear", "projection_dim": 64},
    "performer": {"type": "Linear", "num_features": 96},
    "sanger": {"type": "Sparse", "density": 0.35},
    "svite": {"type": "Sparse", "density": 0.55},
    "uvc": {"type": "Sparse", "density": 0.30},
}


def _qkv_projection_macs(workload: ModelWorkload) -> int:
    total = 0
    for spec in workload.attention_layers:
        embed = spec.qk_dim * spec.heads
        per_layer = spec.tokens * embed * spec.heads * (2 * spec.qk_dim + spec.v_dim)
        total += per_layer * spec.repeats
    return total


def _vanilla_attention_macs(workload: ModelWorkload) -> int:
    total = 0
    for spec in workload.attention_layers:
        per_layer = spec.heads * spec.tokens * spec.kv_tokens * (spec.qk_dim + spec.v_dim)
        total += per_layer * spec.repeats
    return total


def _taylor_attention_macs(workload: ModelWorkload) -> int:
    total = 0
    for spec in workload.attention_layers:
        per_layer = spec.heads * (
            spec.kv_tokens * spec.qk_dim * spec.v_dim     # G = K_hat^T V
            + spec.tokens * spec.qk_dim * spec.v_dim       # Q G
            + spec.tokens * spec.qk_dim                    # Q k_hat_sum^T
        )
        total += per_layer * spec.repeats
    return total


def _linformer_attention_macs(workload: ModelWorkload, projection_dim: int) -> int:
    total = 0
    for spec in workload.attention_layers:
        k = min(projection_dim, spec.kv_tokens)
        per_layer = spec.heads * (
            2 * spec.kv_tokens * k * spec.qk_dim           # project K and V to k tokens
            + spec.tokens * k * (spec.qk_dim + spec.v_dim)  # attention over k tokens
        )
        total += per_layer * spec.repeats
    return total


def _performer_attention_macs(workload: ModelWorkload, num_features: int) -> int:
    total = 0
    for spec in workload.attention_layers:
        m = num_features
        per_layer = spec.heads * (
            (spec.tokens + spec.kv_tokens) * spec.qk_dim * m   # feature maps of Q and K
            + spec.kv_tokens * m * spec.v_dim                  # K'^T V context
            + spec.tokens * m * (spec.v_dim + 1)               # Q' context and normaliser
        )
        total += per_layer * spec.repeats
    return total


def _sparse_attention_macs(workload: ModelWorkload, density: float) -> int:
    return int(round(_vanilla_attention_macs(workload) * density))


def attention_flops(method: str, model: str = "deit-tiny") -> float:
    """Attention FLOPs (in GFLOPs, MACs counted once) of one method on one model."""

    method = method.lower()
    if method not in METHOD_FLOPS:
        raise KeyError(f"unknown method {method!r}; available: {sorted(METHOD_FLOPS)}")
    workload = get_workload(model)
    qkv = _qkv_projection_macs(workload)
    parameters = METHOD_FLOPS[method]

    if method == "baseline":
        attention = _vanilla_attention_macs(workload)
    elif method == "vitality":
        attention = _taylor_attention_macs(workload)
    elif method == "linformer":
        attention = _linformer_attention_macs(workload, parameters["projection_dim"])
    elif method == "performer":
        attention = _performer_attention_macs(workload, parameters["num_features"])
    else:  # sparse family: Sanger / SViTE / UVC
        attention = _sparse_attention_macs(workload, parameters["density"])
        if method == "sanger":
            # Sanger additionally runs the low-precision mask prediction; it is
            # quantised 4-bit work, counted here at a quarter of a full MAC.
            attention += _vanilla_attention_macs(workload) // 8

    return (qkv + attention) / 1e9


def attention_flops_table(model: str = "deit-tiny") -> dict[str, dict[str, float | str]]:
    """Full Table IV FLOPs column (accuracy comes from the training experiments)."""

    return {
        method: {"type": info["type"], "flops_g": attention_flops(method, model)}
        for method, info in METHOD_FLOPS.items()
    }
