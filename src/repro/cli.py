"""Command-line interface for the reproduction.

Usage examples::

    python -m repro list                      # list experiments and models
    python -m repro run tab1                  # regenerate Table I
    python -m repro run fig11 --json          # Fig. 11 speedups as JSON
    python -m repro run fig13 --full          # training ablation with long settings
    python -m repro accelerate deit-tiny      # accelerator vs baselines for one model
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.experiments import get_experiment, list_experiments, run_experiment
from repro.experiments.reporting import render_experiment
from repro.models import available_attention_modes, available_models


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="repro",
                                     description="ViTALiTy (HPCA 2023) reproduction toolkit")
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("list", help="list experiments, models and attention modes")

    run = subparsers.add_parser("run", help="run one experiment by identifier")
    run.add_argument("experiment", help="experiment id, e.g. tab1, fig11, fig13")
    run.add_argument("--json", action="store_true", help="print raw JSON instead of markdown")
    run.add_argument("--full", action="store_true",
                     help="use the long (quick=False) settings for training experiments")

    accelerate = subparsers.add_parser("accelerate",
                                       help="run the accelerator comparison for one model")
    accelerate.add_argument("model", choices=available_models())
    accelerate.add_argument("--json", action="store_true")
    return parser


def _command_list() -> int:
    print("Experiments:")
    for identifier in list_experiments():
        spec = get_experiment(identifier)
        print(f"  {identifier:18s} {spec.paper_reference:18s} {spec.title}")
    print("\nModels:          " + ", ".join(available_models()))
    print("Attention modes: " + ", ".join(available_attention_modes()))
    return 0


def _command_run(identifier: str, as_json: bool, full: bool) -> int:
    spec = get_experiment(identifier)
    kwargs = {}
    if full and "quick" in spec.runner.__code__.co_varnames:
        kwargs["quick"] = False
    result = run_experiment(identifier, **kwargs)
    if as_json:
        print(json.dumps(result, indent=2, default=str))
    else:
        print(f"# {spec.paper_reference} — {spec.title}\n")
        print(render_experiment(identifier, result))
    return 0


def _command_accelerate(model: str, as_json: bool) -> int:
    from repro.experiments.hardware_exps import fig11_latency_speedup, fig12_energy_efficiency

    latency = fig11_latency_speedup(models=(model,))[model]
    energy = fig12_energy_efficiency(models=(model,))[model]
    payload = {"model": model, "latency_speedup": latency, "energy_efficiency": energy}
    if as_json:
        print(json.dumps(payload, indent=2))
    else:
        print(render_experiment("accelerate", {"latency speedup": latency,
                                               "energy efficiency": energy}))
    return 0


def main(argv: list[str] | None = None) -> int:
    arguments = _build_parser().parse_args(argv)
    if arguments.command == "list":
        return _command_list()
    if arguments.command == "run":
        try:
            return _command_run(arguments.experiment, arguments.json, arguments.full)
        except KeyError as error:
            print(error, file=sys.stderr)
            return 2
    if arguments.command == "accelerate":
        return _command_accelerate(arguments.model, arguments.json)
    return 1


if __name__ == "__main__":
    raise SystemExit(main())
