"""Command-line interface for the reproduction.

Usage examples::

    python -m repro list                      # experiments, models, targets
    python -m repro run tab1                  # regenerate Table I
    python -m repro run fig11 --json          # Fig. 11 speedups as JSON
    python -m repro run fig13 --full          # training ablation with long settings
    python -m repro simulate deit-tiny --target sanger --json
    python -m repro simulate deit-tiny --target "vitality[pe=32x32,freq=1ghz]"
    python -m repro simulate "deit-tiny[tokens=1024]"              # configured workload
    python -m repro workloads                  # workload families, knobs, geometries
    python -m repro workloads "decoder[tokens=1,kv_tokens=2048,phase=decode]"
    python -m repro sweep --models deit-tiny,levit-128 --targets vitality,sanger
    python -m repro sweep --models "decoder[kv_tokens=1024],deit-tiny" \
                          --targets "vitality[pe=32x32],gpu"       # model x target knobs
    python -m repro sweep --targets vitality,sanger --jobs 4       # parallel
    python -m repro dse --pe 32x32,64x64 --freq 500mhz,1ghz --json # Pareto frontier
    python -m repro --cache-dir .repro-cache dse --jobs 4          # persistent cache
    python -m repro accelerate deit-tiny      # accelerator vs baselines for one model
    python -m repro serve --rate 200 --duration 5 --fleet 2xvitality --policy timeout
    python -m repro serve --rate 200 --duration 5 --percentiles 50,95,99,99.9
    python -m repro serve --traffic diurnal --rate 1200 --fleet 1xvitality \
                          --policy fifo --autoscale utilization --scale-max 3
    python -m repro plan --rate 1200 --slo-ms 20 \
                         --targets "vitality,vitality[pe=32x32]"   # fleet search
    python -m repro serve --llm --models decoder --rate 20 --duration 4 \
                          --fleet 2xvitality                # continuous batching
    python -m repro serve --llm --models decoder --rate 20 --duration 4 \
                          --prefill-fleet 2xvitality --decode-fleet 1xvitality \
                          --prompt-tokens 256:1024          # disaggregated pools
    python -m repro plan --llm --models decoder --rate 15 --duration 4 \
                         --ttft-slo-ms 100 --tpot-slo-ms 8  # size both pools
    python -m repro serve --llm --models decoder --rate 20 --duration 4 \
                          --trace-out trace.json --metrics-out metrics.prom
    python -m repro trace summarize trace.json  # queue/prefill/decode breakdown
    python -m repro serve --rate 80 --duration 4 \
                          --pipeline "rag = encoder[tokens=512] -> rerank:encoder[tokens=128] -> deit-tiny" \
                          --pools "encoder=2xvitality;rerank=1xvitality;deit-tiny=1xvitality"
    python -m repro plan --rate 80 --slo-ms 60 --duration 2 \
                         --pipeline "rag = encoder[tokens=128] -> deit-tiny" \
                         --targets vitality               # joint stage sizing
    python -m repro --log-level debug serve --rate 100 --duration 1 --quiet
"""

from __future__ import annotations

import argparse
import inspect
import json
import sys

from repro.engine import (
    DiskResultCache,
    ResultCache,
    RunSpec,
    Sweep,
    UnknownTargetError,
    get_target,
    list_targets,
    simulate,
    split_configured_names,
)
from repro.experiments.dse_exps import explore_design_space
from repro.experiments import get_experiment, list_experiments, run_experiment
from repro.experiments.reporting import markdown_table, render_experiment
from repro.models import available_attention_modes, available_models
from repro.obs import (
    LOG_LEVELS,
    MetricsCollector,
    Observability,
    Progress,
    TraceRecorder,
    configure_logging,
    format_summary,
    load_trace,
    summarize_trace,
    write_chrome_trace,
    write_prometheus,
)
from repro.plan import (
    SCALE_POLICIES,
    Autoscaler,
    plan_capacity,
    plan_llm_capacity,
    plan_pipeline_capacity,
)
from repro.serve import (
    BATCH_POLICIES,
    DEFAULT_PERCENTILES,
    Fleet,
    KVCacheConfig,
    ROUTERS,
    SCHEDULERS,
    TRAFFIC_PATTERNS,
    TokenDistribution,
    TokenProfile,
    make_policy,
    make_router,
    make_traffic,
    serve,
    serve_llm,
    serve_pipeline,
)
from repro.workloads import (
    FAMILIES,
    UnknownWorkloadError,
    canonical_workload_name,
    get_workload,
    list_families,
    list_workloads,
)

#: Baselines the ``accelerate`` command compares against by default.
DEFAULT_BASELINES = ("sanger", "cpu", "edge_gpu", "gpu")


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="repro",
                                     description="ViTALiTy (HPCA 2023) reproduction toolkit")
    parser.add_argument("--cache-dir", metavar="DIR",
                        help="persist simulation results as JSON under DIR so "
                             "repeated invocations skip simulated design points")
    parser.add_argument("--log-level", choices=LOG_LEVELS, default="warning",
                        help="logging verbosity on stderr (debug narrates "
                             "dispatch and autoscaling decisions)")
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("list", help="list experiments, models, attention modes and targets")

    workloads = subparsers.add_parser(
        "workloads", help="list workload families, knobs and geometry/MAC "
                          "summaries as JSON (or resolve one configured name)")
    workloads.add_argument("name", nargs="?",
                           help="optional (configured) workload name to resolve, "
                                "e.g. 'deit-tiny[tokens=1024]'")

    run = subparsers.add_parser("run", help="run one experiment by identifier")
    run.add_argument("experiment", help="experiment id, e.g. tab1, fig11, fig13")
    run.add_argument("--json", action="store_true", help="print raw JSON instead of markdown")
    run.add_argument("--full", action="store_true",
                     help="use the long (quick=False) settings for training experiments")

    sim = subparsers.add_parser("simulate", help="simulate one model on one target")
    sim.add_argument("model", help="workload name, e.g. deit-tiny")
    sim.add_argument("--target", default="vitality",
                     help="simulation target (see `repro list`)")
    sim.add_argument("--attention", choices=("vanilla", "taylor"),
                     help="attention formulation (platform targets only)")
    sim.add_argument("--batch", type=int, default=1, help="batch size")
    sim.add_argument("--tokens", type=int, help="override the dominant token count")
    sim.add_argument("--dataflow", choices=("down_forward", "g_stationary"),
                     help="ViTALiTy accumulation dataflow")
    sim.add_argument("--no-pipeline", action="store_true",
                     help="disable the ViTALiTy intra-layer pipeline")
    sim.add_argument("--attention-only", action="store_true",
                     help="skip the projection/MLP GEMMs")
    sim.add_argument("--scale-to-peak", type=float,
                     help="scale the PE array to this peak MAC/s before simulating")
    sim.add_argument("--layers", action="store_true",
                     help="include per-layer step records (implies --json)")
    sim.add_argument("--json", action="store_true")

    swp = subparsers.add_parser("sweep",
                                help="simulate a cross product of models and targets")
    swp.add_argument("--models", default="",
                     help="comma-separated workload names (default: all seed "
                          "models); configured names work inline, e.g. "
                          "'decoder[kv_tokens=1024],deit-tiny'")
    swp.add_argument("--targets", default="vitality,sanger",
                     help="comma-separated target names; design points "
                          "configure inline, e.g. 'vitality[pe=32x32],sanger'")
    swp.add_argument("--batch-sizes", default="1", help="comma-separated batch sizes")
    swp.add_argument("--attention-only", action="store_true")
    swp.add_argument("--jobs", type=int, metavar="N",
                     help="simulate cache misses across N worker processes")
    swp.add_argument("--json", action="store_true")

    dse = subparsers.add_parser(
        "dse", help="design-space exploration: sweep microarchitecture knobs "
                    "and report the latency/energy/area Pareto frontier")
    dse.add_argument("--model", default="deit-tiny",
                     help="workload to explore the space on")
    dse.add_argument("--target", default="vitality",
                     help="configurable target family to explore")
    dse.add_argument("--pe", default=",".join(("32x32", "64x64", "128x128")),
                     help="comma-separated PE-array geometries (ROWSxCOLS)")
    dse.add_argument("--freq", default="250mhz,500mhz,1ghz",
                     help="comma-separated clock frequencies")
    dse.add_argument("--sram-kb", default="100,200,400",
                     help="comma-separated buffer capacities in KB")
    dse.add_argument("--dram-gbps", default="",
                     help="comma-separated DRAM bandwidths in GB/s; adds a "
                          "bandwidth axis simulated with the tile-level "
                          "memory model (omit for ideal bandwidth)")
    dse.add_argument("--jobs", type=int, metavar="N",
                     help="simulate design points across N worker processes")
    dse.add_argument("--json", action="store_true",
                     help="print the full point cloud as JSON instead of the "
                          "frontier table")

    srv = subparsers.add_parser("serve",
                                help="discrete-event inference-serving simulation")
    srv.add_argument("--traffic", default="poisson", choices=TRAFFIC_PATTERNS,
                     help="arrival pattern (default: poisson)")
    srv.add_argument("--rate", type=float, default=100.0,
                     help="mean (poisson/bursty) or peak (diurnal) arrivals per second")
    srv.add_argument("--duration", type=float, default=10.0,
                     help="length of the arrival window in seconds")
    srv.add_argument("--models", default="deit-tiny",
                     help="comma-separated workloads requests are drawn from; "
                          "configured names work inline, e.g. "
                          "'deit-tiny[tokens=1024],levit-128'")
    srv.add_argument("--weights", default="",
                     help="comma-separated mix weights matching --models")
    srv.add_argument("--period", type=float, default=10.0,
                     help="diurnal cycle length in seconds")
    srv.add_argument("--trace", help="JSON file of [time, model] arrivals "
                                     "for --traffic replay")
    srv.add_argument("--fleet", default="2xvitality",
                     help='replica spec, e.g. "2xvitality,1xgpu:taylor"')
    srv.add_argument("--policy", default="timeout", choices=BATCH_POLICIES,
                     help="batch-formation policy (default: timeout)")
    srv.add_argument("--batch", type=int, default=8,
                     help="target/max batch size for size and timeout batching")
    srv.add_argument("--timeout-ms", type=float, default=2.0,
                     help="batching window for the timeout policy")
    srv.add_argument("--router", default="least-loaded", choices=ROUTERS)
    srv.add_argument("--slo-ms", type=float,
                     help="per-request end-to-end latency SLO "
                          "(default: 50, or 1000 under --llm)")
    srv.add_argument("--overhead-ms", type=float, default=0.5,
                     help="host-side dispatch overhead per batch")
    srv.add_argument("--percentiles", default="50,95,99",
                     help="comma-separated latency percentiles to report, "
                          "e.g. 50,95,99,99.9 (p50/p95/p99 always included)")
    srv.add_argument("--window-ms", type=float,
                     help="add per-window throughput/p99/replica-count rows "
                          "at this resolution")
    srv.add_argument("--autoscale", choices=SCALE_POLICIES,
                     help="make the fleet dynamic under this scaling policy")
    srv.add_argument("--scale-unit",
                     help="replica kind scale-ups add (default: the fleet's "
                          "first replica kind)")
    srv.add_argument("--scale-min", type=int, default=1,
                     help="minimum active replicas under autoscaling")
    srv.add_argument("--scale-max", type=int, default=8,
                     help="maximum replicas under autoscaling")
    srv.add_argument("--scale-interval-ms", type=float, default=250.0,
                     help="autoscaler control period")
    srv.add_argument("--provision-ms", type=float, default=500.0,
                     help="delay before a scaled-up replica comes online")
    srv.add_argument("--summary", default="exact",
                     choices=("exact", "streaming"),
                     help="report mode: exact per-request records, or "
                          "bounded-memory streaming sketches for "
                          "million-request runs")
    srv.add_argument("--seed", type=int, default=0)
    srv.add_argument("--json", action="store_true")
    srv.add_argument("--trace-out", metavar="FILE",
                     help="record the run as Chrome trace-event JSON "
                          "(load in Perfetto; summarize with `repro trace`)")
    srv.add_argument("--metrics-out", metavar="FILE",
                     help="write streaming run metrics in the Prometheus "
                          "text exposition format")
    srv.add_argument("--quiet", action="store_true",
                     help="suppress the stderr progress indicator")
    llm = srv.add_argument_group(
        "llm serving", "autoregressive serving: continuous batching, chunked "
                       "prefill, KV-cache admission, disaggregated pools")
    llm.add_argument("--llm", action="store_true",
                     help="serve autoregressively via the LLM simulator "
                          "(--policy/--router/--autoscale do not apply)")
    llm.add_argument("--scheduler", default="continuous", choices=SCHEDULERS,
                     help="iteration-level (continuous) or request-level "
                          "gang (monolithic) batching")
    llm.add_argument("--prefill-fleet",
                     help="dedicated prefill pool, e.g. 3xvitality "
                          "(with --decode-fleet; replaces --fleet)")
    llm.add_argument("--decode-fleet",
                     help="dedicated decode pool, e.g. 1xvitality")
    llm.add_argument("--prompt-tokens", default=None,
                     help="prompt length per request: fixed ('512') or a "
                          "seeded uniform range ('256:1024')")
    llm.add_argument("--output-tokens", default=None,
                     help="generated tokens per request: fixed or a range")
    llm.add_argument("--prefill-chunk", type=int, default=256,
                     help="prompt tokens per prefill engine call")
    llm.add_argument("--kv-capacity", type=int,
                     help="override per-replica KV capacity in tokens "
                          "(default: derived from the target's SRAM)")
    llm.add_argument("--step-overhead-ms", type=float, default=0.2,
                     help="host overhead per prefill chunk / decode step")
    llm.add_argument("--handoff-ms", type=float, default=2.0,
                     help="prefill-to-decode KV transfer delay")
    llm.add_argument("--ttft-slo-ms", type=float, default=200.0,
                     help="time-to-first-token SLO")
    llm.add_argument("--tpot-slo-ms", type=float, default=10.0,
                     help="time-per-output-token SLO")
    pipe = srv.add_argument_group(
        "pipeline serving", "multi-stage request DAGs: each request "
                            "traverses per-stage replica pools "
                            "(RAG chains, cascade draft->verify)")
    pipe.add_argument("--pipeline", metavar="SPEC",
                      help="arrow-grammar pipeline, e.g. 'rag = "
                           "encoder[tokens=512] -> rerank:encoder[tokens=128]"
                           " -> deit-tiny' (--models is ignored: stages name "
                           "their own workloads)")
    pipe.add_argument("--pools", metavar="MAP",
                      help="semicolon-separated stage pools, e.g. "
                           "'encoder=2xvitality;rerank=1xvitality'")
    pipe.add_argument("--stage-handoff-ms", type=float, default=1.0,
                      help="stage-to-stage handoff delay")
    pipe.add_argument("--stage-slo-ms", metavar="MAP",
                      help="optional per-stage latency SLOs, e.g. "
                           "'encoder=30;deit-tiny=5' (reported per stage; "
                           "--slo-ms stays the end-to-end SLO)")

    plan = subparsers.add_parser(
        "plan", help="SLO-driven capacity planning: search candidate fleets, "
                     "prune analytically, validate the best in simulation")
    plan.add_argument("--rate", type=float, default=1200.0,
                      help="mean arrival rate the fleet must sustain (req/s)")
    plan.add_argument("--duration", type=float, default=2.0,
                      help="validation-simulation length in seconds")
    plan.add_argument("--models", default="deit-tiny",
                      help="comma-separated workload mix (configured names work)")
    plan.add_argument("--weights", default="",
                      help="comma-separated mix weights matching --models")
    plan.add_argument("--slo-ms", type=float, default=20.0,
                      help="latency SLO the chosen fleet must meet")
    plan.add_argument("--percentile", type=float, default=99.0,
                      help="SLO percentile, e.g. 99 or 99.9")
    plan.add_argument("--targets", default="vitality",
                      help="comma-separated candidate replica kinds; configured "
                           "design points and :attention pins work inline, "
                           "e.g. 'vitality,vitality[pe=32x32],gpu:taylor'")
    plan.add_argument("--max-replicas", type=int, default=8,
                      help="largest per-kind replica count to consider")
    plan.add_argument("--top-k", type=int, default=3,
                      help="analytically-feasible candidates to validate in "
                           "the discrete-event simulator")
    plan.add_argument("--policy", default="timeout", choices=BATCH_POLICIES,
                      help="batch-formation policy fleets are evaluated under")
    plan.add_argument("--batch", type=int, default=8,
                      help="target/max batch size for size and timeout batching")
    plan.add_argument("--timeout-ms", type=float, default=2.0,
                      help="batching window for the timeout policy")
    plan.add_argument("--overhead-ms", type=float, default=0.5,
                      help="host-side dispatch overhead per batch")
    plan.add_argument("--jobs", type=int, metavar="N",
                      help="validate shortlisted candidates across N "
                           "processes")
    plan.add_argument("--seed", type=int, default=0)
    plan.add_argument("--json", action="store_true")
    plan.add_argument("--quiet", action="store_true",
                      help="suppress the stderr progress milestones")
    plan_llm = plan.add_argument_group(
        "llm planning", "size disaggregated prefill/decode pools against a "
                        "TTFT+TPOT SLO pair (first --models entry, first "
                        "--targets kind)")
    plan_llm.add_argument("--llm", action="store_true",
                          help="plan disaggregated LLM pools instead of a "
                               "classic fleet (--slo-ms/--policy do not apply)")
    plan_llm.add_argument("--ttft-slo-ms", type=float, default=200.0,
                          help="time-to-first-token SLO the pools must meet")
    plan_llm.add_argument("--tpot-slo-ms", type=float, default=10.0,
                          help="time-per-output-token SLO")
    plan_llm.add_argument("--prompt-tokens", type=int, default=512,
                          help="prompt length per request")
    plan_llm.add_argument("--output-tokens", type=int, default=64,
                          help="generated tokens per request")
    plan_llm.add_argument("--prefill-chunk", type=int, default=256,
                          help="prompt tokens per prefill engine call")
    plan_llm.add_argument("--kv-capacity", type=int,
                          help="override per-replica KV capacity in tokens")
    plan_llm.add_argument("--step-overhead-ms", type=float, default=0.2,
                          help="host overhead per prefill chunk / decode step")
    plan_llm.add_argument("--handoff-ms", type=float, default=2.0,
                          help="prefill-to-decode KV transfer delay")
    plan_pipe = plan.add_argument_group(
        "pipeline planning", "size every stage pool of a multi-stage "
                             "pipeline jointly against the end-to-end SLO "
                             "(--max-replicas bounds each stage's pool)")
    plan_pipe.add_argument("--pipeline", metavar="SPEC",
                           help="arrow-grammar pipeline to plan for "
                                "(--models is ignored; --targets is one kind "
                                "for every stage, or a per-stage map "
                                "'encoder=vitality;deit-tiny=gpu')")
    plan_pipe.add_argument("--stage-handoff-ms", type=float, default=1.0,
                           help="stage-to-stage handoff delay")

    trace = subparsers.add_parser(
        "trace", help="work with trace files recorded by serve --trace-out")
    trace_sub = trace.add_subparsers(dest="trace_command", required=True)
    summarize = trace_sub.add_parser(
        "summarize", help="critical-path breakdown of one trace: time in "
                          "queue vs prefill vs decode vs handoff, per model "
                          "and per replica kind")
    summarize.add_argument("trace_file", help="Chrome trace-event JSON file")
    summarize.add_argument("--json", action="store_true")

    accelerate = subparsers.add_parser("accelerate",
                                       help="run the accelerator comparison for one model")
    accelerate.add_argument("model", help="workload name, e.g. deit-tiny")
    accelerate.add_argument("--baseline", default=",".join(DEFAULT_BASELINES),
                            help="comma-separated baseline targets to compare against")
    accelerate.add_argument("--json", action="store_true")
    return parser


def _split_csv(text: str) -> tuple[str, ...]:
    return tuple(item.strip() for item in text.split(",") if item.strip())


def _make_cache(arguments: argparse.Namespace) -> ResultCache | None:
    """The run's result cache: disk-backed under ``--cache-dir``, else default."""

    if arguments.cache_dir:
        return DiskResultCache(arguments.cache_dir)
    return None


def _fail(message: str) -> int:
    print(f"error: {message}", file=sys.stderr)
    return 2


def _command_list() -> int:
    print("Experiments:")
    for identifier in list_experiments():
        spec = get_experiment(identifier)
        print(f"  {identifier:18s} {spec.paper_reference:18s} {spec.title}")
    print("\nModels:          " + ", ".join(available_models()))
    print("Workload families: " + ", ".join(list_families())
          + "  (knobs: `repro workloads`)")
    print("Attention modes: " + ", ".join(available_attention_modes()))
    print("Targets:         " + ", ".join(list_targets()))
    return 0


def _workload_summary(name: str) -> dict[str, object]:
    """Geometry and MAC/op summary of one resolved workload."""

    from repro.attention.op_counting import (
        count_taylor_attention_ops,
        count_vanilla_attention_ops,
    )

    workload = get_workload(name)
    return {
        "name": workload.name,
        "canonical_name": canonical_workload_name(name),
        "attention_layers": [
            {"tokens": layer.tokens, "kv_tokens": layer.kv_tokens,
             "qk_dim": layer.qk_dim, "v_dim": layer.v_dim, "heads": layer.heads,
             "repeats": layer.repeats, "causal": layer.causal}
            for layer in workload.attention_layers
        ],
        "total_attention_layers": workload.total_attention_layers(),
        "linear_macs": workload.linear_macs(),
        "attention_ops_millions": {
            "vanilla": count_vanilla_attention_ops(workload).total / 1e6,
            "taylor": count_taylor_attention_ops(workload).total / 1e6,
        },
        "baseline_accuracy": workload.baseline_accuracy,
    }


def _command_workloads(arguments: argparse.Namespace) -> int:
    try:
        if arguments.name:
            print(json.dumps(_workload_summary(arguments.name), indent=2))
            return 0
        families = []
        for name, family in FAMILIES.items():
            families.append({
                "family": name,
                "doc": family.doc,
                "knobs": [
                    {"name": knob.name, "doc": knob.doc,
                     "default": (None if knob.default is None
                                 else knob.render(knob.default))}
                    for _, knob in sorted(family.schema.knobs.items())
                ],
                "reference": _workload_summary(name),
            })
        print(json.dumps({"families": families,
                          "seed_workloads": list_workloads()}, indent=2))
        return 0
    except (UnknownWorkloadError, KeyError, ValueError) as error:
        return _fail(str(error.args[0] if error.args else error))


def _command_run(identifier: str, as_json: bool, full: bool) -> int:
    spec = get_experiment(identifier)
    kwargs = {}
    if full and "quick" in inspect.signature(spec.runner).parameters:
        kwargs["quick"] = False
    result = run_experiment(identifier, **kwargs)
    if as_json:
        print(json.dumps(result, indent=2, default=str))
    else:
        print(f"# {spec.paper_reference} — {spec.title}\n")
        print(render_experiment(identifier, result))
    return 0


def _command_simulate(arguments: argparse.Namespace) -> int:
    try:
        spec = RunSpec(
            model=arguments.model,
            target=arguments.target,
            attention=arguments.attention,
            batch_size=arguments.batch,
            tokens=arguments.tokens,
            dataflow=arguments.dataflow,
            pipelined=False if arguments.no_pipeline else None,
            include_linear=not arguments.attention_only,
            scale_to_peak=arguments.scale_to_peak,
        )
        result = simulate(spec, cache=_make_cache(arguments))
    except (UnknownTargetError, KeyError, ValueError) as error:
        message = error.args[0] if error.args else error
        return _fail(str(message))
    if arguments.json or arguments.layers:
        print(result.to_json(include_layers=arguments.layers))
    else:
        rows = [{
            "model": result.model,
            "target": result.target,
            "attention_latency_ms": result.attention_latency * 1e3,
            "end_to_end_latency_ms": result.end_to_end_latency * 1e3,
            "end_to_end_energy_mj": result.end_to_end_energy * 1e3,
        }]
        print(markdown_table(rows))
        if result.roofline:
            print("\n## Roofline (per unique layer)\n")
            print(markdown_table(
                [{
                    "layer": record.layer,
                    "bound": record.bound,
                    "compute_cycles": record.compute_cycles,
                    "load_stall": record.load_stall_cycles,
                    "drain_stall": record.drain_stall_cycles,
                    "ai_flops_per_byte": record.arithmetic_intensity,
                    "attained_gbps": record.attained_gbps,
                } for record in result.roofline],
                ["layer", "bound", "compute_cycles", "load_stall",
                 "drain_stall", "ai_flops_per_byte", "attained_gbps"]))
    return 0


def _command_sweep(arguments: argparse.Namespace) -> int:
    models = split_configured_names(arguments.models) or tuple(list_workloads())
    targets = split_configured_names(arguments.targets)
    if not targets:
        return _fail("no targets given")
    try:
        batch_sizes = tuple(int(size) for size in _split_csv(arguments.batch_sizes))
    except ValueError:
        return _fail(f"--batch-sizes must be comma-separated integers, "
                     f"got {arguments.batch_sizes!r}")
    try:
        builder = Sweep().models(*models).targets(*targets).batch_sizes(*batch_sizes or (1,))
        if arguments.attention_only:
            builder.attention_only()
        # Validate names up front so the error names the bad axis value
        # instead of surfacing mid-sweep.
        for model in models:
            get_workload(model)
        for target in targets:
            get_target(target)
        outcome = builder.run(cache=_make_cache(arguments), jobs=arguments.jobs)
    except (UnknownTargetError, KeyError, ValueError) as error:
        message = error.args[0] if error.args else error
        return _fail(str(message))
    if arguments.json:
        print(json.dumps(outcome.to_dict(), indent=2))
    else:
        print(markdown_table(outcome.to_rows()))
        disk = f", {outcome.disk_hits} from disk" if outcome.disk_hits else ""
        print(f"\n{len(outcome.results)} runs — cache: {outcome.hits} hits, "
              f"{outcome.misses} misses{disk}")
    return 0


def _command_dse(arguments: argparse.Namespace) -> int:
    try:
        sram_kb = tuple(int(value) for value in _split_csv(arguments.sram_kb))
    except ValueError:
        return _fail(f"--sram-kb must be comma-separated integers, "
                     f"got {arguments.sram_kb!r}")
    try:
        dram_gbps = tuple(float(value)
                          for value in _split_csv(arguments.dram_gbps)) or None
    except ValueError:
        return _fail(f"--dram-gbps must be comma-separated numbers, "
                     f"got {arguments.dram_gbps!r}")
    pe = _split_csv(arguments.pe)
    freq = _split_csv(arguments.freq)
    if not (pe and freq and sram_kb):
        return _fail("the design space needs at least one value per knob "
                     "(--pe, --freq, --sram-kb)")
    try:
        payload = explore_design_space(
            model=arguments.model, target=arguments.target,
            pe=pe, freq=freq, sram_kb=sram_kb, dram_gbps=dram_gbps,
            jobs=arguments.jobs, cache=_make_cache(arguments))
    except (UnknownTargetError, KeyError, ValueError) as error:
        message = error.args[0] if error.args else error
        return _fail(str(message))
    if arguments.json:
        print(json.dumps(payload, indent=2))
    else:
        columns = ["target", "latency_ms", "energy_mj", "area_mm2", "peak_gmacs"]
        if dram_gbps is not None:
            columns += ["dram_gbps", "memory_bound_layers"]
        print(markdown_table(payload["pareto_frontier"], columns))
        cache_stats = payload["cache"]
        disk = (f", {cache_stats['disk_hits']} from disk"
                if cache_stats.get("disk_hits") else "")
        print(f"\n{len(payload['pareto_frontier'])} Pareto-optimal of "
              f"{payload['evaluated']} design points "
              f"(objectives: {', '.join(payload['objectives'])}) — cache: "
              f"{cache_stats['hits']} hits, {cache_stats['misses']} misses{disk}")
    return 0


def _parse_percentiles(text: str) -> tuple[float, ...]:
    """``"50,95,99,99.9"`` -> sorted percentile fractions incl. the defaults."""

    fractions = set(DEFAULT_PERCENTILES)
    for item in _split_csv(text):
        value = float(item)
        if not 0 < value < 100:
            raise ValueError(f"percentiles must be in (0, 100), got {value}")
        fractions.add(value / 100.0)
    return tuple(sorted(fractions))


def _build_observability(arguments: argparse.Namespace,
                         percentiles) -> Observability | None:
    """The serve run's obs bundle, or None when every sink is off.

    None (not an empty bundle) keeps the simulator's disabled path literally
    hook-free, which is what the <5% overhead benchmark holds the line on.
    """

    trace = TraceRecorder() if arguments.trace_out else None
    metrics = None
    if arguments.metrics_out:
        window = (arguments.window_ms * 1e-3
                  if arguments.window_ms is not None else 1.0)
        metrics = MetricsCollector(window_seconds=window,
                                   percentiles=percentiles)
    progress = None if arguments.quiet else Progress(label="serve")
    if trace is None and metrics is None and progress is None:
        return None
    return Observability(trace=trace, metrics=metrics, progress=progress)


def _write_observability(arguments: argparse.Namespace,
                         obs: Observability | None) -> int | None:
    """Write --trace-out / --metrics-out files; an exit code on failure."""

    if obs is None:
        return None
    try:
        if arguments.trace_out:
            write_chrome_trace(obs.trace, arguments.trace_out)
        if arguments.metrics_out:
            write_prometheus(obs.metrics, arguments.metrics_out)
    except OSError as error:
        return _fail(f"cannot write observability output: {error}")
    return None


def _peak_concurrent_replicas(report) -> int:
    """Most replicas alive at once — the honest static-fleet baseline (a
    scale-up/drain/scale-up run provisions more replicas in total than it
    ever runs concurrently)."""

    replicas = report.per_replica
    return max(
        sum(1 for other in replicas
            if other.started_at <= replica.started_at
            and (other.retired_at is None
                 or other.retired_at > replica.started_at))
        for replica in replicas)


def _command_serve_llm(arguments: argparse.Namespace, traffic,
                       percentiles, obs=None) -> int:
    """The ``serve --llm`` leg: route into the autoregressive simulator."""

    disaggregated = arguments.prefill_fleet or arguments.decode_fleet
    try:
        prompt = TokenDistribution.parse(arguments.prompt_tokens or 512)
        output = TokenDistribution.parse(arguments.output_tokens or 64)
        kv = KVCacheConfig(capacity_tokens=arguments.kv_capacity)
        report = serve_llm(
            traffic,
            fleet=None if disaggregated else arguments.fleet,
            prefill_fleet=arguments.prefill_fleet or None,
            decode_fleet=arguments.decode_fleet or None,
            scheduler=arguments.scheduler,
            duration=arguments.duration, seed=arguments.seed,
            prompt_tokens=round(prompt.mean), output_tokens=round(output.mean),
            prefill_chunk=arguments.prefill_chunk, max_batch=arguments.batch,
            kv=kv, step_overhead_seconds=arguments.step_overhead_ms * 1e-3,
            handoff_seconds=arguments.handoff_ms * 1e-3,
            ttft_slo_seconds=arguments.ttft_slo_ms * 1e-3,
            tpot_slo_seconds=arguments.tpot_slo_ms * 1e-3,
            slo_seconds=(arguments.slo_ms or 1000.0) * 1e-3,
            percentiles=percentiles, summary=arguments.summary, obs=obs)
    except (UnknownTargetError, UnknownWorkloadError, KeyError, ValueError,
            TypeError) as error:
        message = error.args[0] if error.args else error
        return _fail(str(message))
    failure = _write_observability(arguments, obs)
    if failure is not None:
        return failure
    if arguments.json:
        print(report.to_json())
        return 0
    fleets = (f"{arguments.prefill_fleet} + {arguments.decode_fleet}"
              if disaggregated else arguments.fleet)
    summary = {"fleet": fleets, "scheduler": arguments.scheduler,
               **report.summary_row()}
    # The classic mean_batch counts requests per engine dispatch, which is
    # meaningless when a request spans many decode steps; show the decode
    # batch the scheduler actually sustained.
    summary["mean_batch"] = round(report.llm["mean_decode_batch"], 4)
    print(markdown_table([summary]))
    print()
    print(markdown_table([replica.to_dict() for replica in report.per_replica],
                         ["name", "role", "requests", "utilization",
                          "kv_capacity_tokens", "kv_peak_tokens",
                          "decode_steps"]))
    llm = report.llm
    print(f"\n{report.completed}/{report.offered} requests served — "
          f"{llm['generated_tokens']} tokens decoded in "
          f"{llm['decode_steps']} steps (mean batch "
          f"{llm['mean_decode_batch']:.2f}, "
          f"{llm['decode_tokens_per_second']:.1f} tok/s); "
          f"TTFT attainment {llm['ttft_attainment']:.1%}, "
          f"TPOT attainment {llm['tpot_attainment']:.1%}")
    return 0


def _parse_stage_map(text: str, option: str) -> dict[str, str]:
    """``"encoder=2xvitality;rerank=1xvitality"`` -> a stage-keyed dict."""

    mapping: dict[str, str] = {}
    for item in text.split(";"):
        item = item.strip()
        if not item:
            continue
        key, sep, value = item.partition("=")
        if not sep or not key.strip() or not value.strip():
            raise ValueError(f"{option} entries must be 'stage=value' pairs "
                             f"separated by ';', got {item!r}")
        mapping[key.strip()] = value.strip()
    if not mapping:
        raise ValueError(f"{option} names no stages: {text!r}")
    return mapping


def _command_serve_pipeline(arguments: argparse.Namespace, traffic,
                            percentiles, obs=None) -> int:
    """The ``serve --pipeline`` leg: multi-stage DAG over per-stage pools."""

    try:
        if not arguments.pools:
            raise ValueError("--pipeline requires --pools "
                             "(e.g. 'encoder=2xvitality;deit-tiny=1xvitality')")
        pools = _parse_stage_map(arguments.pools, "--pools")
        stage_slo = None
        if arguments.stage_slo_ms:
            stage_slo = {
                stage: float(value) * 1e-3
                for stage, value in _parse_stage_map(
                    arguments.stage_slo_ms, "--stage-slo-ms").items()}
        report = serve_pipeline(
            traffic, arguments.pipeline, pools,
            make_policy(arguments.policy, batch_size=arguments.batch,
                        timeout=arguments.timeout_ms * 1e-3),
            make_router(arguments.router),
            duration=arguments.duration, seed=arguments.seed,
            slo_seconds=(50.0 if arguments.slo_ms is None
                         else arguments.slo_ms) * 1e-3,
            stage_slo_seconds=stage_slo,
            handoff_seconds=arguments.stage_handoff_ms * 1e-3,
            dispatch_overhead_seconds=arguments.overhead_ms * 1e-3,
            percentiles=percentiles,
            window_seconds=(None if arguments.window_ms is None
                            else arguments.window_ms * 1e-3),
            summary=arguments.summary, obs=obs)
    except (UnknownTargetError, UnknownWorkloadError, KeyError, ValueError,
            TypeError) as error:
        message = error.args[0] if error.args else error
        return _fail(str(message))
    failure = _write_observability(arguments, obs)
    if failure is not None:
        return failure
    if arguments.json:
        print(report.to_json())
        return 0
    block = report.pipeline
    summary = {"pipeline": block["name"], "policy": arguments.policy,
               "router": arguments.router, **report.summary_row()}
    print(markdown_table([summary]))
    print()
    print(markdown_table(
        [{"stage": row["name"], "model": row["model"], "pool": row["pool"],
          "requests": row["requests"],
          "mean_ms": round(row["latency"]["mean"] * 1e3, 4),
          "p99_ms": round(row["latency"]["p99"] * 1e3, 4),
          "utilization": round(row["utilization"], 4),
          "slo_attainment": row["slo_attainment"]}
         for row in block["stages"]]))
    print()
    print(markdown_table([replica.to_dict() for replica in report.per_replica],
                         ["name", "stage", "requests", "batches",
                          "utilization", "energy_joules"]))
    print(f"\n{report.completed}/{report.offered} requests traversed "
          f"{len(block['stages'])} stages ({block['handoffs']} handoffs at "
          f"{block['handoff_seconds'] * 1e3:g}ms each) in "
          f"{report.makespan:.3f}s")
    return 0


def _command_serve(arguments: argparse.Namespace) -> int:
    models = split_configured_names(arguments.models)
    weights: tuple[float, ...] | None = None
    if arguments.weights:
        try:
            weights = tuple(float(weight) for weight in _split_csv(arguments.weights))
        except ValueError:
            return _fail(f"--weights must be comma-separated numbers, "
                         f"got {arguments.weights!r}")
    trace = None
    if arguments.traffic == "replay":
        if not arguments.trace:
            return _fail("--traffic replay requires --trace FILE")
        try:
            with open(arguments.trace) as handle:
                trace = json.load(handle)
        except (OSError, json.JSONDecodeError) as error:
            return _fail(f"cannot read trace {arguments.trace!r}: {error}")
    tokens = None
    if arguments.llm and (arguments.prompt_tokens or arguments.output_tokens):
        try:
            tokens = TokenProfile.of(prompt=arguments.prompt_tokens or 512,
                                     output=arguments.output_tokens or 64)
        except ValueError as error:
            return _fail(str(error.args[0] if error.args else error))
    try:
        percentiles = _parse_percentiles(arguments.percentiles)
        traffic = make_traffic(arguments.traffic, arguments.rate, models,
                               weights, period=arguments.period, trace=trace,
                               tokens=tokens)
        obs = _build_observability(arguments, percentiles)
        if arguments.pipeline:
            if arguments.llm:
                return _fail("--pipeline and --llm are mutually exclusive")
            return _command_serve_pipeline(arguments, traffic, percentiles, obs)
        if arguments.llm:
            return _command_serve_llm(arguments, traffic, percentiles, obs)
        autoscaler = None
        if arguments.autoscale:
            unit = arguments.scale_unit or \
                Fleet.parse(arguments.fleet).replica_specs[0].label
            autoscaler = Autoscaler(
                arguments.autoscale, unit,
                min_replicas=arguments.scale_min,
                max_replicas=arguments.scale_max,
                interval=arguments.scale_interval_ms * 1e-3,
                provision_seconds=arguments.provision_ms * 1e-3)
        report = serve(
            traffic, arguments.fleet,
            make_policy(arguments.policy, batch_size=arguments.batch,
                        timeout=arguments.timeout_ms * 1e-3),
            make_router(arguments.router),
            duration=arguments.duration, seed=arguments.seed,
            slo_seconds=(50.0 if arguments.slo_ms is None
                         else arguments.slo_ms) * 1e-3,
            dispatch_overhead_seconds=arguments.overhead_ms * 1e-3,
            autoscaler=autoscaler, percentiles=percentiles,
            window_seconds=(None if arguments.window_ms is None
                            else arguments.window_ms * 1e-3),
            summary=arguments.summary, obs=obs)
    except (UnknownTargetError, KeyError, ValueError, TypeError) as error:
        message = error.args[0] if error.args else error
        return _fail(str(message))
    failure = _write_observability(arguments, obs)
    if failure is not None:
        return failure
    if arguments.json:
        print(report.to_json())
        return 0
    summary = {"fleet": report.config["fleet"], "policy": arguments.policy,
               "router": arguments.router, **report.summary_row()}
    print(markdown_table([summary]))
    print()
    print(markdown_table([replica.to_dict() for replica in report.per_replica],
                         ["name", "requests", "batches", "utilization",
                          "energy_joules"]))
    if report.windows is not None:
        print()
        print(markdown_table([window.to_dict() for window in report.windows],
                             ["start", "end", "arrivals", "completed",
                              "throughput_rps", "p99", "mean_active_replicas"]))
    if report.scale_events:
        print()
        print(markdown_table([event.to_dict() for event in report.scale_events],
                             ["time", "action", "replica", "detail"]))
        peak = _peak_concurrent_replicas(report)
        print(f"\nreplica-seconds provisioned: {report.replica_seconds:.3f} "
              f"(a static fleet of the peak {peak} would be "
              f"{peak * report.makespan:.3f})")
    cache = report.cache
    print(f"\n{report.completed}/{report.offered} requests served in "
          f"{report.makespan:.3f}s — engine cache: {cache.hits} hits, "
          f"{cache.misses} misses, {cache.evictions} evictions "
          f"(bound {cache.max_entries})")
    return 0


def _plan_progress(arguments: argparse.Namespace):
    """Milestone callback for the planners, or None under --quiet."""

    if arguments.quiet:
        return None
    return Progress(label="plan").step


def _command_plan_llm(arguments: argparse.Namespace, model: str,
                      target: str) -> int:
    """The ``plan --llm`` leg: size disaggregated prefill/decode pools."""

    try:
        payload = plan_llm_capacity(
            arguments.rate, model,
            ttft_slo_seconds=arguments.ttft_slo_ms * 1e-3,
            tpot_slo_seconds=arguments.tpot_slo_ms * 1e-3,
            duration=arguments.duration,
            slo_percentile=arguments.percentile / 100.0, target=target,
            prompt_tokens=arguments.prompt_tokens,
            output_tokens=arguments.output_tokens,
            prefill_chunk=arguments.prefill_chunk, max_batch=arguments.batch,
            kv=KVCacheConfig(capacity_tokens=arguments.kv_capacity),
            step_overhead_seconds=arguments.step_overhead_ms * 1e-3,
            handoff_seconds=arguments.handoff_ms * 1e-3,
            max_replicas=arguments.max_replicas, top_k=arguments.top_k,
            seed=arguments.seed, cache=_make_cache(arguments),
            jobs=arguments.jobs, progress=_plan_progress(arguments))
    except (UnknownTargetError, UnknownWorkloadError, KeyError, ValueError,
            TypeError) as error:
        message = error.args[0] if error.args else error
        return _fail(str(message))
    if arguments.json:
        print(json.dumps(payload, indent=2))
        return 0
    label = f"p{arguments.percentile:g}"
    print(markdown_table(
        [{key: candidate[key] for key in
          ("prefill_fleet", "decode_fleet", f"predicted_ttft_{label}_ms",
           "predicted_tpot_ms", "area_mm2", "predicted_feasible")}
         for candidate in payload["candidates"]]))
    if payload["validated"]:
        print()
        print(markdown_table(
            [{key: candidate[key] for key in
              ("prefill_fleet", "decode_fleet", f"ttft_{label}_ms",
               f"tpot_{label}_ms", "decode_tokens_per_second",
               "slo_attained")}
             for candidate in payload["validated"]]))
    chosen = payload["chosen"]
    if chosen is None:
        print(f"\nno split met TTFT {label} <= {arguments.ttft_slo_ms:g}ms "
              f"and TPOT {label} <= {arguments.tpot_slo_ms:g}ms at "
              f"{arguments.rate:g} req/s — raise --max-replicas")
    else:
        print(f"\nchosen: {chosen['prefill_fleet']} prefill + "
              f"{chosen['decode_fleet']} decode — TTFT {label} "
              f"{chosen[f'ttft_{label}_ms']:.2f}ms, TPOT {label} "
              f"{chosen[f'tpot_{label}_ms']:.2f}ms")
        reference = payload["colocated_reference"]
        if reference is not None:
            verdict = "meets" if reference["slo_attained"] else "misses"
            print(f"colocated reference: {reference['fleet']} {verdict} the "
                  f"SLO pair (TTFT {reference[f'ttft_{label}_ms']:.2f}ms, "
                  f"TPOT {reference[f'tpot_{label}_ms']:.2f}ms)")
    print(f"\n{len(payload['validated'])} of {payload['evaluated']} splits "
          f"validated in simulation")
    return 0


def _command_plan_pipeline(arguments: argparse.Namespace) -> int:
    """The ``plan --pipeline`` leg: joint per-stage pool sizing."""

    try:
        targets: "str | dict[str, str]"
        if "=" in arguments.targets:
            targets = _parse_stage_map(arguments.targets, "--targets")
        else:
            targets = split_configured_names(arguments.targets)[0]
        payload = plan_pipeline_capacity(
            arguments.rate, arguments.pipeline,
            slo_seconds=arguments.slo_ms * 1e-3,
            slo_percentile=arguments.percentile / 100.0,
            duration=arguments.duration, targets=targets,
            max_replicas_per_stage=arguments.max_replicas,
            top_k=arguments.top_k, policy=arguments.policy,
            batch_size=arguments.batch, timeout=arguments.timeout_ms * 1e-3,
            handoff_seconds=arguments.stage_handoff_ms * 1e-3,
            dispatch_overhead_seconds=arguments.overhead_ms * 1e-3,
            seed=arguments.seed, cache=_make_cache(arguments),
            jobs=arguments.jobs, progress=_plan_progress(arguments))
    except (UnknownTargetError, UnknownWorkloadError, KeyError, ValueError,
            TypeError, IndexError) as error:
        message = error.args[0] if error.args else error
        return _fail(str(message))
    if arguments.json:
        print(json.dumps(payload, indent=2))
        return 0
    label = f"p{arguments.percentile:g}"
    print(markdown_table(
        [{key: candidate[key] for key in
          ("pools_text", "replicas", f"predicted_{label}_ms", "area_mm2",
           "bottleneck", "predicted_feasible")}
         for candidate in payload["candidates"]]))
    if payload["validated"]:
        print()
        print(markdown_table(
            [{key: candidate[key] for key in
              ("pools_text", f"{label}_ms", "slo_violation_rate",
               "throughput_rps", "slo_attained", "pareto")}
             for candidate in payload["validated"]]))
    chosen = payload["chosen"]
    if chosen is None:
        print(f"\nno pool sizing met the {label} <= {arguments.slo_ms:g}ms "
              f"end-to-end SLO at {arguments.rate:g} req/s — raise "
              f"--max-replicas")
    else:
        print(f"\nchosen: {chosen['pools_text']} — {label} "
              f"{chosen[f'{label}_ms']:.2f}ms <= {arguments.slo_ms:g}ms at "
              f"{arguments.rate:g} req/s")
        boundary = payload["boundary"]
        if boundary is not None:
            verdict = "meets" if boundary["slo_attained"] else "misses"
            print(f"boundary ({boundary['stage_shrunk']} one smaller): "
                  f"{boundary['pools_text']} {verdict} the SLO "
                  f"({label} {boundary[f'{label}_ms']:.2f}ms)")
    print(f"\n{payload['simulated']} of {payload['evaluated']} pool sizings "
          f"validated in simulation (objectives: "
          f"{', '.join(payload['objectives'])})")
    return 0


def _command_plan(arguments: argparse.Namespace) -> int:
    models = split_configured_names(arguments.models)
    targets = split_configured_names(arguments.targets)
    if not targets and "=" not in arguments.targets:
        return _fail("no candidate targets given")
    if not models:
        return _fail("no workloads given")
    if not 0 < arguments.percentile < 100:
        return _fail(f"--percentile must be in (0, 100), got {arguments.percentile}")
    if arguments.pipeline:
        if arguments.llm:
            return _fail("--pipeline and --llm are mutually exclusive")
        return _command_plan_pipeline(arguments)
    if arguments.llm:
        return _command_plan_llm(arguments, models[0], targets[0])
    weights: tuple[float, ...] | None = None
    if arguments.weights:
        try:
            weights = tuple(float(weight) for weight in _split_csv(arguments.weights))
        except ValueError:
            return _fail(f"--weights must be comma-separated numbers, "
                         f"got {arguments.weights!r}")
    try:
        payload = plan_capacity(
            arguments.rate, models, weights=weights,
            slo_seconds=arguments.slo_ms * 1e-3,
            slo_percentile=arguments.percentile / 100.0,
            duration=arguments.duration, targets=targets,
            max_replicas=arguments.max_replicas, top_k=arguments.top_k,
            policy=arguments.policy, batch_size=arguments.batch,
            timeout=arguments.timeout_ms * 1e-3,
            dispatch_overhead_seconds=arguments.overhead_ms * 1e-3,
            seed=arguments.seed, cache=_make_cache(arguments),
            jobs=arguments.jobs, progress=_plan_progress(arguments))
    except (UnknownTargetError, KeyError, ValueError, TypeError) as error:
        message = error.args[0] if error.args else error
        return _fail(str(message))
    if arguments.json:
        print(json.dumps(payload, indent=2))
        return 0
    label = f"p{arguments.percentile:g}"
    candidate_columns = ["fleet", "predicted_utilization",
                         f"predicted_{label}_ms", "area_mm2",
                         "energy_per_request_mj", "predicted_feasible"]
    print(markdown_table([{key: candidate[key] for key in candidate_columns}
                          for candidate in payload["candidates"]]))
    if payload["validated"]:
        print()
        print(markdown_table(
            [{key: candidate[key] for key in
              ("fleet", f"{label}_ms", "slo_violation_rate", "throughput_rps",
               "energy_per_request_mj", "slo_attained", "pareto")}
             for candidate in payload["validated"]]))
    chosen = payload["chosen"]
    if chosen is None:
        print(f"\nno candidate met the {label} <= {arguments.slo_ms:g}ms SLO "
              f"at {arguments.rate:g} req/s — raise --max-replicas or widen "
              f"--targets")
    else:
        print(f"\nchosen: {chosen['fleet']} — {label} "
              f"{chosen[f'{label}_ms']:.2f}ms <= {arguments.slo_ms:g}ms at "
              f"{arguments.rate:g} req/s")
        boundary = payload["boundary"]
        if boundary is not None:
            verdict = "meets" if boundary["slo_attained"] else "misses"
            print(f"boundary: {boundary['fleet']} {verdict} the SLO "
                  f"({label} {boundary[f'{label}_ms']:.2f}ms)")
    print(f"\n{len(payload['validated'])} of {payload['evaluated']} candidates "
          f"validated in simulation (objectives: "
          f"{', '.join(payload['objectives'])})")
    return 0


def _command_trace(arguments: argparse.Namespace) -> int:
    """``repro trace summarize``: critical-path breakdown of a trace file."""

    try:
        trace = load_trace(arguments.trace_file)
        payload = summarize_trace(trace)
    except (OSError, ValueError, json.JSONDecodeError) as error:
        return _fail(f"cannot summarize {arguments.trace_file!r}: {error}")
    if arguments.json:
        print(json.dumps(payload, indent=2))
    else:
        print(format_summary(payload))
    return 0


def _command_accelerate(arguments: argparse.Namespace) -> int:
    model = arguments.model
    baselines = split_configured_names(arguments.baseline)
    if not baselines:
        return _fail("no baselines given")
    try:
        get_workload(model)
        for baseline in baselines:
            get_target(baseline)
    except (KeyError, ValueError) as error:
        return _fail(str(error.args[0] if error.args else error))

    own = simulate(RunSpec(model, target="vitality"))
    latency: dict[str, float] = {}
    energy: dict[str, float] = {}
    for baseline in baselines:
        target = get_target(baseline)
        vitality = own
        # Against general-purpose platforms the accelerator is scaled to the
        # platform's peak throughput, as in Figs. 11-12.
        if target.peak_macs_per_second > get_target("vitality").peak_macs_per_second:
            vitality = simulate(RunSpec(model, target="vitality",
                                        scale_to_peak=target.peak_macs_per_second))
        other = simulate(RunSpec(model, target=baseline))
        # Attention-only baselines (SALO) get no end-to-end ratio: comparing
        # their attention-only total against ViTALiTy's full model would
        # understate their cost (the paper compares SALO on attention only).
        if other.linear_latency > 0.0 or vitality.linear_latency == 0.0:
            latency[baseline] = other.end_to_end_latency / vitality.end_to_end_latency
            energy[baseline] = other.end_to_end_energy / vitality.end_to_end_energy
        latency[f"attention_{baseline}"] = other.attention_latency / vitality.attention_latency
        energy[f"attention_{baseline}"] = other.attention_energy / vitality.attention_energy

    payload = {"model": model, "latency_speedup": latency, "energy_efficiency": energy}
    if arguments.json:
        print(json.dumps(payload, indent=2))
    else:
        print(render_experiment("accelerate", {"latency speedup": latency,
                                               "energy efficiency": energy}))
    return 0


def main(argv: list[str] | None = None) -> int:
    arguments = _build_parser().parse_args(argv)
    configure_logging(arguments.log_level)
    if arguments.command == "list":
        return _command_list()
    if arguments.command == "workloads":
        return _command_workloads(arguments)
    if arguments.command == "run":
        try:
            return _command_run(arguments.experiment, arguments.json, arguments.full)
        except KeyError as error:
            print(error, file=sys.stderr)
            return 2
    if arguments.command == "simulate":
        return _command_simulate(arguments)
    if arguments.command == "sweep":
        return _command_sweep(arguments)
    if arguments.command == "dse":
        return _command_dse(arguments)
    if arguments.command == "serve":
        return _command_serve(arguments)
    if arguments.command == "plan":
        return _command_plan(arguments)
    if arguments.command == "trace":
        return _command_trace(arguments)
    if arguments.command == "accelerate":
        return _command_accelerate(arguments)
    return 1


if __name__ == "__main__":
    raise SystemExit(main())
