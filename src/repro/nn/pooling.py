"""Pooling layers for the hybrid (convolutional) ViT variants."""

from __future__ import annotations

import numpy as np

from repro.nn.module import Module
from repro.tensor import Tensor


class GlobalAvgPool2d(Module):
    """Average over the spatial dimensions of (N, C, H, W) -> (N, C)."""

    def forward(self, x: Tensor) -> Tensor:
        x = Tensor._ensure(x)
        if x.ndim != 4:
            raise ValueError(f"expected (N, C, H, W), got shape {x.shape}")
        return x.mean(axis=(2, 3))


class AvgPool2d(Module):
    """Non-overlapping average pooling with a square window."""

    def __init__(self, kernel_size: int):
        super().__init__()
        self.kernel_size = int(kernel_size)

    def forward(self, x: Tensor) -> Tensor:
        x = Tensor._ensure(x)
        batch, channels, height, width = x.shape
        k = self.kernel_size
        if height % k or width % k:
            raise ValueError(f"spatial size {(height, width)} not divisible by window {k}")
        reshaped = x.reshape(batch, channels, height // k, k, width // k, k)
        return reshaped.mean(axis=(3, 5))


class MaxPool2d(Module):
    """Non-overlapping max pooling with a square window."""

    def __init__(self, kernel_size: int):
        super().__init__()
        self.kernel_size = int(kernel_size)

    def forward(self, x: Tensor) -> Tensor:
        x = Tensor._ensure(x)
        batch, channels, height, width = x.shape
        k = self.kernel_size
        if height % k or width % k:
            raise ValueError(f"spatial size {(height, width)} not divisible by window {k}")
        reshaped = x.reshape(batch, channels, height // k, k, width // k, k)
        return reshaped.max(axis=5).max(axis=3)
