"""Activation modules wrapping the functional implementations."""

from __future__ import annotations

from repro.nn.module import Module
from repro.tensor import Tensor, functional as F


class GELU(Module):
    """Gaussian error linear unit — the MLP activation in ViT/DeiT."""

    def forward(self, x: Tensor) -> Tensor:
        return F.gelu(x)


class ReLU(Module):
    def forward(self, x: Tensor) -> Tensor:
        return F.relu(x)


class SiLU(Module):
    """SiLU / swish, used inside MobileViT's inverted-residual blocks."""

    def forward(self, x: Tensor) -> Tensor:
        return F.silu(x)


class Hardswish(Module):
    """Hard-swish, used in LeViT's convolutional stem."""

    def forward(self, x: Tensor) -> Tensor:
        return F.hardswish(x)


class Sigmoid(Module):
    def forward(self, x: Tensor) -> Tensor:
        return F.sigmoid(x)


class Tanh(Module):
    def forward(self, x: Tensor) -> Tensor:
        return F.tanh(x)
