"""Dropout module with a per-instance RNG for reproducible training runs."""

from __future__ import annotations

import numpy as np

from repro.nn.module import Module
from repro.tensor import Tensor, functional as F


class Dropout(Module):
    """Inverted dropout.  Acts as identity in eval mode or when rate is zero."""

    def __init__(self, rate: float = 0.0, seed: int | None = None):
        super().__init__()
        if not 0.0 <= rate < 1.0:
            raise ValueError(f"dropout rate must be in [0, 1), got {rate}")
        self.rate = rate
        self._rng = np.random.default_rng(seed)

    def forward(self, x: Tensor) -> Tensor:
        return F.dropout(x, self.rate, training=self.training, rng=self._rng)

    def __repr__(self) -> str:
        return f"Dropout(rate={self.rate})"
