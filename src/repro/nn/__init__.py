"""Neural-network modules built on the ``repro.tensor`` autograd engine.

The module hierarchy mirrors the subset of ``torch.nn`` needed to express the
ViT model zoo evaluated in the ViTALiTy paper (DeiT, MobileViT, LeViT): dense
layers, layer/batch normalisation, convolutions (for the hybrid models' stems
and MobileNet blocks), activations, dropout, and patch embeddings.
"""

from repro.nn.module import Module, Parameter, Sequential, ModuleList
from repro.nn.linear import Linear, Identity
from repro.nn.norm import LayerNorm, BatchNorm2d
from repro.nn.activation import GELU, ReLU, SiLU, Hardswish, Sigmoid, Tanh
from repro.nn.dropout import Dropout
from repro.nn.conv import Conv2d, DepthwiseConv2d
from repro.nn.pooling import AvgPool2d, GlobalAvgPool2d, MaxPool2d
from repro.nn.embedding import PatchEmbedding, PositionalEmbedding, ClassToken
from repro.nn import init

__all__ = [
    "Module",
    "Parameter",
    "Sequential",
    "ModuleList",
    "Linear",
    "Identity",
    "LayerNorm",
    "BatchNorm2d",
    "GELU",
    "ReLU",
    "SiLU",
    "Hardswish",
    "Sigmoid",
    "Tanh",
    "Dropout",
    "Conv2d",
    "DepthwiseConv2d",
    "AvgPool2d",
    "GlobalAvgPool2d",
    "MaxPool2d",
    "PatchEmbedding",
    "PositionalEmbedding",
    "ClassToken",
    "init",
]
