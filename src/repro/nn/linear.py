"""Dense (fully-connected) layers."""

from __future__ import annotations

from repro.nn import init
from repro.nn.module import Module, Parameter
from repro.tensor import Tensor


class Linear(Module):
    """Affine transform ``y = x @ W + b`` with ``W`` of shape (in, out).

    The weight layout is (in_features, out_features) so that the forward pass
    is a plain matmul on row-major token matrices, matching the Q/K/V
    projection notation in the paper (``Q = X W_Q``).
    """

    def __init__(self, in_features: int, out_features: int, bias: bool = True):
        super().__init__()
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(init.truncated_normal((in_features, out_features)))
        self.bias = Parameter(init.zeros((out_features,))) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        out = Tensor._ensure(x) @ self.weight
        if self.bias is not None:
            out = out + self.bias
        return out

    def __repr__(self) -> str:
        return (
            f"Linear(in_features={self.in_features}, out_features={self.out_features}, "
            f"bias={self.bias is not None})"
        )


class Identity(Module):
    """A no-op module, useful as a drop-in placeholder (e.g. disabled heads)."""

    def forward(self, x: Tensor) -> Tensor:
        return Tensor._ensure(x)
