"""Weight initialisation schemes used by the ViT model zoo."""

from __future__ import annotations

import numpy as np

_DEFAULT_RNG = np.random.default_rng(0)


def set_seed(seed: int) -> None:
    """Reset the module-level RNG used by the initialisers (for reproducibility)."""

    global _DEFAULT_RNG
    _DEFAULT_RNG = np.random.default_rng(seed)


def truncated_normal(shape: tuple[int, ...], std: float = 0.02, rng: np.random.Generator | None = None) -> np.ndarray:
    """Truncated-normal init (the standard ViT/DeiT weight init)."""

    rng = rng or _DEFAULT_RNG
    values = rng.normal(0.0, std, size=shape)
    return np.clip(values, -2.0 * std, 2.0 * std)


def xavier_uniform(shape: tuple[int, ...], rng: np.random.Generator | None = None) -> np.ndarray:
    """Glorot/Xavier uniform init for dense layers."""

    rng = rng or _DEFAULT_RNG
    fan_in, fan_out = _fans(shape)
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=shape)


def kaiming_normal(shape: tuple[int, ...], rng: np.random.Generator | None = None) -> np.ndarray:
    """He-normal init for convolutional layers feeding ReLU-family activations."""

    rng = rng or _DEFAULT_RNG
    fan_in, _ = _fans(shape)
    std = np.sqrt(2.0 / fan_in)
    return rng.normal(0.0, std, size=shape)


def zeros(shape: tuple[int, ...]) -> np.ndarray:
    return np.zeros(shape, dtype=np.float64)


def ones(shape: tuple[int, ...]) -> np.ndarray:
    return np.ones(shape, dtype=np.float64)


def _fans(shape: tuple[int, ...]) -> tuple[int, int]:
    """Compute fan-in and fan-out for dense (in, out) or conv (o, i, kh, kw) shapes."""

    if len(shape) == 2:
        return shape[0], shape[1]
    if len(shape) == 4:
        out_channels, in_channels, kernel_h, kernel_w = shape
        receptive = kernel_h * kernel_w
        return in_channels * receptive, out_channels * receptive
    flat = int(np.prod(shape))
    return flat, flat
