"""2-D convolutions implemented via im2col on the autograd engine.

MobileViT and LeViT — two of the three model families evaluated in the paper —
are hybrid architectures whose stems and local-processing blocks are
convolutional, so the reproduction needs real (differentiable) convolutions.
The implementation lowers each convolution to an im2col matrix multiply and
registers a custom backward closure that performs the matching col2im
scatter, keeping the hot loop fully vectorised in numpy.
"""

from __future__ import annotations

import numpy as np

from repro.nn import init
from repro.nn.module import Module, Parameter
from repro.tensor import Tensor


def _pair(value) -> tuple[int, int]:
    if isinstance(value, (tuple, list)):
        return int(value[0]), int(value[1])
    return int(value), int(value)


def _im2col(x: np.ndarray, kernel: tuple[int, int], stride: tuple[int, int], padding: tuple[int, int]):
    """Rearrange (N, C, H, W) into (N, C*kh*kw, out_h*out_w) patch columns."""

    batch, channels, height, width = x.shape
    kernel_h, kernel_w = kernel
    stride_h, stride_w = stride
    pad_h, pad_w = padding
    out_h = (height + 2 * pad_h - kernel_h) // stride_h + 1
    out_w = (width + 2 * pad_w - kernel_w) // stride_w + 1

    padded = np.pad(x, ((0, 0), (0, 0), (pad_h, pad_h), (pad_w, pad_w)))
    cols = np.empty((batch, channels, kernel_h, kernel_w, out_h, out_w), dtype=x.dtype)
    for i in range(kernel_h):
        i_end = i + stride_h * out_h
        for j in range(kernel_w):
            j_end = j + stride_w * out_w
            cols[:, :, i, j, :, :] = padded[:, :, i:i_end:stride_h, j:j_end:stride_w]
    return cols.reshape(batch, channels * kernel_h * kernel_w, out_h * out_w), (out_h, out_w)


def _col2im(cols: np.ndarray, x_shape: tuple[int, ...], kernel: tuple[int, int],
            stride: tuple[int, int], padding: tuple[int, int]) -> np.ndarray:
    """Scatter-add (N, C*kh*kw, out_h*out_w) columns back into an image gradient."""

    batch, channels, height, width = x_shape
    kernel_h, kernel_w = kernel
    stride_h, stride_w = stride
    pad_h, pad_w = padding
    out_h = (height + 2 * pad_h - kernel_h) // stride_h + 1
    out_w = (width + 2 * pad_w - kernel_w) // stride_w + 1

    cols = cols.reshape(batch, channels, kernel_h, kernel_w, out_h, out_w)
    padded = np.zeros((batch, channels, height + 2 * pad_h, width + 2 * pad_w), dtype=cols.dtype)
    for i in range(kernel_h):
        i_end = i + stride_h * out_h
        for j in range(kernel_w):
            j_end = j + stride_w * out_w
            padded[:, :, i:i_end:stride_h, j:j_end:stride_w] += cols[:, :, i, j, :, :]
    if pad_h == 0 and pad_w == 0:
        return padded
    return padded[:, :, pad_h:pad_h + height, pad_w:pad_w + width]


def conv2d(x: Tensor, weight: Tensor, bias: Tensor | None, stride=1, padding=0, groups: int = 1) -> Tensor:
    """Differentiable 2-D convolution.

    ``x`` has shape (N, C_in, H, W) and ``weight`` has shape
    (C_out, C_in // groups, kh, kw).
    """

    x = Tensor._ensure(x)
    stride = _pair(stride)
    padding = _pair(padding)
    out_channels, in_per_group, kernel_h, kernel_w = weight.shape
    kernel = (kernel_h, kernel_w)
    batch, in_channels, _, _ = x.shape
    if in_channels % groups or out_channels % groups:
        raise ValueError("channels must be divisible by groups")
    if in_channels // groups != in_per_group:
        raise ValueError(
            f"weight expects {in_per_group} input channels per group but input has "
            f"{in_channels // groups}"
        )

    group_in = in_channels // groups
    group_out = out_channels // groups

    cols_per_group: list[np.ndarray] = []
    outputs: list[np.ndarray] = []
    out_hw: tuple[int, int] = (0, 0)
    for g in range(groups):
        x_group = x.data[:, g * group_in:(g + 1) * group_in]
        cols, out_hw = _im2col(x_group, kernel, stride, padding)
        cols_per_group.append(cols)
        w_group = weight.data[g * group_out:(g + 1) * group_out].reshape(group_out, -1)
        outputs.append(np.matmul(w_group, cols))
    out_h, out_w = out_hw
    out_data = np.concatenate(outputs, axis=1).reshape(batch, out_channels, out_h, out_w)
    if bias is not None:
        out_data = out_data + bias.data.reshape(1, -1, 1, 1)

    parents = (x, weight) + ((bias,) if bias is not None else ())

    def backward(grad, out):
        grad = grad.reshape(batch, out_channels, out_h * out_w)
        if bias is not None and bias.requires_grad:
            bias._accumulate(grad.sum(axis=(0, 2)))
        grad_x_full = np.zeros_like(x.data) if x.requires_grad else None
        grad_w_full = np.zeros_like(weight.data) if weight.requires_grad else None
        for g in range(groups):
            grad_group = grad[:, g * group_out:(g + 1) * group_out]
            cols = cols_per_group[g]
            if weight.requires_grad:
                grad_w = np.einsum("nol,nkl->ok", grad_group, cols)
                grad_w_full[g * group_out:(g + 1) * group_out] = grad_w.reshape(
                    group_out, group_in, kernel_h, kernel_w
                )
            if x.requires_grad:
                w_group = weight.data[g * group_out:(g + 1) * group_out].reshape(group_out, -1)
                grad_cols = np.einsum("ok,nol->nkl", w_group, grad_group)
                grad_x_full[:, g * group_in:(g + 1) * group_in] = _col2im(
                    grad_cols,
                    (batch, group_in) + x.shape[2:],
                    kernel,
                    stride,
                    padding,
                )
        if weight.requires_grad:
            weight._accumulate(grad_w_full)
        if x.requires_grad:
            x._accumulate(grad_x_full)

    return x._make(out_data, parents, backward)


class Conv2d(Module):
    """Standard 2-D convolution layer."""

    def __init__(self, in_channels: int, out_channels: int, kernel_size, stride=1,
                 padding=0, groups: int = 1, bias: bool = True):
        super().__init__()
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = _pair(kernel_size)
        self.stride = _pair(stride)
        self.padding = _pair(padding)
        self.groups = groups
        weight_shape = (out_channels, in_channels // groups) + self.kernel_size
        self.weight = Parameter(init.kaiming_normal(weight_shape))
        self.bias = Parameter(init.zeros((out_channels,))) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        return conv2d(x, self.weight, self.bias, stride=self.stride,
                      padding=self.padding, groups=self.groups)

    def __repr__(self) -> str:
        return (
            f"Conv2d({self.in_channels}, {self.out_channels}, kernel_size={self.kernel_size}, "
            f"stride={self.stride}, padding={self.padding}, groups={self.groups})"
        )


class DepthwiseConv2d(Conv2d):
    """Depthwise convolution (groups == channels), used by MobileViT blocks."""

    def __init__(self, channels: int, kernel_size, stride=1, padding=0, bias: bool = True):
        super().__init__(channels, channels, kernel_size, stride=stride,
                         padding=padding, groups=channels, bias=bias)
