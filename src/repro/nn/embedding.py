"""Token-embedding layers: patch embedding, positional embedding, class token.

The patch embedding follows the ViT formulation: the input image is split
into non-overlapping ``patch_size`` x ``patch_size`` patches, each flattened
and linearly projected to the embedding dimension.  DeiT additionally
prepends a class token and (optionally) a distillation token; both are
implemented by :class:`ClassToken`.
"""

from __future__ import annotations

import numpy as np

from repro.nn import init
from repro.nn.module import Module, Parameter
from repro.tensor import Tensor


class PatchEmbedding(Module):
    """Split an image into patches and project each patch to ``embed_dim``."""

    def __init__(self, image_size: int, patch_size: int, in_channels: int, embed_dim: int):
        super().__init__()
        if image_size % patch_size:
            raise ValueError(f"image size {image_size} not divisible by patch size {patch_size}")
        self.image_size = image_size
        self.patch_size = patch_size
        self.in_channels = in_channels
        self.embed_dim = embed_dim
        self.num_patches = (image_size // patch_size) ** 2
        patch_dim = in_channels * patch_size * patch_size
        self.projection = Parameter(init.truncated_normal((patch_dim, embed_dim)))
        self.bias = Parameter(init.zeros((embed_dim,)))

    def forward(self, images: Tensor) -> Tensor:
        """Map (N, C, H, W) images to (N, num_patches, embed_dim) tokens."""

        images = Tensor._ensure(images)
        batch, channels, height, width = images.shape
        if channels != self.in_channels or height != self.image_size or width != self.image_size:
            raise ValueError(
                f"expected input of shape (N, {self.in_channels}, {self.image_size}, "
                f"{self.image_size}), got {images.shape}"
            )
        p = self.patch_size
        grid = self.image_size // p
        # (N, C, gh, p, gw, p) -> (N, gh, gw, C, p, p) -> (N, num_patches, C*p*p)
        patches = images.reshape(batch, channels, grid, p, grid, p)
        patches = patches.transpose((0, 2, 4, 1, 3, 5))
        patches = patches.reshape(batch, self.num_patches, channels * p * p)
        return patches @ self.projection + self.bias


class PositionalEmbedding(Module):
    """Learned additive positional embedding over a fixed token count."""

    def __init__(self, num_tokens: int, embed_dim: int):
        super().__init__()
        self.num_tokens = num_tokens
        self.embed_dim = embed_dim
        self.embedding = Parameter(init.truncated_normal((1, num_tokens, embed_dim)))

    def forward(self, tokens: Tensor) -> Tensor:
        tokens = Tensor._ensure(tokens)
        if tokens.shape[1] != self.num_tokens:
            raise ValueError(
                f"expected {self.num_tokens} tokens, got {tokens.shape[1]}"
            )
        return tokens + self.embedding


class ClassToken(Module):
    """Prepend learnable class (and optionally distillation) tokens to a sequence."""

    def __init__(self, embed_dim: int, with_distillation_token: bool = False):
        super().__init__()
        self.embed_dim = embed_dim
        self.with_distillation_token = with_distillation_token
        self.class_token = Parameter(init.truncated_normal((1, 1, embed_dim)))
        if with_distillation_token:
            self.distillation_token = Parameter(init.truncated_normal((1, 1, embed_dim)))
        else:
            self.distillation_token = None

    @property
    def num_extra_tokens(self) -> int:
        return 2 if self.with_distillation_token else 1

    def forward(self, tokens: Tensor) -> Tensor:
        tokens = Tensor._ensure(tokens)
        batch = tokens.shape[0]
        broadcast = Tensor(np.ones((batch, 1, 1)))
        prefix = [self.class_token * broadcast]
        if self.distillation_token is not None:
            prefix.append(self.distillation_token * broadcast)
        return Tensor.concat(prefix + [tokens], axis=1)
