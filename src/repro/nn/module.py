"""Base classes for neural-network modules.

:class:`Module` provides parameter registration/traversal, train/eval mode
switching, and a simple state-dict interface.  :class:`Parameter` is a
:class:`~repro.tensor.Tensor` that requires gradients by default.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable, Iterator

import numpy as np

from repro.tensor import Tensor


class Parameter(Tensor):
    """A tensor that is registered as a trainable parameter of a module."""

    def __init__(self, data, name: str = ""):
        super().__init__(data, requires_grad=True, name=name)


class Module:
    """Base class for all neural-network modules.

    Sub-modules and parameters assigned as attributes are discovered
    automatically, exactly as in PyTorch, so models can be written as plain
    attribute assignments in ``__init__`` and a ``forward`` method.
    """

    def __init__(self):
        object.__setattr__(self, "_parameters", OrderedDict())
        object.__setattr__(self, "_modules", OrderedDict())
        object.__setattr__(self, "_buffers", OrderedDict())
        object.__setattr__(self, "training", True)

    # -- attribute-based registration ------------------------------------------

    def __setattr__(self, name: str, value) -> None:
        if isinstance(value, Parameter):
            self._parameters[name] = value
        elif isinstance(value, Module):
            self._modules[name] = value
        object.__setattr__(self, name, value)

    def register_buffer(self, name: str, value: np.ndarray) -> None:
        """Register a non-trainable array that is part of the module state."""

        self._buffers[name] = np.asarray(value)
        object.__setattr__(self, name, self._buffers[name])

    # -- traversal ---------------------------------------------------------------

    def parameters(self) -> Iterator[Parameter]:
        """Yield every trainable parameter of this module and its children."""

        for _, parameter in self.named_parameters():
            yield parameter

    def named_parameters(self, prefix: str = "") -> Iterator[tuple[str, Parameter]]:
        for name, parameter in self._parameters.items():
            yield (f"{prefix}{name}", parameter)
        for child_name, child in self._modules.items():
            yield from child.named_parameters(prefix=f"{prefix}{child_name}.")

    def modules(self) -> Iterator["Module"]:
        """Yield this module and all descendants (depth-first)."""

        yield self
        for child in self._modules.values():
            yield from child.modules()

    def named_modules(self, prefix: str = "") -> Iterator[tuple[str, "Module"]]:
        yield (prefix.rstrip("."), self)
        for child_name, child in self._modules.items():
            yield from child.named_modules(prefix=f"{prefix}{child_name}.")

    def children(self) -> Iterator["Module"]:
        yield from self._modules.values()

    def apply(self, fn: Callable[["Module"], None]) -> "Module":
        """Apply ``fn`` to every module in the tree (self included)."""

        for module in self.modules():
            fn(module)
        return self

    # -- mode switching -----------------------------------------------------------

    def train(self, mode: bool = True) -> "Module":
        for module in self.modules():
            object.__setattr__(module, "training", mode)
        return self

    def eval(self) -> "Module":
        return self.train(False)

    # -- gradient helpers -----------------------------------------------------------

    def zero_grad(self) -> None:
        for parameter in self.parameters():
            parameter.zero_grad()

    def num_parameters(self) -> int:
        """Total number of scalar trainable parameters."""

        return sum(parameter.size for parameter in self.parameters())

    # -- state dict -------------------------------------------------------------------

    def state_dict(self) -> dict[str, np.ndarray]:
        """Return a flat mapping of parameter/buffer names to arrays (copies)."""

        state: dict[str, np.ndarray] = {}
        for name, parameter in self.named_parameters():
            state[name] = parameter.data.copy()
        for module_name, module in self.named_modules():
            for buffer_name, buffer in module._buffers.items():
                key = f"{module_name}.{buffer_name}" if module_name else buffer_name
                state[key] = np.asarray(buffer).copy()
        return state

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        """Load arrays produced by :meth:`state_dict` back into the module."""

        parameters = dict(self.named_parameters())
        buffer_owners: dict[str, tuple[Module, str]] = {}
        for module_name, module in self.named_modules():
            for buffer_name in module._buffers:
                key = f"{module_name}.{buffer_name}" if module_name else buffer_name
                buffer_owners[key] = (module, buffer_name)

        for key, value in state.items():
            if key in parameters:
                target = parameters[key]
                if target.data.shape != value.shape:
                    raise ValueError(
                        f"shape mismatch for parameter {key!r}: "
                        f"{target.data.shape} vs {value.shape}"
                    )
                target.data = np.asarray(value, dtype=np.float64).copy()
            elif key in buffer_owners:
                module, buffer_name = buffer_owners[key]
                module.register_buffer(buffer_name, np.asarray(value).copy())
            else:
                raise KeyError(f"unexpected key in state dict: {key!r}")

    # -- call protocol ------------------------------------------------------------------

    def forward(self, *args, **kwargs):
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    def __repr__(self) -> str:
        child_names = ", ".join(self._modules)
        return f"{type(self).__name__}({child_names})"


class Sequential(Module):
    """A module that chains child modules in order."""

    def __init__(self, *modules: Module):
        super().__init__()
        self._ordered: list[Module] = []
        for index, module in enumerate(modules):
            setattr(self, f"layer{index}", module)
            self._ordered.append(module)

    def __iter__(self) -> Iterator[Module]:
        return iter(self._ordered)

    def __len__(self) -> int:
        return len(self._ordered)

    def __getitem__(self, index: int) -> Module:
        return self._ordered[index]

    def append(self, module: Module) -> "Sequential":
        setattr(self, f"layer{len(self._ordered)}", module)
        self._ordered.append(module)
        return self

    def forward(self, x):
        for module in self._ordered:
            x = module(x)
        return x


class ModuleList(Module):
    """A list container whose elements are registered sub-modules."""

    def __init__(self, modules: list[Module] | None = None):
        super().__init__()
        self._ordered: list[Module] = []
        for module in modules or []:
            self.append(module)

    def append(self, module: Module) -> "ModuleList":
        setattr(self, f"item{len(self._ordered)}", module)
        self._ordered.append(module)
        return self

    def __iter__(self) -> Iterator[Module]:
        return iter(self._ordered)

    def __len__(self) -> int:
        return len(self._ordered)

    def __getitem__(self, index: int) -> Module:
        return self._ordered[index]

    def forward(self, *args, **kwargs):
        raise RuntimeError("ModuleList is a container and cannot be called directly")
