"""Normalisation layers: LayerNorm (ViT blocks) and BatchNorm2d (hybrid stems)."""

from __future__ import annotations

import numpy as np

from repro.nn import init
from repro.nn.module import Module, Parameter
from repro.tensor import Tensor, functional as F


class LayerNorm(Module):
    """Layer normalisation over the last dimension (token features)."""

    def __init__(self, normalized_shape: int, eps: float = 1e-6):
        super().__init__()
        self.normalized_shape = normalized_shape
        self.eps = eps
        self.weight = Parameter(init.ones((normalized_shape,)))
        self.bias = Parameter(init.zeros((normalized_shape,)))

    def forward(self, x: Tensor) -> Tensor:
        return F.layer_norm(x, self.weight, self.bias, eps=self.eps)

    def __repr__(self) -> str:
        return f"LayerNorm({self.normalized_shape}, eps={self.eps})"


class BatchNorm2d(Module):
    """Batch normalisation over (N, C, H, W) activations.

    Used by the convolutional stems of MobileViT and LeViT.  Running
    statistics are tracked as buffers and used in eval mode.
    """

    def __init__(self, num_features: int, eps: float = 1e-5, momentum: float = 0.1):
        super().__init__()
        self.num_features = num_features
        self.eps = eps
        self.momentum = momentum
        self.weight = Parameter(init.ones((num_features,)))
        self.bias = Parameter(init.zeros((num_features,)))
        self.register_buffer("running_mean", np.zeros(num_features))
        self.register_buffer("running_var", np.ones(num_features))

    def forward(self, x: Tensor) -> Tensor:
        x = Tensor._ensure(x)
        if x.ndim != 4:
            raise ValueError(f"BatchNorm2d expects (N, C, H, W), got shape {x.shape}")
        if self.training:
            mean = x.mean(axis=(0, 2, 3), keepdims=True)
            centred = x - mean
            variance = (centred * centred).mean(axis=(0, 2, 3), keepdims=True)
            self._update_running_stats(mean.data.reshape(-1), variance.data.reshape(-1))
        else:
            mean = Tensor(self.running_mean.reshape(1, -1, 1, 1))
            variance = Tensor(self.running_var.reshape(1, -1, 1, 1))
            centred = x - mean
        normalised = centred / (variance + self.eps).sqrt()
        scale = self.weight.reshape(1, self.num_features, 1, 1)
        shift = self.bias.reshape(1, self.num_features, 1, 1)
        return normalised * scale + shift

    def _update_running_stats(self, mean: np.ndarray, variance: np.ndarray) -> None:
        updated_mean = (1.0 - self.momentum) * self.running_mean + self.momentum * mean
        updated_var = (1.0 - self.momentum) * self.running_var + self.momentum * variance
        self.register_buffer("running_mean", updated_mean)
        self.register_buffer("running_var", updated_var)

    def __repr__(self) -> str:
        return f"BatchNorm2d({self.num_features}, eps={self.eps}, momentum={self.momentum})"
