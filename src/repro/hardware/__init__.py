"""Hardware modelling: the ViTALiTy accelerator and its baselines.

The paper evaluates a dedicated ViTALiTy accelerator (Section IV) against
general-purpose platforms (CPU, GPU, edge GPU) and the Sanger sparse-attention
accelerator.  This subpackage provides:

* a cycle-level model of the ViTALiTy accelerator — chunked micro-architecture
  (systolic array split into SA-General/SA-Diag plus accumulator/adder/divider
  arrays), the intra-layer pipeline, and the down-forward accumulation vs
  G-stationary dataflows (:mod:`accelerator`, :mod:`systolic`,
  :mod:`processors`, :mod:`pipeline`);
* a matching cycle-level model of the Sanger baseline accelerator
  (:mod:`sanger`) and of the SALO sliding-window accelerator (:mod:`salo`);
* analytic latency/energy models of the commodity platforms calibrated to the
  paper's own profiling tables (:mod:`platforms`);
* the energy/area technology model taken from Table III (:mod:`config`,
  :mod:`energy`);
* Table VI's mapping of linear-attention families onto the pre/post
  processors they need (:mod:`extension`).
"""

from repro.hardware.config import (
    ComponentConfig,
    ViTALiTyAcceleratorConfig,
    SangerAcceleratorConfig,
    MemoryEnergyConfig,
)
from repro.hardware.common import StepResult, LayerResult, ModelResult, Dataflow
from repro.hardware.systolic import SystolicArray, matmul_cycles
from repro.hardware.processors import AccumulatorArray, AdderArray, DividerArray
from repro.hardware.pipeline import pipeline_latency, pipeline_speedup, sequential_latency
from repro.hardware.accelerator import ViTALiTyAccelerator
from repro.hardware.sanger import SangerAccelerator
from repro.hardware.salo import SALOAccelerator
from repro.hardware.platforms import Platform, PLATFORMS, get_platform
from repro.hardware.energy import EnergyBreakdown
from repro.hardware.extension import linear_attention_processor_requirements

__all__ = [
    "ComponentConfig",
    "ViTALiTyAcceleratorConfig",
    "SangerAcceleratorConfig",
    "MemoryEnergyConfig",
    "StepResult",
    "LayerResult",
    "ModelResult",
    "Dataflow",
    "SystolicArray",
    "matmul_cycles",
    "AccumulatorArray",
    "AdderArray",
    "DividerArray",
    "pipeline_latency",
    "pipeline_speedup",
    "sequential_latency",
    "ViTALiTyAccelerator",
    "SangerAccelerator",
    "SALOAccelerator",
    "Platform",
    "PLATFORMS",
    "get_platform",
    "EnergyBreakdown",
    "linear_attention_processor_requirements",
]
