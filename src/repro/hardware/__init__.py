"""Hardware modelling: the ViTALiTy accelerator and its baselines.

The paper evaluates a dedicated ViTALiTy accelerator (Section IV) against
general-purpose platforms (CPU, GPU, edge GPU) and the Sanger sparse-attention
accelerator.  This subpackage provides:

* a shared, fully parameterised microarchitecture core — array geometry,
  lane-array processors, memory-hierarchy energies, the intra-layer pipeline
  model, and the design-point knob grammar with per-family area/power/energy
  scaling (:mod:`core`);
* a cycle-level model of the ViTALiTy accelerator — chunked micro-architecture
  (systolic array split into SA-General/SA-Diag plus accumulator/adder/divider
  arrays), the intra-layer pipeline, and the down-forward accumulation vs
  G-stationary dataflows (:mod:`accelerator`);
* a matching cycle-level model of the Sanger baseline accelerator
  (:mod:`sanger`) and of the SALO sliding-window accelerator (:mod:`salo`);
* analytic latency/energy models of the commodity platforms calibrated to the
  paper's own profiling tables (:mod:`platforms`);
* the Table III reference design points the knob scaling derives every other
  design point from (:mod:`config`);
* Table VI's mapping of linear-attention families onto the pre/post
  processors they need (:mod:`extension`).
"""

from repro.hardware.config import (
    ComponentConfig,
    ViTALiTyAcceleratorConfig,
    SangerAcceleratorConfig,
    MemoryEnergyConfig,
)
from repro.hardware.common import StepResult, LayerResult, ModelResult, Dataflow
from repro.hardware.core.arrays import (
    SystolicArray,
    matmul_cycles,
    AccumulatorArray,
    AdderArray,
    DividerArray,
)
from repro.hardware.core.knobs import HardwareConfig, KnobError, KnobSchema
from repro.hardware.core.memory import EnergyBreakdown, MemoryTrafficModel
from repro.hardware.core.pipeline import (
    pipeline_latency,
    pipeline_speedup,
    sequential_latency,
)
from repro.hardware.accelerator import ViTALiTyAccelerator
from repro.hardware.sanger import SangerAccelerator
from repro.hardware.salo import SALOAccelerator, SALOConfig
from repro.hardware.platforms import Platform, PLATFORMS, get_platform
from repro.hardware.core.families import (
    FAMILY_SCHEMAS,
    PLATFORM_SCHEMA,
    SALO_SCHEMA,
    SANGER_SCHEMA,
    VITALITY_SCHEMA,
    build_platform,
    build_salo_configs,
    build_sanger_config,
    build_vitality_config,
)
from repro.hardware.extension import linear_attention_processor_requirements
from repro.hardware.memsim import (
    MemSimConfig,
    MemSimViTALiTyAccelerator,
    RooflineRecord,
    TiledSystolicArray,
)

__all__ = [
    "ComponentConfig",
    "ViTALiTyAcceleratorConfig",
    "SangerAcceleratorConfig",
    "MemoryEnergyConfig",
    "HardwareConfig",
    "KnobError",
    "KnobSchema",
    "FAMILY_SCHEMAS",
    "VITALITY_SCHEMA",
    "SANGER_SCHEMA",
    "SALO_SCHEMA",
    "PLATFORM_SCHEMA",
    "build_vitality_config",
    "build_sanger_config",
    "build_salo_configs",
    "build_platform",
    "StepResult",
    "LayerResult",
    "ModelResult",
    "Dataflow",
    "SystolicArray",
    "matmul_cycles",
    "AccumulatorArray",
    "AdderArray",
    "DividerArray",
    "pipeline_latency",
    "pipeline_speedup",
    "sequential_latency",
    "ViTALiTyAccelerator",
    "SangerAccelerator",
    "SALOAccelerator",
    "SALOConfig",
    "Platform",
    "PLATFORMS",
    "get_platform",
    "EnergyBreakdown",
    "MemoryTrafficModel",
    "linear_attention_processor_requirements",
    "MemSimConfig",
    "MemSimViTALiTyAccelerator",
    "RooflineRecord",
    "TiledSystolicArray",
]
