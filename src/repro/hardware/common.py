"""Shared result types for the hardware models."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class Dataflow(enum.Enum):
    """Systolic-array dataflows considered in Section IV-D."""

    #: Input-stationary everywhere; partial sums accumulate down the columns.
    DOWN_FORWARD = "down_forward"
    #: Output-stationary for G = K_hat^T V, then G kept in the PEs for Q G.
    G_STATIONARY = "g_stationary"


@dataclass
class StepResult:
    """Latency/energy of one computational step on one hardware chunk."""

    name: str
    chunk: str
    cycles: int
    energy_joules: float
    operations: int = 0
    sram_accesses: int = 0


@dataclass
class LayerResult:
    """Aggregate latency/energy of one attention (or linear) layer."""

    name: str
    cycles: int
    energy_joules: float
    frequency_hz: float
    steps: list[StepResult] = field(default_factory=list)

    @property
    def latency_seconds(self) -> float:
        return self.cycles / self.frequency_hz

    def energy_by_chunk(self) -> dict[str, float]:
        totals: dict[str, float] = {}
        for step in self.steps:
            totals[step.chunk] = totals.get(step.chunk, 0.0) + step.energy_joules
        return totals


@dataclass
class ModelResult:
    """Aggregate latency/energy of a full model (attention + linear layers)."""

    model: str
    device: str
    attention_cycles: int
    attention_energy: float
    linear_cycles: int
    linear_energy: float
    frequency_hz: float
    layers: list[LayerResult] = field(default_factory=list)

    @property
    def attention_latency(self) -> float:
        return self.attention_cycles / self.frequency_hz

    @property
    def linear_latency(self) -> float:
        return self.linear_cycles / self.frequency_hz

    @property
    def end_to_end_latency(self) -> float:
        return self.attention_latency + self.linear_latency

    @property
    def end_to_end_energy(self) -> float:
        return self.attention_energy + self.linear_energy
