"""Cycle-level model of the ViTALiTy accelerator (Section IV).

The accelerator executes Algorithm 1 layer by layer on four chunks — the
systolic array (partitioned into SA-General and SA-Diag), the accumulator
array, the adder array and the divider array — with the intra-layer pipeline
of Fig. 7 overlapping pre/post-processing with the matrix multiplications,
and the down-forward accumulation dataflow of Fig. 9 (the G-stationary
alternative is also modelled for the Table V ablation).

The same systolic array executes the models' projection/MLP GEMMs, which is
how end-to-end latency and energy (Figs. 11 and 12) are obtained.
"""

from __future__ import annotations

from dataclasses import replace

from repro.hardware.common import Dataflow, LayerResult, ModelResult, StepResult
from repro.hardware.config import ViTALiTyAcceleratorConfig
from repro.hardware.core.arrays import (
    AccumulatorArray,
    AdderArray,
    DividerArray,
    SystolicArray,
)
from repro.hardware.core.memory import EnergyBreakdown, MemoryTrafficModel
from repro.hardware.core.pipeline import pipeline_latency, sequential_latency
from repro.workloads import AttentionLayerSpec, LinearLayerSpec, ModelWorkload


class ViTALiTyAccelerator:
    """The ViTALiTy accelerator simulator.

    Args:
        config: hardware configuration (defaults to the Table III design).
        dataflow: down-forward accumulation (default) or G-stationary.
        pipelined: enable the intra-layer pipeline (disable for the ablation).
    """

    def __init__(self, config: ViTALiTyAcceleratorConfig | None = None,
                 dataflow: Dataflow = Dataflow.DOWN_FORWARD,
                 pipelined: bool = True):
        self.config = config or ViTALiTyAcceleratorConfig()
        self.dataflow = dataflow
        self.pipelined = pipelined
        frequency = self.config.frequency_hz
        self.sa_general = SystolicArray(self.config.sa_general, frequency,
                                        utilization=self.config.systolic_utilization)
        self.sa_diag = SystolicArray(self.config.sa_diag, frequency,
                                     utilization=self.config.systolic_utilization)
        self.accumulator = AccumulatorArray(self.config.accumulator_array, frequency)
        self.adder = AdderArray(self.config.adder_array, frequency)
        self.divider = DividerArray(self.config.divider_array, frequency)

    # -- scaling ------------------------------------------------------------------------

    @property
    def peak_macs_per_second(self) -> float:
        """Peak MAC throughput of the systolic array (both partitions)."""

        pes = self.config.sa_general.lanes + self.config.sa_diag.lanes
        return pes * self.config.frequency_hz

    def scaled_to_peak(self, peak_macs_per_second: float) -> "ViTALiTyAccelerator":
        """Return an accelerator scaled to a target peak throughput.

        Following the paper's methodology (and DOTA's), comparisons against
        general-purpose platforms scale the accelerator's PE array so both
        sides have comparable peak compute; area and power scale with it.
        """

        if peak_macs_per_second <= 0:
            raise ValueError("peak throughput must be positive")
        scale = peak_macs_per_second / self.peak_macs_per_second
        column_scale = max(1, int(round(self.config.sa_general.columns * scale)))
        scaled_config = replace(
            self.config,
            sa_general=self.config.sa_general.scaled(columns=column_scale),
        )
        return ViTALiTyAccelerator(scaled_config, dataflow=self.dataflow,
                                   pipelined=self.pipelined)

    # -- attention layer --------------------------------------------------------------------

    def run_attention_layer(self, spec: AttentionLayerSpec) -> LayerResult:
        """Execute one multi-head Taylor-attention layer (all heads, one repeat)."""

        n, m = spec.tokens, spec.kv_tokens
        d, dv, h = spec.qk_dim, spec.v_dim, spec.heads
        g_overhead = (self.config.g_stationary_pe_overhead
                      if self.dataflow is Dataflow.G_STATIONARY else 1.0)
        memory = MemoryTrafficModel(self.config.memory)
        steps: list[StepResult] = []

        # Q/K/V are produced by the preceding projection layer and stay resident
        # in the 50 KB on-chip buffers (Table III), so the attention layer itself
        # incurs SRAM/NoC traffic only; DRAM traffic is accounted to the linear
        # layers that stream weights.

        # Step 1: mean-centre the keys (accumulator -> divider -> adder).
        step1_sum = self.accumulator.column_sum(m, d * h)
        step1_div = self.divider.single_divisor(d * h)
        step1_sub = self.adder.elementwise(m * d * h)
        memory.access_sram(h * (2 * m * d))          # read K, write K_hat
        steps.append(StepResult("1:k_hat:accumulate", "accumulator", step1_sum.cycles,
                                step1_sum.energy_joules, step1_sum.operations))
        steps.append(StepResult("1:k_hat:divide", "divider", step1_div.cycles,
                                step1_div.energy_joules, step1_div.operations))
        steps.append(StepResult("1:k_hat:subtract", "adder", step1_sub.cycles,
                                step1_sub.energy_joules, step1_sub.operations))

        # Step 2: global context matrix G = K_hat^T V on SA-General (all heads
        # streamed back to back so the array fill is amortised).
        step2 = self.sa_general.matmul(d, m, dv, pe_energy_scale=g_overhead, batch=h)
        memory.access_sram(step2.streamed_words + step2.stationary_loads)
        if self.dataflow is Dataflow.DOWN_FORWARD:
            # G is written back to SRAM and re-read for Step 5.
            memory.access_sram(h * 2 * d * dv)
        steps.append(StepResult("2:G", "systolic", step2.cycles, step2.energy_joules,
                                step2.macs))

        # Step 3: column sums of K_hat and V on the accumulator array.
        step3 = self.accumulator.column_sum(m, (d + dv) * h)
        memory.access_sram(h * (m * d + m * dv))
        steps.append(StepResult("3:column_sums", "accumulator", step3.cycles,
                                step3.energy_joules, step3.operations))

        # Step 4: Taylor denominator — Q k_hat_sum^T on SA-Diag plus an addition.
        # SA-Diag runs in parallel with SA-General (its own chunk), with Q
        # broadcast to both partitions.
        step4_mm = self.sa_diag.matmul(n, d, 1, batch=h)
        step4_add = self.adder.elementwise(n * h)
        memory.access_sram(h * n)
        steps.append(StepResult("4:tD:matmul", "sa_diag", step4_mm.cycles,
                                step4_mm.energy_joules, step4_mm.macs))
        steps.append(StepResult("4:tD:add", "adder", step4_add.cycles,
                                step4_add.energy_joules, step4_add.operations))

        # Step 5: Taylor numerator — Q G on SA-General plus an element-wise addition.
        step5_mm = self.sa_general.matmul(n, d, dv, pe_energy_scale=g_overhead, batch=h)
        step5_add = self.adder.elementwise(n * dv * h)
        memory.access_sram(step5_mm.streamed_words + step5_mm.output_words)
        steps.append(StepResult("5:TN:matmul", "systolic", step5_mm.cycles,
                                step5_mm.energy_joules, step5_mm.macs))
        steps.append(StepResult("5:TN:add", "adder", step5_add.cycles,
                                step5_add.energy_joules, step5_add.operations))

        # Step 6: final score — row-wise division on the divider array.
        step6 = self.divider.multiple_divisors(n * dv * h)
        memory.access_sram(h * n * dv)
        steps.append(StepResult("6:Z", "divider", step6.cycles, step6.energy_joules,
                                step6.operations))

        # Memory energy is charged as a zero-latency pseudo step (accesses are
        # overlapped with compute by the four-level hierarchy).
        steps.append(StepResult("memory", "memory", 0, memory.energy_joules,
                                sram_accesses=memory.sram_accesses))

        cycles = pipeline_latency(steps) if self.pipelined else sequential_latency(steps)
        energy = sum(step.energy_joules for step in steps)
        return LayerResult(name=f"attention(n={n},d={d},h={h})", cycles=cycles,
                           energy_joules=energy, frequency_hz=self.config.frequency_hz,
                           steps=steps)

    # -- linear layers -----------------------------------------------------------------------

    def run_linear_layer(self, spec: LinearLayerSpec) -> LayerResult:
        """Execute one dense (projection / MLP) GEMM on the systolic array."""

        execution = self.sa_general.matmul(spec.tokens, spec.in_features, spec.out_features)
        memory = MemoryTrafficModel(self.config.memory)
        memory.access_dram(spec.in_features * spec.out_features)   # weights
        memory.access_sram(execution.streamed_words + execution.output_words)
        steps = [
            StepResult("gemm", "systolic", execution.cycles, execution.energy_joules,
                       execution.macs),
            StepResult("memory", "memory", 0, memory.energy_joules,
                       sram_accesses=memory.sram_accesses),
        ]
        return LayerResult(name=f"linear({spec.tokens}x{spec.in_features}x{spec.out_features})",
                           cycles=execution.cycles, energy_joules=sum(s.energy_joules for s in steps),
                           frequency_hz=self.config.frequency_hz, steps=steps)

    # -- whole model ----------------------------------------------------------------------------

    def run_model(self, workload: ModelWorkload, include_linear: bool = True) -> ModelResult:
        """Run every attention (and optionally linear) layer of a model workload."""

        attention_cycles = 0
        attention_energy = 0.0
        layers: list[LayerResult] = []
        for spec in workload.attention_layers:
            layer = self.run_attention_layer(spec)
            attention_cycles += layer.cycles * spec.repeats
            attention_energy += layer.energy_joules * spec.repeats
            layers.append(layer)

        linear_cycles = 0
        linear_energy = 0.0
        if include_linear:
            for spec in workload.linear_layers:
                layer = self.run_linear_layer(spec)
                linear_cycles += layer.cycles * spec.repeats
                linear_energy += layer.energy_joules * spec.repeats
                layers.append(layer)

        return ModelResult(model=workload.name, device=self.config.name,
                           attention_cycles=attention_cycles, attention_energy=attention_energy,
                           linear_cycles=linear_cycles, linear_energy=linear_energy,
                           frequency_hz=self.config.frequency_hz, layers=layers)

    # -- Table V style breakdown ----------------------------------------------------------------

    def attention_energy_breakdown(self, workload: ModelWorkload) -> EnergyBreakdown:
        """Energy of the Taylor attention split as Table V reports it."""

        breakdown = EnergyBreakdown()
        for spec in workload.attention_layers:
            layer = self.run_attention_layer(spec)
            per_layer = EnergyBreakdown()
            for step in layer.steps:
                if step.chunk in ("systolic", "sa_diag"):
                    per_layer.systolic_array += step.energy_joules
                elif step.chunk == "memory":
                    per_layer.data_access += step.energy_joules
                else:
                    per_layer.other_processors += step.energy_joules
            breakdown = breakdown.add(EnergyBreakdown(
                data_access=per_layer.data_access * spec.repeats,
                other_processors=per_layer.other_processors * spec.repeats,
                systolic_array=per_layer.systolic_array * spec.repeats,
            ))
        return breakdown
