"""Model of the SALO hybrid sparse-attention accelerator (Section V-C comparison).

SALO (Shen et al., DAC 2022) accelerates Longformer-style attention patterns —
sliding windows, dilated windows, and a few global tokens — with a spatial
accelerator whose PE array is laid out for those diagonal-band patterns.  The
paper compares ViTALiTy against SALO under the same hardware budget on
DeiT-Tiny/Small and reports a 4.7x / 5.0x attention speedup.

The model here charges SALO the window-banded attention work (window +
dilated + global columns per query) on a PE array with the same MAC budget as
ViTALiTy's, derated by a spatial-utilisation factor: SALO's dataflow is tuned
for long NLP sequences, so on short ViT token counts its PE rows are poorly
filled — the effect responsible for most of the reported gap.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hardware.common import LayerResult, ModelResult, StepResult
from repro.hardware.config import ViTALiTyAcceleratorConfig
from repro.hardware.core.arrays import SystolicArray
from repro.workloads import AttentionLayerSpec, ModelWorkload


@dataclass(frozen=True)
class SALOConfig:
    """SALO attention-pattern and utilisation parameters."""

    #: Sliding-window width (keys attended either side of each query).
    window: int = 64
    #: Number of global tokens attended by (and attending to) every query.
    global_tokens: int = 4
    #: Spatial PE utilisation on short (ViT-length) sequences.
    short_sequence_utilization: float = 0.18


class SALOAccelerator:
    """SALO modelled under the ViTALiTy hardware budget."""

    def __init__(self, budget: ViTALiTyAcceleratorConfig | None = None,
                 config: SALOConfig | None = None):
        self.budget = budget or ViTALiTyAcceleratorConfig()
        self.config = config or SALOConfig()
        self.array = SystolicArray(self.budget.sa_general, self.budget.frequency_hz,
                                   utilization=self.config.short_sequence_utilization)

    @property
    def frequency_hz(self) -> float:
        return self.budget.frequency_hz

    def run_attention_layer(self, spec: AttentionLayerSpec) -> LayerResult:
        """Window + global attention for one multi-head layer."""

        n, d, dv, h = spec.tokens, spec.qk_dim, spec.v_dim, spec.heads
        keys_per_query = min(spec.kv_tokens, self.config.window + self.config.global_tokens)
        qk = self.array.matmul(n, d, keys_per_query)
        sv = self.array.matmul(n, keys_per_query, dv)
        softmax_cycles = (n * keys_per_query) // self.budget.divider_array.lanes + 1
        softmax_energy = softmax_cycles * self.budget.divider_array.energy_per_cycle(self.frequency_hz)
        steps = [
            StepResult("window_qk", "systolic", qk.cycles * h, qk.energy_joules * h, qk.macs * h),
            StepResult("softmax", "divider", softmax_cycles * h, softmax_energy * h,
                       n * keys_per_query * h),
            StepResult("window_sv", "systolic", sv.cycles * h, sv.energy_joules * h, sv.macs * h),
        ]
        cycles = sum(step.cycles for step in steps)
        energy = sum(step.energy_joules for step in steps)
        return LayerResult(name=f"salo_attention(n={n},d={d},h={h})", cycles=cycles,
                           energy_joules=energy, frequency_hz=self.frequency_hz, steps=steps)

    def run_model(self, workload: ModelWorkload) -> ModelResult:
        attention_cycles = 0
        attention_energy = 0.0
        layers = []
        for spec in workload.attention_layers:
            layer = self.run_attention_layer(spec)
            attention_cycles += layer.cycles * spec.repeats
            attention_energy += layer.energy_joules * spec.repeats
            layers.append(layer)
        return ModelResult(model=workload.name, device="salo",
                           attention_cycles=attention_cycles, attention_energy=attention_energy,
                           linear_cycles=0, linear_energy=0.0,
                           frequency_hz=self.frequency_hz, layers=layers)
