"""Analytic latency/energy models of the general-purpose platforms.

The paper profiles DeiT-family models on an Intel Xeon 6230 CPU, an NVIDIA
RTX 2080Ti GPU, an NVIDIA Tegra X2 edge GPU and a Pixel 3 phone (Fig. 1,
Table II), and uses the first three as hardware baselines for Figs. 11–12.
Real devices are unavailable here, so each platform is modelled analytically:

* dense GEMMs run at an *effective* MAC throughput that depends on the GEMM
  shape (large square attention products sustain higher efficiency than the
  tall-skinny ``d x d``-inner products of the Taylor attention — the reason
  Table II shows GPUs failing to benefit from the linear attention);
* softmax and element-wise work run at much lower effective rates (these are
  memory/special-function bound on GPUs);
* every step additionally pays a per-layer kernel-launch overhead, which is
  what makes the light pre/post-processing steps of Algorithm 1 significant
  on the edge GPU (Table II).

The default constants are calibrated against the paper's own TX2 profile
(Table II) and scaled across devices by their relative compute capability.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.workloads import AttentionLayerSpec, ModelWorkload


@dataclass(frozen=True)
class Platform:
    """An analytic platform model."""

    name: str
    #: Effective MAC/s for large, regular projection/MLP GEMMs.
    projection_macs_per_second: float
    #: Effective MAC/s for the batched per-head attention (n x n) GEMMs.
    gemm_macs_per_second: float
    #: Effective MAC/s for tall-skinny GEMMs with a small (head-dim) inner size.
    skinny_gemm_macs_per_second: float
    #: Effective scalar op/s for softmax (exp + normalisation).
    softmax_ops_per_second: float
    #: Effective scalar op/s for element-wise / reduction work.
    elementwise_ops_per_second: float
    #: Kernel-launch (or op-dispatch) overhead per step per layer, in seconds.
    launch_overhead_seconds: float
    #: Power attributable to the inference workload, in watts.  Calibrated to
    #: the paper's measured energy-efficiency ratios (Fig. 12) rather than the
    #: device TDP, since the authors report workload energy, not package power.
    average_power_watts: float
    #: Peak MAC/s (used to scale the ViTALiTy accelerator for fair comparison).
    peak_macs_per_second: float

    # -- design-point scaling ---------------------------------------------------------

    def scaled(self, compute: float = 1.0, power_watts: float | None = None,
               launch_overhead_seconds: float | None = None) -> "Platform":
        """This platform re-provisioned to a different design point.

        ``compute`` scales every effective-throughput rate and the peak
        together (a faster or binned part of the same architecture);
        ``power_watts`` / ``launch_overhead_seconds`` pin those quantities
        directly.  An identity scaling returns ``self`` unchanged.
        """

        if compute <= 0:
            raise ValueError(f"compute scale must be positive, got {compute}")
        if compute == 1.0 and power_watts is None and launch_overhead_seconds is None:
            return self
        return replace(
            self,
            projection_macs_per_second=self.projection_macs_per_second * compute,
            gemm_macs_per_second=self.gemm_macs_per_second * compute,
            skinny_gemm_macs_per_second=self.skinny_gemm_macs_per_second * compute,
            softmax_ops_per_second=self.softmax_ops_per_second * compute,
            elementwise_ops_per_second=self.elementwise_ops_per_second * compute,
            peak_macs_per_second=self.peak_macs_per_second * compute,
            average_power_watts=(self.average_power_watts if power_watts is None
                                 else power_watts),
            launch_overhead_seconds=(self.launch_overhead_seconds
                                     if launch_overhead_seconds is None
                                     else launch_overhead_seconds),
        )

    # -- per-step latencies -----------------------------------------------------------

    def _gemm_latency(self, macs: int, skinny: bool, layers: int,
                      projection: bool = False) -> float:
        if projection:
            rate = self.projection_macs_per_second
        elif skinny:
            rate = self.skinny_gemm_macs_per_second
        else:
            rate = self.gemm_macs_per_second
        return macs / rate + layers * self.launch_overhead_seconds

    def _vector_latency(self, ops: int, layers: int, softmax: bool = False) -> float:
        rate = self.softmax_ops_per_second if softmax else self.elementwise_ops_per_second
        return ops / rate + layers * self.launch_overhead_seconds

    def vanilla_attention_profile(self, workload: ModelWorkload) -> dict[str, float]:
        """Per-step latencies (seconds) of the vanilla softmax attention."""

        qk = sv = softmax = 0.0
        for spec in workload.attention_layers:
            n, m, d, dv, h, r = (spec.tokens, spec.kv_tokens, spec.qk_dim, spec.v_dim,
                                 spec.heads, spec.repeats)
            qk += self._gemm_latency(h * n * m * d * r, skinny=False, layers=r)
            sv += self._gemm_latency(h * n * m * dv * r, skinny=False, layers=r)
            softmax += self._vector_latency(3 * h * n * m * r, layers=r, softmax=True)
        return {"1:QK^T": qk, "2:softmax": softmax, "3:SV": sv}

    def taylor_attention_profile(self, workload: ModelWorkload) -> dict[str, float]:
        """Per-step latencies (seconds) of the Taylor attention (Algorithm 1)."""

        steps = {"1:k_hat": 0.0, "2:G": 0.0, "3:sums": 0.0, "4:tD": 0.0, "5:TN": 0.0, "6:Z": 0.0}
        for spec in workload.attention_layers:
            n, m, d, dv, h, r = (spec.tokens, spec.kv_tokens, spec.qk_dim, spec.v_dim,
                                 spec.heads, spec.repeats)
            steps["1:k_hat"] += self._vector_latency(2 * h * m * d * r, layers=r)
            steps["2:G"] += self._gemm_latency(h * m * d * dv * r, skinny=True, layers=r)
            steps["3:sums"] += self._vector_latency(h * m * (d + dv) * r, layers=r)
            steps["4:tD"] += (self._gemm_latency(h * n * d * r, skinny=True, layers=r)
                              + self._vector_latency(h * n * r, layers=0))
            steps["5:TN"] += (self._gemm_latency(h * n * d * dv * r, skinny=True, layers=r)
                              + self._vector_latency(h * n * dv * r, layers=0))
            steps["6:Z"] += self._vector_latency(h * n * dv * r, layers=r)
        return steps

    # -- aggregate latencies -------------------------------------------------------------

    def attention_latency(self, workload: ModelWorkload, taylor: bool = False) -> float:
        profile = (self.taylor_attention_profile(workload) if taylor
                   else self.vanilla_attention_profile(workload))
        return sum(profile.values())

    def linear_latency(self, workload: ModelWorkload) -> float:
        """Latency of the projection/MLP GEMMs (Step 1 of Fig. 1 plus the MLP module)."""

        total = 0.0
        for spec in workload.linear_layers:
            total += self._gemm_latency(spec.macs, skinny=False, layers=spec.repeats,
                                        projection=True)
        return total

    def end_to_end_latency(self, workload: ModelWorkload, taylor: bool = False) -> float:
        return self.attention_latency(workload, taylor=taylor) + self.linear_latency(workload)

    # -- energy ---------------------------------------------------------------------------

    def attention_energy(self, workload: ModelWorkload, taylor: bool = False) -> float:
        return self.attention_latency(workload, taylor=taylor) * self.average_power_watts

    def end_to_end_energy(self, workload: ModelWorkload, taylor: bool = False) -> float:
        return self.end_to_end_latency(workload, taylor=taylor) * self.average_power_watts

    def mha_runtime_breakdown(self, workload: ModelWorkload) -> dict[str, float]:
        """Fig. 1 breakdown: QKV projection vs softmax attention map vs attention score.

        Step 1 is the Q/K/V projection (a third of each layer's projection
        GEMMs plus the QKV part of the linear layers), Step 2 is ``QK^T`` plus
        the softmax, Step 3 is ``SV``.  Fractions are of the MHA module only.
        """

        qkv_macs = 0
        for spec in workload.attention_layers:
            embed = spec.qk_dim * spec.heads
            qkv_macs += spec.tokens * embed * (2 * spec.qk_dim + spec.v_dim) * spec.heads * spec.repeats
        layers = workload.total_attention_layers()
        step1 = self._gemm_latency(qkv_macs, skinny=False, layers=layers, projection=True)
        vanilla = self.vanilla_attention_profile(workload)
        step2 = vanilla["1:QK^T"] + vanilla["2:softmax"]
        step3 = vanilla["3:SV"]
        total = step1 + step2 + step3
        return {
            "step1_qkv": step1 / total,
            "step2_softmax_map": step2 / total,
            "step3_attention_score": step3 / total,
        }


# ---------------------------------------------------------------------------------------
# Default platform fleet, calibrated against Table II (TX2) and scaled by device class.
# ---------------------------------------------------------------------------------------

PLATFORMS: dict[str, Platform] = {
    # NVIDIA Tegra X2 — calibrated so the DeiT-Tiny vanilla/Taylor per-step
    # profile lands close to Table II (total ~11.7 ms vanilla / ~14 ms Taylor)
    # and the Fig. 1 MHA breakdown is ~21/55/24%.
    "edge_gpu": Platform(
        name="edge_gpu",
        projection_macs_per_second=85e9,
        gemm_macs_per_second=25e9,
        skinny_gemm_macs_per_second=9e9,
        softmax_ops_per_second=1.0e9,
        elementwise_ops_per_second=0.8e9,
        launch_overhead_seconds=55e-6,
        average_power_watts=3.5,
        peak_macs_per_second=0.65e12,
    ),
    # NVIDIA RTX 2080Ti — roughly 20-40x the TX2's effective throughput with
    # smaller relative launch overheads and a much higher power envelope.
    "gpu": Platform(
        name="gpu",
        projection_macs_per_second=3.0e12,
        gemm_macs_per_second=1.0e12,
        skinny_gemm_macs_per_second=250e9,
        softmax_ops_per_second=20e9,
        elementwise_ops_per_second=16e9,
        launch_overhead_seconds=6e-6,
        average_power_watts=55.0,
        peak_macs_per_second=6.7e12,
    ),
    # Intel Xeon Gold 6230 — strong scalar units but low effective GEMM
    # throughput at batch-1 inference, and no launch overhead to speak of.
    "cpu": Platform(
        name="cpu",
        projection_macs_per_second=45e9,
        gemm_macs_per_second=28e9,
        skinny_gemm_macs_per_second=14e9,
        softmax_ops_per_second=0.4e9,
        elementwise_ops_per_second=1.5e9,
        launch_overhead_seconds=2e-6,
        average_power_watts=3.5,
        peak_macs_per_second=1.0e12,
    ),
    # Google Pixel 3 — used only for the Fig. 1 runtime-breakdown profile.
    "pixel3": Platform(
        name="pixel3",
        projection_macs_per_second=18e9,
        gemm_macs_per_second=6e9,
        skinny_gemm_macs_per_second=2.5e9,
        softmax_ops_per_second=0.15e9,
        elementwise_ops_per_second=0.3e9,
        launch_overhead_seconds=80e-6,
        average_power_watts=2.0,
        peak_macs_per_second=0.25e12,
    ),
}


def get_platform(name: str) -> Platform:
    """Look up a platform model by name (``cpu``, ``gpu``, ``edge_gpu``, ``pixel3``)."""

    try:
        return PLATFORMS[name]
    except KeyError:
        raise KeyError(f"unknown platform {name!r}; available: {sorted(PLATFORMS)}") from None
