"""Cycle-level model of the Sanger sparse-attention accelerator (baseline).

Sanger (MICRO 2021) accelerates the vanilla softmax attention by:

1. predicting a sparsity mask from 4-bit quantised Q/K on a dedicated
   low-precision pre-processor,
2. re-arranging the irregular mask into balanced rows with pack-and-split,
3. computing the surviving attention entries (sparse ``Q K^T``), the softmax
   (with a dedicated EXP unit) and the sparse ``S V`` on a reconfigurable
   64x16 PE array.

The model charges the dense prediction pass at 4-bit precision, then scales
the full-precision attention work by the achieved mask density and the
pack-and-split load-balance efficiency.  Dense (projection / MLP) GEMMs run
on the same RePE array, which is how the end-to-end comparison of Fig. 11 is
obtained under a comparable hardware budget (Table III).
"""

from __future__ import annotations

import math

from repro.hardware.common import LayerResult, ModelResult, StepResult
from repro.hardware.config import SangerAcceleratorConfig
from repro.hardware.core.arrays import SystolicArray, matmul_cycles
from repro.hardware.core.memory import MemoryTrafficModel
from repro.workloads import AttentionLayerSpec, LinearLayerSpec, ModelWorkload


class SangerAccelerator:
    """The Sanger baseline accelerator simulator."""

    def __init__(self, config: SangerAcceleratorConfig | None = None,
                 density: float | None = None,
                 load_balance_efficiency: float = 0.8):
        self.config = config or SangerAcceleratorConfig()
        self.density = density if density is not None else self.config.default_density
        if not 0.0 < self.density <= 1.0:
            raise ValueError(f"density must be in (0, 1], got {self.density}")
        if not 0.0 < load_balance_efficiency <= 1.0:
            raise ValueError("load_balance_efficiency must be in (0, 1]")
        self.load_balance_efficiency = load_balance_efficiency
        self.re_pe = SystolicArray(self.config.re_pe_array, self.config.frequency_hz,
                                   utilization=self.config.pe_utilization)

    @property
    def frequency_hz(self) -> float:
        return self.config.frequency_hz

    # -- attention -------------------------------------------------------------------------

    def run_attention_layer(self, spec: AttentionLayerSpec,
                            density: float | None = None) -> LayerResult:
        """Execute one multi-head vanilla attention layer with dynamic sparsity."""

        n, m = spec.tokens, spec.kv_tokens
        d, dv, h = spec.qk_dim, spec.v_dim, spec.heads
        density = self.density if density is None else density
        memory = MemoryTrafficModel(self.config.memory)
        steps: list[StepResult] = []
        frequency = self.config.frequency_hz

        memory.access_dram(h * (n * d + m * d + m * dv + n * dv))

        # 1. Low-precision prediction of the attention mask (dense 4-bit QK^T).
        prediction_cycles = h * matmul_cycles(n, d, m,
                                              self.config.pre_processor.rows,
                                              self.config.pre_processor.columns,
                                              utilization=self.config.pe_utilization)
        prediction_energy = prediction_cycles * self.config.pre_processor.energy_per_cycle(frequency)
        memory.access_sram(h * (n * d + m * d))
        steps.append(StepResult("predict_mask", "pre_processor", prediction_cycles,
                                prediction_energy, h * n * m * d))

        # 2. Pack & split the irregular mask into balanced PE rows.
        pack_cycles = h * math.ceil(n * m / self.config.pack_and_split.lanes)
        pack_energy = pack_cycles * self.config.pack_and_split.energy_per_cycle(frequency)
        steps.append(StepResult("pack_and_split", "pack_split", pack_cycles, pack_energy,
                                h * n * m))

        # 3/4/5. Sparse QK^T, softmax (EXP + divide), sparse SV on the RePE array.
        effective = density / self.load_balance_efficiency
        sparse_qk = self.re_pe.matmul(n, d, max(1, int(round(m * effective))))
        sparse_sv = self.re_pe.matmul(n, max(1, int(round(m * effective))), dv)
        softmax_ops = int(h * n * m * density)
        softmax_cycles = math.ceil(softmax_ops / self.config.divider_array.lanes)
        softmax_energy = softmax_cycles * (
            self.config.divider_array.energy_per_cycle(frequency)
        )
        memory.access_sram(h * int(n * m * density) * 2 + h * (n * dv + m * dv))
        steps.append(StepResult("sparse_qk", "re_pe", sparse_qk.cycles * h,
                                sparse_qk.energy_joules * h, sparse_qk.macs * h))
        steps.append(StepResult("softmax", "divider", softmax_cycles, softmax_energy,
                                softmax_ops))
        steps.append(StepResult("sparse_sv", "re_pe", sparse_sv.cycles * h,
                                sparse_sv.energy_joules * h, sparse_sv.macs * h))

        steps.append(StepResult("memory", "memory", 0, memory.energy_joules,
                                sram_accesses=memory.sram_accesses))

        # Sanger pipelines prediction with the sparse computation across rows;
        # the dominant stage bounds the latency, the other is partially hidden.
        compute_cycles = (sparse_qk.cycles + sparse_sv.cycles) * h + softmax_cycles
        cycles = max(prediction_cycles, compute_cycles) + min(prediction_cycles, compute_cycles) // 4
        energy = sum(step.energy_joules for step in steps)
        return LayerResult(name=f"sanger_attention(n={n},d={d},h={h})", cycles=cycles,
                           energy_joules=energy, frequency_hz=frequency, steps=steps)

    # -- linear layers --------------------------------------------------------------------------

    def run_linear_layer(self, spec: LinearLayerSpec) -> LayerResult:
        execution = self.re_pe.matmul(spec.tokens, spec.in_features, spec.out_features)
        memory = MemoryTrafficModel(self.config.memory)
        memory.access_dram(spec.in_features * spec.out_features)
        memory.access_sram(execution.streamed_words + execution.output_words)
        steps = [
            StepResult("gemm", "re_pe", execution.cycles, execution.energy_joules, execution.macs),
            StepResult("memory", "memory", 0, memory.energy_joules,
                       sram_accesses=memory.sram_accesses),
        ]
        return LayerResult(name=f"linear({spec.tokens}x{spec.in_features}x{spec.out_features})",
                           cycles=execution.cycles,
                           energy_joules=sum(s.energy_joules for s in steps),
                           frequency_hz=self.config.frequency_hz, steps=steps)

    # -- whole model -------------------------------------------------------------------------------

    def run_model(self, workload: ModelWorkload, include_linear: bool = True) -> ModelResult:
        attention_cycles = 0
        attention_energy = 0.0
        layers: list[LayerResult] = []
        for spec in workload.attention_layers:
            layer = self.run_attention_layer(spec)
            attention_cycles += layer.cycles * spec.repeats
            attention_energy += layer.energy_joules * spec.repeats
            layers.append(layer)

        linear_cycles = 0
        linear_energy = 0.0
        if include_linear:
            for spec in workload.linear_layers:
                layer = self.run_linear_layer(spec)
                linear_cycles += layer.cycles * spec.repeats
                linear_energy += layer.energy_joules * spec.repeats
                layers.append(layer)

        return ModelResult(model=workload.name, device=self.config.name,
                           attention_cycles=attention_cycles, attention_energy=attention_energy,
                           linear_cycles=linear_cycles, linear_energy=linear_energy,
                           frequency_hz=self.config.frequency_hz, layers=layers)
