"""Accelerator configurations and the Table III technology model.

Component areas and powers are taken verbatim from Table III of the paper
(28 nm CMOS, 500 MHz).  Per-cycle component energies are derived as
``power / frequency``; per-access memory energies use typical 28 nm SRAM/DRAM
figures and are the knob the Table V data-access comparison exercises.

The geometry/energy primitives (:class:`ComponentConfig`,
:class:`MemoryEnergyConfig`) live in :mod:`repro.hardware.core.component`;
this module pins the paper's reference design points.  Non-reference design
points are derived from these via :mod:`repro.hardware.core.families`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.hardware.core.component import ComponentConfig, MemoryEnergyConfig

__all__ = [
    "ComponentConfig",
    "MemoryEnergyConfig",
    "ViTALiTyAcceleratorConfig",
    "SangerAcceleratorConfig",
]


@dataclass(frozen=True)
class ViTALiTyAcceleratorConfig:
    """The ViTALiTy accelerator of Table III."""

    name: str = "vitality"
    frequency_hz: float = 500e6
    technology_nm: int = 28
    sa_general: ComponentConfig = field(default_factory=lambda: ComponentConfig(
        "SA-General", 64, 64, 16, area_mm2=3.595, power_mw=1277.0))
    sa_diag: ComponentConfig = field(default_factory=lambda: ComponentConfig(
        "SA-Diag", 64, 1, 16, area_mm2=0.053, power_mw=15.18))
    accumulator_array: ComponentConfig = field(default_factory=lambda: ComponentConfig(
        "Accumulator Array", 64, 1, 16, area_mm2=0.209, power_mw=92.83))
    adder_array: ComponentConfig = field(default_factory=lambda: ComponentConfig(
        "Adder Array", 64, 1, 16, area_mm2=0.012, power_mw=6.34))
    divider_array: ComponentConfig = field(default_factory=lambda: ComponentConfig(
        "Divider Array", 64, 1, 16, area_mm2=0.562, power_mw=46.26))
    memory_area_mm2: float = 0.792
    memory_power_mw: float = 22.9
    memory: MemoryEnergyConfig = field(default_factory=MemoryEnergyConfig)
    #: Average PE-array utilisation for dense GEMMs (pipeline fill/drain and
    #: tile-edge effects); exposed so the ablation benches can sweep it.
    systolic_utilization: float = 0.85
    #: Relative per-MAC energy overhead of reconfigurable PEs needed by the
    #: G-stationary dataflow (Section IV-D): the PEs must support both
    #: inner-PE and down-forward accumulation.
    g_stationary_pe_overhead: float = 1.12

    @property
    def total_area_mm2(self) -> float:
        return (self.sa_general.area_mm2 + self.sa_diag.area_mm2
                + self.accumulator_array.area_mm2 + self.adder_array.area_mm2
                + self.divider_array.area_mm2 + self.memory_area_mm2)

    @property
    def total_power_mw(self) -> float:
        return (self.sa_general.power_mw + self.sa_diag.power_mw
                + self.accumulator_array.power_mw + self.adder_array.power_mw
                + self.divider_array.power_mw + self.memory_power_mw)


@dataclass(frozen=True)
class SangerAcceleratorConfig:
    """The Sanger baseline accelerator of Table III (comparable area/power)."""

    name: str = "sanger"
    frequency_hz: float = 500e6
    technology_nm: int = 28
    pre_processor: ComponentConfig = field(default_factory=lambda: ComponentConfig(
        "Pre-Processor", 64, 64, 4, area_mm2=0.430, power_mw=182.8))
    pack_and_split: ComponentConfig = field(default_factory=lambda: ComponentConfig(
        "Pack & Split", 64, 64, 1, area_mm2=0.016, power_mw=0.64))
    divider_array: ComponentConfig = field(default_factory=lambda: ComponentConfig(
        "Divider Array", 64, 1, 16, area_mm2=0.562, power_mw=46.26))
    re_pe_array: ComponentConfig = field(default_factory=lambda: ComponentConfig(
        "RePE + EXP", 64, 16, 16, area_mm2=3.393, power_mw=1198.35))
    memory_area_mm2: float = 0.792
    memory_power_mw: float = 22.9
    memory: MemoryEnergyConfig = field(default_factory=MemoryEnergyConfig)
    #: Average utilisation of the reconfigurable PE array on the *structured*
    #: sparse workload produced by pack-and-split.
    pe_utilization: float = 0.55
    #: Attention density Sanger achieves with its default threshold T = 0.02
    #: (fraction of (query, key) pairs kept); measured masks can override it.
    default_density: float = 0.35

    @property
    def total_area_mm2(self) -> float:
        return (self.pre_processor.area_mm2 + self.pack_and_split.area_mm2
                + self.divider_array.area_mm2 + self.re_pe_array.area_mm2
                + self.memory_area_mm2)

    @property
    def total_power_mw(self) -> float:
        return (self.pre_processor.power_mw + self.pack_and_split.power_mw
                + self.divider_array.power_mw + self.re_pe_array.power_mw
                + self.memory_power_mw)
