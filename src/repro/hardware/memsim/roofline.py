"""Per-layer roofline classification from the tile simulator's accounting.

A layer's roofline position is read off the measured quantities rather than
an idealised operational-intensity plot: the tile pipeline already knows how
many cycles the systolic partitions spent computing versus stalled on loads
or drains, and how many words actually crossed the DRAM interface.  A layer
is *memory-bound* when its stall cycles dominate its compute cycles — the
array spends most of its time waiting on the memory system — and
*compute-bound* otherwise.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Every operand/result word is 16-bit (the accelerators' fixed data width).
WORD_BYTES = 2


@dataclass(frozen=True)
class RooflineRecord:
    """Memory-system accounting for one simulated layer (one occurrence).

    Cycle counts cover the layer's systolic-partition GEMMs (the tiled ops);
    ``arithmetic_intensity`` is FLOPs (2 x MACs) per DRAM byte, ``None`` when
    the layer's working set was entirely SRAM-resident, and
    ``attained_gbps`` is the DRAM traffic divided by the layer's wall-clock
    latency (so overlap with compute shows up as attained < peak).
    """

    layer: str
    kind: str                          # "attention" | "linear"
    repeats: int
    tiles: int
    macs: int
    dram_bytes: int
    compute_cycles: int
    load_stall_cycles: int
    drain_stall_cycles: int
    arithmetic_intensity: float | None
    attained_gbps: float
    peak_gbps: float
    bound: str                         # "compute" | "memory"

    @property
    def stall_cycles(self) -> int:
        return self.load_stall_cycles + self.drain_stall_cycles

    def to_dict(self) -> dict[str, object]:
        return {
            "layer": self.layer,
            "kind": self.kind,
            "repeats": self.repeats,
            "tiles": self.tiles,
            "macs": self.macs,
            "dram_bytes": self.dram_bytes,
            "compute_cycles": self.compute_cycles,
            "load_stall_cycles": self.load_stall_cycles,
            "drain_stall_cycles": self.drain_stall_cycles,
            "arithmetic_intensity": self.arithmetic_intensity,
            "attained_gbps": self.attained_gbps,
            "peak_gbps": self.peak_gbps,
            "bound": self.bound,
        }

    @classmethod
    def from_dict(cls, payload: dict[str, object]) -> "RooflineRecord":
        return cls(
            layer=payload["layer"],
            kind=payload["kind"],
            repeats=payload["repeats"],
            tiles=payload["tiles"],
            macs=payload["macs"],
            dram_bytes=payload["dram_bytes"],
            compute_cycles=payload["compute_cycles"],
            load_stall_cycles=payload["load_stall_cycles"],
            drain_stall_cycles=payload["drain_stall_cycles"],
            arithmetic_intensity=payload["arithmetic_intensity"],
            attained_gbps=payload["attained_gbps"],
            peak_gbps=payload["peak_gbps"],
            bound=payload["bound"],
        )


def classify(compute_cycles: int, stall_cycles: int) -> str:
    """``"memory"`` when stalls dominate compute, else ``"compute"``."""

    if stall_cycles > 0 and stall_cycles >= compute_cycles:
        return "memory"
    return "compute"
