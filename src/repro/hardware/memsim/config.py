"""Memsim activation, buffer-capacity derivation and per-GEMM tile planning.

The on-chip buffer budget is the family's existing ``sram_kb`` knob: the
Table III reference holds 200 KB organised as four equal operand buffers
(Q/K/V/O, 50 KB each).  Memsim maps three of them onto the roles a tiled
GEMM needs — an input buffer for the streamed operand (ibuf), a weight
buffer for the stationary operand (wbuf) and an output buffer for the
accumulated results (obuf); the fourth holds inter-step intermediates
(``G``, partial scores) exactly as the analytic model assumes.  Double
buffering — loading tile ``i+1`` while tile ``i`` computes — halves the
capacity available to any single tile.

Explicit ``tile_*`` knobs are validated here, at target-construction time,
so an impossible tiling fails with an actionable :class:`KnobError` before
any simulation runs; absent knobs default per GEMM to the largest tile that
fits the array geometry and the half-buffers.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.hardware.core.knobs import HardwareConfig, KnobError

#: The knob names whose presence on a design point activates the memsim path.
MEMSIM_KNOB_NAMES = ("dram_gbps", "tile_m", "tile_n", "tile_k")

#: Every operand/result word is 16-bit.
WORD_BYTES = 2

#: The ``sram_kb`` budget is split over this many equal operand buffers
#: (Q/K/V/O in Table III); ibuf/wbuf/obuf each get one.
BUFFER_PARTITIONS = 4


def buffer_words(sram_kb: float) -> int:
    """Capacity in 16-bit words of one operand buffer (ibuf = wbuf = obuf)."""

    return int(sram_kb * 1024) // BUFFER_PARTITIONS // WORD_BYTES


@dataclass(frozen=True)
class TilePlan:
    """The effective tile sizes for one GEMM on one array."""

    tile_m: int
    tile_k: int
    tile_n: int


@dataclass(frozen=True)
class MemSimConfig:
    """The memsim knob settings plus the derived buffer capacities.

    ``dram_gbps`` may be ``inf`` (pure tiling study, loads never stall);
    ``tile_*`` of ``None`` means "derive the largest fitting tile per GEMM".
    """

    dram_gbps: float
    tile_m: int | None
    tile_k: int | None
    tile_n: int | None
    ibuf_words: int
    wbuf_words: int
    obuf_words: int

    @classmethod
    def from_design(cls, design: HardwareConfig | None,
                    sram_kb: float, rows: int, columns: int,
                    ) -> "MemSimConfig | None":
        """The design point's memsim configuration, ``None`` when inactive.

        ``rows``/``columns`` are the main array's geometry (validation
        target for explicit stationary tiles); auxiliary arrays clamp tiles
        to their own geometry at plan time instead.
        """

        if design is None or not any(name in design for name in MEMSIM_KNOB_NAMES):
            return None
        words = buffer_words(sram_kb)
        config = cls(
            dram_gbps=design.get("dram_gbps", math.inf),
            tile_m=design.get("tile_m"),
            tile_k=design.get("tile_k"),
            tile_n=design.get("tile_n"),
            ibuf_words=words,
            wbuf_words=words,
            obuf_words=words,
        )
        config._validate(rows, columns, sram_kb)
        return config

    def _validate(self, rows: int, columns: int, sram_kb: float) -> None:
        half = self._half
        if self.tile_k is not None and self.tile_k > rows:
            raise KnobError(
                f"tile_k={self.tile_k} exceeds the {rows} stationary rows of "
                f"the {rows}x{columns} PE array; choose tile_k<={rows} or a "
                f"taller pe geometry")
        if self.tile_n is not None and self.tile_n > columns:
            raise KnobError(
                f"tile_n={self.tile_n} exceeds the {columns} columns of the "
                f"{rows}x{columns} PE array; choose tile_n<={columns} or a "
                f"wider pe geometry")
        tile_k = self.tile_k if self.tile_k is not None else rows
        tile_n = self.tile_n if self.tile_n is not None else columns
        if self.tile_k is not None and self.tile_n is not None \
                and tile_k * tile_n > half(self.wbuf_words):
            raise KnobError(
                f"stationary tile tile_k={tile_k} x tile_n={tile_n} "
                f"({tile_k * tile_n} words) exceeds the double-buffered "
                f"weight-buffer half ({half(self.wbuf_words)} words at "
                f"sram_kb={sram_kb:g}); shrink the tile or raise sram_kb")
        if self.tile_m is not None:
            if self.tile_k is not None and self.tile_m * tile_k > half(self.ibuf_words):
                raise KnobError(
                    f"input tile tile_m={self.tile_m} x tile_k={tile_k} "
                    f"({self.tile_m * tile_k} words) exceeds the "
                    f"double-buffered input-buffer half "
                    f"({half(self.ibuf_words)} words at sram_kb={sram_kb:g}); "
                    f"shrink the tile or raise sram_kb")
            if self.tile_n is not None and self.tile_m * tile_n > half(self.obuf_words):
                raise KnobError(
                    f"output tile tile_m={self.tile_m} x tile_n={tile_n} "
                    f"({self.tile_m * tile_n} words) exceeds the "
                    f"double-buffered output-buffer half "
                    f"({half(self.obuf_words)} words at sram_kb={sram_kb:g}); "
                    f"shrink the tile or raise sram_kb")

    @staticmethod
    def _half(words: int) -> int:
        return max(1, words // 2)

    def plan(self, m: int, k: int, n: int, rows: int, columns: int) -> TilePlan:
        """Effective tile sizes for an ``(m x k) @ (k x n)`` GEMM.

        Explicit knobs are clamped to the problem and array dimensions;
        derived defaults start at the array-shaped stationary tile and
        shrink until every tile fits its double-buffered half-capacity.
        """

        half = self._half
        tile_k = min(k, rows, self.tile_k if self.tile_k is not None else k)
        tile_n = min(n, columns, self.tile_n if self.tile_n is not None else n)
        if tile_k * tile_n > half(self.wbuf_words):
            tile_n = max(1, half(self.wbuf_words) // tile_k)
        tile_m_cap = min(half(self.ibuf_words) // tile_k,
                         half(self.obuf_words) // tile_n)
        tile_m = min(m, self.tile_m if self.tile_m is not None else m,
                     max(1, tile_m_cap))
        return TilePlan(tile_m=tile_m, tile_k=tile_k, tile_n=tile_n)

    def dram_words_per_cycle(self, frequency_hz: float) -> float:
        """DRAM interface rate in 16-bit words per clock cycle (may be inf)."""

        return self.dram_gbps * 1e9 / WORD_BYTES / frequency_hz

    def fits_sram(self, words: int) -> bool:
        """Whether a whole operand is resident in one on-chip buffer.

        Residency is judged against the full buffer capacity (double
        buffering constrains *tiles*, not what can live on chip); operands
        larger than a buffer stream from DRAM tile by tile.
        """

        return words <= self.ibuf_words
