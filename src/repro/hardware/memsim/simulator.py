"""The double-buffered tile pipeline: compute vs load-stall vs drain-stall.

One GEMM ``O (M x N) = A (M x K) @ B (K x N)`` is executed as a sequence of
tile passes ordered ``batch -> m-chunk -> n-tile -> k-tile`` (output
stationary: the partial sums for one ``(m-chunk, n-tile)`` output tile
accumulate in the obuf across the inner k loop and drain once, after the
last k-tile).  Each pass streams ``chunk_m`` activation rows through one
``tile_k x tile_n`` stationary tile, exactly like the analytic
:func:`~repro.hardware.core.arrays.matmul_cycles` model — at infinite
bandwidth and single-chunk ``M`` the tiled cycle count collapses to the
analytic one.

Double buffering overlaps the memory system with compute: while pass ``i``
computes, the operands of pass ``i+1`` load into the spare buffer halves and
the output drained by pass ``i-1`` writes back.  Loads and drains use
independent ports, so each is compared against the compute window on its
own:

* ``load_stall``   — the first pass's full load (nothing to overlap with)
  plus every later pass's load cycles in excess of the previous pass's
  compute cycles;
* ``drain_stall``  — the last pass's full drain plus every earlier drain's
  cycles in excess of the next pass's compute cycles.

Stalled cycles are idle (clock-gated): the energy model charges the array
for compute cycles only, and the memory-access energies stay with the
accelerator's existing traffic accounting.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.hardware.memsim.config import TilePlan


@dataclass
class GemmMemTrace:
    """Cycle and traffic accounting for one tiled GEMM."""

    tiles: int                 # tile passes executed
    compute_cycles: int        # active cycles (streaming + array fill)
    load_stall_cycles: int
    drain_stall_cycles: int
    dram_words: int            # words moved across the DRAM interface
    sram_words: int            # words moved between buffers and the array
    macs: int

    @property
    def cycles(self) -> int:
        return self.compute_cycles + self.load_stall_cycles + self.drain_stall_cycles

    def add(self, other: "GemmMemTrace") -> "GemmMemTrace":
        return GemmMemTrace(
            tiles=self.tiles + other.tiles,
            compute_cycles=self.compute_cycles + other.compute_cycles,
            load_stall_cycles=self.load_stall_cycles + other.load_stall_cycles,
            drain_stall_cycles=self.drain_stall_cycles + other.drain_stall_cycles,
            dram_words=self.dram_words + other.dram_words,
            sram_words=self.sram_words + other.sram_words,
            macs=self.macs + other.macs,
        )


def _transfer_cycles(words: int, words_per_cycle: float) -> int:
    if words <= 0 or math.isinf(words_per_cycle):
        return 0
    return math.ceil(words / words_per_cycle)


def _chunks(total: int, size: int) -> list[int]:
    full, rest = divmod(total, size)
    return [size] * full + ([rest] if rest else [])


def simulate_tiled_gemm(m: int, k: int, n: int, *,
                        rows: int, columns: int, utilization: float,
                        batch: int, plan: TilePlan,
                        dram_words_per_cycle: float,
                        sram_words_per_cycle: float,
                        drain_words_per_cycle: float,
                        stationary_dram: bool,
                        streamed_dram: bool) -> GemmMemTrace:
    """Run ``batch`` tiled ``(m x k) @ (k x n)`` products through the pipeline.

    ``stationary_dram`` / ``streamed_dram`` say which interface feeds each
    operand (chosen by the caller from operand-residency checks); drained
    outputs always write back to SRAM.
    """

    stationary_rate = dram_words_per_cycle if stationary_dram else sram_words_per_cycle
    streamed_rate = dram_words_per_cycle if streamed_dram else sram_words_per_cycle

    computes: list[int] = []
    loads: list[int] = []
    drains: list[int] = []
    dram_words = 0
    sram_words = 0

    k_tiles = _chunks(k, plan.tile_k)
    n_tiles = _chunks(n, plan.tile_n)
    m_chunks = _chunks(m, plan.tile_m)
    for _ in range(batch):
        for chunk_m in m_chunks:
            for tile_n in n_tiles:
                for index_k, tile_k in enumerate(k_tiles):
                    stationary_words = tile_k * tile_n
                    streamed_words = chunk_m * tile_k
                    computes.append(math.ceil(chunk_m / utilization))
                    loads.append(_transfer_cycles(stationary_words, stationary_rate)
                                 + _transfer_cycles(streamed_words, streamed_rate))
                    output_words = (chunk_m * tile_n
                                    if index_k == len(k_tiles) - 1 else 0)
                    drains.append(_transfer_cycles(output_words, drain_words_per_cycle))
                    if stationary_dram:
                        dram_words += stationary_words
                    else:
                        sram_words += stationary_words
                    if streamed_dram:
                        dram_words += streamed_words
                    else:
                        sram_words += streamed_words
                    sram_words += output_words

    # Array fill once per batched GEMM, as in the analytic model.
    compute_cycles = rows + columns + sum(computes)
    load_stall = loads[0] + sum(
        max(0, loads[i] - computes[i - 1]) for i in range(1, len(loads)))
    drain_stall = drains[-1] + sum(
        max(0, drains[i] - computes[i + 1]) for i in range(len(drains) - 1))
    return GemmMemTrace(
        tiles=len(computes),
        compute_cycles=compute_cycles,
        load_stall_cycles=load_stall,
        drain_stall_cycles=drain_stall,
        dram_words=dram_words,
        sram_words=sram_words,
        macs=m * k * n * batch,
    )
