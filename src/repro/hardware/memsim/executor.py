"""The memsim-backed accelerator: tiled systolic partitions + rooflines.

:class:`TiledSystolicArray` is a drop-in replacement for
:class:`~repro.hardware.core.arrays.SystolicArray` whose ``matmul`` runs the
tile pipeline of :mod:`repro.hardware.memsim.simulator` instead of the
analytic cycle count: the returned execution carries the stall-inflated
cycle total, energy for the active (compute) cycles only, and the same word
counts the accelerator's SRAM-energy accounting has always charged — memsim
refines *timing*, the energy model is unchanged.

Operand sourcing is a residency check, not a per-call annotation: an operand
whose whole footprint fits one on-chip buffer is SRAM-resident (its tile
loads ride the wide on-chip ports and essentially never stall); anything
larger streams from DRAM at the ``dram_gbps`` interface rate.  That rule
reproduces the analytic model's narrative — linear-layer weights stream from
DRAM, small attention operands stay resident — and additionally charges
DRAM for attention operands that outgrow the buffers at long sequence
lengths, which the analytic model waves away.

:class:`MemSimViTALiTyAccelerator` swaps both systolic partitions for tiled
ones and aggregates each layer's traces into a
:class:`~repro.hardware.memsim.roofline.RooflineRecord`.
"""

from __future__ import annotations

from repro.hardware.accelerator import ViTALiTyAccelerator
from repro.hardware.common import Dataflow, LayerResult
from repro.hardware.config import ViTALiTyAcceleratorConfig
from repro.hardware.core.arrays import MatmulExecution, SystolicArray
from repro.hardware.core.component import ComponentConfig
from repro.hardware.memsim.config import MemSimConfig
from repro.hardware.memsim.roofline import WORD_BYTES, RooflineRecord, classify
from repro.hardware.memsim.simulator import GemmMemTrace, simulate_tiled_gemm
from repro.workloads import AttentionLayerSpec, LinearLayerSpec, ModelWorkload


class TiledSystolicArray(SystolicArray):
    """A systolic partition whose GEMMs run the tile-level memory pipeline."""

    def __init__(self, component: ComponentConfig, frequency_hz: float,
                 utilization: float, memsim: MemSimConfig):
        super().__init__(component, frequency_hz, utilization)
        self.memsim = memsim
        self.traces: list[GemmMemTrace] = []

    def take_traces(self) -> list[GemmMemTrace]:
        """Pop the traces recorded since the last call (one layer's worth)."""

        traces, self.traces = self.traces, []
        return traces

    def matmul(self, m: int, k: int, n: int, pe_energy_scale: float = 1.0,
               batch: int = 1) -> MatmulExecution:
        plan = self.memsim.plan(m, k, n, self.rows, self.columns)
        # On-chip ports feed the array edges; one word per edge lane per cycle.
        sram_rate = float(self.rows + self.columns)
        trace = simulate_tiled_gemm(
            m, k, n,
            rows=self.rows, columns=self.columns, utilization=self.utilization,
            batch=batch, plan=plan,
            dram_words_per_cycle=self.memsim.dram_words_per_cycle(self.frequency_hz),
            sram_words_per_cycle=sram_rate,
            drain_words_per_cycle=float(self.columns),
            stationary_dram=not self.memsim.fits_sram(k * n * batch),
            streamed_dram=not self.memsim.fits_sram(m * k * batch),
        )
        self.traces.append(trace)
        energy = (trace.compute_cycles
                  * self.component.energy_per_cycle(self.frequency_hz)
                  * pe_energy_scale)
        return MatmulExecution(
            cycles=trace.cycles,
            macs=trace.macs,
            energy_joules=energy,
            stationary_loads=k * n * batch,
            streamed_words=m * k * batch,
            output_words=m * n * batch,
        )


class MemSimViTALiTyAccelerator(ViTALiTyAccelerator):
    """The ViTALiTy accelerator with tile-level memory simulation.

    Behaves exactly like :class:`ViTALiTyAccelerator` except that every
    systolic GEMM pays for its memory traffic in cycles, and each simulated
    layer appends a :class:`RooflineRecord` to :attr:`rooflines` (aligned
    with the layers of the last :meth:`run_model` call).
    """

    def __init__(self, config: ViTALiTyAcceleratorConfig, memsim: MemSimConfig,
                 dataflow: Dataflow = Dataflow.DOWN_FORWARD,
                 pipelined: bool = True):
        super().__init__(config, dataflow=dataflow, pipelined=pipelined)
        self.memsim = memsim
        frequency = self.config.frequency_hz
        utilization = self.config.systolic_utilization
        self.sa_general = TiledSystolicArray(self.config.sa_general, frequency,
                                             utilization, memsim)
        self.sa_diag = TiledSystolicArray(self.config.sa_diag, frequency,
                                          utilization, memsim)
        self.rooflines: list[RooflineRecord] = []

    def scaled_to_peak(self, peak_macs_per_second: float) -> "MemSimViTALiTyAccelerator":
        scaled = super().scaled_to_peak(peak_macs_per_second)
        return MemSimViTALiTyAccelerator(scaled.config, self.memsim,
                                         dataflow=self.dataflow,
                                         pipelined=self.pipelined)

    def _record_roofline(self, layer: LayerResult, kind: str) -> None:
        traces = self.sa_general.take_traces() + self.sa_diag.take_traces()
        total = traces[0]
        for trace in traces[1:]:
            total = total.add(trace)
        dram_bytes = total.dram_words * WORD_BYTES
        seconds = layer.cycles / self.config.frequency_hz
        attained = dram_bytes / seconds / 1e9 if seconds > 0 else 0.0
        intensity = (2.0 * total.macs / dram_bytes) if dram_bytes else None
        self.rooflines.append(RooflineRecord(
            layer=layer.name,
            kind=kind,
            repeats=1,
            tiles=total.tiles,
            macs=total.macs,
            dram_bytes=dram_bytes,
            compute_cycles=total.compute_cycles,
            load_stall_cycles=total.load_stall_cycles,
            drain_stall_cycles=total.drain_stall_cycles,
            arithmetic_intensity=intensity,
            attained_gbps=attained,
            peak_gbps=self.memsim.dram_gbps,
            bound=classify(total.compute_cycles,
                           total.load_stall_cycles + total.drain_stall_cycles),
        ))

    def run_attention_layer(self, spec: AttentionLayerSpec) -> LayerResult:
        self.sa_general.take_traces()
        self.sa_diag.take_traces()
        layer = super().run_attention_layer(spec)
        self._record_roofline(layer, "attention")
        return layer

    def run_linear_layer(self, spec: LinearLayerSpec) -> LayerResult:
        self.sa_general.take_traces()
        self.sa_diag.take_traces()
        layer = super().run_linear_layer(spec)
        self._record_roofline(layer, "linear")
        return layer

    def run_model(self, workload: ModelWorkload, include_linear: bool = True):
        self.rooflines = []
        return super().run_model(workload, include_linear=include_linear)
