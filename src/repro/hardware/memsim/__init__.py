"""Tile-level memory-hierarchy simulation under the analytic accelerators.

The cycle-level accelerator models are analytic above the lane arrays: a
GEMM's operands are assumed to arrive exactly when the systolic array wants
them, so a 128x128 array starving on DRAM looks as fast as one fed from
infinite bandwidth.  This package adds the missing fidelity step — the
``systolic_sim``-style tiled execution model — without touching the default
design points:

* :mod:`config` — :class:`MemSimConfig`: the ``dram_gbps`` / ``tile_m`` /
  ``tile_n`` / ``tile_k`` knob values plus the ibuf/wbuf/obuf word capacities
  derived from the family's ``sram_kb`` buffer budget, and the per-GEMM tile
  planner that shrinks default tiles to fit the double-buffered halves;
* :mod:`simulator` — the double-buffered load-compute-drain pipeline over
  the planned tiles, accounting every cycle as compute, load-stall or
  drain-stall (:func:`simulate_tiled_gemm`);
* :mod:`roofline` — :class:`RooflineRecord`, the per-layer classification
  (compute-bound vs memory-bound, arithmetic intensity, attained vs peak
  GB/s) surfaced in :class:`~repro.engine.results.RunResult`;
* :mod:`executor` — :class:`TiledSystolicArray` (a drop-in
  :class:`~repro.hardware.core.arrays.SystolicArray` whose ``matmul`` runs
  the tile pipeline) and :class:`MemSimViTALiTyAccelerator` (the ViTALiTy
  accelerator with both systolic partitions tiled and per-layer rooflines
  collected).

The memsim path activates only when a design point sets a bandwidth or tile
knob; reference configs never construct these classes, so default results
stay bit-identical to the seed models.
"""

from repro.hardware.memsim.config import MemSimConfig, TilePlan, buffer_words
from repro.hardware.memsim.executor import MemSimViTALiTyAccelerator, TiledSystolicArray
from repro.hardware.memsim.roofline import RooflineRecord
from repro.hardware.memsim.simulator import GemmMemTrace, simulate_tiled_gemm

__all__ = [
    "GemmMemTrace",
    "MemSimConfig",
    "MemSimViTALiTyAccelerator",
    "RooflineRecord",
    "TiledSystolicArray",
    "TilePlan",
    "buffer_words",
    "simulate_tiled_gemm",
]
