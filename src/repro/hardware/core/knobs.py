"""The design-point grammar: knob strings parsed into hashable configs.

A design point is written as a *configured target name*::

    vitality[pe=32x32,freq=1ghz]
    sanger[density=0.2,sram_kb=400]
    gpu[compute=0.5,power=30]

The bracketed part is a comma-separated list of ``knob=value`` pairs.  Each
target family publishes a :class:`KnobSchema` declaring which knobs exist,
how their values parse and render, and what the family's reference (Table
III) value is.  Parsing produces a :class:`HardwareConfig` — a frozen,
hashable record of ``(family, sorted knob items)`` that the engine uses as
the identity of a design point: knob order is normalised, values are
canonicalised, and knobs set to their reference value are dropped, so every
spelling of the same physical design resolves to one config (and one result
cache entry).

Errors raise :class:`KnobError` (a ``ValueError``) with messages that name
the offending knob, the expected format and the valid alternatives.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping

#: Frequency suffixes accepted by ``freq=`` values, largest unit first so the
#: ``hz`` suffix of ``mhz``/``ghz``/``khz`` cannot shadow them.
_FREQUENCY_UNITS = (("ghz", 1e9), ("mhz", 1e6), ("khz", 1e3), ("hz", 1.0))


class KnobError(ValueError):
    """A malformed or unknown design-point knob."""


# ---------------------------------------------------------------------------------
# Value parsers/renderers.  Renderers must round-trip: parse(render(v)) == v.
# ---------------------------------------------------------------------------------

def parse_geometry(text: str) -> tuple[int, int]:
    """``"32x32"`` -> ``(32, 32)``."""

    rows, separator, columns = text.lower().partition("x")
    if not separator or not rows.isdigit() or not columns.isdigit():
        raise KnobError(f"expected ROWSxCOLS (e.g. '32x32'), got {text!r}")
    geometry = (int(rows), int(columns))
    if min(geometry) < 1:
        raise KnobError(f"array dimensions must be >= 1, got {text!r}")
    return geometry


def render_geometry(value: tuple[int, int]) -> str:
    return f"{value[0]}x{value[1]}"


def parse_frequency(text: str) -> float:
    """``"500mhz"`` / ``"1ghz"`` / ``"2.5e8"`` -> hertz."""

    lowered = text.lower().strip()
    number, multiplier = lowered, 1.0
    for unit, unit_multiplier in _FREQUENCY_UNITS:
        if lowered.endswith(unit):
            number, multiplier = lowered[:-len(unit)], unit_multiplier
            break
    try:
        value = float(number) * multiplier
    except ValueError:
        raise KnobError(f"expected a frequency such as '500mhz', '1ghz' or a "
                        f"number in Hz, got {text!r}") from None
    if value <= 0:
        raise KnobError(f"frequency must be positive, got {text!r}")
    return value


def render_frequency(hertz: float) -> str:
    """Hertz -> the shortest exact spelling (``1ghz``, ``433mhz``, raw Hz)."""

    megahertz = hertz / 1e6
    if megahertz == int(megahertz):
        gigahertz = hertz / 1e9
        if gigahertz == int(gigahertz):
            return f"{int(gigahertz)}ghz"
        return f"{int(megahertz)}mhz"
    return repr(hertz)


def parse_positive_int(text: str) -> int:
    if not text.isdigit() or int(text) < 1:
        raise KnobError(f"expected a positive integer, got {text!r}")
    return int(text)


def parse_non_negative_int(text: str) -> int:
    if not text.isdigit():
        raise KnobError(f"expected a non-negative integer, got {text!r}")
    return int(text)


def parse_positive_float(text: str) -> float:
    try:
        value = float(text)
    except ValueError:
        raise KnobError(f"expected a number, got {text!r}") from None
    if value <= 0:
        raise KnobError(f"expected a positive number, got {text!r}")
    return value


def parse_fraction(text: str) -> float:
    value = parse_positive_float(text)
    if value > 1.0:
        raise KnobError(f"expected a fraction in (0, 1], got {text!r}")
    return value


def render_number(value: object) -> str:
    """Exact, re-parseable rendering for int/float knob values."""

    if isinstance(value, int):
        return str(value)
    return repr(value)


@dataclass(frozen=True)
class Knob:
    """One named design-space dimension of a target family."""

    name: str
    parse: Callable[[str], object]
    render: Callable[[object], str]
    doc: str
    #: Reference (Table III) value; parsing drops knobs set to it, so the
    #: explicit-default spelling resolves to the reference design point.
    #: ``None`` means "keep the base target's value" (no drop possible).
    default: object = None


@dataclass(frozen=True)
class HardwareConfig:
    """A design point: a target family plus its non-default knob settings.

    ``knobs`` is a name-sorted tuple of ``(name, value)`` pairs, which makes
    the config hashable, order-insensitive and directly usable as a cache
    key.  The empty tuple is the family's reference design point.
    """

    family: str
    knobs: tuple[tuple[str, object], ...] = ()

    @property
    def is_reference(self) -> bool:
        """True when every knob sits at the family's Table III value."""

        return not self.knobs

    def get(self, name: str, default: object = None) -> object:
        for knob_name, value in self.knobs:
            if knob_name == name:
                return value
        return default

    def __contains__(self, name: str) -> bool:
        return any(knob_name == name for knob_name, _ in self.knobs)


@dataclass(frozen=True)
class KnobSchema:
    """The knob vocabulary of one target family."""

    family: str
    knobs: Mapping[str, Knob] = field(default_factory=dict)

    def parse(self, text: str) -> HardwareConfig:
        """Parse ``"pe=32x32,freq=1ghz"`` (brackets already stripped)."""

        items: dict[str, object] = {}
        for part in text.split(","):
            part = part.strip()
            if not part:
                continue
            name, separator, raw_value = part.partition("=")
            name, raw_value = name.strip(), raw_value.strip()
            if not separator or not name or not raw_value:
                raise KnobError(
                    f"malformed knob {part!r} for {self.family!r}: expected "
                    f"knob=value, e.g. {self.example()!r}")
            knob = self.knobs.get(name)
            if knob is None:
                raise KnobError(
                    f"unknown knob {name!r} for {self.family!r} targets; "
                    f"valid knobs: {self.describe()}")
            if name in items:
                raise KnobError(f"duplicate knob {name!r} in {text!r}")
            try:
                value = knob.parse(raw_value)
            except KnobError as error:
                raise KnobError(f"invalid value for knob {name!r}: {error}") from None
            if value != knob.default:     # reference values identify the base design
                items[name] = value
        return HardwareConfig(self.family, tuple(sorted(items.items())))

    def render(self, config: HardwareConfig) -> str:
        """The canonical knob string (sorted names, canonical values)."""

        return ",".join(f"{name}={self.knobs[name].render(value)}"
                        for name, value in config.knobs)

    def describe(self) -> str:
        """Human-readable knob inventory for error messages and ``--help``."""

        return "; ".join(f"{name} ({knob.doc})"
                         for name, knob in sorted(self.knobs.items()))

    def example(self) -> str:
        name, knob = next(iter(sorted(self.knobs.items())))
        rendered = knob.render(knob.default) if knob.default is not None else "..."
        return f"{name}={rendered}"
