"""The hardware design-point grammar (a view of :mod:`repro.knobs`).

A design point is written as a *configured target name*::

    vitality[pe=32x32,freq=1ghz]
    sanger[density=0.2,sram_kb=400]
    gpu[compute=0.5,power=30]

The grammar machinery — :class:`Knob`, :class:`KnobSchema`, the value
parsers/renderers and the canonicalising :class:`KnobConfig` — lives in the
neutral :mod:`repro.knobs` module, because the *workload* side of a run
(:mod:`repro.workloads.core`) is spelled with exactly the same grammar.
This module re-exports it under the hardware-facing names; in hardware
contexts a parsed config is a :class:`HardwareConfig` (an alias of
:class:`~repro.knobs.KnobConfig`).
"""

from __future__ import annotations

from repro.knobs import (
    Knob,
    KnobConfig,
    KnobError,
    KnobSchema,
    parse_fraction,
    parse_frequency,
    parse_geometry,
    parse_non_negative_int,
    parse_positive_float,
    parse_positive_int,
    render_frequency,
    render_geometry,
    render_number,
)

#: A hardware design point: a target family plus its non-default knob settings.
HardwareConfig = KnobConfig

__all__ = [
    "HardwareConfig",
    "Knob",
    "KnobConfig",
    "KnobError",
    "KnobSchema",
    "parse_fraction",
    "parse_frequency",
    "parse_geometry",
    "parse_non_negative_int",
    "parse_positive_float",
    "parse_positive_int",
    "render_frequency",
    "render_geometry",
    "render_number",
]
