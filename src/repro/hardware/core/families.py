"""Per-family knob schemas and design-point builders.

Each target family (``vitality``, ``sanger``, ``salo``, ``platform``)
publishes the knobs its design space exposes and a builder that materialises
a parsed :class:`~repro.hardware.core.knobs.HardwareConfig` into the family's
concrete configuration object, derived from the Table III reference point via
the scaling rules in :mod:`repro.hardware.core.component`:

* ``pe`` re-dimensions the main PE array; the auxiliary lane arrays
  (SA-Diag, accumulator/adder/divider, Sanger's pre-processor and
  pack-and-split) keep their row-proportional geometry;
* ``freq`` scales every component's power linearly (per-cycle energy is
  frequency-invariant at a fixed node) and the clock all cycle counts are
  converted through;
* ``sram_kb`` resizes the on-chip buffers: per-access energy follows the
  square-root capacity rule, buffer area/power scale linearly;
* ``sram_pj`` / ``dram_pj`` pin per-access energies directly (the Table V
  data-access knob);
* ``util`` / ``density`` / ``window`` / ``global`` set the model parameters
  that are utilisation- or workload-shaped rather than geometric;
* ``dram_gbps`` / ``tile_m`` / ``tile_k`` / ``tile_n`` activate the
  tile-level memory simulator (:mod:`repro.hardware.memsim`) on the
  ``vitality`` family — ``dram_gbps=inf`` is the reference (ideal memory,
  the analytic model) and is dropped by canonicalisation;
* platforms expose ``compute`` (effective-throughput scale), ``power``
  (watts) and ``launch_us`` (per-step dispatch overhead).

Reference-valued configs short-circuit to the reference objects, keeping the
default design points bit-identical to the seed models.
"""

from __future__ import annotations

import math
from dataclasses import replace

from repro.hardware.config import (
    SangerAcceleratorConfig,
    ViTALiTyAcceleratorConfig,
)
from repro.hardware.core.component import ComponentConfig
from repro.hardware.core.knobs import (
    HardwareConfig,
    Knob,
    KnobError,
    KnobSchema,
    parse_fraction,
    parse_frequency,
    parse_geometry,
    parse_non_negative_int,
    parse_positive_float,
    parse_positive_int,
    render_frequency,
    render_geometry,
    render_number,
)
from repro.hardware.platforms import Platform
from repro.hardware.salo import SALOConfig

_VITALITY_REFERENCE = ViTALiTyAcceleratorConfig()
_SANGER_REFERENCE = SangerAcceleratorConfig()
_SALO_REFERENCE = SALOConfig()


def _geometry_knob(doc: str, default: tuple[int, int]) -> Knob:
    return Knob("pe", parse_geometry, render_geometry, doc, default=default)


def _frequency_knob(default: float) -> Knob:
    return Knob("freq", parse_frequency, render_frequency,
                "clock frequency, e.g. 500mhz or 1ghz", default=default)


def parse_dram_gbps(text: str) -> float:
    """Positive GB/s, or ``inf`` for the ideal (analytic) memory system."""

    value = parse_positive_float(text)
    if math.isnan(value):
        raise KnobError(f"expected a positive number of GB/s or 'inf', "
                        f"got {text!r}")
    return value


def _memsim_knobs() -> list[Knob]:
    """The tile-level memory-simulator knobs (see ``hardware/memsim``).

    Any of these present on a design point activates the memsim path;
    ``dram_gbps`` at its ``inf`` reference (ideal bandwidth — the analytic
    model is exact) is dropped by canonicalisation like every other
    reference value, so ``vitality[dram_gbps=inf]`` is the base target.
    The tile knobs have no reference value: explicitly pinning a tile size
    always selects the memsim path.
    """

    return [
        Knob("dram_gbps", parse_dram_gbps, render_number,
             "DRAM bandwidth in GB/s fed to the tile-level memory simulator "
             "('inf' = ideal, the analytic reference)", default=math.inf),
        Knob("tile_m", parse_positive_int, render_number,
             "memsim tile rows streamed per pass (default: largest fitting)"),
        Knob("tile_k", parse_positive_int, render_number,
             "memsim stationary-tile depth (default: the PE-array rows)"),
        Knob("tile_n", parse_positive_int, render_number,
             "memsim stationary-tile width (default: the PE-array columns)"),
    ]


def _memory_knobs(reference) -> list[Knob]:
    return [
        Knob("sram_kb", parse_positive_int, render_number,
             "on-chip buffer capacity in KB", default=reference.memory.sram_kb),
        Knob("sram_pj", parse_positive_float, render_number,
             "SRAM energy per 16-bit access in pJ",
             default=reference.memory.sram_access * 1e12),
        Knob("dram_pj", parse_positive_float, render_number,
             "DRAM energy per 16-bit access in pJ",
             default=reference.memory.dram_access * 1e12),
    ]


VITALITY_SCHEMA = KnobSchema("vitality", {knob.name: knob for knob in [
    _geometry_knob("SA-General geometry ROWSxCOLS, e.g. 32x32",
                   (_VITALITY_REFERENCE.sa_general.rows,
                    _VITALITY_REFERENCE.sa_general.columns)),
    _frequency_knob(_VITALITY_REFERENCE.frequency_hz),
    *_memory_knobs(_VITALITY_REFERENCE),
    *_memsim_knobs(),
    Knob("util", parse_fraction, render_number,
         "systolic-array utilisation in (0, 1]",
         default=_VITALITY_REFERENCE.systolic_utilization),
]})

SANGER_SCHEMA = KnobSchema("sanger", {knob.name: knob for knob in [
    _geometry_knob("RePE array geometry ROWSxCOLS, e.g. 32x8",
                   (_SANGER_REFERENCE.re_pe_array.rows,
                    _SANGER_REFERENCE.re_pe_array.columns)),
    _frequency_knob(_SANGER_REFERENCE.frequency_hz),
    *_memory_knobs(_SANGER_REFERENCE),
    Knob("util", parse_fraction, render_number,
         "RePE utilisation on the structured sparse workload in (0, 1]",
         default=_SANGER_REFERENCE.pe_utilization),
    Knob("density", parse_fraction, render_number,
         "attention density kept by the predicted mask in (0, 1]",
         default=_SANGER_REFERENCE.default_density),
]})

SALO_SCHEMA = KnobSchema("salo", {knob.name: knob for knob in [
    _geometry_knob("budget SA geometry ROWSxCOLS, e.g. 32x32",
                   (_VITALITY_REFERENCE.sa_general.rows,
                    _VITALITY_REFERENCE.sa_general.columns)),
    _frequency_knob(_VITALITY_REFERENCE.frequency_hz),
    Knob("window", parse_positive_int, render_number,
         "sliding-window width in keys", default=_SALO_REFERENCE.window),
    Knob("global", parse_non_negative_int, render_number,
         "number of global tokens", default=_SALO_REFERENCE.global_tokens),
    Knob("util", parse_fraction, render_number,
         "spatial PE utilisation on short sequences in (0, 1]",
         default=_SALO_REFERENCE.short_sequence_utilization),
]})

PLATFORM_SCHEMA = KnobSchema("platform", {knob.name: knob for knob in [
    Knob("compute", parse_positive_float, render_number,
         "scale on every effective-throughput rate and the peak", default=1.0),
    Knob("power", parse_positive_float, render_number,
         "workload power in watts"),
    Knob("launch_us", parse_positive_float, render_number,
         "kernel-launch overhead per step per layer in microseconds"),
]})

#: Every family schema, keyed by family name (the registry's lookup table).
FAMILY_SCHEMAS: dict[str, KnobSchema] = {
    schema.family: schema
    for schema in (VITALITY_SCHEMA, SANGER_SCHEMA, SALO_SCHEMA, PLATFORM_SCHEMA)
}


def _check_family(design: HardwareConfig | None, family: str) -> None:
    if design is not None and design.family != family:
        raise KnobError(f"design point family {design.family!r} cannot "
                        f"configure a {family!r} target")


def _memory_scaled(reference, design: HardwareConfig):
    """(memory config, sram capacity ratio) for the shared memory knobs."""

    sram_kb = design.get("sram_kb", reference.memory.sram_kb)
    sram_pj = design.get("sram_pj")
    dram_pj = design.get("dram_pj")
    memory = reference.memory.scaled(
        sram_kb=sram_kb,
        sram_access=None if sram_pj is None else sram_pj * 1e-12,
        dram_access=None if dram_pj is None else dram_pj * 1e-12,
    )
    return memory, sram_kb / reference.memory.sram_kb


def build_vitality_config(design: HardwareConfig | None = None) -> ViTALiTyAcceleratorConfig:
    """Materialise a ``vitality``-family design point (Table III by default)."""

    _check_family(design, "vitality")
    base = _VITALITY_REFERENCE
    if design is None or design.is_reference:
        return base
    rows, columns = design.get("pe", (base.sa_general.rows, base.sa_general.columns))
    frequency = design.get("freq", base.frequency_hz)
    frequency_ratio = frequency / base.frequency_hz
    row_ratio = rows / base.sa_general.rows
    memory, sram_ratio = _memory_scaled(base, design)

    def lane_array(component: ComponentConfig) -> ComponentConfig:
        return component.scaled(rows=max(1, round(component.rows * row_ratio)),
                                frequency_ratio=frequency_ratio)

    return replace(
        base,
        frequency_hz=frequency,
        sa_general=base.sa_general.scaled(rows=rows, columns=columns,
                                          frequency_ratio=frequency_ratio),
        sa_diag=lane_array(base.sa_diag),
        accumulator_array=lane_array(base.accumulator_array),
        adder_array=lane_array(base.adder_array),
        divider_array=lane_array(base.divider_array),
        memory_area_mm2=base.memory_area_mm2 * sram_ratio,
        memory_power_mw=base.memory_power_mw * sram_ratio * frequency_ratio,
        memory=memory,
        systolic_utilization=design.get("util", base.systolic_utilization),
    )


def build_sanger_config(design: HardwareConfig | None = None) -> SangerAcceleratorConfig:
    """Materialise a ``sanger``-family design point (Table III by default)."""

    _check_family(design, "sanger")
    base = _SANGER_REFERENCE
    if design is None or design.is_reference:
        return base
    rows, columns = design.get("pe", (base.re_pe_array.rows, base.re_pe_array.columns))
    frequency = design.get("freq", base.frequency_hz)
    frequency_ratio = frequency / base.frequency_hz
    row_ratio = rows / base.re_pe_array.rows
    memory, sram_ratio = _memory_scaled(base, design)

    def aux_array(component: ComponentConfig) -> ComponentConfig:
        return component.scaled(rows=max(1, round(component.rows * row_ratio)),
                                frequency_ratio=frequency_ratio)

    return replace(
        base,
        frequency_hz=frequency,
        re_pe_array=base.re_pe_array.scaled(rows=rows, columns=columns,
                                            frequency_ratio=frequency_ratio),
        pre_processor=aux_array(base.pre_processor),
        pack_and_split=aux_array(base.pack_and_split),
        divider_array=aux_array(base.divider_array),
        memory_area_mm2=base.memory_area_mm2 * sram_ratio,
        memory_power_mw=base.memory_power_mw * sram_ratio * frequency_ratio,
        memory=memory,
        pe_utilization=design.get("util", base.pe_utilization),
        default_density=design.get("density", base.default_density),
    )


def build_salo_configs(design: HardwareConfig | None = None,
                       ) -> tuple[ViTALiTyAcceleratorConfig, SALOConfig]:
    """Materialise a ``salo``-family design point: (hardware budget, pattern).

    The geometric knobs (``pe``, ``freq``) shape the ViTALiTy hardware budget
    SALO is evaluated under; ``window`` / ``global`` / ``util`` shape SALO's
    own attention pattern and spatial utilisation.
    """

    _check_family(design, "salo")
    if design is None or design.is_reference:
        return _VITALITY_REFERENCE, _SALO_REFERENCE
    budget_design = HardwareConfig("vitality", tuple(
        (name, value) for name, value in design.knobs if name in ("pe", "freq")))
    budget = build_vitality_config(budget_design)
    pattern = replace(
        _SALO_REFERENCE,
        window=design.get("window", _SALO_REFERENCE.window),
        global_tokens=design.get("global", _SALO_REFERENCE.global_tokens),
        short_sequence_utilization=design.get(
            "util", _SALO_REFERENCE.short_sequence_utilization),
    )
    return budget, pattern


def build_platform(base: Platform, design: HardwareConfig | None = None) -> Platform:
    """Materialise a ``platform``-family design point from its base device."""

    _check_family(design, "platform")
    if design is None or design.is_reference:
        return base
    launch_us = design.get("launch_us")
    return base.scaled(
        compute=design.get("compute", 1.0),
        power_watts=design.get("power"),
        launch_overhead_seconds=None if launch_us is None else launch_us * 1e-6,
    )
