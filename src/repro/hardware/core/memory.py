"""Memory-traffic accounting and energy-breakdown containers."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.hardware.core.component import MemoryEnergyConfig


@dataclass
class EnergyBreakdown:
    """Energy split into the categories Table V reports."""

    data_access: float = 0.0
    other_processors: float = 0.0
    systolic_array: float = 0.0
    extra: dict[str, float] = field(default_factory=dict)

    @property
    def overall(self) -> float:
        return self.data_access + self.other_processors + self.systolic_array + sum(self.extra.values())

    def add(self, other: "EnergyBreakdown") -> "EnergyBreakdown":
        merged_extra = dict(self.extra)
        for key, value in other.extra.items():
            merged_extra[key] = merged_extra.get(key, 0.0) + value
        return EnergyBreakdown(
            data_access=self.data_access + other.data_access,
            other_processors=self.other_processors + other.other_processors,
            systolic_array=self.systolic_array + other.systolic_array,
            extra=merged_extra,
        )


class MemoryTrafficModel:
    """Counts word-level accesses of the memory hierarchy and converts to energy."""

    def __init__(self, config: MemoryEnergyConfig):
        self.config = config
        self.sram_accesses = 0
        self.dram_accesses = 0
        self.noc_accesses = 0

    def access_sram(self, words: int) -> None:
        if words < 0:
            raise ValueError("word count must be non-negative")
        self.sram_accesses += words
        self.noc_accesses += words

    def access_dram(self, words: int) -> None:
        if words < 0:
            raise ValueError("word count must be non-negative")
        self.dram_accesses += words

    @property
    def energy_joules(self) -> float:
        return (self.sram_accesses * self.config.sram_access
                + self.noc_accesses * self.config.noc_access
                + self.dram_accesses * self.config.dram_access)
