"""Per-chunk geometry and memory-hierarchy energy primitives.

A :class:`ComponentConfig` describes one hardware chunk — a systolic-array
partition, an adder array, a divider array — by its lane geometry and its
synthesised area/power at the reference design point.  A
:class:`MemoryEnergyConfig` describes the per-access energies of the
four-level memory hierarchy.

Both carry a ``scaled(...)`` method implementing the technology-model scaling
rules every design point is derived through:

* area scales linearly with lane count (more PEs, more silicon);
* power scales linearly with lane count *and* with frequency (dynamic power
  dominates at a fixed technology node, so per-cycle energy is
  frequency-invariant);
* SRAM per-access energy scales with the square root of the capacity ratio
  (longer bit/word lines — the CACTI rule of thumb);
* DRAM per-access energy is a knob, not a derived quantity.

Scaling at ratio 1 returns the object unchanged, so reference-point
configurations are bit-identical to their hand-written Table III values.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace


@dataclass(frozen=True)
class ComponentConfig:
    """One hardware chunk: its array geometry and synthesised area/power."""

    name: str
    rows: int
    columns: int
    bits: int
    area_mm2: float
    power_mw: float

    @property
    def lanes(self) -> int:
        """Number of parallel processing lanes (PEs / adders / dividers)."""

        return self.rows * self.columns

    def energy_per_cycle(self, frequency_hz: float) -> float:
        """Dynamic energy consumed per active cycle, in joules."""

        return self.power_mw * 1e-3 / frequency_hz

    def scaled(self, rows: int | None = None, columns: int | None = None,
               frequency_ratio: float = 1.0) -> "ComponentConfig":
        """This chunk re-dimensioned to a new geometry and/or clock.

        Area and power scale with the lane-count ratio; power additionally
        scales with ``frequency_ratio`` so per-cycle energy stays constant.
        An identity scaling returns ``self`` unchanged.
        """

        rows = self.rows if rows is None else rows
        columns = self.columns if columns is None else columns
        if min(rows, columns) < 1:
            raise ValueError(f"component geometry must be positive, got {rows}x{columns}")
        if frequency_ratio <= 0:
            raise ValueError(f"frequency ratio must be positive, got {frequency_ratio}")
        if (rows, columns) == (self.rows, self.columns) and frequency_ratio == 1.0:
            return self
        lane_ratio = (rows * columns) / self.lanes
        return replace(self, rows=rows, columns=columns,
                       area_mm2=self.area_mm2 * lane_ratio,
                       power_mw=self.power_mw * lane_ratio * frequency_ratio)


@dataclass(frozen=True)
class MemoryEnergyConfig:
    """Per-access energies of the four-level memory hierarchy (joules/16-bit word)."""

    register_access: float = 0.02e-12
    noc_access: float = 0.08e-12
    sram_access: float = 0.25e-12
    dram_access: float = 60e-12
    sram_kb: int = 200  # 50 KB per Q/K/V/O buffer

    def scaled(self, sram_kb: int | None = None,
               sram_access: float | None = None,
               dram_access: float | None = None) -> "MemoryEnergyConfig":
        """This hierarchy re-sized and/or re-costed.

        Growing (or shrinking) the SRAM re-derives the per-access energy with
        the square-root capacity rule unless ``sram_access`` pins it
        explicitly.  An identity scaling returns ``self`` unchanged.
        """

        new_kb = self.sram_kb if sram_kb is None else sram_kb
        if new_kb < 1:
            raise ValueError(f"sram_kb must be >= 1, got {new_kb}")
        if sram_access is None:
            sram_access = (self.sram_access if new_kb == self.sram_kb
                           else self.sram_access * math.sqrt(new_kb / self.sram_kb))
        if dram_access is None:
            dram_access = self.dram_access
        if (new_kb == self.sram_kb and sram_access == self.sram_access
                and dram_access == self.dram_access):
            return self
        return replace(self, sram_kb=new_kb, sram_access=sram_access,
                       dram_access=dram_access)
