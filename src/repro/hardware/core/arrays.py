"""Compute-array models: the systolic array and the lane-array processors.

Systolic array (Section IV-B / IV-D): dense matrix multiplications are tiled
over the array's rows/columns.  For an ``R x C`` array computing
``O = A (M x K) @ B (K x N)`` with an input-stationary mapping, the stationary
operand ``B`` is loaded tile by tile (``ceil(K/R) * ceil(N/C)`` tiles) and the
``M`` rows of ``A`` stream through each tile, with partial sums accumulated
down the columns (down-forward accumulation).  The cycle model counts the
streaming cycles plus the pipeline fill/drain per tile, and the energy model
charges the array's per-cycle power for every occupied cycle.

The alternative G-stationary dataflow keeps ``G`` resident in the PEs between
the two chained products of Algorithm 1; it saves the SRAM traffic of writing
and re-reading ``G`` but requires reconfigurable PEs (both accumulation
patterns), which the energy model charges as a per-MAC overhead factor.

Lane arrays (Section IV-B): three small arrays handle the non-GEMM work of
Algorithm 1 —

* **Accumulator array** — column(token)-wise summations: ``1_n^T K``,
  ``k_hat_sum`` and ``v_sum`` (Steps 1 and 3).
* **Adder array** — element-wise additions/subtractions: the mean-centering
  subtraction, the Taylor denominator and numerator additions (Steps 1, 4, 5).
* **Divider array** — reconfigurable between single-divisor mode (dividing the
  key column sum by ``n`` in Step 1) and multiple-divisors mode (the row-wise
  division producing the final score in Step 6).

An operation batch of ``count`` element-wise operations occupies
``ceil(count / lanes)`` cycles and is charged the chunk's per-cycle power for
those cycles.  Lane counts come from the component geometry, so a design
point with a narrower PE array automatically narrows its processor arrays.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.hardware.core.component import ComponentConfig


def matmul_cycles(m: int, k: int, n: int, rows: int, columns: int,
                  utilization: float = 1.0, batch: int = 1) -> int:
    """Cycle count for ``batch`` back-to-back ``(m x k) @ (k x n)`` products.

    The stationary operand is tiled into ``ceil(k/rows) * ceil(n/columns)``
    tiles; each tile streams ``m`` activations (derated by ``utilization`` for
    tile-edge and skew effects).  With double-buffered weight loading the
    array's fill/drain latency (``rows + columns`` cycles) is paid once per
    batched sequence of products rather than once per tile — this is how the
    accelerator streams all heads of one attention step back to back.
    """

    if min(m, k, n, rows, columns, batch) <= 0:
        raise ValueError("matrix and array dimensions must be positive")
    if not 0.0 < utilization <= 1.0:
        raise ValueError("utilization must be in (0, 1]")
    row_tiles = math.ceil(k / rows)
    column_tiles = math.ceil(n / columns)
    streaming = batch * row_tiles * column_tiles * math.ceil(m / utilization)
    return streaming + rows + columns


@dataclass
class MatmulExecution:
    """Outcome of running one matrix multiplication on the array."""

    cycles: int
    macs: int
    energy_joules: float
    stationary_loads: int        # words loaded into the PE registers
    streamed_words: int          # activation words streamed through the array
    output_words: int            # result words drained from the array


class SystolicArray:
    """A systolic array chunk (SA-General or SA-Diag) with an energy model."""

    def __init__(self, component: ComponentConfig, frequency_hz: float,
                 utilization: float = 0.7):
        self.component = component
        self.frequency_hz = frequency_hz
        self.utilization = utilization

    @property
    def rows(self) -> int:
        return self.component.rows

    @property
    def columns(self) -> int:
        return self.component.columns

    @property
    def num_pes(self) -> int:
        return self.component.lanes

    def matmul(self, m: int, k: int, n: int, pe_energy_scale: float = 1.0,
               batch: int = 1) -> MatmulExecution:
        """Execute ``batch`` ``(m x k) @ (k x n)`` products and account cycles/energy.

        ``pe_energy_scale`` models per-MAC energy overheads such as the
        reconfigurable-PE cost of the G-stationary dataflow; ``batch`` streams
        several products (e.g. all heads of one step) back to back so the
        pipeline fill is amortised.
        """

        cycles = matmul_cycles(m, k, n, self.rows, self.columns, self.utilization, batch=batch)
        macs = m * k * n * batch
        energy = cycles * self.component.energy_per_cycle(self.frequency_hz) * pe_energy_scale
        return MatmulExecution(
            cycles=cycles,
            macs=macs,
            energy_joules=energy,
            stationary_loads=k * n * batch,
            streamed_words=m * k * batch,
            output_words=m * n * batch,
        )


@dataclass
class VectorExecution:
    """Outcome of one element-wise / reduction batch on a processor array."""

    cycles: int
    operations: int
    energy_joules: float


class _LaneArray:
    """Common behaviour of the lane-parallel pre/post-processor chunks."""

    def __init__(self, component: ComponentConfig, frequency_hz: float):
        self.component = component
        self.frequency_hz = frequency_hz

    @property
    def lanes(self) -> int:
        return self.component.lanes

    def _run(self, operations: int) -> VectorExecution:
        if operations < 0:
            raise ValueError("operation count must be non-negative")
        if operations == 0:
            return VectorExecution(cycles=0, operations=0, energy_joules=0.0)
        cycles = math.ceil(operations / self.lanes)
        energy = cycles * self.component.energy_per_cycle(self.frequency_hz)
        return VectorExecution(cycles=cycles, operations=operations, energy_joules=energy)


class AccumulatorArray(_LaneArray):
    """Column-wise summation unit."""

    def column_sum(self, tokens: int, features: int) -> VectorExecution:
        """Accumulate ``tokens`` values for each of ``features`` columns."""

        return self._run(tokens * features)


class AdderArray(_LaneArray):
    """Element-wise addition/subtraction unit."""

    def elementwise(self, count: int) -> VectorExecution:
        return self._run(count)


class DividerArray(_LaneArray):
    """Element-wise division unit with single- and multiple-divisor modes."""

    def single_divisor(self, count: int) -> VectorExecution:
        """Divide ``count`` elements by one shared divisor (Step 1 of Algorithm 1)."""

        return self._run(count)

    def multiple_divisors(self, count: int) -> VectorExecution:
        """Divide ``count`` elements by per-row divisors (Step 6 of Algorithm 1)."""

        return self._run(count)
