"""The parametric microarchitecture core shared by every hardware model.

``hardware/core`` owns the geometry, energy and scheduling arithmetic the
cycle-level accelerators (ViTALiTy, Sanger, SALO) and the analytic platforms
are built from — and, crucially, the *knobs* that turn each frozen Table III
design point into a family of design points:

* :mod:`component` — per-chunk geometry (:class:`ComponentConfig`) and
  memory-hierarchy energies (:class:`MemoryEnergyConfig`), each with a
  ``scaled(...)`` method implementing the area/power/energy scaling rules;
* :mod:`arrays` — the tile-level systolic-array model and the lane-array
  pre/post processors (accumulator / adder / divider);
* :mod:`memory` — word-level memory-traffic accounting and the Table V
  energy-breakdown container;
* :mod:`pipeline` — the intra-layer chunk-occupancy pipeline model;
* :mod:`knobs` — the design-point grammar: ``pe=32x32,freq=1ghz`` knob
  strings parsed into a hashable :class:`HardwareConfig`;
* :mod:`families` — per-family knob schemas and builders materialising a
  :class:`HardwareConfig` into the family's concrete configuration.

Every scaling rule is exact at the reference point (all ratios 1 short-circuit
to the original object), so default-knob design points stay bit-identical to
the seed Table III models.
"""

from repro.hardware.core.component import ComponentConfig, MemoryEnergyConfig
from repro.hardware.core.arrays import (
    AccumulatorArray,
    AdderArray,
    DividerArray,
    MatmulExecution,
    SystolicArray,
    matmul_cycles,
)
from repro.hardware.core.memory import EnergyBreakdown, MemoryTrafficModel
from repro.hardware.core.pipeline import (
    pipeline_latency,
    pipeline_speedup,
    sequential_latency,
)
from repro.hardware.core.knobs import HardwareConfig, Knob, KnobError, KnobSchema

__all__ = [
    "AccumulatorArray",
    "AdderArray",
    "ComponentConfig",
    "DividerArray",
    "EnergyBreakdown",
    "HardwareConfig",
    "Knob",
    "KnobError",
    "KnobSchema",
    "MatmulExecution",
    "MemoryEnergyConfig",
    "MemoryTrafficModel",
    "SystolicArray",
    "matmul_cycles",
    "pipeline_latency",
    "pipeline_speedup",
    "sequential_latency",
]
