"""Intra-layer pipeline model (Section IV-C, Fig. 7).

The six steps of Algorithm 1 run on four chunks (accumulator array, divider
array, adder array, systolic array).  Executed sequentially, the light
pre/post-processing steps add up to a large share of the layer latency (this
is what Table II shows happening on a GPU).  The ViTALiTy accelerator instead
overlaps them: while the adder array finishes mean-centering the keys, the
already-produced columns feed the systolic array and the accumulator array;
once the first outputs of ``Q G`` / ``Q k_hat_sum^T`` appear, the adder and
divider arrays start producing the numerator, denominator and final score.

The model captures this with a chunk-occupancy schedule: the pipelined layer
latency is the maximum chunk busy time plus a fill overhead equal to the
longest single non-dominant stage (the pipeline cannot hide the first
occurrence of each dependency), while the sequential latency is the plain sum
of all step latencies.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:   # StepResult is only an annotation here; avoid an import cycle
    from repro.hardware.common import StepResult


def sequential_latency(steps: list[StepResult]) -> int:
    """Total cycles when every step runs back to back (no overlap)."""

    return sum(step.cycles for step in steps)


def pipeline_latency(steps: list[StepResult]) -> int:
    """Cycles with intra-layer pipelining across chunks.

    Steps mapped to different chunks overlap; the dominant chunk bounds the
    throughput and the longest non-dominant step is paid once as fill/drain
    overhead.
    """

    if not steps:
        return 0
    busy_per_chunk: dict[str, int] = {}
    for step in steps:
        busy_per_chunk[step.chunk] = busy_per_chunk.get(step.chunk, 0) + step.cycles
    dominant_chunk = max(busy_per_chunk, key=busy_per_chunk.get)
    dominant_cycles = busy_per_chunk[dominant_chunk]
    non_dominant = [step.cycles for step in steps if step.chunk != dominant_chunk]
    fill_overhead = max(non_dominant) if non_dominant else 0
    return dominant_cycles + fill_overhead


def pipeline_speedup(steps: list[StepResult]) -> float:
    """Ratio of sequential to pipelined latency (>= 1)."""

    pipelined = pipeline_latency(steps)
    if pipelined == 0:
        return 1.0
    return sequential_latency(steps) / pipelined
