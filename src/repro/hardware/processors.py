"""Pre/post-processor chunks of the ViTALiTy accelerator (Section IV-B).

Three small arrays handle the non-GEMM work of Algorithm 1:

* **Accumulator array** — column(token)-wise summations: ``1_n^T K``,
  ``k_hat_sum`` and ``v_sum`` (Steps 1 and 3).
* **Adder array** — element-wise additions/subtractions: the mean-centering
  subtraction, the Taylor denominator and numerator additions (Steps 1, 4, 5).
* **Divider array** — reconfigurable between single-divisor mode (dividing the
  key column sum by ``n`` in Step 1) and multiple-divisors mode (the row-wise
  division producing the final score in Step 6).

Each array has 64 lanes; an operation batch of ``count`` element-wise
operations occupies ``ceil(count / lanes)`` cycles and is charged the chunk's
per-cycle power for those cycles.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.hardware.config import ComponentConfig


@dataclass
class VectorExecution:
    """Outcome of one element-wise / reduction batch on a processor array."""

    cycles: int
    operations: int
    energy_joules: float


class _LaneArray:
    """Common behaviour of the 64-lane pre/post-processor chunks."""

    def __init__(self, component: ComponentConfig, frequency_hz: float):
        self.component = component
        self.frequency_hz = frequency_hz

    @property
    def lanes(self) -> int:
        return self.component.lanes

    def _run(self, operations: int) -> VectorExecution:
        if operations < 0:
            raise ValueError("operation count must be non-negative")
        if operations == 0:
            return VectorExecution(cycles=0, operations=0, energy_joules=0.0)
        cycles = math.ceil(operations / self.lanes)
        energy = cycles * self.component.energy_per_cycle(self.frequency_hz)
        return VectorExecution(cycles=cycles, operations=operations, energy_joules=energy)


class AccumulatorArray(_LaneArray):
    """Column-wise summation unit."""

    def column_sum(self, tokens: int, features: int) -> VectorExecution:
        """Accumulate ``tokens`` values for each of ``features`` columns."""

        return self._run(tokens * features)


class AdderArray(_LaneArray):
    """Element-wise addition/subtraction unit."""

    def elementwise(self, count: int) -> VectorExecution:
        return self._run(count)


class DividerArray(_LaneArray):
    """Element-wise division unit with single- and multiple-divisor modes."""

    def single_divisor(self, count: int) -> VectorExecution:
        """Divide ``count`` elements by one shared divisor (Step 1 of Algorithm 1)."""

        return self._run(count)

    def multiple_divisors(self, count: int) -> VectorExecution:
        """Divide ``count`` elements by per-row divisors (Step 6 of Algorithm 1)."""

        return self._run(count)
