"""Energy accounting helpers (moved to :mod:`repro.hardware.core.memory`).

Kept as an import shim so existing ``from repro.hardware.energy import ...``
call sites keep working.
"""

from repro.hardware.core.memory import EnergyBreakdown, MemoryTrafficModel

__all__ = ["EnergyBreakdown", "MemoryTrafficModel"]
