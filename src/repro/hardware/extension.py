"""Table VI: pre/post-processor requirements of linear-attention families.

The ViTALiTy accelerator's chunked design generalises to other efficient
attentions: the systolic array handles every family's matrix multiplications,
and only the pre/post-processor mix changes with the similarity function.
This module encodes the paper's Table VI so the extension experiment can
report, for each family, which processor chunks an accelerator needs.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ProcessorRequirements:
    """Which pre/post-processor chunks an attention family needs."""

    attention_type: str
    model: str
    detail: str
    needs_exponentiation: bool
    needs_division: bool
    needs_addition: bool
    needs_accumulation: bool

    def processor_list(self) -> list[str]:
        """Human-readable list matching the Table VI "Pre/Post-Processors" column."""

        names = []
        if self.needs_accumulation:
            names.append("Acc.")
        if self.needs_exponentiation:
            names.append("Exp.")
        if self.needs_division:
            names.append("Div.")
        if self.needs_addition:
            names.append("Add.")
        return names


_TABLE_VI: dict[str, ProcessorRequirements] = {
    "linformer": ProcessorRequirements(
        attention_type="Low-Rank", model="Linformer",
        detail="Reduce token dim. of K/V",
        needs_exponentiation=True, needs_division=True,
        needs_addition=False, needs_accumulation=False),
    "efficient": ProcessorRequirements(
        attention_type="Kernel-Based", model="Efficient Attention",
        detail="phi() = softmax()",
        needs_exponentiation=True, needs_division=True,
        needs_addition=False, needs_accumulation=False),
    "performer": ProcessorRequirements(
        attention_type="Kernel-Based", model="Performer",
        detail="Positive orthogonal random features",
        needs_exponentiation=True, needs_division=True,
        needs_addition=True, needs_accumulation=False),
    "linear_transformer": ProcessorRequirements(
        attention_type="Kernel-Based", model="Linear Transformer",
        detail="phi() = elu() + 1",
        needs_exponentiation=True, needs_division=True,
        needs_addition=True, needs_accumulation=False),
    "vitality": ProcessorRequirements(
        attention_type="Taylor-Based", model="ViTALiTy (ours)",
        detail="Algorithm 1",
        needs_exponentiation=False, needs_division=True,
        needs_addition=True, needs_accumulation=True),
}


def linear_attention_processor_requirements(name: str | None = None):
    """Return Table VI — all rows, or one family when ``name`` is given."""

    if name is None:
        return dict(_TABLE_VI)
    try:
        return _TABLE_VI[name.lower()]
    except KeyError:
        raise KeyError(f"unknown attention family {name!r}; available: {sorted(_TABLE_VI)}") from None
