"""Stochastic gradient descent with momentum and optional weight decay."""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.nn.module import Parameter
from repro.optim.base import Optimizer


class SGD(Optimizer):
    """SGD with classical momentum."""

    def __init__(self, parameters: Iterable[Parameter], lr: float = 0.01,
                 momentum: float = 0.0, weight_decay: float = 0.0):
        super().__init__(parameters, lr)
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        self.step_count += 1
        for parameter, velocity in zip(self.parameters, self._velocity):
            if parameter.grad is None:
                continue
            grad = parameter.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * parameter.data
            velocity *= self.momentum
            velocity += grad
            parameter.data = parameter.data - self.lr * velocity
