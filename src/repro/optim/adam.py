"""Adam / AdamW optimizers (the DeiT training recipe uses AdamW)."""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.nn.module import Parameter
from repro.optim.base import Optimizer


class Adam(Optimizer):
    """Adam with bias-corrected first and second moment estimates."""

    def __init__(self, parameters: Iterable[Parameter], lr: float = 1e-3,
                 betas: tuple[float, float] = (0.9, 0.999), eps: float = 1e-8,
                 weight_decay: float = 0.0):
        super().__init__(parameters, lr)
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._m = [np.zeros_like(p.data) for p in self.parameters]
        self._v = [np.zeros_like(p.data) for p in self.parameters]

    def _apply_weight_decay(self, parameter: Parameter, grad: np.ndarray) -> np.ndarray:
        if self.weight_decay:
            return grad + self.weight_decay * parameter.data
        return grad

    def step(self) -> None:
        self.step_count += 1
        bias1 = 1.0 - self.beta1 ** self.step_count
        bias2 = 1.0 - self.beta2 ** self.step_count
        for parameter, m, v in zip(self.parameters, self._m, self._v):
            if parameter.grad is None:
                continue
            grad = self._apply_weight_decay(parameter, parameter.grad)
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad * grad
            m_hat = m / bias1
            v_hat = v / bias2
            parameter.data = parameter.data - self.lr * m_hat / (np.sqrt(v_hat) + self.eps)


class AdamW(Adam):
    """Adam with decoupled weight decay (Loshchilov & Hutter)."""

    def _apply_weight_decay(self, parameter: Parameter, grad: np.ndarray) -> np.ndarray:
        if self.weight_decay:
            parameter.data = parameter.data * (1.0 - self.lr * self.weight_decay)
        return grad
