"""Optimizers and learning-rate schedules for fine-tuning the ViT model zoo."""

from repro.optim.sgd import SGD
from repro.optim.adam import Adam, AdamW
from repro.optim.scheduler import CosineSchedule, WarmupCosineSchedule, ConstantSchedule

__all__ = [
    "SGD",
    "Adam",
    "AdamW",
    "CosineSchedule",
    "WarmupCosineSchedule",
    "ConstantSchedule",
]
