"""Learning-rate schedules (cosine decay with warmup, as in the DeiT recipe)."""

from __future__ import annotations

import math

from repro.optim.base import Optimizer


class Schedule:
    """Base class: adjusts ``optimizer.lr`` each time :meth:`step` is called."""

    def __init__(self, optimizer: Optimizer):
        self.optimizer = optimizer
        self.base_lr = optimizer.lr
        self.epoch = 0

    def lr_at(self, epoch: int) -> float:
        raise NotImplementedError

    def step(self) -> float:
        self.epoch += 1
        lr = self.lr_at(self.epoch)
        self.optimizer.lr = lr
        return lr


class ConstantSchedule(Schedule):
    def lr_at(self, epoch: int) -> float:
        return self.base_lr


class CosineSchedule(Schedule):
    """Cosine decay from the base LR down to ``min_lr`` over ``total_epochs``."""

    def __init__(self, optimizer: Optimizer, total_epochs: int, min_lr: float = 0.0):
        super().__init__(optimizer)
        if total_epochs <= 0:
            raise ValueError("total_epochs must be positive")
        self.total_epochs = total_epochs
        self.min_lr = min_lr

    def lr_at(self, epoch: int) -> float:
        progress = min(epoch, self.total_epochs) / self.total_epochs
        cosine = 0.5 * (1.0 + math.cos(math.pi * progress))
        return self.min_lr + (self.base_lr - self.min_lr) * cosine


class WarmupCosineSchedule(CosineSchedule):
    """Linear warmup for ``warmup_epochs`` followed by cosine decay."""

    def __init__(self, optimizer: Optimizer, total_epochs: int,
                 warmup_epochs: int = 0, min_lr: float = 0.0):
        super().__init__(optimizer, total_epochs, min_lr=min_lr)
        if warmup_epochs < 0 or warmup_epochs >= total_epochs:
            raise ValueError("warmup_epochs must be in [0, total_epochs)")
        self.warmup_epochs = warmup_epochs

    def lr_at(self, epoch: int) -> float:
        if self.warmup_epochs and epoch <= self.warmup_epochs:
            return self.base_lr * epoch / self.warmup_epochs
        remaining = self.total_epochs - self.warmup_epochs
        progress = min(epoch - self.warmup_epochs, remaining) / remaining
        cosine = 0.5 * (1.0 + math.cos(math.pi * progress))
        return self.min_lr + (self.base_lr - self.min_lr) * cosine
