"""Shared optimizer base class."""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.nn.module import Parameter


class Optimizer:
    """Base class holding the parameter list and common bookkeeping."""

    def __init__(self, parameters: Iterable[Parameter], lr: float):
        self.parameters = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer received an empty parameter list")
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        self.lr = float(lr)
        self.step_count = 0

    def zero_grad(self) -> None:
        for parameter in self.parameters:
            parameter.zero_grad()

    def step(self) -> None:
        raise NotImplementedError

    def clip_grad_norm(self, max_norm: float) -> float:
        """Clip the global gradient norm in-place; returns the pre-clip norm."""

        total = 0.0
        for parameter in self.parameters:
            if parameter.grad is not None:
                total += float(np.sum(parameter.grad ** 2))
        norm = float(np.sqrt(total))
        if norm > max_norm and norm > 0:
            scale = max_norm / norm
            for parameter in self.parameters:
                if parameter.grad is not None:
                    parameter.grad = parameter.grad * scale
        return norm
