"""Token-based knowledge distillation (Section V-B of the paper).

DeiT-style distillation: the student's distillation token (or, for models
without one, its ordinary logits) is trained to match a frozen teacher — here
the pre-trained softmax-attention baseline.  Both soft (KL at temperature
``tau``) and hard (teacher argmax as pseudo-label) variants are supported.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.tensor import Tensor, cross_entropy, kl_div_with_logits


@dataclass(frozen=True)
class DistillationConfig:
    """Knowledge-distillation hyper-parameters."""

    #: Weight of the distillation term relative to the classification loss.
    alpha: float = 0.5
    #: Softmax temperature for soft distillation.
    temperature: float = 3.0
    #: "soft" (KL against teacher distribution) or "hard" (teacher argmax labels).
    kind: str = "soft"

    def __post_init__(self):
        if not 0.0 <= self.alpha <= 1.0:
            raise ValueError(f"alpha must be in [0, 1], got {self.alpha}")
        if self.temperature <= 0:
            raise ValueError("temperature must be positive")
        if self.kind not in ("soft", "hard"):
            raise ValueError(f"kind must be 'soft' or 'hard', got {self.kind!r}")


def distillation_loss(student_logits: Tensor, teacher_logits: Tensor,
                      config: DistillationConfig) -> Tensor:
    """The distillation term only (to be mixed with the classification loss)."""

    if config.kind == "soft":
        return kl_div_with_logits(student_logits, teacher_logits,
                                  temperature=config.temperature)
    teacher_labels = np.asarray(Tensor._ensure(teacher_logits).data).argmax(axis=-1)
    return cross_entropy(student_logits, teacher_labels)


def combined_loss(class_logits: Tensor, distillation_logits: Tensor,
                  labels: np.ndarray, teacher_logits: Tensor | None,
                  config: DistillationConfig | None) -> Tensor:
    """Classification loss, mixed with the distillation term when a teacher is given."""

    classification = cross_entropy(class_logits, labels)
    if teacher_logits is None or config is None:
        return classification
    distillation = distillation_loss(distillation_logits, teacher_logits, config)
    return classification * (1.0 - config.alpha) + distillation * config.alpha
