"""Training stack: trainer, knowledge distillation and the ViTALiTy schemes.

The paper's accuracy results (Figs. 10, 13, 14, 15) come from fine-tuning
pre-trained ViTs under different method variants; this subpackage implements
the training loop, token-based knowledge distillation, and a scheme runner
that reproduces every variant (BASELINE / SPARSE / LOWRANK / LOWRANK+SPARSE /
ViTALiTy, each optionally with KD) on the synthetic dataset.
"""

from repro.training.metrics import accuracy, top_k_accuracy, AverageMeter
from repro.training.distillation import DistillationConfig, distillation_loss
from repro.training.trainer import Trainer, TrainingConfig, EpochStats
from repro.training.finetune import (
    SchemeResult,
    ViTALiTyFinetuner,
    FinetuneConfig,
    SCHEMES,
)

__all__ = [
    "accuracy",
    "top_k_accuracy",
    "AverageMeter",
    "DistillationConfig",
    "distillation_loss",
    "Trainer",
    "TrainingConfig",
    "EpochStats",
    "SchemeResult",
    "ViTALiTyFinetuner",
    "FinetuneConfig",
    "SCHEMES",
]
