"""ViTALiTy fine-tuning schemes (the method variants of Figs. 10/13/14/15).

The paper evaluates these method variants:

* **BASELINE** — the pre-trained ViT with vanilla softmax attention.
* **SPARSE** — Sanger sparse attention (threshold 0.02) fine-tuned end-to-end.
* **LOWRANK** — linear Taylor attention dropped into the *pre-trained*
  baseline with no fine-tuning (the accuracy-collapse data point).
* **LOWRANK+SPARSE** — ViTALiTy's unified attention fine-tuned and evaluated
  with the sparse component still active.
* **VITALITY** — fine-tuned with the unified attention, but evaluated with
  the sparse component dropped (only the low-rank Taylor path runs).
* Each of the fine-tuned variants optionally adds token-based knowledge
  distillation (**+KD**) from the baseline teacher.

:class:`ViTALiTyFinetuner` pre-trains a baseline on the synthetic dataset
(standing in for the ImageNet-pre-trained checkpoint), then runs any scheme
and reports its accuracy, per-epoch history and sparse-component occupancy.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from repro.attention import SangerSparseAttention, ViTALiTyAttention
from repro.data import DataLoader, SyntheticConfig, SyntheticImageNet, normalize_images
from repro.models import create_model
from repro.nn.module import Module
from repro.training.distillation import DistillationConfig
from repro.training.trainer import EpochStats, Trainer, TrainingConfig

#: Scheme identifiers accepted by :meth:`ViTALiTyFinetuner.run_scheme`.
SCHEMES = (
    "baseline",
    "sparse",
    "lowrank",
    "lowrank+sparse",
    "lowrank+sparse+kd",
    "vitality",
    "vitality+kd",
)


@dataclass(frozen=True)
class FinetuneConfig:
    """End-to-end configuration of a fine-tuning experiment."""

    model_name: str = "deit-tiny"
    preset: str = "trainable"
    num_classes: int = 10
    train_samples: int = 256
    test_samples: int = 128
    pretrain_epochs: int = 8
    finetune_epochs: int = 6
    batch_size: int = 32
    learning_rate: float = 2e-3
    finetune_learning_rate: float = 1e-3
    sparse_threshold: float = 0.02
    vitality_threshold: float = 0.5
    seed: int = 0
    data: SyntheticConfig = field(default_factory=SyntheticConfig)


@dataclass
class SchemeResult:
    """Outcome of one training scheme."""

    scheme: str
    accuracy: float
    history: list[EpochStats]
    #: Per-epoch occupancy of the sparse residual component (Fig. 14); empty
    #: for schemes without a sparse component.
    sparse_occupancy_per_epoch: list[float] = field(default_factory=list)


class ViTALiTyFinetuner:
    """Runs the paper's training schemes on the synthetic dataset."""

    def __init__(self, config: FinetuneConfig | None = None):
        self.config = config or FinetuneConfig()
        dataset = SyntheticImageNet(replace(self.config.data, seed=self.config.seed))
        train_x, train_y, test_x, test_y = dataset.train_test_split(
            self.config.train_samples, self.config.test_samples)
        self._train = (normalize_images(train_x), train_y)
        self._test = (normalize_images(test_x), test_y)
        self._baseline_model: Module | None = None
        self._baseline_accuracy: float | None = None

    # -- data ---------------------------------------------------------------------

    def _loader(self, split: tuple[np.ndarray, np.ndarray], shuffle: bool) -> DataLoader:
        images, labels = split
        return DataLoader(images, labels, batch_size=self.config.batch_size,
                          shuffle=shuffle, seed=self.config.seed)

    def train_loader(self) -> DataLoader:
        return self._loader(self._train, shuffle=True)

    def test_loader(self) -> DataLoader:
        return self._loader(self._test, shuffle=False)

    # -- models --------------------------------------------------------------------

    def _build(self, attention_mode: str, threshold: float | None = None) -> Module:
        return create_model(self.config.model_name, attention_mode=attention_mode,
                            preset=self.config.preset, num_classes=self.config.num_classes,
                            threshold=threshold)

    def _transfer_weights(self, source: Module, target: Module) -> None:
        """Copy the shared parameters from ``source`` into ``target``.

        The attention mechanisms themselves are parameter-free, so models built
        with different attention modes share the exact same parameter names;
        buffers that only one side has (e.g. Performer random features) are
        skipped.
        """

        source_state = source.state_dict()
        target_state = target.state_dict()
        shared = {key: value for key, value in source_state.items() if key in target_state}
        target.load_state_dict({**target_state, **shared})

    def pretrained_baseline(self) -> tuple[Module, float]:
        """Train (once, lazily) and return the softmax-attention baseline model."""

        if self._baseline_model is None:
            model = self._build("softmax")
            trainer = Trainer(model, TrainingConfig(
                epochs=self.config.pretrain_epochs,
                batch_size=self.config.batch_size,
                learning_rate=self.config.learning_rate,
                seed=self.config.seed,
            ))
            trainer.fit(self.train_loader(), eval_loader=None)
            self._baseline_model = model
            self._baseline_accuracy = trainer.evaluate(self.test_loader())
        return self._baseline_model, float(self._baseline_accuracy)

    # -- schemes --------------------------------------------------------------------

    def _finetune(self, model: Module, use_kd: bool, epochs: int | None = None) -> Trainer:
        teacher = None
        distillation = None
        if use_kd:
            teacher, _ = self.pretrained_baseline()
            distillation = DistillationConfig()
        trainer = Trainer(model, TrainingConfig(
            epochs=epochs if epochs is not None else self.config.finetune_epochs,
            batch_size=self.config.batch_size,
            learning_rate=self.config.finetune_learning_rate,
            seed=self.config.seed,
        ), teacher=teacher, distillation=distillation)
        trainer.fit(self.train_loader(), eval_loader=None)
        return trainer

    def _set_sparse_eval(self, model: Module, enabled: bool) -> None:
        for module in model.modules():
            if isinstance(module, ViTALiTyAttention):
                module.use_sparse_in_eval = enabled

    def run_scheme(self, scheme: str, epochs: int | None = None,
                   vitality_threshold: float | None = None) -> SchemeResult:
        """Run one training scheme and report its test accuracy and history."""

        scheme = scheme.lower()
        if scheme not in SCHEMES:
            raise ValueError(f"unknown scheme {scheme!r}; available: {SCHEMES}")
        threshold = (vitality_threshold if vitality_threshold is not None
                     else self.config.vitality_threshold)
        baseline, baseline_accuracy = self.pretrained_baseline()

        if scheme == "baseline":
            return SchemeResult("baseline", baseline_accuracy, history=[])

        if scheme == "lowrank":
            # Drop-in replacement of softmax with Taylor attention, no fine-tuning.
            model = self._build("taylor")
            self._transfer_weights(baseline, model)
            trainer = Trainer(model, TrainingConfig(epochs=1, batch_size=self.config.batch_size,
                                                    learning_rate=self.config.finetune_learning_rate))
            accuracy = trainer.evaluate(self.test_loader())
            return SchemeResult("lowrank", accuracy, history=[])

        if scheme == "sparse":
            model = self._build("sparse", threshold=self.config.sparse_threshold)
            self._transfer_weights(baseline, model)
            trainer = self._finetune(model, use_kd=False, epochs=epochs)
            accuracy = trainer.evaluate(self.test_loader())
            return SchemeResult("sparse", accuracy, history=trainer.history)

        # All remaining schemes fine-tune with the unified attention.
        use_kd = scheme.endswith("+kd")
        keep_sparse_at_eval = scheme.startswith("lowrank+sparse")
        model = self._build("vitality", threshold=threshold)
        self._transfer_weights(baseline, model)
        trainer = self._finetune(model, use_kd=use_kd, epochs=epochs)

        self._set_sparse_eval(model, keep_sparse_at_eval)
        accuracy = trainer.evaluate(self.test_loader())
        occupancy = [stats.sparse_occupancy for stats in trainer.history
                     if stats.sparse_occupancy is not None]
        return SchemeResult(scheme, accuracy, history=trainer.history,
                            sparse_occupancy_per_epoch=occupancy)

    def run_all(self, schemes: tuple[str, ...] = SCHEMES) -> dict[str, SchemeResult]:
        """Run several schemes and return their results keyed by scheme name."""

        return {scheme: self.run_scheme(scheme) for scheme in schemes}
