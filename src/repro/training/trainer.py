"""Generic training loop over the numpy substrate."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.attention.base import AttentionModule
from repro.data import DataLoader
from repro.nn.module import Module
from repro.optim import AdamW, WarmupCosineSchedule
from repro.tensor import Tensor, cross_entropy, no_grad
from repro.training.distillation import DistillationConfig, combined_loss
from repro.training.metrics import AverageMeter, accuracy


@dataclass(frozen=True)
class TrainingConfig:
    """Hyper-parameters of one training run."""

    epochs: int = 5
    batch_size: int = 32
    learning_rate: float = 1e-3
    weight_decay: float = 0.05
    warmup_epochs: int = 1
    grad_clip: float = 5.0
    label_smoothing: float = 0.0
    seed: int = 0


@dataclass
class EpochStats:
    """Per-epoch statistics collected by the trainer."""

    epoch: int
    train_loss: float
    train_accuracy: float
    eval_accuracy: float | None = None
    #: Mean occupancy (fraction of non-negligible entries) of the sparse
    #: residual component across attention layers — the Fig. 14 metric.
    sparse_occupancy: float | None = None
    extra: dict[str, float] = field(default_factory=dict)


class Trainer:
    """Trains a model with cross entropy and optional knowledge distillation.

    The trainer also polls every attention module's ``last_stats`` after each
    step, aggregating the ViTALiTy sparse-component occupancy so the Fig. 14
    "sparse part vanishes over training" curve can be reproduced.
    """

    def __init__(self, model: Module, config: TrainingConfig,
                 teacher: Module | None = None,
                 distillation: DistillationConfig | None = None):
        self.model = model
        self.config = config
        self.teacher = teacher
        self.distillation = distillation if teacher is not None else None
        self.optimizer = AdamW(model.parameters(), lr=config.learning_rate,
                               weight_decay=config.weight_decay)
        total = max(config.epochs, 2)
        warmup = min(config.warmup_epochs, total - 1)
        self.schedule = WarmupCosineSchedule(self.optimizer, total_epochs=total,
                                             warmup_epochs=warmup)
        self.history: list[EpochStats] = []
        if teacher is not None:
            teacher.eval()

    # -- internals ----------------------------------------------------------------

    def _teacher_logits(self, images: Tensor) -> Tensor | None:
        if self.teacher is None:
            return None
        with no_grad():
            return Tensor(self.teacher(images).data)

    def _student_outputs(self, images: Tensor) -> tuple[Tensor, Tensor]:
        """Return (classification logits, distillation logits) for the student."""

        if getattr(self.model, "distillation", False):
            return self.model.forward_with_distillation(images)
        logits = self.model(images)
        return logits, logits

    def _attention_stats(self) -> dict[str, float]:
        occupancies = []
        densities = []
        for module in self.model.modules():
            if isinstance(module, AttentionModule) and module.last_stats:
                if "sparse_residual_occupancy" in module.last_stats:
                    occupancies.append(module.last_stats["sparse_residual_occupancy"])
                if "mask_density" in module.last_stats:
                    densities.append(module.last_stats["mask_density"])
        stats: dict[str, float] = {}
        if occupancies:
            stats["sparse_occupancy"] = float(np.mean(occupancies))
        if densities:
            stats["mask_density"] = float(np.mean(densities))
        return stats

    # -- public API ----------------------------------------------------------------

    def train_epoch(self, loader: DataLoader, epoch: int) -> EpochStats:
        self.model.train()
        loss_meter = AverageMeter("loss")
        accuracy_meter = AverageMeter("accuracy")
        occupancy_meter = AverageMeter("sparse_occupancy")

        for images, labels in loader:
            images_t = Tensor(images)
            teacher_logits = self._teacher_logits(images_t)
            class_logits, distillation_logits = self._student_outputs(images_t)
            if self.distillation is not None and teacher_logits is not None:
                loss = combined_loss(class_logits, distillation_logits, labels,
                                     teacher_logits, self.distillation)
            else:
                loss = cross_entropy(class_logits, labels,
                                     label_smoothing=self.config.label_smoothing)
            self.optimizer.zero_grad()
            loss.backward()
            if self.config.grad_clip:
                self.optimizer.clip_grad_norm(self.config.grad_clip)
            self.optimizer.step()

            batch = len(labels)
            loss_meter.update(float(loss.data), batch)
            accuracy_meter.update(accuracy(class_logits, labels), batch)
            attention_stats = self._attention_stats()
            if "sparse_occupancy" in attention_stats:
                occupancy_meter.update(attention_stats["sparse_occupancy"], batch)

        self.schedule.step()
        stats = EpochStats(
            epoch=epoch,
            train_loss=loss_meter.average,
            train_accuracy=accuracy_meter.average,
            sparse_occupancy=occupancy_meter.average if occupancy_meter.weight else None,
        )
        self.history.append(stats)
        return stats

    def evaluate(self, loader: DataLoader) -> float:
        """Top-1 accuracy (percent) of the model in eval mode."""

        self.model.eval()
        meter = AverageMeter("accuracy")
        with no_grad():
            for images, labels in loader:
                logits = self.model(Tensor(images))
                meter.update(accuracy(logits, labels), len(labels))
        self.model.train()
        return meter.average

    def fit(self, train_loader: DataLoader, eval_loader: DataLoader | None = None) -> list[EpochStats]:
        """Run the full training schedule, evaluating after each epoch."""

        for epoch in range(1, self.config.epochs + 1):
            stats = self.train_epoch(train_loader, epoch)
            if eval_loader is not None:
                stats.eval_accuracy = self.evaluate(eval_loader)
        return self.history
