"""Classification metrics and running averages."""

from __future__ import annotations

import numpy as np

from repro.tensor import Tensor


def _as_logits_array(logits) -> np.ndarray:
    if isinstance(logits, Tensor):
        return logits.data
    return np.asarray(logits)


def accuracy(logits, labels) -> float:
    """Top-1 accuracy in percent."""

    logits = _as_logits_array(logits)
    labels = np.asarray(labels)
    predictions = logits.argmax(axis=-1)
    return float(np.mean(predictions == labels) * 100.0)


def top_k_accuracy(logits, labels, k: int = 5) -> float:
    """Top-k accuracy in percent."""

    logits = _as_logits_array(logits)
    labels = np.asarray(labels)
    if k <= 0:
        raise ValueError("k must be positive")
    k = min(k, logits.shape[-1])
    top_k = np.argsort(logits, axis=-1)[:, -k:]
    hits = (top_k == labels[:, None]).any(axis=-1)
    return float(np.mean(hits) * 100.0)


class AverageMeter:
    """Tracks a running (weighted) average of a scalar metric."""

    def __init__(self, name: str = ""):
        self.name = name
        self.total = 0.0
        self.weight = 0.0

    def update(self, value: float, weight: float = 1.0) -> None:
        self.total += float(value) * weight
        self.weight += weight

    @property
    def average(self) -> float:
        return self.total / self.weight if self.weight else 0.0

    def reset(self) -> None:
        self.total = 0.0
        self.weight = 0.0
