"""Analytic M/M/c-style queueing estimates over cached engine results.

Where :func:`repro.serve.serve` replays every arrival through the event loop,
this module answers the same capacity questions — utilization, throughput
ceiling, approximate latency percentiles — in microseconds, from three
ingredients:

* **batch-aware service times** from the engine: one memoised simulation per
  (model-config, target-config, attention, batch size), shared through a
  :class:`~repro.engine.ResultCache` (:class:`ServiceTimes`);
* an **effective batch size**: the fixed point of "requests that accumulate
  while one batch is in service (or the batching window is open)", bounded by
  the policy's maximum batch;
* the **Erlang C** delay formula for an M/M/c queue at the resulting
  per-request service rate, giving the wait-probability, mean wait, and
  exponential wait-tail quantiles.

The model is deliberately approximate — heterogeneous fleets are averaged
into one server speed, batch formation is a fixed point rather than a
distribution, and waits are exponential — but it tracks the discrete-event
simulator closely enough (utilization within a few percent at moderate load)
to prune a fleet search space before the expensive validation runs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from repro.engine import ResultCache, RunSpec, simulate
from repro.serve.batching import BatchPolicy
from repro.serve.cluster import Fleet, ReplicaSpec
from repro.serve.metrics import DEFAULT_PERCENTILES, percentile_label
from repro.serve.simulator import DEFAULT_DISPATCH_OVERHEAD
from repro.serve.traffic import WorkloadMix


def erlang_c(servers: int, offered_erlangs: float) -> float:
    """P(an arriving request waits) in an M/M/c queue.

    ``offered_erlangs`` is the offered load ``a = lambda / mu``; the queue is
    stable only for ``a < servers`` (returns 1.0 at or beyond saturation).
    Computed through the numerically stable Erlang B recurrence.
    """

    if servers < 1:
        raise ValueError(f"servers must be >= 1, got {servers}")
    if offered_erlangs < 0:
        raise ValueError(f"offered load must be >= 0, got {offered_erlangs}")
    if offered_erlangs == 0:
        return 0.0
    if offered_erlangs >= servers:
        return 1.0
    blocking = 1.0
    for k in range(1, servers + 1):
        blocking = offered_erlangs * blocking / (k + offered_erlangs * blocking)
    rho = offered_erlangs / servers
    return blocking / (1.0 - rho + rho * blocking)


class ServiceTimes:
    """Batch-aware service-time/energy lookups backed by the engine cache.

    ``service_seconds(model, spec, batch)`` is the full cost of dispatching
    one ``batch``-sized batch of ``model`` on a ``spec`` replica — engine
    latency plus the host-side dispatch overhead — exactly the quantity the
    simulator charges per dispatch.  Every distinct shape simulates once per
    table (the :class:`~repro.engine.ResultCache` underneath is shared, so a
    planner evaluating hundreds of candidate fleets pays for each shape once).
    """

    def __init__(self,
                 dispatch_overhead_seconds: float = DEFAULT_DISPATCH_OVERHEAD,
                 cache: ResultCache | None = None):
        if dispatch_overhead_seconds < 0:
            raise ValueError(f"dispatch_overhead_seconds must be >= 0, "
                             f"got {dispatch_overhead_seconds}")
        self.dispatch_overhead_seconds = dispatch_overhead_seconds
        self.cache = ResultCache() if cache is None else cache

    def _result(self, model: str, spec: ReplicaSpec, batch: int):
        return simulate(RunSpec(model, target=spec.target,
                                attention=spec.attention, batch_size=batch),
                        cache=self.cache)

    def service_seconds(self, model: str, spec: ReplicaSpec,
                        batch: int = 1) -> float:
        """Seconds one replica is busy serving one ``batch``-sized dispatch."""

        return (self.dispatch_overhead_seconds
                + self._result(model, spec, batch).end_to_end_latency)

    def energy_joules(self, model: str, spec: ReplicaSpec,
                      batch: int = 1) -> float:
        """Joules one ``batch``-sized dispatch costs (whole batch)."""

        return self._result(model, spec, batch).end_to_end_energy

    def mixed_service_seconds(self, mix: WorkloadMix, spec: ReplicaSpec,
                              batch: int = 1) -> float:
        """Mix-weighted expected batch service time on one replica kind."""

        total = sum(weight for _, weight in mix.entries)
        return sum(weight * self.service_seconds(model, spec, batch)
                   for model, weight in mix.entries) / total

    def mixed_energy_joules(self, mix: WorkloadMix, spec: ReplicaSpec,
                            batch: int = 1) -> float:
        total = sum(weight for _, weight in mix.entries)
        return sum(weight * self.energy_joules(model, spec, batch)
                   for model, weight in mix.entries) / total


@dataclass(frozen=True)
class QueueingEstimate:
    """What the analytic model predicts for one (fleet, traffic) pairing.

    ``latency`` maps percentile labels (``"p99"``) to predicted seconds; for
    an unstable fleet (``utilization >= 1``) the percentiles and mean are
    ``None`` — the queue grows without bound, there is no steady state.
    """

    fleet: str
    replicas: int
    rate_rps: float
    effective_batch: int
    batch_service_seconds: float
    per_request_seconds: float
    utilization: float
    stable: bool
    throughput_ceiling_rps: float
    wait_probability: float
    mean_latency_seconds: float | None
    latency: tuple[tuple[str, float | None], ...]
    energy_per_request_joules: float

    def predicted(self, fraction: float) -> float | None:
        """The predicted latency at one percentile fraction (``0.99``)."""

        label = percentile_label(fraction)
        for key, value in self.latency:
            if key == label:
                return value
        raise KeyError(f"percentile {label} was not estimated; "
                       f"request it via the percentiles knob")

    def to_dict(self) -> dict[str, object]:
        return {
            "fleet": self.fleet,
            "replicas": self.replicas,
            "rate_rps": self.rate_rps,
            "effective_batch": self.effective_batch,
            "batch_service_seconds": self.batch_service_seconds,
            "per_request_seconds": self.per_request_seconds,
            "utilization": self.utilization,
            "stable": self.stable,
            "throughput_ceiling_rps": self.throughput_ceiling_rps,
            "wait_probability": self.wait_probability,
            "mean_latency_seconds": self.mean_latency_seconds,
            "latency": dict(self.latency),
            "energy_per_request_joules": self.energy_per_request_joules,
        }


def _effective_batch(rate_per_server: float, service_at, max_batch: int,
                     batching_window: float) -> int:
    """Fixed point of batch formation under load.

    At light load a timeout batch is its opening request plus whatever
    arrives during the window (``1 + rate * window``); near saturation
    batches form back-to-back while the previous one is in service
    (``rate * service``).  The next batch is the larger of the two, bounded
    to ``[1, max_batch]``, iterated with half-step damping so two-cycles
    converge; deterministic.
    """

    if max_batch <= 1:
        return 1
    batch = 1.0
    for _ in range(32):
        service = service_at(max(1, round(batch)))
        target = min(float(max_batch),
                     max(1.0 + rate_per_server * batching_window,
                         rate_per_server * service))
        if abs(target - batch) < 0.5:
            batch = target
            break
        batch = (batch + target) / 2.0
    return max(1, min(max_batch, round(batch)))


def _policy_batching(policy: BatchPolicy | str, batch_size: int,
                     timeout: float) -> tuple[int, float, bool]:
    """(max batch, batching window, fixed?) the analytic model should assume.

    ``fixed`` marks strict-size batching: every dispatch is a full batch, so
    the effective batch is the policy's size rather than a load-dependent
    fixed point, and requests pay the batch *formation* time.  The model does
    not capture strict-size starvation (a partial batch waiting indefinitely
    for its trigger — the tail blow-up :mod:`repro.serve.batching` documents),
    so its percentile predictions under ``size`` are optimistic.
    """

    if not isinstance(policy, str):
        name = policy.name
        batch_size = getattr(policy, "max_batch",
                             getattr(policy, "batch_size", batch_size))
        timeout = getattr(policy, "timeout", timeout)
        policy = name
    if policy == "fifo":
        return 1, 0.0, False
    if policy == "size":
        return batch_size, 0.0, True
    if policy == "timeout":
        return batch_size, timeout, False
    raise ValueError(f"unknown batching policy {policy!r}")


def estimate_fleet(fleet: Fleet | str, rate: float,
                   mix: WorkloadMix | Sequence[str] | str, *,
                   policy: BatchPolicy | str = "timeout",
                   batch_size: int = 8, timeout: float = 2e-3,
                   dispatch_overhead_seconds: float = DEFAULT_DISPATCH_OVERHEAD,
                   percentiles: Sequence[float] = DEFAULT_PERCENTILES,
                   service_times: ServiceTimes | None = None) -> QueueingEstimate:
    """Predict steady-state behavior of ``fleet`` under ``rate`` req/s.

    ``mix`` accepts a :class:`~repro.serve.WorkloadMix`, a workload name, or a
    sequence of names (uniform weights).  ``policy`` mirrors the simulator's
    batching argument; a built policy instance contributes its own
    ``max_batch`` / ``timeout``.  Pass a shared :class:`ServiceTimes` to reuse
    engine results across many estimates (the optimizer does).
    """

    if rate <= 0:
        raise ValueError(f"rate must be positive, got {rate}")
    if isinstance(fleet, str):
        fleet = Fleet.parse(fleet)
    if isinstance(mix, str):
        mix = WorkloadMix.of([mix])
    elif not isinstance(mix, WorkloadMix):
        mix = WorkloadMix.of(tuple(mix))
    if service_times is None:
        service_times = ServiceTimes(dispatch_overhead_seconds)
    max_batch, batching_window, fixed_batch = _policy_batching(
        policy, batch_size, timeout)

    servers = len(fleet.replicas)
    specs = [replica.spec for replica in fleet.replicas]
    rate_per_server = rate / servers

    # Heterogeneous fleets collapse to one average server: the mix-weighted
    # batch service time, averaged across replica kinds.
    def service_at(batch: int) -> float:
        return sum(service_times.mixed_service_seconds(mix, spec, batch)
                   for spec in specs) / servers

    batch = max_batch if fixed_batch else _effective_batch(
        rate_per_server, service_at, max_batch, batching_window)
    batch_service = service_at(batch)
    per_request = batch_service / batch
    offered = rate * per_request                      # erlangs
    if offered >= servers and batch < max_batch:
        # The light-load fixed point says overload, but a saturated queue
        # builds full batches — amortising the dispatch overhead further.
        # Judge stability at the batch size saturation actually produces.
        batch = max_batch
        batch_service = service_at(batch)
        per_request = batch_service / batch
        offered = rate * per_request
    utilization = offered / servers
    stable = utilization < 1.0
    ceiling = servers / per_request
    wait_probability = erlang_c(servers, offered) if stable else 1.0
    energy = sum(service_times.mixed_energy_joules(mix, spec, batch)
                 for spec in specs) / (servers * batch)

    # Batching charges a formation delay on top of queueing: the opener of a
    # timeout batch waits out the window, the opener of a strict-size batch
    # waits for its batch to fill.  Charging the opener's full delay keeps
    # the percentile prediction conservative where it matters (pruning).
    if fixed_batch:
        formation_delay = (batch - 1) / rate_per_server
    else:
        formation_delay = batching_window
    fractions = sorted(set(percentiles))
    if stable:
        drain = servers / per_request - rate          # spare service rate
        mean_wait = wait_probability / drain
        mean_latency = formation_delay + mean_wait + batch_service

        def wait_quantile(fraction: float) -> float:
            if fraction <= 1.0 - wait_probability:
                return 0.0
            return -math.log((1.0 - fraction) / wait_probability) / drain

        latency = tuple(
            (percentile_label(fraction),
             formation_delay + wait_quantile(fraction) + batch_service)
            for fraction in fractions)
    else:
        mean_latency = None
        latency = tuple((percentile_label(fraction), None)
                        for fraction in fractions)

    return QueueingEstimate(
        fleet=fleet.describe(),
        replicas=servers,
        rate_rps=rate,
        effective_batch=batch,
        batch_service_seconds=batch_service,
        per_request_seconds=per_request,
        utilization=utilization,
        stable=stable,
        throughput_ceiling_rps=ceiling,
        wait_probability=wait_probability,
        mean_latency_seconds=mean_latency,
        latency=latency,
        energy_per_request_joules=energy,
    )
