"""Analytic M/M/c-style queueing estimates over cached engine results.

Where :func:`repro.serve.serve` replays every arrival through the event loop,
this module answers the same capacity questions — utilization, throughput
ceiling, approximate latency percentiles — in microseconds, from three
ingredients:

* **batch-aware service times** from the engine: one memoised simulation per
  (model-config, target-config, attention, batch size), shared through a
  :class:`~repro.engine.ResultCache` (:class:`ServiceTimes`);
* an **effective batch size**: the fixed point of "requests that accumulate
  while one batch is in service (or the batching window is open)", bounded by
  the policy's maximum batch;
* the **Erlang C** delay formula for an M/M/c queue at the resulting
  per-request service rate, giving the wait-probability, mean wait, and
  exponential wait-tail quantiles.

The model is deliberately approximate — heterogeneous fleets are averaged
into one server speed, batch formation is a fixed point rather than a
distribution, and waits are exponential — but it tracks the discrete-event
simulator closely enough (utilization within a few percent at moderate load)
to prune a fleet search space before the expensive validation runs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from repro.engine import ResultCache, RunSpec, simulate
from repro.serve.batching import BatchPolicy
from repro.serve.cluster import Fleet, ReplicaSpec
from repro.serve.llm import (
    DEFAULT_HANDOFF_SECONDS,
    DEFAULT_KV_BUCKET,
    DEFAULT_MAX_BATCH,
    DEFAULT_OUTPUT_TOKENS,
    DEFAULT_PREFILL_CHUNK,
    DEFAULT_PROMPT_TOKENS,
    DEFAULT_STEP_OVERHEAD,
    KVCacheConfig,
    _bucket,
    _configured,
)
from repro.serve.metrics import DEFAULT_PERCENTILES, percentile_label
from repro.serve.pipeline import DEFAULT_STAGE_HANDOFF, PipelineSpec
from repro.serve.simulator import DEFAULT_DISPATCH_OVERHEAD
from repro.serve.traffic import WorkloadMix
from repro.workloads import get_workload


def erlang_c(servers: int, offered_erlangs: float) -> float:
    """P(an arriving request waits) in an M/M/c queue.

    ``offered_erlangs`` is the offered load ``a = lambda / mu``; the queue is
    stable only for ``a < servers`` (returns 1.0 at or beyond saturation).
    Computed through the numerically stable Erlang B recurrence.
    """

    if servers < 1:
        raise ValueError(f"servers must be >= 1, got {servers}")
    if offered_erlangs < 0:
        raise ValueError(f"offered load must be >= 0, got {offered_erlangs}")
    if offered_erlangs == 0:
        return 0.0
    if offered_erlangs >= servers:
        return 1.0
    blocking = 1.0
    for k in range(1, servers + 1):
        blocking = offered_erlangs * blocking / (k + offered_erlangs * blocking)
    rho = offered_erlangs / servers
    return blocking / (1.0 - rho + rho * blocking)


class ServiceTimes:
    """Batch-aware service-time/energy lookups backed by the engine cache.

    ``service_seconds(model, spec, batch)`` is the full cost of dispatching
    one ``batch``-sized batch of ``model`` on a ``spec`` replica — engine
    latency plus the host-side dispatch overhead — exactly the quantity the
    simulator charges per dispatch.  Every distinct shape simulates once per
    table (the :class:`~repro.engine.ResultCache` underneath is shared, so a
    planner evaluating hundreds of candidate fleets pays for each shape once).
    """

    def __init__(self,
                 dispatch_overhead_seconds: float = DEFAULT_DISPATCH_OVERHEAD,
                 cache: ResultCache | None = None):
        if dispatch_overhead_seconds < 0:
            raise ValueError(f"dispatch_overhead_seconds must be >= 0, "
                             f"got {dispatch_overhead_seconds}")
        self.dispatch_overhead_seconds = dispatch_overhead_seconds
        self.cache = ResultCache() if cache is None else cache

    def _result(self, model: str, spec: ReplicaSpec, batch: int):
        return simulate(RunSpec(model, target=spec.target,
                                attention=spec.attention, batch_size=batch),
                        cache=self.cache)

    def service_seconds(self, model: str, spec: ReplicaSpec,
                        batch: int = 1) -> float:
        """Seconds one replica is busy serving one ``batch``-sized dispatch."""

        return (self.dispatch_overhead_seconds
                + self._result(model, spec, batch).end_to_end_latency)

    def energy_joules(self, model: str, spec: ReplicaSpec,
                      batch: int = 1) -> float:
        """Joules one ``batch``-sized dispatch costs (whole batch)."""

        return self._result(model, spec, batch).end_to_end_energy

    def mixed_service_seconds(self, mix: WorkloadMix, spec: ReplicaSpec,
                              batch: int = 1) -> float:
        """Mix-weighted expected batch service time on one replica kind."""

        total = sum(weight for _, weight in mix.entries)
        return sum(weight * self.service_seconds(model, spec, batch)
                   for model, weight in mix.entries) / total

    def mixed_energy_joules(self, mix: WorkloadMix, spec: ReplicaSpec,
                            batch: int = 1) -> float:
        total = sum(weight for _, weight in mix.entries)
        return sum(weight * self.energy_joules(model, spec, batch)
                   for model, weight in mix.entries) / total


@dataclass(frozen=True)
class QueueingEstimate:
    """What the analytic model predicts for one (fleet, traffic) pairing.

    ``latency`` maps percentile labels (``"p99"``) to predicted seconds; for
    an unstable fleet (``utilization >= 1``) the percentiles and mean are
    ``None`` — the queue grows without bound, there is no steady state.
    """

    fleet: str
    replicas: int
    rate_rps: float
    effective_batch: int
    batch_service_seconds: float
    per_request_seconds: float
    utilization: float
    stable: bool
    throughput_ceiling_rps: float
    wait_probability: float
    mean_latency_seconds: float | None
    latency: tuple[tuple[str, float | None], ...]
    energy_per_request_joules: float

    def predicted(self, fraction: float) -> float | None:
        """The predicted latency at one percentile fraction (``0.99``)."""

        label = percentile_label(fraction)
        for key, value in self.latency:
            if key == label:
                return value
        raise KeyError(f"percentile {label} was not estimated; "
                       f"request it via the percentiles knob")

    def to_dict(self) -> dict[str, object]:
        return {
            "fleet": self.fleet,
            "replicas": self.replicas,
            "rate_rps": self.rate_rps,
            "effective_batch": self.effective_batch,
            "batch_service_seconds": self.batch_service_seconds,
            "per_request_seconds": self.per_request_seconds,
            "utilization": self.utilization,
            "stable": self.stable,
            "throughput_ceiling_rps": self.throughput_ceiling_rps,
            "wait_probability": self.wait_probability,
            "mean_latency_seconds": self.mean_latency_seconds,
            "latency": dict(self.latency),
            "energy_per_request_joules": self.energy_per_request_joules,
        }


def _effective_batch(rate_per_server: float, service_at, max_batch: int,
                     batching_window: float) -> int:
    """Fixed point of batch formation under load.

    At light load a timeout batch is its opening request plus whatever
    arrives during the window (``1 + rate * window``); near saturation
    batches form back-to-back while the previous one is in service
    (``rate * service``).  The next batch is the larger of the two, bounded
    to ``[1, max_batch]``, iterated with half-step damping so two-cycles
    converge; deterministic.
    """

    if max_batch <= 1:
        return 1
    batch = 1.0
    for _ in range(32):
        service = service_at(max(1, round(batch)))
        target = min(float(max_batch),
                     max(1.0 + rate_per_server * batching_window,
                         rate_per_server * service))
        if abs(target - batch) < 0.5:
            batch = target
            break
        batch = (batch + target) / 2.0
    return max(1, min(max_batch, round(batch)))


def _policy_batching(policy: BatchPolicy | str, batch_size: int,
                     timeout: float) -> tuple[int, float, bool]:
    """(max batch, batching window, fixed?) the analytic model should assume.

    ``fixed`` marks strict-size batching: every dispatch is a full batch, so
    the effective batch is the policy's size rather than a load-dependent
    fixed point, and requests pay the batch *formation* time.  The model does
    not capture strict-size starvation (a partial batch waiting indefinitely
    for its trigger — the tail blow-up :mod:`repro.serve.batching` documents),
    so its percentile predictions under ``size`` are optimistic.
    """

    if not isinstance(policy, str):
        name = policy.name
        batch_size = getattr(policy, "max_batch",
                             getattr(policy, "batch_size", batch_size))
        timeout = getattr(policy, "timeout", timeout)
        policy = name
    if policy == "fifo":
        return 1, 0.0, False
    if policy == "size":
        return batch_size, 0.0, True
    if policy == "timeout":
        return batch_size, timeout, False
    raise ValueError(f"unknown batching policy {policy!r}")


def estimate_fleet(fleet: Fleet | str, rate: float,
                   mix: WorkloadMix | Sequence[str] | str, *,
                   policy: BatchPolicy | str = "timeout",
                   batch_size: int = 8, timeout: float = 2e-3,
                   dispatch_overhead_seconds: float = DEFAULT_DISPATCH_OVERHEAD,
                   percentiles: Sequence[float] = DEFAULT_PERCENTILES,
                   service_times: ServiceTimes | None = None) -> QueueingEstimate:
    """Predict steady-state behavior of ``fleet`` under ``rate`` req/s.

    ``mix`` accepts a :class:`~repro.serve.WorkloadMix`, a workload name, or a
    sequence of names (uniform weights).  ``policy`` mirrors the simulator's
    batching argument; a built policy instance contributes its own
    ``max_batch`` / ``timeout``.  Pass a shared :class:`ServiceTimes` to reuse
    engine results across many estimates (the optimizer does).
    """

    if rate <= 0:
        raise ValueError(f"rate must be positive, got {rate}")
    if isinstance(fleet, str):
        fleet = Fleet.parse(fleet)
    if isinstance(mix, str):
        mix = WorkloadMix.of([mix])
    elif not isinstance(mix, WorkloadMix):
        mix = WorkloadMix.of(tuple(mix))
    if service_times is None:
        service_times = ServiceTimes(dispatch_overhead_seconds)
    max_batch, batching_window, fixed_batch = _policy_batching(
        policy, batch_size, timeout)

    servers = len(fleet.replicas)
    specs = [replica.spec for replica in fleet.replicas]
    rate_per_server = rate / servers

    # Heterogeneous fleets collapse to one average server: the mix-weighted
    # batch service time, averaged across replica kinds.
    def service_at(batch: int) -> float:
        return sum(service_times.mixed_service_seconds(mix, spec, batch)
                   for spec in specs) / servers

    batch = max_batch if fixed_batch else _effective_batch(
        rate_per_server, service_at, max_batch, batching_window)
    batch_service = service_at(batch)
    per_request = batch_service / batch
    offered = rate * per_request                      # erlangs
    if offered >= servers and batch < max_batch:
        # The light-load fixed point says overload, but a saturated queue
        # builds full batches — amortising the dispatch overhead further.
        # Judge stability at the batch size saturation actually produces.
        batch = max_batch
        batch_service = service_at(batch)
        per_request = batch_service / batch
        offered = rate * per_request
    utilization = offered / servers
    stable = utilization < 1.0
    ceiling = servers / per_request
    wait_probability = erlang_c(servers, offered) if stable else 1.0
    energy = sum(service_times.mixed_energy_joules(mix, spec, batch)
                 for spec in specs) / (servers * batch)

    # Batching charges a formation delay on top of queueing: the opener of a
    # timeout batch waits out the window, the opener of a strict-size batch
    # waits for its batch to fill.  Charging the opener's full delay keeps
    # the percentile prediction conservative where it matters (pruning).
    if fixed_batch:
        formation_delay = (batch - 1) / rate_per_server
    else:
        formation_delay = batching_window
    fractions = sorted(set(percentiles))
    if stable:
        drain = servers / per_request - rate          # spare service rate
        mean_wait = wait_probability / drain
        mean_latency = formation_delay + mean_wait + batch_service

        def wait_quantile(fraction: float) -> float:
            if fraction <= 1.0 - wait_probability:
                return 0.0
            return -math.log((1.0 - fraction) / wait_probability) / drain

        latency = tuple(
            (percentile_label(fraction),
             formation_delay + wait_quantile(fraction) + batch_service)
            for fraction in fractions)
    else:
        mean_latency = None
        latency = tuple((percentile_label(fraction), None)
                        for fraction in fractions)

    return QueueingEstimate(
        fleet=fleet.describe(),
        replicas=servers,
        rate_rps=rate,
        effective_batch=batch,
        batch_service_seconds=batch_service,
        per_request_seconds=per_request,
        utilization=utilization,
        stable=stable,
        throughput_ceiling_rps=ceiling,
        wait_probability=wait_probability,
        mean_latency_seconds=mean_latency,
        latency=latency,
        energy_per_request_joules=energy,
    )


@dataclass(frozen=True)
class PipelineEstimate:
    """Tandem M/M/c composition over one pipeline's stage pools.

    Each stage is estimated independently at its *thinned* arrival rate —
    the entry rate times the stage's visit ratio (upstream throughput ×
    branch probability, exact for acyclic routing) — and the end-to-end
    figures add the per-stage predictions weighted by those ratios plus the
    expected handoff delay.  Summing per-stage quantiles is conservative
    (tails rarely align across stages), which is the right bias for pruning
    a capacity search.  For an unstable pipeline (any stage's pool at or
    past saturation) the latency figures are ``None`` and
    ``unstable_stages`` names the offenders; ``bottleneck`` always names
    the highest-utilization stage — where one more replica buys the most.
    """

    pipeline: str
    rate_rps: float
    handoff_seconds: float
    expected_handoffs: float
    stages: tuple[tuple[str, float, QueueingEstimate], ...]
    stable: bool
    bottleneck: str
    unstable_stages: tuple[str, ...]
    mean_latency_seconds: float | None
    latency: tuple[tuple[str, float | None], ...]

    def stage_estimate(self, name: str) -> QueueingEstimate:
        for stage_name, _, estimate in self.stages:
            if stage_name == name:
                return estimate
        raise KeyError(f"pipeline estimate has no stage {name!r}")

    def predicted(self, fraction: float) -> float | None:
        """The predicted end-to-end latency at one percentile fraction."""

        label = percentile_label(fraction)
        for key, value in self.latency:
            if key == label:
                return value
        raise KeyError(f"percentile {label} was not estimated; "
                       f"request it via the percentiles knob")

    def to_dict(self) -> dict[str, object]:
        return {
            "pipeline": self.pipeline,
            "rate_rps": self.rate_rps,
            "handoff_seconds": self.handoff_seconds,
            "expected_handoffs": self.expected_handoffs,
            "stages": [{"name": name, "visit_ratio": visits,
                        **estimate.to_dict()}
                       for name, visits, estimate in self.stages],
            "stable": self.stable,
            "bottleneck": self.bottleneck,
            "unstable_stages": list(self.unstable_stages),
            "mean_latency_seconds": self.mean_latency_seconds,
            "latency": dict(self.latency),
        }


def estimate_pipeline(pipeline: PipelineSpec | str,
                      pools: "dict[str, Fleet | str]", rate: float, *,
                      policy: BatchPolicy | str = "timeout",
                      batch_size: int = 8, timeout: float = 2e-3,
                      handoff_seconds: float = DEFAULT_STAGE_HANDOFF,
                      dispatch_overhead_seconds: float = DEFAULT_DISPATCH_OVERHEAD,
                      percentiles: Sequence[float] = DEFAULT_PERCENTILES,
                      service_times: ServiceTimes | None = None
                      ) -> PipelineEstimate:
    """Predict steady-state behavior of a pipeline's stage pools jointly.

    Stage-k arrival rate is ``rate * visit_ratio(k)`` — the tandem-queue
    thinning :func:`repro.serve.serve_pipeline` realises event by event —
    and each stage pool goes through :func:`estimate_fleet` on its own
    workload.  Pass a shared :class:`ServiceTimes` to reuse engine results
    across many candidate pool sizings (``plan_pipeline_capacity`` does).
    """

    if isinstance(pipeline, str):
        pipeline = PipelineSpec.parse(pipeline)
    if rate <= 0:
        raise ValueError(f"rate must be positive, got {rate}")
    if handoff_seconds < 0:
        raise ValueError(f"handoff_seconds must be >= 0, got {handoff_seconds}")
    missing = [stage.name for stage in pipeline.stages if stage.name not in pools]
    if missing:
        raise ValueError(f"pools is missing stages "
                         f"{', '.join(repr(n) for n in missing)} of "
                         f"pipeline {pipeline.name!r}")
    if service_times is None:
        service_times = ServiceTimes(dispatch_overhead_seconds)

    visits = pipeline.visit_ratios()
    expected_handoffs = pipeline.expected_handoffs()
    stages: list[tuple[str, float, QueueingEstimate]] = []
    for stage in pipeline.stages:
        estimate = estimate_fleet(
            pools[stage.name], rate * visits[stage.name], stage.model,
            policy=policy, batch_size=batch_size, timeout=timeout,
            dispatch_overhead_seconds=dispatch_overhead_seconds,
            percentiles=percentiles, service_times=service_times)
        stages.append((stage.name, visits[stage.name], estimate))

    unstable = tuple(name for name, _, estimate in stages if not estimate.stable)
    stable = not unstable
    bottleneck = max(stages, key=lambda entry: entry[2].utilization)[0]
    handoff_total = expected_handoffs * handoff_seconds
    if stable:
        mean_latency = handoff_total + sum(
            ratio * estimate.mean_latency_seconds
            for _, ratio, estimate in stages)
        latency = tuple(
            (label, handoff_total + sum(
                ratio * dict(estimate.latency)[label]
                for _, ratio, estimate in stages))
            for label in (percentile_label(fraction)
                          for fraction in sorted(set(percentiles))))
    else:
        mean_latency = None
        latency = tuple((percentile_label(fraction), None)
                        for fraction in sorted(set(percentiles)))

    return PipelineEstimate(
        pipeline=pipeline.name,
        rate_rps=rate,
        handoff_seconds=handoff_seconds,
        expected_handoffs=expected_handoffs,
        stages=tuple(stages),
        stable=stable,
        bottleneck=bottleneck,
        unstable_stages=unstable,
        mean_latency_seconds=mean_latency,
        latency=latency,
    )


@dataclass(frozen=True)
class LLMPoolEstimate:
    """Analytic prediction for a disaggregated prefill/decode deployment.

    The prefill pool is an M/M/c queue whose service time is one full
    chunked prompt; its wait quantiles plus the prefill service give the
    ``ttft`` predictions.  The decode pool is a batch fixed point: the
    concurrency ``rate * decode_steps * tpot`` spreads over the replicas,
    bounded per replica by ``max_batch`` and by how many reservations fit in
    KV; ``tpot`` is one decode step at that batch size.  For an unstable
    pool the corresponding predictions are ``None``.
    """

    prefill_fleet: str
    decode_fleet: str
    rate_rps: float
    prompt_tokens: int
    output_tokens: int
    prefill_service_seconds: float
    prefill_utilization: float
    prefill_stable: bool
    ttft_mean_seconds: float | None
    ttft: tuple[tuple[str, float | None], ...]
    decode_batch: int
    decode_concurrency_cap: int
    decode_step_seconds: float
    tpot_seconds: float | None
    decode_utilization: float
    decode_stable: bool
    decode_ceiling_tokens_per_second: float

    @property
    def stable(self) -> bool:
        return self.prefill_stable and self.decode_stable

    def predicted_ttft(self, fraction: float) -> float | None:
        """The predicted TTFT at one percentile fraction (``0.95``)."""

        label = percentile_label(fraction)
        for key, value in self.ttft:
            if key == label:
                return value
        raise KeyError(f"percentile {label} was not estimated; "
                       f"request it via the percentiles knob")

    def to_dict(self) -> dict[str, object]:
        return {
            "prefill_fleet": self.prefill_fleet,
            "decode_fleet": self.decode_fleet,
            "rate_rps": self.rate_rps,
            "prompt_tokens": self.prompt_tokens,
            "output_tokens": self.output_tokens,
            "prefill_service_seconds": self.prefill_service_seconds,
            "prefill_utilization": self.prefill_utilization,
            "prefill_stable": self.prefill_stable,
            "ttft_mean_seconds": self.ttft_mean_seconds,
            "ttft": dict(self.ttft),
            "decode_batch": self.decode_batch,
            "decode_concurrency_cap": self.decode_concurrency_cap,
            "decode_step_seconds": self.decode_step_seconds,
            "tpot_seconds": self.tpot_seconds,
            "decode_utilization": self.decode_utilization,
            "decode_stable": self.decode_stable,
            "decode_ceiling_tokens_per_second":
                self.decode_ceiling_tokens_per_second,
            "stable": self.stable,
        }


def estimate_llm_pools(prefill_fleet: Fleet | str, decode_fleet: Fleet | str,
                       rate: float, model: str, *,
                       prompt_tokens: int = DEFAULT_PROMPT_TOKENS,
                       output_tokens: int = DEFAULT_OUTPUT_TOKENS,
                       prefill_chunk: int = DEFAULT_PREFILL_CHUNK,
                       max_batch: int = DEFAULT_MAX_BATCH,
                       kv: KVCacheConfig | None = None,
                       step_overhead_seconds: float = DEFAULT_STEP_OVERHEAD,
                       kv_bucket: int = DEFAULT_KV_BUCKET,
                       percentiles: Sequence[float] = DEFAULT_PERCENTILES,
                       cache: ResultCache | None = None) -> LLMPoolEstimate:
    """Size both pools of a disaggregated LLM deployment analytically.

    Service times come from the same engine lowering :func:`serve_llm` uses
    (chunked ``phase=prefill`` runs, bucketed ``phase=decode`` steps), so the
    estimate and the simulator price identical shapes — the planner prunes
    with this and validates survivors through the event loop.
    """

    if rate <= 0:
        raise ValueError(f"rate must be positive, got {rate}")
    if prompt_tokens < 1 or output_tokens < 1:
        raise ValueError("prompt_tokens and output_tokens must be >= 1")
    prefill_fleet = Fleet.parse(prefill_fleet) \
        if isinstance(prefill_fleet, str) else prefill_fleet
    decode_fleet = Fleet.parse(decode_fleet) \
        if isinstance(decode_fleet, str) else decode_fleet
    kv = KVCacheConfig() if kv is None else kv
    cache = ResultCache() if cache is None else cache
    bytes_per_token = kv.bytes_per_token(get_workload(model))

    def run_seconds(name: str, spec: ReplicaSpec, batch: int = 1) -> float:
        result = simulate(RunSpec(name, target=spec.target,
                                  attention=spec.attention, batch_size=batch),
                          cache=cache)
        return step_overhead_seconds + result.end_to_end_latency

    # --- prefill pool: M/M/c on the full chunked-prompt service time -------
    prefill_specs = [replica.spec for replica in prefill_fleet.replicas]
    servers_p = len(prefill_specs)

    def prefill_seconds(spec: ReplicaSpec) -> float:
        total, progress = 0.0, 0
        while progress < prompt_tokens:
            chunk = min(prefill_chunk, prompt_tokens - progress)
            name = _configured(model, tokens=chunk, kv_tokens=progress + chunk,
                               phase="prefill")
            total += run_seconds(name, spec)
            progress += chunk
        return total

    prefill_service = sum(prefill_seconds(spec)
                          for spec in prefill_specs) / servers_p
    offered_p = rate * prefill_service
    utilization_p = offered_p / servers_p
    stable_p = utilization_p < 1.0
    fractions = sorted(set(percentiles))
    if stable_p:
        wait_probability = erlang_c(servers_p, offered_p)
        drain = servers_p / prefill_service - rate
        ttft_mean = wait_probability / drain + prefill_service

        def wait_quantile(fraction: float) -> float:
            if fraction <= 1.0 - wait_probability:
                return 0.0
            return -math.log((1.0 - fraction) / wait_probability) / drain

        ttft = tuple((percentile_label(fraction),
                      wait_quantile(fraction) + prefill_service)
                     for fraction in fractions)
    else:
        ttft_mean = None
        ttft = tuple((percentile_label(fraction), None)
                     for fraction in fractions)

    # --- decode pool: batch fixed point under the KV concurrency cap -------
    decode_specs = [replica.spec for replica in decode_fleet.replicas]
    servers_d = len(decode_specs)
    reserved = prompt_tokens + output_tokens
    cap = min(min(max_batch, kv.capacity_for(spec, bytes_per_token) // reserved)
              for spec in decode_specs)
    if cap < 1:
        raise ValueError(
            f"one {prompt_tokens}+{output_tokens}-token reservation does not "
            f"fit the smallest decode replica's KV cache")
    decode_name = _configured(model, tokens=1,
                              kv_tokens=_bucket(reserved, kv_bucket),
                              phase="decode")

    def step_seconds(batch: int) -> float:
        return sum(run_seconds(decode_name, spec, batch)
                   for spec in decode_specs) / servers_d

    decode_steps = output_tokens - 1
    if decode_steps == 0:
        batch_d, step, tpot = 1, step_seconds(1), None
        utilization_d, stable_d = 0.0, True
    else:
        # Concurrency fixed point: requests decoding at once = arrival rate x
        # time spent decoding, spread across the pool and clamped to the cap.
        batch = 1.0
        for _ in range(32):
            step = step_seconds(max(1, round(batch)))
            target = min(float(cap),
                         max(1.0, rate * decode_steps * step / servers_d))
            if abs(target - batch) < 0.5:
                batch = target
                break
            batch = (batch + target) / 2.0
        batch_d = max(1, min(cap, round(batch)))
        step = step_seconds(batch_d)
        utilization_d = rate * decode_steps * step / (servers_d * batch_d)
        if utilization_d >= 1.0 and batch_d < cap:
            # The fixed point says overload, but a saturated pool runs full
            # batches — judge stability at the batch saturation produces.
            batch_d = cap
            step = step_seconds(batch_d)
            utilization_d = rate * decode_steps * step / (servers_d * batch_d)
        stable_d = utilization_d < 1.0
        tpot = step if stable_d else None
    ceiling = servers_d * cap / step_seconds(cap)

    return LLMPoolEstimate(
        prefill_fleet=prefill_fleet.describe(),
        decode_fleet=decode_fleet.describe(),
        rate_rps=rate,
        prompt_tokens=prompt_tokens,
        output_tokens=output_tokens,
        prefill_service_seconds=prefill_service,
        prefill_utilization=utilization_p,
        prefill_stable=stable_p,
        ttft_mean_seconds=ttft_mean,
        ttft=ttft,
        decode_batch=batch_d,
        decode_concurrency_cap=cap,
        decode_step_seconds=step,
        tpot_seconds=tpot,
        decode_utilization=utilization_d,
        decode_stable=stable_d,
        decode_ceiling_tokens_per_second=ceiling,
    )
