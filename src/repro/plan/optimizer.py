"""SLO-driven capacity planning: search fleets, prune analytically, validate.

:func:`plan_capacity` answers the operator question the serving simulator
alone cannot: *what is the cheapest fleet that meets a p99 latency SLO under
this traffic?*  The search composes the layers below it:

1. **Enumerate** candidate fleets — every replica kind in ``targets``
   (configured design points and attention pins included) at every count up
   to ``max_replicas``;
2. **Prune** with the analytic queueing model (:mod:`repro.plan.queueing`):
   unstable fleets and fleets whose predicted SLO-percentile latency exceeds
   the SLO by more than the safety ``margin`` are discarded in microseconds;
3. **Validate** the ``top_k`` best survivors — ranked analytic-first: the
   Pareto boundary of the feasible set under (cost, predicted latency) goes
   ahead of dominated survivors — with the discrete-event simulator
   (:func:`repro.serve.serve`) under the real traffic pattern, and check the
   *measured* percentile against the SLO.  ``jobs=N`` fans the validation
   runs over a process pool;
4. **Report** the chosen fleet (cheapest validated fleet meeting the SLO),
   the one-replica-smaller boundary fleet (evidence the choice is minimal),
   and the cost-vs-SLO-attainment Pareto frontier over everything validated.

Cost is silicon area (mm² per fleet) when every candidate kind models it,
falling back to energy per request for platform targets; both are reported
per candidate either way.
"""

from __future__ import annotations

import itertools
import logging
from concurrent.futures import ProcessPoolExecutor
from functools import partial
from typing import Callable, Sequence

from repro.engine import ResultCache, target_area_mm2
from repro.serve.cluster import Fleet, ReplicaSpec
from repro.serve.llm import (
    DEFAULT_HANDOFF_SECONDS,
    DEFAULT_MAX_BATCH,
    DEFAULT_OUTPUT_TOKENS,
    DEFAULT_PREFILL_CHUNK,
    DEFAULT_PROMPT_TOKENS,
    DEFAULT_STEP_OVERHEAD,
    KVCacheConfig,
    serve_llm,
)
from repro.serve.metrics import DEFAULT_PERCENTILES, percentile_label
from repro.serve.pipeline import (
    DEFAULT_STAGE_HANDOFF,
    PipelineSpec,
    serve_pipeline,
)
from repro.serve.simulator import DEFAULT_DISPATCH_OVERHEAD, serve
from repro.serve.traffic import PoissonTraffic, TrafficPattern, WorkloadMix
from repro.plan.queueing import ServiceTimes, estimate_fleet, estimate_llm_pools

logger = logging.getLogger(__name__)


def _note(progress: Callable[[str], None] | None, message: str) -> None:
    """One planner milestone: always logged, echoed to ``progress`` if set."""

    logger.info("%s", message)
    if progress is not None:
        progress(message)


def pareto_frontier(points: Sequence[dict], keys: Sequence[str]) -> list[dict]:
    """The non-dominated subset of ``points`` under minimisation of ``keys``.

    A point is dominated when some other point is no worse on every key and
    strictly better on at least one.  Ties (identical coordinates) survive
    together.  Returns the frontier sorted by the first key.
    """

    frontier = []
    for point in points:
        dominated = any(
            all(other[key] <= point[key] for key in keys)
            and any(other[key] < point[key] for key in keys)
            for other in points if other is not point
        )
        if not dominated:
            frontier.append(point)
    return sorted(frontier, key=lambda point: tuple(point[key] for key in keys))


def _kind_area(kind: str) -> float | None:
    """Silicon area of one replica of ``kind``, None for platform targets."""

    return target_area_mm2(ReplicaSpec.parse(kind).target)


def _rank_shortlist(feasible: Sequence[dict], keys: Sequence[str],
                    cost: Callable[[dict], tuple], top_k: int) -> list[dict]:
    """Analytic-first ranking: Pareto-boundary survivors (under minimisation
    of ``keys``, typically cost and predicted latency) go ahead of dominated
    ones; both groups are ordered by ``cost`` and the list is cut at
    ``top_k``.  A dominated candidate — worse predicted latency at no lower
    cost — only reaches the simulator once every boundary point has."""

    boundary = pareto_frontier(list(feasible), keys) if feasible else []
    boundary_ids = {id(candidate) for candidate in boundary}
    dominated = [candidate for candidate in feasible
                 if id(candidate) not in boundary_ids]
    ranked = sorted(boundary, key=cost) + sorted(dominated, key=cost)
    return ranked[:top_k]


def _measure_fleet(candidate: dict, *, traffic, policy, router, duration,
                   seed, slo_seconds, dispatch_overhead_seconds, percentiles,
                   slo_percentile, label, cache=None) -> dict:
    """Validate one ``plan_capacity`` candidate in the simulator.

    Module-level so ``jobs=N`` can pickle it into worker processes; workers
    run with their own fresh engine cache (``cache=None``), which changes the
    parent's cache accounting but — caches being semantically transparent —
    not a single measured figure.
    """

    report = serve(traffic, candidate["fleet"], policy=policy, router=router,
                   duration=duration, seed=seed, slo_seconds=slo_seconds,
                   dispatch_overhead_seconds=dispatch_overhead_seconds,
                   percentiles=percentiles, cache=cache)
    measured = report.latency.quantile(slo_percentile)
    return {
        "kind": candidate["kind"],
        "replicas": candidate["replicas"],
        "fleet": candidate["fleet"],
        "area_mm2": candidate["area_mm2"],
        f"predicted_{label}_ms": candidate[f"predicted_{label}_ms"],
        f"{label}_ms": measured * 1e3,
        "slo_attained": measured <= slo_seconds,
        "slo_violation_rate": report.slo_violation_rate,
        "throughput_rps": report.throughput_rps,
        "energy_per_request_mj": report.energy_per_request_joules * 1e3,
        "replica_seconds": report.replica_seconds,
    }


def plan_capacity(rate: float, models: Sequence[str] | str, *,
                  slo_seconds: float, duration: float,
                  slo_percentile: float = 0.99,
                  targets: Sequence[str] = ("vitality",),
                  weights: Sequence[float] | None = None,
                  max_replicas: int = 8, top_k: int = 3,
                  traffic: TrafficPattern | None = None,
                  policy: str = "timeout", batch_size: int = 8,
                  timeout: float = 2e-3,
                  dispatch_overhead_seconds: float = DEFAULT_DISPATCH_OVERHEAD,
                  router: str = "least-loaded", seed: int = 0,
                  margin: float = 1.25,
                  cache=None, jobs: int | None = None,
                  progress: Callable[[str], None] | None = None
                  ) -> dict[str, object]:
    """Search for the cheapest fleet meeting the SLO; return the full payload.

    ``targets`` are replica kinds (``"vitality"``, ``"vitality[pe=32x32]"``,
    ``"gpu:taylor"``); candidates are homogeneous ``count x kind`` fleets.
    ``traffic`` defaults to Poisson at ``rate``; pass a pattern instance
    (bursty, diurnal, replay) to validate under different arrivals — the
    analytic prune always models the mean ``rate``.  ``margin`` loosens the
    analytic prune (predicted percentile up to ``margin * slo``) so
    near-boundary fleets still reach validation.  ``jobs`` > 1 fans the
    validation simulations over a :class:`ProcessPoolExecutor`; every
    measured figure is identical to the serial run (workers use their own
    engine caches, so only the payload's ``cache`` accounting block
    reflects the analytic phase alone).  Deterministic for a fixed ``seed``:
    same arguments, bit-identical measurements.  ``progress`` (a one-string
    callable, e.g. :meth:`repro.obs.Progress.step`) receives a milestone
    line per search stage.
    """

    if slo_seconds <= 0:
        raise ValueError(f"slo_seconds must be positive, got {slo_seconds}")
    if max_replicas < 1:
        raise ValueError(f"max_replicas must be >= 1, got {max_replicas}")
    if top_k < 1:
        raise ValueError(f"top_k must be >= 1, got {top_k}")
    if not targets:
        raise ValueError("the search space needs at least one target kind")
    if isinstance(models, str):
        models = [models]
    mix = WorkloadMix.of(tuple(models), weights)
    if traffic is None:
        traffic = PoissonTraffic(rate=rate, mix=mix)
    service_times = ServiceTimes(dispatch_overhead_seconds, cache=cache)
    label = percentile_label(slo_percentile)
    percentiles = tuple(sorted(set(DEFAULT_PERCENTILES) | {slo_percentile}))
    areas = {kind: _kind_area(kind) for kind in dict.fromkeys(targets)}
    cost_key = "area_mm2" if all(area is not None for area in areas.values()) \
        else "energy_per_request_mj"

    candidates = []
    for kind in dict.fromkeys(targets):
        for count in range(1, max_replicas + 1):
            estimate = estimate_fleet(
                f"{count}x{kind}", rate, mix, policy=policy,
                batch_size=batch_size, timeout=timeout,
                dispatch_overhead_seconds=dispatch_overhead_seconds,
                percentiles=(slo_percentile,), service_times=service_times)
            predicted = estimate.predicted(slo_percentile)
            feasible = estimate.stable and predicted is not None \
                and predicted <= slo_seconds * margin
            area = areas[kind]
            candidates.append({
                "kind": kind,
                "replicas": count,
                "fleet": f"{count}x{kind}",
                "area_mm2": None if area is None else area * count,
                "energy_per_request_mj":
                    estimate.energy_per_request_joules * 1e3,
                "predicted_utilization": estimate.utilization,
                f"predicted_{label}_ms":
                    None if predicted is None else predicted * 1e3,
                "predicted_feasible": feasible,
                "analytic": estimate.to_dict(),
            })

    def cost(candidate: dict) -> tuple:
        return (candidate[cost_key] if candidate[cost_key] is not None
                else float("inf"),
                candidate["energy_per_request_mj"],
                candidate["replicas"], candidate["kind"])

    feasible = [candidate for candidate in candidates
                if candidate["predicted_feasible"]]
    shortlist = _rank_shortlist(feasible,
                                [cost_key, f"predicted_{label}_ms"],
                                cost, top_k)
    _note(progress, f"analytic prune: {len(candidates)} candidates, "
                    f"{len(feasible)} feasible, validating {len(shortlist)}")

    measure = partial(_measure_fleet, traffic=traffic, policy=policy,
                      router=router, duration=duration, seed=seed,
                      slo_seconds=slo_seconds,
                      dispatch_overhead_seconds=dispatch_overhead_seconds,
                      percentiles=percentiles, slo_percentile=slo_percentile,
                      label=label)
    if jobs is not None and jobs > 1 and len(shortlist) > 1:
        workers = min(jobs, len(shortlist))
        _note(progress, f"validating {len(shortlist)} fleets across "
                        f"{workers} processes")
        with ProcessPoolExecutor(max_workers=workers) as pool:
            validated = list(pool.map(measure, shortlist))
    else:
        validated = []
        for candidate in shortlist:
            _note(progress, f"validating {candidate['fleet']} "
                            f"({duration:.1f}s simulated)")
            # Serial validation shares the prune's engine cache: every
            # (model, target, batch) shape the analytic pass already
            # simulated is free here (and a --cache-dir DiskResultCache
            # persists both phases).
            validated.append(measure(candidate, cache=service_times.cache))

    attained = [candidate for candidate in validated if candidate["slo_attained"]]
    chosen = min(attained, key=cost) if attained else None
    _note(progress, f"chosen: {chosen['fleet']}" if chosen is not None
                    else "chosen: none (no validated fleet met the SLO)")

    boundary = None
    if chosen is not None and chosen["replicas"] > 1:
        smaller = f"{chosen['replicas'] - 1}x{chosen['kind']}"
        already = next((candidate for candidate in validated
                        if candidate["fleet"] == smaller), None)
        if already is not None:      # shortlisted earlier: don't re-simulate
            boundary = {key: already[key] for key in
                        ("fleet", f"{label}_ms", "slo_attained",
                         "slo_violation_rate", "throughput_rps")}
        else:
            _note(progress, f"checking boundary fleet {smaller}")
            report = serve(traffic, smaller, policy=policy, router=router,
                           duration=duration, seed=seed,
                           slo_seconds=slo_seconds,
                           dispatch_overhead_seconds=dispatch_overhead_seconds,
                           percentiles=percentiles, cache=service_times.cache)
            measured = report.latency.quantile(slo_percentile)
            boundary = {
                "fleet": smaller,
                f"{label}_ms": measured * 1e3,
                "slo_attained": measured <= slo_seconds,
                "slo_violation_rate": report.slo_violation_rate,
                "throughput_rps": report.throughput_rps,
            }

    frontier_points = [dict(candidate) for candidate in validated
                       if candidate[cost_key] is not None]
    frontier = pareto_frontier(frontier_points,
                               [cost_key, "slo_violation_rate"])
    frontier_fleets = {point["fleet"] for point in frontier}
    for candidate in validated:
        candidate["pareto"] = candidate["fleet"] in frontier_fleets

    return {
        "config": {
            "rate": rate, "mix": mix.to_dict(), "slo_seconds": slo_seconds,
            "slo_percentile": slo_percentile, "targets": list(targets),
            "max_replicas": max_replicas, "top_k": top_k, "policy": policy,
            "batch_size": batch_size, "timeout": timeout,
            "dispatch_overhead_seconds": dispatch_overhead_seconds,
            "router": router, "duration": duration, "seed": seed,
            "margin": margin, "traffic": traffic.to_dict(),
        },
        "objectives": [cost_key, "slo_violation_rate"],
        "evaluated": len(candidates),
        "simulated": len(validated),
        "candidates": candidates,
        "validated": validated,
        "chosen": chosen,
        "boundary": boundary,
        "pareto_frontier": frontier,
        "cache": service_times.cache.stats().to_dict(),
    }


def _measure_pipeline(candidate: dict, *, traffic, pipeline, policy, router,
                      duration, seed, slo_seconds, stage_slo_seconds,
                      handoff_seconds, dispatch_overhead_seconds, percentiles,
                      slo_percentile, label, cache=None) -> dict:
    """Validate one ``plan_pipeline_capacity`` candidate in the simulator.

    Module-level so ``jobs=N`` can pickle it; same cache semantics as
    :func:`_measure_fleet`.
    """

    report = serve_pipeline(
        traffic, pipeline, candidate["pools"], policy=policy, router=router,
        duration=duration, seed=seed, slo_seconds=slo_seconds,
        stage_slo_seconds=stage_slo_seconds, handoff_seconds=handoff_seconds,
        dispatch_overhead_seconds=dispatch_overhead_seconds,
        percentiles=percentiles, cache=cache)
    measured = report.latency.quantile(slo_percentile)
    return {
        "pools": candidate["pools"],
        "pools_text": candidate["pools_text"],
        "counts": candidate["counts"],
        "replicas": candidate["replicas"],
        "area_mm2": candidate["area_mm2"],
        "bottleneck": candidate["bottleneck"],
        f"predicted_{label}_ms": candidate[f"predicted_{label}_ms"],
        f"{label}_ms": measured * 1e3,
        "slo_attained": measured <= slo_seconds,
        "slo_violation_rate": report.slo_violation_rate,
        "throughput_rps": report.throughput_rps,
        "energy_per_request_mj": report.energy_per_request_joules * 1e3,
        "replica_seconds": report.replica_seconds,
        "stage_utilization": {row["name"]: row["utilization"]
                              for row in report.pipeline["stages"]},
    }


def plan_pipeline_capacity(rate: float, pipeline: PipelineSpec | str, *,
                           slo_seconds: float, duration: float,
                           slo_percentile: float = 0.95,
                           targets: "str | dict[str, str]" = "vitality",
                           max_replicas_per_stage: int = 4, top_k: int = 3,
                           traffic: TrafficPattern | None = None,
                           policy: str = "timeout", batch_size: int = 8,
                           timeout: float = 2e-3,
                           handoff_seconds: float = DEFAULT_STAGE_HANDOFF,
                           dispatch_overhead_seconds: float = DEFAULT_DISPATCH_OVERHEAD,
                           router: str = "least-loaded", seed: int = 0,
                           margin: float = 1.25,
                           stage_slo_seconds: "dict[str, float] | None" = None,
                           cache=None, jobs: int | None = None,
                           progress: Callable[[str], None] | None = None
                           ) -> dict[str, object]:
    """Size every stage pool of a pipeline jointly against an e2e SLO.

    Enumerates every per-stage replica-count vector (1 to
    ``max_replicas_per_stage`` per stage), prunes with the tandem-queue
    composition (per-stage estimates at the thinned rates, memoised per
    (stage, count), summed with visit-ratio weights plus the expected
    handoff delay), validates the ``top_k`` best survivors through
    :func:`repro.serve.serve_pipeline`, and picks the cheapest candidate
    whose *measured* end-to-end percentile meets the SLO.  The payload
    mirrors :func:`plan_capacity` — ``candidates`` / ``validated`` /
    ``chosen`` / ``boundary`` (one replica removed from the chosen
    candidate's bottleneck stage) / ``pareto_frontier`` — with candidates
    keyed by their per-stage pool map.  ``targets`` is one replica kind for
    every stage or a per-stage mapping (stages may plan different
    hardware).  Deterministic for fixed arguments.
    """

    if isinstance(pipeline, str):
        pipeline = PipelineSpec.parse(pipeline)
    if slo_seconds <= 0:
        raise ValueError(f"slo_seconds must be positive, got {slo_seconds}")
    if max_replicas_per_stage < 1:
        raise ValueError(f"max_replicas_per_stage must be >= 1, "
                         f"got {max_replicas_per_stage}")
    if top_k < 1:
        raise ValueError(f"top_k must be >= 1, got {top_k}")
    stage_names = [stage.name for stage in pipeline.stages]
    if isinstance(targets, str):
        kinds = {name: targets for name in stage_names}
    else:
        kinds = dict(targets)
        unknown = [name for name in kinds if name not in stage_names]
        if unknown:
            raise ValueError(f"targets names unknown stages "
                             f"{', '.join(repr(n) for n in unknown)}")
        missing = [name for name in stage_names if name not in kinds]
        if missing:
            raise ValueError(f"targets is missing stages "
                             f"{', '.join(repr(n) for n in missing)}")
    if traffic is None:
        traffic = PoissonTraffic(
            rate=rate, mix=WorkloadMix.of([pipeline.stage(pipeline.entry).model]))
    service_times = ServiceTimes(dispatch_overhead_seconds, cache=cache)
    label = percentile_label(slo_percentile)
    percentiles = tuple(sorted(set(DEFAULT_PERCENTILES) | {slo_percentile}))
    areas = {name: _kind_area(kinds[name]) for name in stage_names}
    cost_key = "area_mm2" if all(area is not None for area in areas.values()) \
        else "energy_per_request_mj"

    # Per-(stage, count) analytic estimates: the thinned stage rate is fixed
    # by the pipeline's visit ratios, so the whole count-vector product
    # space composes from S x max_replicas_per_stage estimates.
    visits = pipeline.visit_ratios()
    handoff_total = pipeline.expected_handoffs() * handoff_seconds
    stage_estimates: dict[tuple[str, int], object] = {}
    for stage in pipeline.stages:
        for count in range(1, max_replicas_per_stage + 1):
            stage_estimates[(stage.name, count)] = estimate_fleet(
                f"{count}x{kinds[stage.name]}", rate * visits[stage.name],
                stage.model, policy=policy, batch_size=batch_size,
                timeout=timeout,
                dispatch_overhead_seconds=dispatch_overhead_seconds,
                percentiles=(slo_percentile,), service_times=service_times)

    candidates = []
    for counts in itertools.product(range(1, max_replicas_per_stage + 1),
                                    repeat=len(stage_names)):
        per_stage = {name: stage_estimates[(name, count)]
                     for name, count in zip(stage_names, counts)}
        stable = all(estimate.stable for estimate in per_stage.values())
        bottleneck = max(stage_names,
                         key=lambda name: per_stage[name].utilization)
        predicted = None
        if stable:
            predicted = handoff_total + sum(
                visits[name] * per_stage[name].predicted(slo_percentile)
                for name in stage_names)
        feasible = stable and predicted is not None \
            and predicted <= slo_seconds * margin
        pools = {name: f"{count}x{kinds[name]}"
                 for name, count in zip(stage_names, counts)}
        area = None if cost_key != "area_mm2" else sum(
            areas[name] * count for name, count in zip(stage_names, counts))
        energy = sum(visits[name] * per_stage[name].energy_per_request_joules
                     for name in stage_names)
        candidates.append({
            "pools": pools,
            "pools_text": ";".join(f"{name}={pools[name]}"
                                   for name in stage_names),
            "counts": dict(zip(stage_names, counts)),
            "replicas": sum(counts),
            "area_mm2": area,
            "energy_per_request_mj": energy * 1e3,
            "predicted_utilization": per_stage[bottleneck].utilization,
            "bottleneck": bottleneck,
            f"predicted_{label}_ms":
                None if predicted is None else predicted * 1e3,
            "predicted_feasible": feasible,
            "per_stage": {name: {"visit_ratio": visits[name],
                                 "utilization": per_stage[name].utilization,
                                 "stable": per_stage[name].stable}
                          for name in stage_names},
        })

    def cost(candidate: dict) -> tuple:
        return (candidate[cost_key] if candidate[cost_key] is not None
                else float("inf"),
                candidate["energy_per_request_mj"],
                candidate["replicas"], candidate["pools_text"])

    feasible = [candidate for candidate in candidates
                if candidate["predicted_feasible"]]
    shortlist = _rank_shortlist(feasible,
                                [cost_key, f"predicted_{label}_ms"],
                                cost, top_k)
    _note(progress, f"analytic prune: {len(candidates)} candidates, "
                    f"{len(feasible)} feasible, validating {len(shortlist)}")

    measure = partial(_measure_pipeline, traffic=traffic, pipeline=pipeline,
                      policy=policy, router=router, duration=duration,
                      seed=seed, slo_seconds=slo_seconds,
                      stage_slo_seconds=stage_slo_seconds,
                      handoff_seconds=handoff_seconds,
                      dispatch_overhead_seconds=dispatch_overhead_seconds,
                      percentiles=percentiles, slo_percentile=slo_percentile,
                      label=label)
    if jobs is not None and jobs > 1 and len(shortlist) > 1:
        workers = min(jobs, len(shortlist))
        _note(progress, f"validating {len(shortlist)} candidates across "
                        f"{workers} processes")
        with ProcessPoolExecutor(max_workers=workers) as pool:
            validated = list(pool.map(measure, shortlist))
    else:
        validated = []
        for candidate in shortlist:
            _note(progress, f"validating {candidate['pools_text']} "
                            f"({duration:.1f}s simulated)")
            validated.append(measure(candidate, cache=service_times.cache))

    attained = [candidate for candidate in validated
                if candidate["slo_attained"]]
    chosen = min(attained, key=cost) if attained else None
    _note(progress, f"chosen: {chosen['pools_text']}" if chosen is not None
                    else "chosen: none (no validated candidate met the SLO)")

    boundary = None
    if chosen is not None and chosen["counts"][chosen["bottleneck"]] > 1:
        neck = chosen["bottleneck"]
        smaller_counts = dict(chosen["counts"])
        smaller_counts[neck] -= 1
        smaller_pools = {name: f"{count}x{kinds[name]}"
                         for name, count in smaller_counts.items()}
        smaller_text = ";".join(f"{name}={smaller_pools[name]}"
                                for name in stage_names)
        already = next((candidate for candidate in validated
                        if candidate["pools_text"] == smaller_text), None)
        if already is not None:      # shortlisted earlier: don't re-simulate
            boundary = {key: already[key] for key in
                        ("pools", "pools_text", "counts", f"{label}_ms",
                         "slo_attained", "slo_violation_rate",
                         "throughput_rps")}
            boundary["stage_shrunk"] = neck
        else:
            _note(progress, f"checking boundary candidate {smaller_text}")
            report = serve_pipeline(
                traffic, pipeline, smaller_pools, policy=policy,
                router=router, duration=duration, seed=seed,
                slo_seconds=slo_seconds,
                stage_slo_seconds=stage_slo_seconds,
                handoff_seconds=handoff_seconds,
                dispatch_overhead_seconds=dispatch_overhead_seconds,
                percentiles=percentiles, cache=service_times.cache)
            measured = report.latency.quantile(slo_percentile)
            boundary = {
                "pools": smaller_pools,
                "pools_text": smaller_text,
                "counts": smaller_counts,
                f"{label}_ms": measured * 1e3,
                "slo_attained": measured <= slo_seconds,
                "slo_violation_rate": report.slo_violation_rate,
                "throughput_rps": report.throughput_rps,
                "stage_shrunk": neck,
            }

    frontier_points = [dict(candidate) for candidate in validated
                       if candidate[cost_key] is not None]
    frontier = pareto_frontier(frontier_points,
                               [cost_key, "slo_violation_rate"])
    frontier_pools = {point["pools_text"] for point in frontier}
    for candidate in validated:
        candidate["pareto"] = candidate["pools_text"] in frontier_pools

    return {
        "config": {
            "rate": rate, "pipeline": pipeline.to_dict(),
            "slo_seconds": slo_seconds, "slo_percentile": slo_percentile,
            "targets": dict(sorted(kinds.items())),
            "max_replicas_per_stage": max_replicas_per_stage, "top_k": top_k,
            "policy": policy, "batch_size": batch_size, "timeout": timeout,
            "handoff_seconds": handoff_seconds,
            "dispatch_overhead_seconds": dispatch_overhead_seconds,
            "router": router, "duration": duration, "seed": seed,
            "margin": margin, "traffic": traffic.to_dict(),
            **({"stage_slo_seconds": dict(sorted(stage_slo_seconds.items()))}
               if stage_slo_seconds else {}),
        },
        "objectives": [cost_key, "slo_violation_rate"],
        "evaluated": len(candidates),
        "simulated": len(validated),
        "candidates": candidates,
        "validated": validated,
        "chosen": chosen,
        "boundary": boundary,
        "pareto_frontier": frontier,
        "cache": service_times.cache.stats().to_dict(),
    }


def _llm_measurements(report, slo_percentile: float, label: str) -> dict:
    """The measured figures shared by validation and colocated reference."""

    return {
        f"ttft_{label}_ms": report.ttft.quantile(slo_percentile) * 1e3,
        f"tpot_{label}_ms": report.tpot.quantile(slo_percentile) * 1e3,
        "ttft_attainment": report.llm["ttft_attainment"],
        "tpot_attainment": report.llm["tpot_attainment"],
        "slo_attainment": report.llm["slo_attainment"],
        "decode_tokens_per_second": report.llm["decode_tokens_per_second"],
        "throughput_rps": report.throughput_rps,
        "energy_per_request_mj": report.energy_per_request_joules * 1e3,
    }


def _measure_llm_split(candidate: dict, *, traffic, duration, seed,
                       prompt_tokens, output_tokens, prefill_chunk,
                       max_batch, kv, step_overhead_seconds, handoff_seconds,
                       ttft_slo_seconds, tpot_slo_seconds, percentiles,
                       slo_percentile, label, cache=None) -> dict:
    """Validate one ``plan_llm_capacity`` split in the simulator.

    Module-level so ``jobs=N`` can pickle it; same cache semantics as
    :func:`_measure_fleet`.
    """

    report = serve_llm(
        traffic, prefill_fleet=candidate["prefill_fleet"],
        decode_fleet=candidate["decode_fleet"], duration=duration,
        seed=seed, prompt_tokens=prompt_tokens,
        output_tokens=output_tokens, prefill_chunk=prefill_chunk,
        max_batch=max_batch, kv=kv,
        step_overhead_seconds=step_overhead_seconds,
        handoff_seconds=handoff_seconds,
        ttft_slo_seconds=ttft_slo_seconds,
        tpot_slo_seconds=tpot_slo_seconds,
        percentiles=percentiles, cache=cache)
    measured = _llm_measurements(report, slo_percentile, label)
    attained = (measured[f"ttft_{label}_ms"] <= ttft_slo_seconds * 1e3
                and measured[f"tpot_{label}_ms"] <= tpot_slo_seconds * 1e3)
    return {
        "prefill_fleet": candidate["prefill_fleet"],
        "decode_fleet": candidate["decode_fleet"],
        "replicas": candidate["replicas"],
        "prefill_replicas": candidate["prefill_replicas"],
        "decode_replicas": candidate["decode_replicas"],
        "area_mm2": candidate["area_mm2"],
        f"predicted_ttft_{label}_ms": candidate[f"predicted_ttft_{label}_ms"],
        "predicted_tpot_ms": candidate["predicted_tpot_ms"],
        "slo_attained": attained,
        **measured,
    }


def plan_llm_capacity(rate: float, model: str, *,
                      ttft_slo_seconds: float, tpot_slo_seconds: float,
                      duration: float, slo_percentile: float = 0.95,
                      target: str = "vitality",
                      prompt_tokens: int = DEFAULT_PROMPT_TOKENS,
                      output_tokens: int = DEFAULT_OUTPUT_TOKENS,
                      prefill_chunk: int = DEFAULT_PREFILL_CHUNK,
                      max_batch: int = DEFAULT_MAX_BATCH,
                      kv: KVCacheConfig | None = None,
                      step_overhead_seconds: float = DEFAULT_STEP_OVERHEAD,
                      handoff_seconds: float = DEFAULT_HANDOFF_SECONDS,
                      max_replicas: int = 8, top_k: int = 3,
                      traffic: TrafficPattern | None = None,
                      seed: int = 0, margin: float = 1.25,
                      cache: ResultCache | None = None,
                      jobs: int | None = None,
                      progress: Callable[[str], None] | None = None
                      ) -> dict[str, object]:
    """Size a disaggregated LLM deployment against a TTFT+TPOT SLO pair.

    Enumerates every ``(prefill, decode)`` replica split of a single
    ``target`` kind with ``prefill + decode <= max_replicas``, prunes with
    the analytic pool model (:func:`estimate_llm_pools` — stability plus
    both predicted phase percentiles within ``margin * slo``), validates the
    ``top_k`` cheapest survivors through :func:`repro.serve.serve_llm`, and
    picks the cheapest split whose *measured* TTFT and TPOT percentiles meet
    their SLOs.  Survivors are ranked analytic-first (Pareto boundary under
    replica count and predicted TTFT ahead of dominated splits) and
    ``jobs`` > 1 fans the validation runs over a process pool, with the same
    cache caveat as :func:`plan_capacity`.  The payload also carries a
    ``colocated_reference``: the
    chosen split's total replica count run as one colocated continuous
    fleet, so the disaggregation benefit is visible in the same units.
    Deterministic for fixed arguments.
    """

    if min(ttft_slo_seconds, tpot_slo_seconds) <= 0:
        raise ValueError("TTFT and TPOT SLOs must be positive")
    if max_replicas < 2:
        raise ValueError(f"max_replicas must be >= 2 (one replica per pool), "
                         f"got {max_replicas}")
    if top_k < 1:
        raise ValueError(f"top_k must be >= 1, got {top_k}")
    kv = KVCacheConfig() if kv is None else kv
    cache = ResultCache() if cache is None else cache
    if traffic is None:
        traffic = PoissonTraffic(rate=rate, mix=WorkloadMix.of([model]))
    label = percentile_label(slo_percentile)
    percentiles = tuple(sorted(set(DEFAULT_PERCENTILES) | {slo_percentile}))
    area = target_area_mm2(ReplicaSpec.parse(target).target)

    candidates = []
    for prefill in range(1, max_replicas):
        for decode in range(1, max_replicas + 1 - prefill):
            estimate = estimate_llm_pools(
                f"{prefill}x{target}", f"{decode}x{target}", rate, model,
                prompt_tokens=prompt_tokens, output_tokens=output_tokens,
                prefill_chunk=prefill_chunk, max_batch=max_batch, kv=kv,
                step_overhead_seconds=step_overhead_seconds,
                percentiles=(slo_percentile,), cache=cache)
            ttft = estimate.predicted_ttft(slo_percentile)
            tpot = estimate.tpot_seconds
            feasible = (estimate.stable
                        and ttft is not None
                        and ttft <= ttft_slo_seconds * margin
                        and tpot is not None
                        and tpot <= tpot_slo_seconds * margin)
            candidates.append({
                "prefill_replicas": prefill,
                "decode_replicas": decode,
                "replicas": prefill + decode,
                "prefill_fleet": f"{prefill}x{target}",
                "decode_fleet": f"{decode}x{target}",
                "area_mm2": None if area is None
                            else area * (prefill + decode),
                f"predicted_ttft_{label}_ms":
                    None if ttft is None else ttft * 1e3,
                "predicted_tpot_ms": None if tpot is None else tpot * 1e3,
                "predicted_feasible": feasible,
                "analytic": estimate.to_dict(),
            })

    def cost(candidate: dict) -> tuple:
        return (candidate["replicas"],
                candidate["area_mm2"] if candidate["area_mm2"] is not None
                else float("inf"),
                candidate["decode_replicas"])

    feasible = [candidate for candidate in candidates
                if candidate["predicted_feasible"]]
    shortlist = _rank_shortlist(feasible,
                                ["replicas", f"predicted_ttft_{label}_ms"],
                                cost, top_k)
    _note(progress, f"analytic prune: {len(candidates)} splits, "
                    f"{len(feasible)} feasible, validating {len(shortlist)}")

    measure = partial(_measure_llm_split, traffic=traffic, duration=duration,
                      seed=seed, prompt_tokens=prompt_tokens,
                      output_tokens=output_tokens,
                      prefill_chunk=prefill_chunk, max_batch=max_batch,
                      kv=kv, step_overhead_seconds=step_overhead_seconds,
                      handoff_seconds=handoff_seconds,
                      ttft_slo_seconds=ttft_slo_seconds,
                      tpot_slo_seconds=tpot_slo_seconds,
                      percentiles=percentiles, slo_percentile=slo_percentile,
                      label=label)
    if jobs is not None and jobs > 1 and len(shortlist) > 1:
        workers = min(jobs, len(shortlist))
        _note(progress, f"validating {len(shortlist)} splits across "
                        f"{workers} processes")
        with ProcessPoolExecutor(max_workers=workers) as pool:
            validated = list(pool.map(measure, shortlist))
    else:
        validated = []
        for candidate in shortlist:
            _note(progress, f"validating {candidate['prefill_fleet']} + "
                            f"{candidate['decode_fleet']} "
                            f"({duration:.1f}s simulated)")
            validated.append(measure(candidate, cache=cache))

    attained = [candidate for candidate in validated
                if candidate["slo_attained"]]
    chosen = min(attained, key=cost) if attained else None
    _note(progress,
          f"chosen: {chosen['prefill_fleet']} + {chosen['decode_fleet']}"
          if chosen is not None
          else "chosen: none (no validated split met the SLOs)")

    colocated_reference = None
    if chosen is not None:
        _note(progress, f"measuring colocated reference "
                        f"{chosen['replicas']}x{target}")
        report = serve_llm(
            traffic, fleet=f"{chosen['replicas']}x{target}",
            duration=duration, seed=seed, prompt_tokens=prompt_tokens,
            output_tokens=output_tokens, prefill_chunk=prefill_chunk,
            max_batch=max_batch, kv=kv,
            step_overhead_seconds=step_overhead_seconds,
            ttft_slo_seconds=ttft_slo_seconds,
            tpot_slo_seconds=tpot_slo_seconds,
            percentiles=percentiles, cache=cache)
        measured = _llm_measurements(report, slo_percentile, label)
        colocated_reference = {
            "fleet": f"{chosen['replicas']}x{target}",
            "slo_attained":
                measured[f"ttft_{label}_ms"] <= ttft_slo_seconds * 1e3
                and measured[f"tpot_{label}_ms"] <= tpot_slo_seconds * 1e3,
            **measured,
        }

    return {
        "config": {
            "rate": rate, "model": model,
            "ttft_slo_seconds": ttft_slo_seconds,
            "tpot_slo_seconds": tpot_slo_seconds,
            "slo_percentile": slo_percentile, "target": target,
            "prompt_tokens": prompt_tokens, "output_tokens": output_tokens,
            "prefill_chunk": prefill_chunk, "max_batch": max_batch,
            "kv": kv.to_dict(),
            "step_overhead_seconds": step_overhead_seconds,
            "handoff_seconds": handoff_seconds,
            "max_replicas": max_replicas, "top_k": top_k,
            "duration": duration, "seed": seed, "margin": margin,
            "traffic": traffic.to_dict(),
        },
        "evaluated": len(candidates),
        "simulated": len(validated),
        "candidates": candidates,
        "validated": validated,
        "chosen": chosen,
        "colocated_reference": colocated_reference,
        "cache": cache.stats().to_dict(),
    }
