"""Autoscaling policies and the controller driving dynamic fleets.

An :class:`Autoscaler` plugs into :func:`repro.serve.serve`: every
``interval`` seconds of simulated time the event loop fires a control tick,
the :class:`ScalePolicy` maps the observed :class:`ScaleState` (window
utilization, queue depth, clock) to a desired replica count, and the
controller turns the difference into actions — scale-ups become ``provision``
events that bring a new ``unit`` replica online ``provision_seconds`` later;
scale-downs *drain*: the chosen replica leaves the routing set immediately,
its queue flushes (the batching policy sees the drain flag), and it retires
once idle and empty.  Every decision and lifecycle transition is recorded as
a :class:`~repro.serve.ScaleEvent` for the report.

Policies:

* :class:`UtilizationScalePolicy` — classic reactive thresholds on the busy
  fraction of the last control window;
* :class:`QueueDepthScalePolicy` — thresholds on queued requests per active
  replica (leads utilization under bursty arrivals);
* :class:`ScheduledScalePolicy` — an explicit ``(time, count)`` staircase,
  the open-loop "we know the diurnal curve" strategy.

Everything is driven by the simulator's event heap and the traffic seed, so
autoscaled runs stay bit-reproducible.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass
from typing import Protocol, Sequence, runtime_checkable

from repro.serve.cluster import Fleet, Replica, ReplicaSpec
from repro.serve.metrics import ScaleEvent

logger = logging.getLogger(__name__)

#: Policy names accepted by :func:`make_scale_policy` and the CLI.
SCALE_POLICIES = ("utilization", "queue-depth", "scheduled")


@dataclass(frozen=True)
class ScaleState:
    """What a policy sees at one control tick."""

    now: float
    active: int                   # replicas accepting requests
    pending: int                  # provisions requested but not yet online
    queued: int                   # requests queued across active replicas
    utilization: float            # busy fraction of the last window, in [0, 1]
    min_replicas: int
    max_replicas: int

    @property
    def current(self) -> int:
        """Capacity already committed: active plus in-flight provisions."""

        return self.active + self.pending

    @property
    def queue_depth(self) -> float:
        """Queued requests per active replica."""

        return self.queued / self.active if self.active else float(self.queued)


@runtime_checkable
class ScalePolicy(Protocol):
    """Maps one observed :class:`ScaleState` to a desired replica count."""

    name: str

    def desired(self, state: ScaleState) -> int:
        ...

    def to_dict(self) -> dict[str, object]:
        ...


class UtilizationScalePolicy:
    """Reactive thresholds on window utilization: above ``high`` add one
    replica, below ``low`` (with an empty queue) drain one."""

    name = "utilization"

    def __init__(self, high: float = 0.75, low: float = 0.30):
        if not 0.0 < low < high <= 1.0:
            raise ValueError(f"need 0 < low < high <= 1, got low={low}, high={high}")
        self.high = high
        self.low = low

    def desired(self, state: ScaleState) -> int:
        if state.utilization > self.high:
            return state.current + 1
        if state.utilization < self.low and state.queued == 0:
            return state.current - 1
        return state.current

    def to_dict(self) -> dict[str, object]:
        return {"name": self.name, "high": self.high, "low": self.low}


class QueueDepthScalePolicy:
    """Reactive thresholds on queued requests per active replica."""

    name = "queue-depth"

    def __init__(self, high: float = 4.0, low: float = 0.5):
        if not 0.0 <= low < high:
            raise ValueError(f"need 0 <= low < high, got low={low}, high={high}")
        self.high = high
        self.low = low

    def desired(self, state: ScaleState) -> int:
        if state.queue_depth > self.high:
            return state.current + 1
        if state.queue_depth < self.low:
            return state.current - 1
        return state.current

    def to_dict(self) -> dict[str, object]:
        return {"name": self.name, "high": self.high, "low": self.low}


class ScheduledScalePolicy:
    """An open-loop ``(time, count)`` staircase (diurnal pre-provisioning)."""

    name = "scheduled"

    def __init__(self, steps: Sequence[tuple[float, int]]):
        ordered = tuple((float(time), int(count)) for time, count in steps)
        if not ordered:
            raise ValueError("a schedule needs at least one (time, count) step")
        if any(count < 1 for _, count in ordered):
            raise ValueError("scheduled replica counts must be >= 1")
        if list(ordered) != sorted(ordered, key=lambda step: step[0]):
            raise ValueError("schedule steps must be sorted by time")
        self.steps = ordered

    def desired(self, state: ScaleState) -> int:
        count = state.current
        for time, step_count in self.steps:
            if time <= state.now:
                count = step_count
        return count

    def to_dict(self) -> dict[str, object]:
        return {"name": self.name, "steps": [list(step) for step in self.steps]}


def make_scale_policy(name: str, **kwargs) -> ScalePolicy:
    """Build a scaling policy by name (the CLI entry point)."""

    if name == "utilization":
        return UtilizationScalePolicy(**kwargs)
    if name == "queue-depth":
        return QueueDepthScalePolicy(**kwargs)
    if name == "scheduled":
        return ScheduledScalePolicy(**kwargs)
    raise ValueError(f"unknown scaling policy {name!r}; "
                     f"available: {', '.join(SCALE_POLICIES)}")


class Autoscaler:
    """The controller :func:`repro.serve.serve` consults on every tick.

    ``unit`` names the replica kind scale-ups add (``"vitality"``,
    ``"gpu:taylor"``, configured design points included); ``interval`` is the
    control period and ``provision_seconds`` the delay between a scale-up
    decision and the replica joining the routing set.  One Autoscaler
    instance backs one run at a time (:meth:`begin` resets it).
    """

    def __init__(self, policy: ScalePolicy | str, unit: ReplicaSpec | str, *,
                 min_replicas: int = 1, max_replicas: int = 8,
                 interval: float = 0.25, provision_seconds: float = 0.5):
        self.policy = make_scale_policy(policy) if isinstance(policy, str) else policy
        self.unit = ReplicaSpec.parse(unit) if isinstance(unit, str) else unit
        if min_replicas < 1:
            raise ValueError(f"min_replicas must be >= 1, got {min_replicas}")
        if max_replicas < min_replicas:
            raise ValueError(f"max_replicas ({max_replicas}) must be >= "
                             f"min_replicas ({min_replicas})")
        if interval <= 0:
            raise ValueError(f"interval must be positive, got {interval}")
        if provision_seconds < 0:
            raise ValueError(f"provision_seconds must be >= 0, "
                             f"got {provision_seconds}")
        self.min_replicas = min_replicas
        self.max_replicas = max_replicas
        self.interval = interval
        self.provision_seconds = provision_seconds
        self._events: list[ScaleEvent] = []
        self._pending = 0
        self._busy_snapshot: dict[Replica, float] = {}
        self._observer = None

    def begin(self, fleet: Fleet, observer=None) -> None:
        """Reset per-run state (the simulator calls this before the loop).

        ``observer`` (a :class:`repro.obs.Observability` or ``None``) gets a
        ``scale_event`` call for every decision the run records.
        """

        self._events = []
        self._pending = 0
        self._busy_snapshot = {replica: replica.busy_seconds
                               for replica in fleet.replicas}
        self._observer = observer

    def _record(self, event: ScaleEvent) -> None:
        self._events.append(event)
        if self._observer is not None:
            self._observer.scale_event(event)
        logger.debug("t=%.6f autoscale %s %s %s", event.time, event.action,
                     event.replica or "-", event.detail)

    def observe(self, now: float, fleet: Fleet) -> ScaleState:
        """Fold the fleet into the :class:`ScaleState` the policy sees.

        Window utilization is the busy time accrued since the last tick over
        the window's capacity; a batch dispatched near the window's end books
        its whole service time at once, so the fraction is clamped to 1.
        """

        active = fleet.active_replicas
        accrued = sum(replica.busy_seconds
                      - self._busy_snapshot.get(replica, 0.0)
                      for replica in active)
        self._busy_snapshot = {replica: replica.busy_seconds
                               for replica in fleet.replicas}
        capacity = self.interval * len(active)
        utilization = min(1.0, accrued / capacity) if capacity else 1.0
        return ScaleState(
            now=now, active=len(active), pending=self._pending,
            queued=sum(len(replica.queue) for replica in active),
            utilization=utilization,
            min_replicas=self.min_replicas, max_replicas=self.max_replicas)

    def check(self, now: float, fleet: Fleet) -> tuple[int, list[Replica]]:
        """One control tick: returns (replicas to provision, replicas drained).

        The simulator schedules a ``provision`` event per requested replica
        and re-dispatches each drained one; this method already marked the
        drained replicas inactive.
        """

        state = self.observe(now, fleet)
        desired = max(self.min_replicas,
                      min(self.max_replicas, self.policy.desired(state)))
        if desired > state.current:
            additions = desired - state.current
            self._pending += additions
            self._record(ScaleEvent(
                now, "scale-up",
                detail=f"utilization {state.utilization:.2f}, "
                       f"queued {state.queued}, desired {desired}"))
            return additions, []
        if desired < state.active:
            # Retire the emptiest replicas first (ties: newest first), so a
            # drain strands as little queued work as possible.
            victims = sorted(fleet.active_replicas,
                             key=lambda replica: (replica.backlog_seconds(now),
                                                  -replica.index))
            drained = victims[:state.active - desired]
            for replica in drained:
                replica.active = False
                self._record(ScaleEvent(
                    now, "drain", replica.name,
                    detail=f"utilization {state.utilization:.2f}, "
                           f"desired {desired}"))
            return 0, drained
        return 0, []

    def provision(self, now: float, fleet: Fleet) -> Replica:
        """Bring one requested replica online (the ``provision`` event)."""

        self._pending -= 1
        replica = fleet.add_replica(self.unit, now)
        self._busy_snapshot[replica] = replica.busy_seconds
        self._record(ScaleEvent(now, "online", replica.name))
        return replica

    def collect_events(self, fleet: Fleet) -> tuple[ScaleEvent, ...]:
        """Decision events plus the retirements observed on the fleet,
        time-ordered — what the :class:`~repro.serve.ServeReport` carries."""

        retirements = [ScaleEvent(replica.retired_at, "retired", replica.name)
                       for replica in fleet.replicas
                       if replica.retired_at is not None]
        return tuple(sorted(self._events + retirements,
                            key=lambda event: (event.time, event.action,
                                               event.replica)))

    def to_dict(self) -> dict[str, object]:
        """JSON-stable description echoed into the report config."""

        return {"policy": self.policy.to_dict(), "unit": self.unit.label,
                "min_replicas": self.min_replicas,
                "max_replicas": self.max_replicas, "interval": self.interval,
                "provision_seconds": self.provision_seconds}
