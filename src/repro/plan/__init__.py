"""Capacity planning and autoscaling over the serving simulator.

Where :mod:`repro.serve` evaluates one *fixed* fleet under one traffic
pattern, this package closes the operator's loop:

* :mod:`queueing` — an analytic M/M/c-style estimator with batch-aware
  service times from cached engine results: utilization, throughput ceiling
  and approximate latency percentiles for a candidate fleet in microseconds;
* :mod:`autoscaler` — pluggable scaling policies (utilization-threshold,
  queue-depth, scheduled) behind an :class:`Autoscaler` the simulator's
  event loop consults, with provisioning delay and drain semantics;
* :mod:`optimizer` — :func:`plan_capacity`, the SLO-driven fleet search:
  enumerate candidate fleets, prune with the analytic model, validate the
  survivors in simulation, report the chosen fleet and the cost-vs-SLO
  Pareto frontier; :func:`plan_llm_capacity`, the same search over
  disaggregated prefill/decode pool splits against a TTFT+TPOT SLO pair
  (analytic pools via :func:`estimate_llm_pools`, validation via
  :func:`repro.serve.serve_llm`); and :func:`plan_pipeline_capacity`, the
  joint per-stage pool sizing for multi-stage pipelines against an
  end-to-end SLO (tandem composition via :func:`estimate_pipeline`,
  validation via :func:`repro.serve.serve_pipeline`).

Typical use::

    from repro.plan import Autoscaler, estimate_fleet, plan_capacity
    from repro.serve import DiurnalTraffic, WorkloadMix, serve

    payload = plan_capacity(900.0, ["deit-tiny"], slo_seconds=0.02,
                            duration=2.0, targets=("vitality",))
    print(payload["chosen"]["fleet"])

    scaler = Autoscaler("utilization", "vitality", min_replicas=1,
                        max_replicas=4, interval=0.1, provision_seconds=0.2)
    traffic = DiurnalTraffic(peak_rate=900.0, mix=WorkloadMix.of(["deit-tiny"]))
    report = serve(traffic, "1xvitality", policy="fifo", duration=8.0,
                   autoscaler=scaler, window_seconds=1.0)
    print(report.replica_seconds, [e.to_dict() for e in report.scale_events])
"""

from repro.plan.autoscaler import (
    SCALE_POLICIES,
    Autoscaler,
    QueueDepthScalePolicy,
    ScalePolicy,
    ScaleState,
    ScheduledScalePolicy,
    UtilizationScalePolicy,
    make_scale_policy,
)
from repro.plan.optimizer import (
    pareto_frontier,
    plan_capacity,
    plan_llm_capacity,
    plan_pipeline_capacity,
)
from repro.plan.queueing import (
    LLMPoolEstimate,
    PipelineEstimate,
    QueueingEstimate,
    ServiceTimes,
    erlang_c,
    estimate_fleet,
    estimate_llm_pools,
    estimate_pipeline,
)

__all__ = [
    "Autoscaler",
    "LLMPoolEstimate",
    "PipelineEstimate",
    "QueueDepthScalePolicy",
    "QueueingEstimate",
    "SCALE_POLICIES",
    "ScalePolicy",
    "ScaleState",
    "ScheduledScalePolicy",
    "ServiceTimes",
    "UtilizationScalePolicy",
    "erlang_c",
    "estimate_fleet",
    "estimate_llm_pools",
    "estimate_pipeline",
    "make_scale_policy",
    "pareto_frontier",
    "plan_capacity",
    "plan_llm_capacity",
    "plan_pipeline_capacity",
]
