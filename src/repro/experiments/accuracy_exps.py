"""Accuracy experiments: Figs. 3, 10, 13, 14, 15 and the Table IV accuracy column.

These experiments fine-tune the reduced ("trainable") model zoo on the
synthetic dataset, so absolute accuracies differ from the paper's ImageNet
numbers; what is reproduced is the *ordering* between method variants
(BASELINE >= ViTALiTy ~ LOWRANK+SPARSE > SPARSE >> LOWRANK drop-in) and the
qualitative behaviours (sparse component vanishing over epochs, threshold
sweep shape).  Every driver takes a ``quick`` flag used by the benchmark
harness to bound runtime.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np

from repro.attention.distribution import (
    attention_distribution_stats,
    generate_calibrated_qk,
    summarize_weak_fraction,
)
from repro.data import SyntheticConfig
from repro.models import create_model
from repro.tensor import Tensor, no_grad
from repro.training import FinetuneConfig, SchemeResult, ViTALiTyFinetuner

#: Paper accuracies (ImageNet top-1, %) from Fig. 10 for the EXPERIMENTS.md comparison.
PAPER_FIG10 = {
    "deit-tiny": {"baseline": 72.2, "sparse": 71.2, "lowrank": 27.0, "vitality": 71.9},
    "deit-small": {"baseline": 79.9, "sparse": 79.2, "lowrank": 30.0, "vitality": 79.5},
    "deit-base": {"baseline": 81.8, "sparse": 80.9, "lowrank": 31.6, "vitality": 81.3},
    "mobilevit-xxs": {"baseline": 73.6, "sparse": 72.2, "lowrank": 18.7, "vitality": 72.4},
    "mobilevit-xs": {"baseline": 77.1, "sparse": 75.6, "lowrank": 20.3, "vitality": 75.7},
    "levit-128s": {"baseline": 76.6, "sparse": 74.8, "lowrank": 15.2, "vitality": 75.2},
    "levit-128": {"baseline": 78.6, "sparse": 76.3, "lowrank": 19.6, "vitality": 76.6},
}


def _finetuner(model_name: str, quick: bool, seed: int = 0) -> ViTALiTyFinetuner:
    if quick:
        config = FinetuneConfig(model_name=model_name, train_samples=160, test_samples=80,
                                pretrain_epochs=6, finetune_epochs=4, batch_size=32, seed=seed)
    else:
        config = FinetuneConfig(model_name=model_name, train_samples=512, test_samples=256,
                                pretrain_epochs=14, finetune_epochs=10, batch_size=32, seed=seed)
    return ViTALiTyFinetuner(config)


# -- Fig. 3: attention distributions under mean-centering -------------------------------


def fig3_attention_distribution(quick: bool = True, seed: int = 0,
                                source: str = "calibrated") -> dict[str, float]:
    """Share of similarity values in [-1, 1) before/after mean-centering.

    Two sources are supported:

    * ``"calibrated"`` (default) — per-layer Q/K sampled from a generative
      model calibrated to pre-trained DeiT-Tiny statistics (the ImageNet
      checkpoint is unavailable offline); this reproduces the ~46% -> ~67%
      weak-fraction gain the paper reports.
    * ``"trained"`` — Q/K captured from our small synthetic-data baseline;
      its logits are much milder, so the gain is small — reported for
      completeness.
    """

    if source == "calibrated":
        queries, keys = generate_calibrated_qk(num_layers=12 if not quick else 6, seed=seed)
    elif source == "trained":
        finetuner = _finetuner("deit-tiny", quick=quick, seed=seed)
        model, _ = finetuner.pretrained_baseline()
        model.set_capture_qkv(True)
        images, _ = finetuner._test
        with no_grad():
            model.eval()
            model(Tensor(images[:16]))
        queries, keys, _ = model.captured_qkv()
        model.set_capture_qkv(False)
    else:
        raise ValueError(f"source must be 'calibrated' or 'trained', got {source!r}")

    stats = attention_distribution_stats(queries, keys)
    summary = summarize_weak_fraction(stats)
    summary["num_layers"] = float(len(stats))
    return summary


# -- Fig. 10: accuracy across models and methods ------------------------------------------


def fig10_accuracy(models: tuple[str, ...] = ("deit-tiny",),
                   schemes: tuple[str, ...] = ("baseline", "sparse", "lowrank", "vitality"),
                   quick: bool = True, seed: int = 0) -> dict[str, dict[str, float]]:
    """Accuracy of each method variant on each model (synthetic-dataset analogue)."""

    results: dict[str, dict[str, float]] = {}
    for model_name in models:
        finetuner = _finetuner(model_name, quick=quick, seed=seed)
        per_scheme: dict[str, float] = {}
        for scheme in schemes:
            per_scheme[scheme] = finetuner.run_scheme(scheme).accuracy
        results[model_name] = per_scheme
    return results


# -- Fig. 13: training-scheme ablation on DeiT-Tiny -----------------------------------------


def fig13_training_ablation(quick: bool = True, seed: int = 0) -> dict[str, float]:
    """Accuracy of the ablation schemes on DeiT-Tiny (LR, LR+SPARSE, +KD, ViTALiTy)."""

    finetuner = _finetuner("deit-tiny", quick=quick, seed=seed)
    schemes = ("baseline", "sparse", "lowrank", "lowrank+sparse", "lowrank+sparse+kd",
               "vitality", "vitality+kd")
    return {scheme: finetuner.run_scheme(scheme).accuracy for scheme in schemes}


# -- Fig. 14: sparse component vanishing over training ----------------------------------------


def fig14_sparsity_vanishing(quick: bool = True, seed: int = 0,
                             epochs: int | None = None) -> list[float]:
    """Per-epoch occupancy of the sparse residual component during ViTALiTy+KD training."""

    finetuner = _finetuner("deit-tiny", quick=quick, seed=seed)
    result: SchemeResult = finetuner.run_scheme("vitality+kd", epochs=epochs)
    return result.sparse_occupancy_per_epoch


# -- Fig. 15: sparsity-threshold sweep ----------------------------------------------------------


def fig15_threshold_sweep(thresholds: tuple[float, ...] = (0.002, 0.02, 0.2, 0.5, 0.9),
                          quick: bool = True, seed: int = 0) -> dict[float, dict[str, float]]:
    """Accuracy of ViTALiTy and LOWRANK+SPARSE+KD across sparsity thresholds."""

    finetuner = _finetuner("deit-tiny", quick=quick, seed=seed)
    results: dict[float, dict[str, float]] = {}
    for threshold in thresholds:
        vitality = finetuner.run_scheme("vitality+kd", vitality_threshold=threshold)
        combined = finetuner.run_scheme("lowrank+sparse+kd", vitality_threshold=threshold)
        results[threshold] = {
            "vitality": vitality.accuracy,
            "lowrank+sparse+kd": combined.accuracy,
        }
    return results


# -- Table IV: accuracy column -------------------------------------------------------------------


def table4_accuracy(quick: bool = True, seed: int = 0) -> dict[str, float]:
    """Accuracy of the methods compared in Table IV on the synthetic task (DeiT-Tiny)."""

    finetuner = _finetuner("deit-tiny", quick=quick, seed=seed)
    accuracies = {
        "baseline": finetuner.run_scheme("baseline").accuracy,
        "vitality": finetuner.run_scheme("vitality").accuracy,
        "sanger": finetuner.run_scheme("sparse").accuracy,
    }
    # The linear-attention comparators are fine-tuned directly with their
    # attention mechanism substituted into the baseline weights.
    for method in ("linformer", "performer"):
        accuracies[method] = _finetune_linear_baseline(finetuner, method)
    return accuracies


def _finetune_linear_baseline(finetuner: ViTALiTyFinetuner, method: str) -> float:
    from repro.training.trainer import Trainer, TrainingConfig

    baseline, _ = finetuner.pretrained_baseline()
    model = create_model(finetuner.config.model_name, attention_mode=method,
                         preset=finetuner.config.preset,
                         num_classes=finetuner.config.num_classes)
    finetuner._transfer_weights(baseline, model)
    trainer = Trainer(model, TrainingConfig(epochs=finetuner.config.finetune_epochs,
                                            batch_size=finetuner.config.batch_size,
                                            learning_rate=finetuner.config.finetune_learning_rate,
                                            seed=finetuner.config.seed))
    trainer.fit(finetuner.train_loader())
    return trainer.evaluate(finetuner.test_loader())
