"""Capacity-planning experiments: the operator loop over the serving layer.

* :func:`capacity_planning` — the SLO-driven fleet search on a reference
  scenario: two candidate design points (the Table III ViTALiTy and a
  scaled-down 32x32 variant), one saturating arrival rate, one p99 SLO.  The
  payload shows the analytic prune, the simulated validation, the chosen
  fleet and the one-replica-smaller boundary fleet that misses the SLO.
* :func:`autoscale_study` — diurnal traffic on a fixed peak-sized fleet vs
  the same traffic on an autoscaled fleet (utilization-threshold policy):
  both meet the SLO, the autoscaled run provisions strictly fewer
  replica-seconds — capacity follows the day/night curve instead of being
  pinned at the peak.
"""

from __future__ import annotations

from repro.plan import Autoscaler, plan_capacity
from repro.serve import DiurnalTraffic, ServeReport, WorkloadMix, serve


def capacity_planning(quick: bool = True, model: str = "deit-tiny",
                      rate: float = 1200.0,
                      slo_ms: float = 20.0) -> dict[str, object]:
    """Cheapest fleet meeting a p99 SLO under saturating Poisson traffic."""

    return plan_capacity(
        rate, [model], slo_seconds=slo_ms * 1e-3,
        duration=1.0 if quick else 4.0,
        targets=("vitality", "vitality[pe=32x32]"),
        max_replicas=6, top_k=3, policy="fifo", seed=0)


def _autoscale_row(report: ServeReport, slo_ms: float) -> dict[str, float]:
    return {
        "completed": report.completed,
        "throughput_rps": report.throughput_rps,
        "p99_ms": report.latency.p99 * 1e3,
        "slo_ms": slo_ms,
        "slo_attained": report.latency.p99 * 1e3 <= slo_ms,
        "slo_violation_rate": report.slo_violation_rate,
        "replica_seconds": report.replica_seconds,
        "scale_events": len(report.scale_events),
    }


def autoscale_study(quick: bool = True, model: str = "deit-tiny",
                    peak_rate: float = 1200.0, peak_replicas: int = 3,
                    slo_ms: float = 30.0) -> dict[str, object]:
    """Static peak-sized fleet vs autoscaling under the same diurnal traffic.

    Returns ``{"static": row, "autoscaled": row, "replica_seconds_saved",
    "savings_fraction"}``; both rows meet the SLO, the autoscaled one on
    strictly fewer provisioned replica-seconds.
    """

    duration = 4.0 if quick else 12.0
    traffic = DiurnalTraffic(peak_rate=peak_rate, mix=WorkloadMix.of([model]),
                             period=duration)
    static = serve(traffic, f"{peak_replicas}xvitality", policy="fifo",
                   duration=duration, seed=0, slo_seconds=slo_ms * 1e-3,
                   window_seconds=duration / 8)
    scaler = Autoscaler("utilization", "vitality", min_replicas=1,
                        max_replicas=peak_replicas, interval=duration / 40,
                        provision_seconds=duration / 20)
    autoscaled = serve(traffic, "1xvitality", policy="fifo",
                       duration=duration, seed=0, slo_seconds=slo_ms * 1e-3,
                       autoscaler=scaler, window_seconds=duration / 8)
    saved = static.replica_seconds - autoscaled.replica_seconds
    return {
        "traffic": traffic.to_dict(),
        "static": _autoscale_row(static, slo_ms),
        "autoscaled": _autoscale_row(autoscaled, slo_ms),
        "replica_seconds_saved": saved,
        "savings_fraction": saved / static.replica_seconds,
        "autoscaled_windows": [window.to_dict()
                               for window in autoscaled.windows],
        "autoscaled_scale_events": [event.to_dict()
                                    for event in autoscaled.scale_events],
    }
